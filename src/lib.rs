//! Workspace facade crate.
//!
//! Exists to anchor the repo-level `tests/` and `examples/` directories;
//! all functionality lives in the `crates/` members. Re-exports the
//! `gmc` facade so `symgmc::prelude` works as a convenience.
//!
//! # Architecture: the session pipeline
//!
//! The compiler is organized as one pipeline — parse `.gmc` → enumerate
//! the variant set `A` → select the Theorem-2 base set → expand it
//! greedily (Algorithm 1) → emit code / dispatch at run time — and the
//! production entry point to that pipeline is
//! `gmc_core::session::CompileSession`, a long-lived object that owns
//! every stage's state:
//!
//! | stage | session-owned state | crate |
//! |-------|--------------------|-------|
//! | parse | `ShapeInterner` (dense ids for distinct shapes) | `gmc-ir` |
//! | per-instance optimum | one `DpSolver` per shape (interner + memo + arena, allocation-free when warm) | `gmc-core::dp` |
//! | selection | flat `CostMatrix` + `ExpandScratch`, refilled in place | `gmc-core::expand` |
//! | emission | caller-owned `String` buffers (`emit_*_into`) | `gmc-codegen` |
//! | execution | `GemmWorkspace` packing buffers | `gmc-linalg` / `gmc-kernels` |
//!
//! The one-shot free functions (`all_variants`, `optimal_cost`,
//! `CompiledChain::compile`) remain and are documented as conveniences;
//! each is a thin wrapper over throwaway session state, and every
//! session method is **bit-identical** to its one-shot counterpart.
//!
//! Two knobs scale the pipeline:
//!
//! * the `parallel` cargo feature threads variant enumeration, the
//!   cost-matrix fill, and the Algorithm-1 candidate scan (plus GEMM
//!   column stripes in `gmc-linalg`) through the vendored rayon shim —
//!   with results pinned bit-identical to serial by a property test
//!   (`crates/core/tests/session_reuse.rs`);
//! * the `gmcc` driver compiles whole batches (`gmcc a.gmc b.gmc
//!   --jobs N`), one session per worker thread.
//!
//! Selection latency is tracked in `BENCH_select.json`
//! (`cargo run --release --features parallel --bin bench_select`),
//! alongside `BENCH_gemm.json` / `BENCH_dp.json` for the kernel and DP
//! trajectories.

pub use gmc::prelude;
