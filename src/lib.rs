//! Workspace facade crate.
//!
//! Exists to anchor the repo-level `tests/` and `examples/` directories;
//! all functionality lives in the `crates/` members. Re-exports the
//! `gmc` facade so `symgmc::prelude` works as a convenience.

pub use gmc::prelude;
