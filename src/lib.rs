//! Workspace facade crate.
//!
//! Exists to anchor the repo-level `tests/` and `examples/` directories;
//! all functionality lives in the `crates/` members. Re-exports the
//! `gmc` facade so `symgmc::prelude` works as a convenience.
//!
//! # Architecture: the session pipeline
//!
//! The compiler is organized as one pipeline — parse `.gmc` → enumerate
//! the variant set `A` → select the Theorem-2 base set → expand it
//! greedily (Algorithm 1) → emit code / dispatch at run time — and the
//! production entry point to that pipeline is
//! `gmc_core::session::CompileSession`, a long-lived object that owns
//! every stage's state:
//!
//! | stage | session-owned state | crate |
//! |-------|--------------------|-------|
//! | parse | `ShapeInterner` (dense ids for distinct shapes) | `gmc-ir` |
//! | per-instance optimum | one `DpSolver` per shape (interner + memo + arena, allocation-free when warm) | `gmc-core::dp` |
//! | selection | flat `CostMatrix` + `ExpandScratch`, refilled in place | `gmc-core::expand` |
//! | emission | caller-owned `String` buffers (`emit_*_into`) | `gmc-codegen` |
//! | execution | `GemmWorkspace` packing buffers | `gmc-linalg` / `gmc-kernels` |
//!
//! The one-shot free functions (`all_variants`, `optimal_cost`,
//! `CompiledChain::compile`) remain and are documented as conveniences;
//! each is a thin wrapper over throwaway session state, and every
//! session method is **bit-identical** to its one-shot counterpart.
//!
//! # The serving layer (`gmc-serve`)
//!
//! On top of the session sits the serving subsystem, which keeps the
//! pipeline warm across requests *and across restarts*:
//!
//! * **Sharded service** (`gmc_serve::CompileService`): N worker
//!   threads, each owning one session, fed through a work queue.
//!   Requests are parsed in the submitting thread and routed by
//!   **power-of-two-choices over live queue depths**: a stable hash of
//!   the chain *shape* picks the cache-warm home shard, a second
//!   (salted) hash picks a distinct alternative, and the request
//!   routes away from home only when home's queue is deeper by more
//!   than a stickiness margin — so repeat shapes stay on the shard
//!   whose caches are warm until that shard is genuinely backed up
//!   (`RoutingMode::HashMod` / `--routing hash` pins the old pure
//!   hash%N policy for comparison; ties break deterministically toward
//!   home). Routing is purely a performance hint — compilation is
//!   deterministic, so artifacts are identical wherever a request lands.
//! * **Bounded chain cache**: each session's compiled-chain cache is
//!   LRU-bounded (`CompileSession::set_chain_cache_capacity`) with
//!   hit/miss/eviction counters (`cache_stats`) for observability; the
//!   one-shot CLI and the service share the same implementation.
//! * **Warm-restart persistence** (`gmc_core::persist`): the cache
//!   snapshots to a compact text format — shape descriptors (via
//!   `ShapeInterner` dense ids) plus selected parenthesizations, never
//!   emitted code — and `restore()` re-lowers each tree with the
//!   deterministic builder, yielding **byte-identical** artifacts
//!   without re-running enumeration/DP/expansion.
//! * **`gmcc --serve <path|->`**: a JSONL daemon fronting the service
//!   (one request object per line in, one response line out;
//!   `--persist FILE` makes restarts warm). Batch mode is hardened the
//!   same way: per-file diagnostics, healthy inputs still emit, dirty
//!   exit code.
//! * **Multiplexed socket transport** (`gmc_serve::transport`,
//!   `gmcc --listen unix:PATH|tcp:HOST:PORT`): the same JSONL protocol
//!   over unix/TCP sockets with many concurrent connections. Each
//!   connection gets a reader and a writer thread; a single dispatcher
//!   owns the `CompileService`, remapping per-connection request ids
//!   onto private tokens so clients can **pipeline** requests and
//!   receive responses out of order (matched by id, ids scoped per
//!   connection). Half-close (client shutdown of its write side)
//!   drains that connection's in-flight work before closing; transport
//!   counters (`gmc_connections`, accepted/closed totals, per-conn
//!   in-flight) ride the in-band health/metrics responses and the
//!   Prometheus dump. `gmcc --connect ADDR` is the matching pipelining
//!   client.
//! * **End-to-end connection backpressure**: the transport bounds what
//!   any single connection can cost the daemon. A per-connection
//!   in-flight admission cap (`--conn-in-flight-cap`, default 64) sheds
//!   over-cap requests *in band* with a retryable `overloaded` error —
//!   cap → shed → client retry/backoff is the intended control loop,
//!   and `gmcc --connect --retry N` closes it with jittered capped
//!   exponential backoff. Outbound writers are **bounded**: a
//!   connection that stops reading (slowloris, greedy pipeliner) is
//!   slow-closed once its write queue stays full past a grace window or
//!   its overflow outgrows one queue's worth, and its in-flight work is
//!   written off through the exactly-once bookkeeping (late shard
//!   replies dropped and counted) instead of buffering without bound.
//!   `--max-conns` refuses connections past a limit with a typed
//!   in-band line before closing; `--idle-timeout-ms` reaps silent
//!   connections (in-flight or undelivered work exempts). Every
//!   shed/refusal/slow-close/reap increments a transport counter
//!   (`gmc_conn_shed_total`, `gmc_conn_slow_closed_total`, …) that
//!   rides health/metrics and the Prometheus dump, and connection-level
//!   fault injection (`GMC_FAULT=conn_drop:…`, `conn_stall:…`,
//!   `conn_garbage:…`) drives a transport chaos property test pinning
//!   the exactly-once and counter-balance invariants under dropped,
//!   stalled, and garbage-injecting connections.
//! * **Snapshot rotation**: `--persist-keep K` keeps the last K
//!   snapshot generations (`cache.snap`, `cache.snap.1`, …) via an
//!   atomic rename chain; startup restores the newest *decodable*
//!   generation, quarantining corrupt ones to `.bad` — a torn final
//!   write can no longer cost the whole warm-start history.
//! * **Supervision** (`gmc_serve::supervisor`): each compile runs under
//!   a per-shard panic boundary; a panicking shard answers the doomed
//!   request with a typed `shard_panic` error, then restarts with a
//!   fresh session rewarmed from the latest snapshot (capped
//!   exponential backoff). A circuit breaker takes a shard that fails
//!   K times inside a sliding window out of rotation, and routing
//!   falls over to the next live shard — degraded, never dropped.
//! * **Admission control and deadlines**: per-shard queues are bounded
//!   (`--queue-cap`); overflow is shed *in band* with a retryable
//!   `overloaded` error instead of queueing without bound. Requests
//!   carry optional deadlines (`deadline_ms` field, `--deadline-ms`
//!   default) enforced both at dequeue and in the submitter, so a
//!   wedged shard cannot stall the response stream. The invariant the
//!   whole layer preserves: **every submitted request gets exactly one
//!   response** (pinned by a chaos property test in
//!   `crates/serve/tests/chaos.rs`).
//! * **Graceful drain**: on SIGTERM/SIGINT or stdin EOF the daemon
//!   stops accepting, drains in-flight work, persists a final snapshot
//!   (written atomically — temp file + rename; a corrupt snapshot is
//!   quarantined to `<path>.bad` on the next start, never fatal), and
//!   exits. `{"id":N,"op":"health"}` reports per-shard
//!   liveness/restart/shed counters without touching the work queues.
//! * **Deterministic fault injection** (`gmc_serve::fault`): the
//!   `GMC_FAULT` environment variable (or an in-band `{"op":"fault"}`
//!   request behind `--enable-faults`) arms shard panics
//!   (`panic:<shard>:<nth>`), compile delays (`delay:<ms>`), and torn
//!   snapshot writes (`snapshot_torn`, plus `frag_torn` for a write
//!   that dies mid-way through the trailing fragment section) — the
//!   same hooks the chaos tests, the CI fault smoke, and the
//!   `bench_serve` overload row drive.
//!
//! # The vectorized selection engine (`gmc_core::simd`)
//!
//! Selection itself (cost-matrix fill → Theorem-2 base set →
//! Algorithm-1 expansion) runs on a SIMD engine behind the same
//! runtime-dispatch ladder the GEMM micro-kernel uses
//! (AVX-512 > AVX2 > portable, chosen per process by CPU feature
//! detection, cappable with `GMC_SIMD=portable|avx2`):
//!
//! * **Cost-matrix fill**: each variant's symbolic FLOP polynomial is
//!   compiled once per row into a flat multiply chain
//!   (`CompiledPoly`, no B-tree walk, no `powi`) and streamed over the
//!   training instances transposed into symbol-major f64 lanes
//!   (`SizeLanes`), 8 instances per iteration on AVX-512. Custom cost
//!   models use the batched row API (`CostMatrix::fill_rows_with`) so
//!   per-variant model lookups hoist out of the per-instance loop
//!   (`PerfModels::variant_times_into`).
//! * **Canonical blocked reduction**: penalty sums reassociate, so the
//!   engine fixes one order — eight partial accumulators (element `i`
//!   into `acc[i % 8]`), scalar tail, deterministic tree reduce — and
//!   *every* rung, scalar included, follows it. Scalar, AVX2, and
//!   AVX-512 selection are therefore bit-identical (pinned by
//!   `crates/core/tests/simd_paths.rs` across ragged instance counts
//!   and every `scan_stripe`), and this blocked order **supersedes**
//!   the pre-engine straight left-to-right fold as the selection
//!   reference. The DP solver's final-state fold shares the engine's
//!   first-strict-minimum helper.
//! * **Trajectory**: `BENCH_select.json` records scalar-vs-SIMD and
//!   the cumulative speedup over the PR 3 pipeline (~25x on the matrix
//!   fill itself).
//!
//! # The memoized enumeration engine (`gmc_core::pool`)
//!
//! With the fill vectorized, variant enumeration (`build_pool`) was the
//! dominant selection stage: every one of the `Catalan(n - 1)` trees
//! re-lowered its sub-spans from scratch, even though a sub-span's
//! association steps depend only on that span's leaf descriptors. The
//! engine now:
//!
//! * enumerates parenthesizations as a **span DAG**
//!   (`gmc_core::paren::SpanDag`): each distinct sub-tree interned once
//!   per `(i, j)` span — 301 nodes instead of 792 per-tree associations
//!   for `n = 7`;
//! * lowers each DAG node **exactly once** into a step *fragment*
//!   (rewrites, kernel assignment, feature inference) with span-local
//!   `ValRef`s and an exact cumulative cost polynomial;
//! * assembles each variant by splicing its fragments in the builder's
//!   leftmost-available-first order with a constant `Temp`-offset
//!   renumber — valid because that total order decomposes recursively
//!   as `order(left) ++ order(right) ++ [root]`, so a sub-tree's steps
//!   always form one contiguous, relocatable block.
//!
//! The assembled pool is **bit-identical** to per-tree `build_variant`
//! lowering (which stays as the cross-checked reference), pinned by a
//! property test over random structured/inverted/transposed shapes ×
//! thread counts (`crates/core/tests/pool_memo.rs`). `GMC_ENUM=naive`
//! pins the reference engine at runtime — the same pattern as
//! `GMC_SIMD` — and CI runs the core tests plus the selection smoke on
//! that rung. On the dev host the memoized engine builds the `n = 7`
//! pool ~4.1x faster than naive lowering, taking cold single-thread
//! end-to-end selection from ~2.9 ms to ~1.05 ms — ~0.70 ms on the
//! memo-warm repeat a serving session sees (`BENCH_select.json`:
//! `enumerate_*` / `warm_session_ms` fields; ~7x cumulative vs the
//! PR 3 pipeline).
//!
//! # The cross-shape fragment store (`gmc_core::fragcache`)
//!
//! The memo engine's fragments used to die with each pool build; the
//! fragment store promotes them to a session-lifetime, **cross-shape**
//! cache. A fragment is keyed by what its lowering actually reads — the
//! span's sub-tree structure (a preorder bit code maintained
//! incrementally by the span DAG) plus the *descriptor run* of its
//! leaves (properties/inversion/transposition, position-independent)
//! plus a `BuildOptions` fingerprint — so span `(2, 5)` of one chain
//! and span `(0, 3)` of a different chain with the same leaf run share
//! one entry. Entries are frame-stamped: a hit in the same symbolic
//! frame is a zero-copy `Arc` clone, a cross-frame hit relocates the
//! fragment's `ValRef`s/polynomials into the new frame — exact rational
//! arithmetic, so store-assembled pools stay **bit-identical** to
//! store-off builds (pinned by `crates/core/tests/frag_cache.rs`; CI
//! re-runs core + serve under `GMC_FRAG=off`). The store is LRU-bounded
//! with hit/miss/insert/eviction/restored counters
//! (`CompileSession::fragment_cache_stats`), failed lowerings are
//! negatively cached (the exactly-once contract covers failures), hot
//! fragments persist in a versioned snapshot section
//! (`gmc_core::persist`, old snapshots still decode), and the serving
//! layer keeps per-shard stores whose snapshots merge into one
//! deduplicated union — so a restarted shard warms from fragments *any*
//! shard lowered. On the dev host a warm store builds the
//! diverse-shape workload's pools ~2.4x faster than a cold one
//! (`BENCH_select.json`: `frag_cold_ms` / `frag_warm_ms` /
//! `frag_speedup`).
//!
//! # Observability (`gmc-obs`)
//!
//! A dependency-free tracing and metrics layer spans the whole stack:
//!
//! * **Latency histograms** (`gmc_obs::Histogram`): fixed-size
//!   log-linear (HDR-style) buckets over the microsecond domain, u64
//!   atomic counters, so shard workers record lock-free while readers
//!   snapshot, merge across shards, and take p50/p90/p99/max — the one
//!   quantile definition shared by the serving layer, the JSONL
//!   endpoints, the Prometheus dump, and `bench_serve` (upper-edge
//!   nearest-rank: reported quantiles never understate, ≤ 12.5% bucket
//!   error; pinned by unit + property tests in `crates/obs`).
//! * **Pipeline tracing** (`gmc_obs::{Recorder, StageProfile}`): each
//!   session records per-stage spans (parse → enumerate → dp → select
//!   → expand → emit → execute) and per-kernel timings. `GMC_TRACE=off`
//!   (or `CompileSession::set_tracing(false)`) reduces every
//!   instrumented site to a single branch — measured warm-path cost of
//!   tracing on vs off is recorded in `BENCH_serve.json` as
//!   `trace_overhead_pct` (required ≤ 3%). `gmcc --timings` prints the
//!   per-file breakdown; `CompiledChain::timing_report` renders it
//!   programmatically.
//! * **Serving metrics**: every shard publishes end-to-end, queue-wait,
//!   and compile-time histograms through the same lock-free shared
//!   blocks as the supervision counters. `{"op":"health"}` adds
//!   `p99_ms`/`queue_wait_p99_ms` per shard; `{"op":"metrics"}` returns
//!   the full snapshot in-band; `gmcc --serve --metrics-file FILE`
//!   dumps Prometheus text exposition on drain and on every metrics
//!   request (CI greps both); `--slow-ms MS` logs slow requests to
//!   stderr with their stage breakdown. The e2e histograms record
//!   exactly one sample per shard-attributed response — an invariant
//!   the chaos proptest pins alongside exactly-one-response.
//!
//! Three knobs scale the pipeline:
//!
//! * the `parallel` cargo feature threads variant enumeration, the
//!   cost-matrix fill, and the Algorithm-1 candidate scan (plus GEMM
//!   column stripes in `gmc-linalg`) through the vendored rayon shim —
//!   with results pinned bit-identical to serial by a property test
//!   (`crates/core/tests/session_reuse.rs`);
//! * `CompileOptions::scan_stripe` tunes the candidate-scan task
//!   granularity for many-core hosts without rebuilding (bit-identical
//!   for every value);
//! * the `gmcc` driver compiles whole batches (`gmcc a.gmc b.gmc
//!   --jobs N`), one session per worker thread — or serves forever with
//!   `--serve`.
//!
//! Selection latency is tracked in `BENCH_select.json`
//! (`cargo run --release --features parallel --bin bench_select`), the
//! serving trajectory (cold vs. warm vs. restored-from-disk, plus the
//! `--load` closed-loop socket sweep: connections × shards QPS/latency
//! table and the skewed-workload two-choices-vs-hash%N comparison) in
//! `BENCH_serve.json` (`cargo run --release --bin bench_serve`),
//! alongside `BENCH_gemm.json` / `BENCH_dp.json` for the kernel and DP
//! trajectories.

pub use gmc::prelude;
