//! The blocked triangular-inversion chain `G1 L1^{-1} G2 L2^{-1}`
//! (Sec. I of the paper, from Bientinesi's blocked algorithms): two
//! triangular solves interleaved with general blocks.
//!
//! Demonstrates the inversion-propagation rewrite of Sec. IV: the compiler
//! turns `G L^{-1}` into a cheap `TRSM` rather than inverting anything
//! explicitly, and picks the association order by block size at run time.
//!
//! ```text
//! cargo run -p gmc --release --example triangular_inversion
//! ```

use gmc::prelude::*;
use gmc_core::reference::evaluate_reference;
use gmc_linalg::relative_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        Matrix G1 <General, Singular>;
        Matrix L1 <LowerTri, NonSingular>;
        Matrix G2 <General, Singular>;
        Matrix L2 <LowerTri, NonSingular>;
        X := G1 * L1^-1 * G2 * L2^-1;
    ";
    let program = parse_program(source)?;
    let shape = program.shape().clone();
    println!("chain: {}", shape);

    let chain = CompiledChain::compile(shape.clone())?;
    println!("variants selected: {}", chain.variants().len());
    for v in chain.variants() {
        println!(
            "  {} -> kernels {:?}",
            v.paren(),
            v.kernels_used()
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
        );
    }

    // No variant ever inverts a matrix explicitly: every kernel is a
    // multiply or a solve.
    assert!(chain.variants().iter().all(|v| v.finalizes().is_empty()));

    // Execute and validate against the naive reference (which *does*
    // materialize explicit inverses).
    let mut rng = StdRng::seed_from_u64(7);
    let (m, b) = (60usize, 45usize);
    let g1 = random_general(&mut rng, m, b);
    let l1 = random_lower_triangular(&mut rng, b, true);
    let g2 = random_general(&mut rng, b, b);
    let l2 = random_lower_triangular(&mut rng, b, true);
    let inputs = [g1, l1, g2, l2];

    let fast = chain.evaluate(&inputs)?;
    let slow = evaluate_reference(&shape, &inputs)?;
    let err = relative_error(&fast, &slow);
    println!("\nnumeric check vs explicit-inverse reference: relative error = {err:.2e}");
    assert!(err < 1e-8);

    // FLOP comparison against always-explicit inversion.
    let q = chain.instance_of(&inputs)?;
    let (_, ours) = chain.dispatch(&q);
    let explicit = {
        // Reference strategy: invert both triangles (m^3/3 each) and
        // multiply left-to-right with GEMMs.
        let bb = b as f64;
        let mm = m as f64;
        2.0 * bb * bb * bb / 3.0 + 3.0 * 2.0 * mm * bb * bb
    };
    println!(
        "our FLOPs {ours:.3e} vs explicit-inversion strategy {explicit:.3e} ({:.2}x less)",
        explicit / ours
    );
    Ok(())
}
