//! Quickstart: parse a chain in the paper's grammar, compile it with
//! multi-versioning, inspect the selected variants, and evaluate on
//! concrete matrices.
//!
//! ```text
//! cargo run -p gmc --release --example quickstart
//! ```

use gmc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The chain G1 L^{-1} G2 with a triangular solve in the middle — the
    // building block of the paper's blocked triangular inversion example.
    let source = "
        Matrix G1 <General, Singular>;
        Matrix L  <LowerTri, NonSingular>;
        Matrix G2 <General, Singular>;
        X := G1 * L^-1 * G2;
    ";
    let program = parse_program(source)?;
    println!("chain:  {}", program.shape());
    println!(
        "size-symbol classes: {:?}",
        program.shape().size_classes().classes()
    );

    // Compile-time: select the Theorem-2 base set of variants.
    let chain = CompiledChain::compile(program.shape().clone())?;
    println!("\nselected {} variant(s):", chain.variants().len());
    for (i, v) in chain.variants().iter().enumerate() {
        println!("--- variant {i} ---\n{v}");
    }

    // Run-time: sizes become known; the dispatch function evaluates each
    // variant's cost function and picks the cheapest.
    let mut rng = StdRng::seed_from_u64(42);
    for (m, k, n) in [(400usize, 40usize, 8usize), (8, 40, 400)] {
        let g1 = random_general(&mut rng, m, k);
        let l = random_lower_triangular(&mut rng, k, true);
        let g2 = random_general(&mut rng, k, n);
        let q = chain.instance_of(&[g1.clone(), l.clone(), g2.clone()])?;
        let (idx, flops) = chain.dispatch(&q);
        println!(
            "\nsizes {q}: dispatch to variant {idx} ({} estimated FLOPs)",
            flops
        );
        let x = chain.evaluate(&[g1, l, g2])?;
        println!("result is {} x {}", x.rows(), x.cols());
    }

    // The same compiled chain can also be exported as C++ (Fig. 1 of the
    // paper) for embedding in a C++ application.
    let cpp = emit_cpp(&chain, "evaluate_g1_linv_g2");
    println!(
        "\ngenerated C++ ({} lines); first lines:",
        cpp.lines().count()
    );
    for line in cpp.lines().take(6) {
        println!("    {line}");
    }
    Ok(())
}
