//! An application with *multiple* generalized matrix chains (the "one set
//! of generated code per chain type" note of Fig. 1): a chain library plus
//! full C++ export of every compiled chain and the shared runtime header.
//!
//! ```text
//! cargo run -p gmc --release --example chain_library
//! ```

use gmc::codegen::emit_runtime_header;
use gmc::core::ChainLibrary;
use gmc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = ChainLibrary::new();

    // Three chains a data-assimilation application might use.
    let sources = [
        (
            "kalman_gain",
            "Matrix G1 <General, Singular>;
             Matrix G2 <General, Singular>;
             Matrix G3 <General, Singular>;
             Matrix M  <Symmetric, SPD>;
             K := G1 * G2 * G3^T * M^-1;",
        ),
        (
            "whiten",
            "Matrix L <LowerTri, NonSingular>;
             Matrix X <General, Singular>;
             W := L^-1 * X;",
        ),
        (
            "project",
            "Matrix Q <General, Orthogonal>;
             Matrix A <General, Singular>;
             Matrix B <General, Singular>;
             P := Q^-1 * A * B;",
        ),
    ];

    for (name, src) in sources {
        let program = parse_program(src)?;
        let chain = lib.compile(name, program.shape().clone())?;
        println!(
            "{name:<12} {} -> {} variant(s)",
            chain.shape(),
            chain.variants().len()
        );
    }

    // Evaluate two of them.
    let mut rng = StdRng::seed_from_u64(99);
    let l = random_lower_triangular(&mut rng, 30, true);
    let x = random_general(&mut rng, 30, 5);
    let w = lib.evaluate("whiten", &[l, x])?;
    println!("\nwhiten: result {} x {}", w.rows(), w.cols());

    let q = random_orthogonal(&mut rng, 20);
    let a = random_general(&mut rng, 20, 40);
    let b = random_general(&mut rng, 40, 3);
    let p = lib.evaluate("project", &[q, a, b])?;
    println!(
        "project: result {} x {} (Q^-1 rewritten to Q^T — no solve)",
        p.rows(),
        p.cols()
    );

    // Export the whole application: one header + one translation unit per
    // chain, ready to drop into a C++ build.
    let out_dir = std::env::temp_dir().join("symgmc_export");
    std::fs::create_dir_all(&out_dir)?;
    std::fs::write(out_dir.join("gmc_runtime.hpp"), emit_runtime_header())?;
    for name in lib.names().map(str::to_string).collect::<Vec<_>>() {
        let chain = lib.get(&name).expect("registered");
        std::fs::write(out_dir.join(format!("{name}.cpp")), emit_cpp(chain, &name))?;
    }
    println!("\nexported C++ to {}", out_dir.display());
    for entry in std::fs::read_dir(&out_dir)? {
        let entry = entry?;
        println!(
            "  {} ({} bytes)",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len()
        );
    }
    Ok(())
}
