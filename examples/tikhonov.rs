//! Tikhonov-regularized least squares (Sec. I of the paper cites Tikhonov
//! regularization as a standard GMC workload): once the regularized normal
//! matrix `M = A^T A + lambda I` has been formed (SPD by construction), the
//! solution for each right-hand side is the chain
//!
//! ```text
//! x := M^{-1} A^T b
//! ```
//!
//! The optimal association order flips with the shape of `A`: for a single
//! right-hand side the chain should be evaluated right-to-left
//! (matrix-vector products only); batching many right-hand sides moves the
//! crossover. The dispatcher gets this right automatically.
//!
//! ```text
//! cargo run -p gmc --release --example tikhonov
//! ```

use gmc::prelude::*;
use gmc_linalg::{matmul, Transpose};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        Matrix M <Symmetric, SPD>;      # A^T A + lambda I
        Matrix A <General, Singular>;
        Matrix B <General, Singular>;   # right-hand side(s)
        X := M^-1 * A^T * B;
    ";
    let program = parse_program(source)?;
    let shape = program.shape().clone();
    let chain = CompiledChain::compile(shape.clone())?;
    println!("chain: {} -> {} variants", shape, chain.variants().len());

    let mut rng = StdRng::seed_from_u64(11);
    let (rows, cols) = (500usize, 80usize);
    let a = random_general(&mut rng, rows, cols);
    let lambda = 0.5;
    // M = A^T A + lambda I.
    let mut m = matmul(&a, Transpose::Yes, &a, Transpose::No);
    for i in 0..cols {
        let v = m.get(i, i) + lambda;
        m.set(i, i, v);
    }

    println!(
        "\n{:<26} {:>8} {:>14} {:>14}",
        "right-hand sides", "variant", "FLOPs", "optimal"
    );
    let pool = all_variants(&shape)?;
    for nrhs in [1usize, 16, 4096] {
        let q = Instance::new(vec![cols as u64, cols as u64, rows as u64, nrhs as u64]);
        let (idx, flops) = chain.dispatch(&q);
        let opt = pool
            .iter()
            .map(|v| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        println!("{:<26} {:>8} {:>14.3e} {:>14.3e}", nrhs, idx, flops, opt);
    }

    // Solve one batch numerically and check the normal equations residual.
    let nrhs = 4;
    let b = random_general(&mut rng, rows, nrhs);
    let x = chain.evaluate(&[m.clone(), a.clone(), b.clone()])?;
    // Residual of M x = A^T b.
    let mx = matmul(&m, Transpose::No, &x, Transpose::No);
    let atb = matmul(&a, Transpose::Yes, &b, Transpose::No);
    let err = gmc_linalg::relative_error(&mx, &atb);
    println!("\nnormal-equations residual for {nrhs} right-hand sides: {err:.2e}");
    assert!(err < 1e-8);
    Ok(())
}
