//! The ensemble Kalman filter chain `G1 G2 G3^T M^{-1}` (Sec. I of the
//! paper): a real workload whose operand sizes vary between deployments —
//! state dimension, ensemble size, observation count — and typically become
//! known only at run time.
//!
//! This example shows that different size regimes dispatch to *different*
//! variants, and that the chosen variant always stays close to the optimum
//! while a fixed left-to-right evaluation does not.
//!
//! ```text
//! cargo run -p gmc --release --example ensemble_kalman
//! ```

use gmc::prelude::*;
use gmc_core::builder::left_to_right_variant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        # ensemble Kalman filter update: G1 G2 G3^T M^-1
        Matrix G1 <General, Singular>;   # state x ensemble
        Matrix G2 <General, Singular>;   # ensemble x ensemble
        Matrix G3 <General, Singular>;   # observations x ensemble
        Matrix M  <Symmetric, SPD>;      # observation covariance
        K := G1 * G2 * G3^T * M^-1;
    ";
    let program = parse_program(source)?;
    let shape = program.shape().clone();
    println!("chain: {}  (n = {})", shape, shape.len());

    let chain = CompiledChain::compile(shape.clone())?;
    println!("compiled to {} variants", chain.variants().len());

    let ltr = left_to_right_variant(&shape)?;
    let pool = all_variants(&shape)?;

    // Three realistic regimes: large state / small ensemble, balanced, and
    // many observations.
    let regimes: [(&str, Vec<u64>); 3] = [
        ("large state, small ensemble", vec![2000, 50, 50, 30, 30]),
        ("balanced", vec![200, 200, 200, 200, 200]),
        ("many observations", vec![50, 40, 40, 1500, 1500]),
    ];

    println!(
        "\n{:<30} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "regime", "variant", "dispatched", "optimal", "ours/opt", "LtR/opt"
    );
    for (name, sizes) in regimes {
        let q = Instance::new(sizes);
        let (idx, cost) = chain.dispatch(&q);
        let opt = pool
            .iter()
            .map(|v| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:<30} {:>10} {:>12.3e} {:>12.3e} {:>8.2} {:>8.2}",
            name,
            idx,
            cost,
            opt,
            cost / opt,
            ltr.flops(&q) / opt
        );
    }

    // Numeric run in the first regime.
    let mut rng = StdRng::seed_from_u64(2026);
    let (s, e, o) = (300usize, 40usize, 25usize);
    let g1 = random_general(&mut rng, s, e);
    let g2 = random_general(&mut rng, e, e);
    let g3 = random_general(&mut rng, o, e); // used transposed: e x o
    let m = random_spd(&mut rng, o);
    let k = chain.evaluate(&[g1, g2, g3, m])?;
    println!(
        "\nnumeric run: state = {s}, ensemble = {e}, observations = {o} -> gain is {} x {}",
        k.rows(),
        k.cols()
    );
    Ok(())
}
