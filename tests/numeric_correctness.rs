//! Exhaustive numeric correctness: for random experiment shapes, *every*
//! parenthesization's variant must produce the same value as the naive
//! reference evaluator (which materializes explicit inverses).

use gmc::prelude::*;
use gmc_bench::workload::ShapeSampler;
use gmc_core::reference::evaluate_reference;
use gmc_linalg::relative_error;

use gmc_bench::workload::instantiate as matrices_for;

#[test]
fn all_variants_agree_with_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(777);
    let sampler = ShapeSampler::uniform();
    for n in 2..=5usize {
        for _ in 0..6 {
            let shape = sampler.sample(&mut rng, n);
            let inst = InstanceSampler::new(&shape, 3, 14).sample(&mut rng);
            let mats = matrices_for(&shape, &inst, &mut rng);
            let want = evaluate_reference(&shape, &mats).unwrap();
            for v in all_variants(&shape).unwrap() {
                let got = v.execute(&mats).unwrap();
                let err = relative_error(&got, &want);
                assert!(
                    err < 1e-6,
                    "shape {shape}, variant {} (kernels {:?}): error {err}",
                    v.paren(),
                    v.kernels_used()
                );
            }
        }
    }
}

#[test]
fn transposed_operands_execute_correctly() {
    // Transposition patterns beyond the experiment options: G^T, L^T, L^-T.
    let g = Operand::plain(Features::general());
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let candidates = vec![
        Shape::new(vec![g.transposed(), g]).unwrap(),
        Shape::new(vec![g, g.transposed()]).unwrap(),
        Shape::new(vec![l.transposed(), g]).unwrap(),
        Shape::new(vec![g, l.transposed()]).unwrap(),
        Shape::new(vec![l.transposed().inverted(), g]).unwrap(),
        Shape::new(vec![g, l.transposed().inverted()]).unwrap(),
        Shape::new(vec![g.transposed(), l.inverted(), g.transposed()]).unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(31);
    for shape in candidates {
        let inst = InstanceSampler::new(&shape, 3, 12).sample(&mut rng);
        let mats = matrices_for(&shape, &inst, &mut rng);
        let want = evaluate_reference(&shape, &mats).unwrap();
        for v in all_variants(&shape).unwrap() {
            let got = v.execute(&mats).unwrap();
            let err = relative_error(&got, &want);
            assert!(err < 1e-7, "shape {shape}: error {err}");
        }
    }
}

#[test]
fn inverted_chains_with_propagation_execute_correctly() {
    // Chains designed to exercise the inversion-propagation rewrites,
    // including a forced explicit inverse on the end result.
    let gi = Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
    let li = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let pi = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
    let g = Operand::plain(Features::general());

    let candidates = vec![
        Shape::new(vec![gi, gi]).unwrap(), // (G2 G1)^{-1}: GETRI finalizer
        Shape::new(vec![l, gi, g]).unwrap(), // the Sec. IV worked example
        Shape::new(vec![gi, li]).unwrap(), // mixed inverses
        Shape::new(vec![pi, gi]).unwrap(), // SPD then general inverse
        Shape::new(vec![g, gi, l]).unwrap(),
        Shape::new(vec![li, li]).unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(55);
    for shape in candidates {
        let inst = InstanceSampler::new(&shape, 4, 10).sample(&mut rng);
        let mats = matrices_for(&shape, &inst, &mut rng);
        let want = evaluate_reference(&shape, &mats).unwrap();
        for v in all_variants(&shape).unwrap() {
            let got = v.execute(&mats).unwrap();
            let err = relative_error(&got, &want);
            assert!(err < 1e-6, "shape {shape}: error {err}");
        }
    }
}

#[test]
fn single_matrix_chains() {
    let mut rng = StdRng::seed_from_u64(91);
    let cases = vec![
        Operand::plain(Features::general()),
        Operand::plain(Features::general()).transposed(),
        Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted(),
        Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted(),
        Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular))
            .inverted()
            .transposed(),
    ];
    for op in cases {
        let shape = Shape::new(vec![op]).unwrap();
        let inst = InstanceSampler::new(&shape, 5, 9).sample(&mut rng);
        let mats = matrices_for(&shape, &inst, &mut rng);
        let want = evaluate_reference(&shape, &mats).unwrap();
        let v = build_variant(&shape, &ParenTree::Leaf(0)).unwrap();
        let got = v.execute(&mats).unwrap();
        assert!(relative_error(&got, &want) < 1e-8, "op {op:?}");
    }
}
