//! Property-based tests of the Sec. V theory: the fanning-out family `E`
//! and the Theorem-2 base set `E_s` have bounded penalty on *every*
//! instance (Theorem 1: rho <= 15, i.e. best-in-set <= 16x optimal).

use gmc::prelude::*;
use gmc_core::expand::CostMatrix;
use gmc_core::theory::penalty;
use proptest::prelude::*;

fn arb_operand() -> impl Strategy<Value = Operand> {
    (0..10usize).prop_map(|i| Operand::experiment_options()[i])
}

fn arb_shape(n: usize) -> impl Strategy<Value = Shape> {
    proptest::collection::vec(arb_operand(), n)
        .prop_filter("at least one rectangular matrix", |ops| {
            ops.iter().any(|o| !o.forces_square())
        })
        .prop_map(|ops| Shape::new(ops).expect("experiment options are valid"))
}

fn arb_sizes(classes: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(2u64..=1000, classes)
}

fn instance_for(shape: &Shape, class_sizes: &[u64]) -> Instance {
    let classes = shape.size_classes();
    let members = classes.classes();
    let mut q = vec![0u64; shape.num_sizes()];
    for (class, &size) in members.iter().zip(class_sizes) {
        for &i in class {
            q[i] = size;
        }
    }
    Instance::new(q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: some fanning-out variant is within 16x of optimal on
    /// every instance.
    #[test]
    fn fanning_out_family_is_within_constant_factor(
        shape in arb_shape(5),
        sizes in arb_sizes(6),
    ) {
        let classes = shape.size_classes().num_classes();
        prop_assume!(sizes.len() >= classes);
        let q = instance_for(&shape, &sizes[..classes]);
        let pool = all_variants(&shape).unwrap();
        let opt = pool.iter().map(|v| v.flops(&q)).fold(f64::INFINITY, f64::min);
        let fanning = fanning_out_set(&shape).unwrap();
        let best = fanning
            .iter()
            .map(|(_, v)| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        let p = penalty(best, opt);
        prop_assert!(p <= 15.0, "penalty {p} on {shape} / {q}");
    }

    /// Theorem 2: the per-class base set retains the bound.
    #[test]
    fn base_set_is_within_constant_factor(
        shape in arb_shape(5),
        sizes in arb_sizes(6),
        train_seed in 0u64..1000,
    ) {
        let classes = shape.size_classes().num_classes();
        prop_assume!(sizes.len() >= classes);
        let q = instance_for(&shape, &sizes[..classes]);

        let mut rng = StdRng::seed_from_u64(train_seed);
        let sampler = InstanceSampler::new(&shape, 2, 1000);
        let training = sampler.sample_many(&mut rng, 50);
        let pool = all_variants(&shape).unwrap();
        let matrix = CostMatrix::flops(&pool, &training);
        let base = select_base_set(&shape, &training, matrix.optimal()).unwrap();

        let opt = pool.iter().map(|v| v.flops(&q)).fold(f64::INFINITY, f64::min);
        let best = base
            .variants
            .iter()
            .map(|v| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        let p = penalty(best, opt);
        prop_assert!(p <= 15.0, "penalty {p} on {shape} / {q}");
        // |E_s| <= number of classes <= n + 1.
        prop_assert!(base.variants.len() <= classes);
    }

    /// Expansion monotonicity: adding variants never increases the best
    /// in-set cost on any instance.
    #[test]
    fn expansion_is_pointwise_monotone(
        shape in arb_shape(4),
        sizes in arb_sizes(5),
        seed in 0u64..1000,
    ) {
        let classes = shape.size_classes().num_classes();
        prop_assume!(sizes.len() >= classes);
        let q = instance_for(&shape, &sizes[..classes]);

        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = InstanceSampler::new(&shape, 2, 1000);
        let training = sampler.sample_many(&mut rng, 40);
        let pool = all_variants(&shape).unwrap();
        let matrix = CostMatrix::flops(&pool, &training);
        let base = select_base_set(&shape, &training, matrix.optimal()).unwrap();
        let base_idx: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let expanded = expand_set(&matrix, &base_idx, base_idx.len() + 2, Objective::AvgPenalty);

        let best_of = |set: &[usize]| {
            set.iter().map(|&i| pool[i].flops(&q)).fold(f64::INFINITY, f64::min)
        };
        prop_assert!(best_of(&expanded) <= best_of(&base_idx) + 1e-9);
    }

    /// Variant costs are monotonically increasing in every size symbol —
    /// the premise of Lemma 1.
    #[test]
    fn variant_costs_are_monotone_in_sizes(
        shape in arb_shape(4),
        sizes in arb_sizes(5),
        bump_class in 0usize..5,
    ) {
        let classes = shape.size_classes().num_classes();
        prop_assume!(sizes.len() >= classes && bump_class < classes);
        let q1 = instance_for(&shape, &sizes[..classes]);
        let mut bumped = sizes[..classes].to_vec();
        bumped[bump_class] += 50;
        let q2 = instance_for(&shape, &bumped);
        for v in all_variants(&shape).unwrap() {
            prop_assert!(
                v.flops(&q2) >= v.flops(&q1),
                "cost decreased for {} when growing class {bump_class}",
                v.paren()
            );
        }
    }
}

#[test]
fn left_to_right_penalty_is_unbounded_in_practice() {
    // The paper's motivation: L alone can be arbitrarily bad. Exhibit a
    // ratio > 465 (the paper's observed floor for the worst case).
    let g = Operand::plain(Features::general());
    let shape = Shape::new(vec![g; 5]).unwrap();
    // Tall-thin alternation: left-to-right materializes s x s
    // intermediates while the optimum collapses to scalars.
    let q = Instance::new(vec![1000, 1, 1000, 1, 1000, 1]);
    let pool = all_variants(&shape).unwrap();
    let opt = pool
        .iter()
        .map(|v| v.flops(&q))
        .fold(f64::INFINITY, f64::min);
    let ltr = gmc_core::builder::left_to_right_variant(&shape)
        .unwrap()
        .flops(&q);
    assert!(ltr / opt > 465.0, "ratio {}", ltr / opt);
}
