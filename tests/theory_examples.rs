//! The paper's worked examples, reproduced as executable assertions
//! (experiment E4/E5 of DESIGN.md).

use gmc::prelude::*;
use gmc_kernels::cost_flops;
use gmc_linalg::Side;

/// Sec. I: for column vectors with m elements, `x^T (y z^T)` performs m
/// times more multiplications than `(x^T y) z^T`.
#[test]
fn intro_vector_chain_ratio() {
    let g = Operand::plain(Features::general());
    let shape = Shape::new(vec![g.transposed(), g, g.transposed()]).unwrap();
    let m = 1000u64;
    let q = Instance::new(vec![1, m, 1, m]);
    let pool = all_variants(&shape).unwrap();
    assert_eq!(pool.len(), 2);
    let mut costs: Vec<f64> = pool.iter().map(|v| v.flops(&q)).collect();
    costs.sort_by(f64::total_cmp);
    // 2*(m + m) vs 2*(m*m + m): ratio ~ (m + 1)/2... the paper's claim is
    // the multiplication count ratio m; in FLOPs (mults + adds) the ratio
    // tends to (m^2 + m)/(2m) = (m + 1)/2, same unbounded growth.
    let ratio = costs[1] / costs[0];
    assert!(ratio > m as f64 / 2.0, "ratio {ratio}");
}

/// Sec. V: the FLOP ratio of G1 (G2 G3) over (G1 G2) G3 is
/// q1 q3 (q0 + q2) / (q0 q2 (q1 + q3)), unbounded on q = (1, s, 1, s).
#[test]
fn sec_v_parenthesization_ratio_formula() {
    let g = Operand::plain(Features::general());
    let shape = Shape::new(vec![g, g, g]).unwrap();
    for q in [vec![1u64, 7, 1, 7], vec![3, 10, 2, 8], vec![100, 2, 50, 4]] {
        let inst = Instance::new(q.clone());
        let ltr = build_variant(&shape, &ParenTree::left_to_right(0, 2))
            .unwrap()
            .flops(&inst);
        let rtl = build_variant(&shape, &ParenTree::right_to_left(0, 2))
            .unwrap()
            .flops(&inst);
        let (q0, q1, q2, q3) = (q[0] as f64, q[1] as f64, q[2] as f64, q[3] as f64);
        let formula = (q1 * q3 * (q0 + q2)) / (q0 * q2 * (q1 + q3));
        assert!(
            ((rtl / ltr) - formula).abs() < 1e-9,
            "q = {q:?}: got {} want {formula}",
            rtl / ltr
        );
    }
}

/// Sec. IV worked example: the naive lowering of (L1 G2^{-1}) G3 costs
/// 8/3 m^3 + 2 m^2 n; the rewritten one costs 5/3 m^3 + 2 m^2 n and is
/// always cheaper. Our builder must produce the rewritten form.
#[test]
fn sec_iv_inverse_propagation_worked_example() {
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let gi = Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
    let g = Operand::plain(Features::general());
    let shape = Shape::new(vec![l, gi, g]).unwrap();
    let v = build_variant(&shape, &ParenTree::left_to_right(0, 2)).unwrap();
    assert_eq!(v.kernels_used(), vec![Kernel::Trsm, Kernel::Gegesv]);
    for (m, n) in [(10u64, 7u64), (100, 3), (31, 200)] {
        let inst = Instance::new(vec![m, m, m, n]);
        let (mf, nf) = (m as f64, n as f64);
        let rewritten = 5.0 / 3.0 * mf.powi(3) + 2.0 * mf * mf * nf;
        let naive = 8.0 / 3.0 * mf.powi(3) + 2.0 * mf * mf * nf;
        let got = v.flops(&inst);
        assert!((got - rewritten).abs() < 1e-6, "m={m} n={n}: {got}");
        assert!(got < naive);
    }
}

/// Sec. V: for standard matrix chains the Lemma-2 constant is
/// alpha-hat = 1, giving T(E_m) < 2 T_opt.
#[test]
fn standard_chain_fanning_out_within_factor_two() {
    let g = Operand::plain(Features::general());
    let shape = Shape::new(vec![g; 6]).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let sampler = InstanceSampler::new(&shape, 2, 1000);
    let pool = all_variants(&shape).unwrap();
    for _ in 0..200 {
        let q = sampler.sample(&mut rng);
        let opt = pool
            .iter()
            .map(|v| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        // E_m for m = argmin q.
        let m = q.argmin();
        let em = build_variant(&shape, &ParenTree::fanning_out(6, m)).unwrap();
        assert!(
            em.flops(&q) < 2.0 * opt + 1e-9,
            "E_m exceeded 2x optimal on {q}"
        );
    }
}

/// Sec. V: with one triangular matrix in an otherwise-general chain the
/// bound loosens to 4x (alpha-hat = 2); verify the observed factor stays
/// under it.
#[test]
fn triangular_chain_fanning_out_within_factor_four() {
    let g = Operand::plain(Features::general());
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::Singular));
    let shape = Shape::new(vec![g, g, l, g, g]).unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    let sampler = InstanceSampler::new(&shape, 2, 1000);
    let pool = all_variants(&shape).unwrap();
    for _ in 0..200 {
        let q = sampler.sample(&mut rng);
        let opt = pool
            .iter()
            .map(|v| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        let m = q.argmin();
        let em = build_variant(&shape, &ParenTree::fanning_out(5, m)).unwrap();
        assert!(
            em.flops(&q) < 4.0 * opt + 1e-9,
            "E_m exceeded 4x optimal on {q}"
        );
    }
}

/// Lemma 1 Type-I sanity: GEMM terms with the minimal size are cheaper
/// than any other GEMM term sharing an adjacent size pair.
#[test]
fn lemma_one_type_one_inequality() {
    // t_e = 2 q_{j-1} q_j q_m <= alpha t_o = (beta1/beta2) beta2 q_{j-1} q_j q_z
    // whenever q_m <= q_z; with the same kernel alpha = 1.
    for (qj1, qj, qm, qz) in [(3u64, 4, 2, 9), (10, 20, 5, 5), (7, 7, 1, 1000)] {
        assert!(qm <= qz);
        let te = cost_flops(Kernel::Gemm, Side::Left, false, qj1, qj, qm);
        let to = cost_flops(Kernel::Gemm, Side::Left, false, qj1, qj, qz);
        assert!(te <= to);
    }
}
