//! End-to-end pipeline tests: grammar -> shape -> compile -> dispatch ->
//! numeric execution, validated against the naive reference evaluator.

use gmc::prelude::*;
use gmc_core::reference::evaluate_reference;
use gmc_linalg::relative_error;

use gmc_bench::workload::instantiate as matrices_for;

#[test]
fn grammar_to_execution_kalman() {
    let program = parse_program(
        "Matrix G1 <General, Singular>;
         Matrix G2 <General, Singular>;
         Matrix G3 <General, Singular>;
         Matrix M  <Symmetric, SPD>;
         K := G1 * G2 * G3^T * M^-1;",
    )
    .unwrap();
    let shape = program.shape().clone();
    let chain = CompiledChain::compile(shape.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(100);
    let q = Instance::new(vec![30, 12, 9, 17, 17]);
    let mats = matrices_for(&shape, &q, &mut rng);
    let got = chain.evaluate(&mats).unwrap();
    let want = evaluate_reference(&shape, &mats).unwrap();
    assert!(relative_error(&got, &want) < 1e-8);
}

#[test]
fn dispatch_cost_matches_executed_variant() {
    let program = parse_program(
        "Matrix A <General, Singular>;
         Matrix B <General, Singular>;
         Matrix C <General, Singular>;
         X := A * B * C;",
    )
    .unwrap();
    let shape = program.shape().clone();
    let pool = all_variants(&shape).unwrap();
    let chain = CompiledChain::from_variants(shape, pool.clone());
    let q = Instance::new(vec![3, 90, 4, 80]);
    let (idx, cost) = chain.dispatch(&q);
    // The dispatched cost is the pool minimum.
    let min = pool
        .iter()
        .map(|v| v.flops(&q))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(cost, min);
    assert_eq!(pool[idx].flops(&q), min);
}

#[test]
fn random_shapes_compile_and_run_correctly() {
    let mut rng = StdRng::seed_from_u64(2025);
    let sampler = gmc_bench::workload::ShapeSampler::uniform();
    for n in 2..=6usize {
        for _ in 0..4 {
            let shape = sampler.sample(&mut rng, n);
            let chain = CompiledChain::compile(shape.clone()).unwrap();
            let inst = InstanceSampler::new(&shape, 4, 24).sample(&mut rng);
            let mats = matrices_for(&shape, &inst, &mut rng);
            let got = chain.evaluate(&mats).unwrap();
            let want = evaluate_reference(&shape, &mats).unwrap();
            let err = relative_error(&got, &want);
            assert!(err < 1e-6, "shape {shape}: error {err}");
        }
    }
}

#[test]
fn perf_model_dispatch_end_to_end() {
    let models = measure_models(&MeasureOptions {
        grid: vec![8, 24],
        reps: 1,
        seed: 5,
    });
    let program = parse_program(
        "Matrix A <General, Singular>;
         Matrix L <LowerTri, NonSingular>;
         Matrix B <General, Singular>;
         X := A * L^-1 * B;",
    )
    .unwrap();
    let shape = program.shape().clone();
    let chain = CompiledChain::compile(shape.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let q = Instance::new(vec![20, 10, 10, 16]);
    let mats = matrices_for(&shape, &q, &mut rng);
    let got = chain.evaluate_with(&mats, &models).unwrap();
    let want = evaluate_reference(&shape, &mats).unwrap();
    assert!(relative_error(&got, &want) < 1e-8);
}

#[test]
fn lying_about_features_fails_gracefully() {
    // The user declares M as SPD but passes an indefinite matrix: the
    // Cholesky-based kernels must report an error, not a wrong answer.
    let program = parse_program(
        "Matrix M <Symmetric, SPD>;
         Matrix B <General, Singular>;
         X := M^-1 * B;",
    )
    .unwrap();
    let chain = CompiledChain::compile(program.shape().clone()).unwrap();
    let mut not_spd = Matrix::identity(4);
    not_spd.set(0, 0, -1.0); // indefinite
    let b = Matrix::identity(4);
    let err = chain.evaluate(&[not_spd, b]).unwrap_err();
    assert!(
        err.to_string().contains("positive definite"),
        "unexpected error: {err}"
    );
}

#[test]
fn singular_runtime_matrix_fails_gracefully() {
    let program = parse_program(
        "Matrix A <General, NonSingular>;
         Matrix B <General, Singular>;
         X := A^-1 * B;",
    )
    .unwrap();
    let chain = CompiledChain::compile(program.shape().clone()).unwrap();
    let singular = Matrix::zeros(3, 3);
    let b = Matrix::identity(3);
    assert!(chain.evaluate(&[singular, b]).is_err());
}

#[test]
fn every_selected_variant_executes_correctly() {
    // Not just the dispatched one: all variants in the compiled set must be
    // numerically interchangeable.
    let program = parse_program(
        "Matrix G1 <General, Singular>;
         Matrix L  <LowerTri, NonSingular>;
         Matrix G2 <General, Singular>;
         Matrix P  <Symmetric, SPD>;
         X := G1 * L^-1 * G2 * P^-1;",
    )
    .unwrap();
    let shape = program.shape().clone();
    let chain = CompiledChain::compile(shape.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let q = Instance::new(vec![14, 10, 10, 12, 12]);
    let mats = matrices_for(&shape, &q, &mut rng);
    let want = evaluate_reference(&shape, &mats).unwrap();
    for v in chain.variants() {
        let got = v.execute(&mats).unwrap();
        assert!(
            relative_error(&got, &want) < 1e-7,
            "variant {} diverges",
            v.paren()
        );
    }
}
