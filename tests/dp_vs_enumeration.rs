//! Property test: the DP solver's optimal cost equals the minimum over the
//! explicitly enumerated variant set, on arbitrary experiment shapes and
//! instances.

use gmc::prelude::*;
use proptest::prelude::*;

fn arb_operand() -> impl Strategy<Value = Operand> {
    (0..10usize).prop_map(|i| Operand::experiment_options()[i])
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (2usize..=6)
        .prop_flat_map(|n| proptest::collection::vec(arb_operand(), n))
        .prop_map(|ops| Shape::new(ops).expect("experiment options are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_equals_enumeration_minimum(shape in arb_shape(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = InstanceSampler::new(&shape, 2, 1000).sample(&mut rng);
        let enum_min = all_variants(&shape)
            .unwrap()
            .iter()
            .map(|v| v.flops(&q))
            .fold(f64::INFINITY, f64::min);
        let dp = optimal_cost(&shape, &q).unwrap();
        let rel = (dp - enum_min).abs() / enum_min.max(1.0);
        prop_assert!(rel < 1e-9, "dp {dp} vs enum {enum_min} on {shape} / {q}");
    }

    #[test]
    fn dp_is_a_lower_bound_for_every_variant(shape in arb_shape(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = InstanceSampler::new(&shape, 2, 500).sample(&mut rng);
        let dp = optimal_cost(&shape, &q).unwrap();
        for v in all_variants(&shape).unwrap() {
            prop_assert!(v.flops(&q) >= dp - 1e-6);
        }
    }
}
