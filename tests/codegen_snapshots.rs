//! Structure checks on the emitted C++ and Rust sources: the Fig. 1 layout
//! (variants + cost functions + dispatch) must be present and internally
//! consistent.

use gmc::prelude::*;

fn compiled_kalman() -> CompiledChain {
    let program = parse_program(
        "Matrix G1 <General, Singular>;
         Matrix G2 <General, Singular>;
         Matrix G3 <General, Singular>;
         Matrix M  <Symmetric, SPD>;
         K := G1 * G2 * G3^T * M^-1;",
    )
    .unwrap();
    CompiledChain::compile(program.shape().clone()).unwrap()
}

#[test]
fn cpp_has_fig1_layout() {
    let chain = compiled_kalman();
    let cpp = emit_cpp(&chain, "kalman_gain");
    let k = chain.variants().len();
    for i in 0..k {
        assert!(
            cpp.contains(&format!("kalman_gain_cost_{i}")),
            "cost fn {i}"
        );
        assert!(
            cpp.contains(&format!("kalman_gain_variant_{i}")),
            "variant fn {i}"
        );
    }
    assert!(cpp.contains("void kalman_gain("));
    assert!(cpp.matches("case ").count() >= k);
    // Balanced braces.
    assert_eq!(cpp.matches('{').count(), cpp.matches('}').count());
}

#[test]
fn cpp_uses_spd_solver_for_inverted_spd() {
    let chain = compiled_kalman();
    let cpp = emit_cpp(&chain, "f");
    // M^{-1} with a general right-hand side must become POGESV somewhere
    // in the emitted variants.
    assert!(cpp.contains("gmc_pogesv("), "{cpp}");
    // Nothing should be explicitly inverted in this chain.
    assert!(!cpp.contains("gmc_getri("));
}

#[test]
fn rust_module_is_well_formed() {
    let chain = compiled_kalman();
    let code = emit_rust(&chain, "kalman_gain");
    assert!(code.contains("pub fn kalman_gain("));
    assert!(code.contains("Kernel::"));
    assert_eq!(code.matches('{').count(), code.matches('}').count());
    // The dispatcher reads q[4] entries for a 4-chain: n + 1 sizes.
    assert!(code.contains("let q: [f64; 5]"));
}

#[test]
fn cost_functions_reference_only_valid_symbols() {
    let chain = compiled_kalman();
    let cpp = emit_cpp(&chain, "f");
    let n = chain.shape().len();
    // Size-symbol accesses in cost expressions must be in 0..=n (the
    // declaration `long q[n+1];` itself is not an access).
    for idx in 0..=9usize {
        if cpp.contains(&format!("(double)q[{idx}]")) {
            assert!(idx <= n, "symbol q[{idx}] out of range");
        }
    }
    assert!(cpp.contains(&format!("long q[{}];", n + 1)));
}

#[test]
fn single_matrix_chain_emits() {
    // n = 1 chains have no association steps, only (possibly) finalizers.
    let p = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
    let shape = Shape::new(vec![p]).unwrap();
    let pool = all_variants(&shape).unwrap();
    assert_eq!(pool.len(), 1);
    let chain = CompiledChain::from_variants(shape, pool);
    let cpp = emit_cpp(&chain, "spd_inverse");
    assert!(cpp.contains("gmc_potri(A0)"), "{cpp}");
    assert_eq!(cpp.matches('{').count(), cpp.matches('}').count());
    let rs = emit_rust(&chain, "spd_inverse");
    assert!(rs.contains("FinalizeKernel::Potri"), "{rs}");
    assert_eq!(rs.matches('{').count(), rs.matches('}').count());
}

#[test]
fn runtime_header_pairs_with_generated_code() {
    use gmc::codegen::emit_runtime_header;
    let chain = compiled_kalman();
    let cpp = emit_cpp(&chain, "f");
    let header = emit_runtime_header();
    // Every gmc_/cblas_ function the generated code calls is declared in
    // the header.
    for line in cpp.lines() {
        for prefix in ["gmc_", "cblas_"] {
            if let Some(pos) = line.find(prefix) {
                let rest = &line[pos..];
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                assert!(header.contains(&name), "header missing {name}");
            }
        }
    }
}

#[test]
fn emitters_cover_finalizers() {
    // G1^{-1} G2^{-1} forces an explicit inverse of the end result.
    let gi = Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
    let shape = Shape::new(vec![gi, gi]).unwrap();
    let pool = all_variants(&shape).unwrap();
    let chain = CompiledChain::from_variants(shape, pool);
    let cpp = emit_cpp(&chain, "invprod");
    assert!(cpp.contains("gmc_getri("), "{cpp}");
    let rs = emit_rust(&chain, "invprod");
    assert!(rs.contains("FinalizeKernel::Getri"), "{rs}");
}
