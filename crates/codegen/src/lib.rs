//! Source-code emission for compiled chains.
//!
//! The paper's code generator (Fig. 1) outputs a set of C++ functions — one
//! per selected variant, each paired with a cost function — plus a dispatch
//! function that evaluates every cost on the concrete sizes and forwards to
//! the cheapest variant. [`cpp::emit_cpp`] reproduces exactly that layout;
//! [`rust::emit_rust`] emits an equivalent Rust module targeting the `gmc`
//! crates.
//!
//! The emitted C++ targets a thin runtime (`gmc_runtime.hpp`, whose
//! interface is declared at the top of the generated file): `GEMM`-class
//! kernels map to CBLAS calls, solve-class kernels to the custom kernels of
//! Table I (prefixed `gmc_`), matching the paper's white/gray split in
//! Fig. 3.

#![warn(missing_docs)]
pub mod cpp;
pub mod runtime;
pub mod rust;
mod util;

pub use cpp::{emit_cpp, emit_cpp_into};
pub use runtime::emit_runtime_header;
pub use rust::{emit_rust, emit_rust_into};
