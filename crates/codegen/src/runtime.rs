//! Emission of the C++ runtime header (`gmc_runtime.hpp`) that generated
//! translation units include.
//!
//! The header declares a minimal column-major `Matrix` class, the CBLAS
//! entry points used for the standard kernels (white cells of Fig. 3), and
//! prototypes for the paper's custom kernels (gray cells) plus the
//! finalizers. Together with [`crate::cpp::emit_cpp`] this makes the
//! generated code a complete, self-describing C++ interface; the kernel
//! *implementations* live behind these prototypes (in the paper: BLAS,
//! LAPACK, and the authors' custom kernels — in this reproduction,
//! `gmc-kernels`).

use gmc_kernels::Kernel;
use std::fmt::Write;

/// Emit the contents of `gmc_runtime.hpp`.
#[must_use]
pub fn emit_runtime_header() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// gmc_runtime.hpp — runtime interface for symgmc-generated code."
    );
    let _ = writeln!(out, "#pragma once");
    let _ = writeln!(out, "#include <cstddef>");
    let _ = writeln!(out);
    let _ = writeln!(out, "// Minimal column-major dense matrix.");
    let _ = writeln!(out, "class Matrix {{");
    let _ = writeln!(out, "public:");
    let _ = writeln!(out, "    Matrix();");
    let _ = writeln!(out, "    Matrix(long rows, long cols);");
    let _ = writeln!(out, "    long rows() const;");
    let _ = writeln!(out, "    long cols() const;");
    let _ = writeln!(out, "    double* data();");
    let _ = writeln!(out, "    const double* data() const;");
    let _ = writeln!(out, "private:");
    let _ = writeln!(out, "    long rows_, cols_;");
    let _ = writeln!(out, "    double* data_;");
    let _ = writeln!(out, "}};");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "// Standard BLAS kernels (simplified wrappers; Fig. 3, white cells)."
    );
    for (name, doc) in [
        ("cblas_dgemm(char ta, char tb, double alpha, const Matrix& a, const Matrix& b)",
         "general * general"),
        ("cblas_dsymm(char side, char tb, double alpha, const Matrix& sym, const Matrix& gen)",
         "symmetric * general"),
        ("cblas_dtrmm(char side, char uplo, char ta, double alpha, const Matrix& tri, const Matrix& gen)",
         "triangular * general"),
        ("cblas_dtrsm(char side, char uplo, char ta, double alpha, const Matrix& tri, const Matrix& rhs)",
         "triangular solve"),
    ] {
        let _ = writeln!(out, "Matrix {name}; // {doc}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "// Custom kernels of Table I (Fig. 3, gray cells).");
    for kernel in Kernel::ALL {
        if kernel.is_standard_blas() {
            continue;
        }
        let lname = kernel.name().to_lowercase();
        let sig = match kernel.class() {
            gmc_kernels::KernelClass::Multiply => {
                format!("Matrix gmc_{lname}(char ta, char tb, const Matrix& a, const Matrix& b);")
            }
            gmc_kernels::KernelClass::Solve => format!(
                "Matrix gmc_{lname}(char side, char ta, const Matrix& coeff, const Matrix& rhs);"
            ),
        };
        let _ = writeln!(out, "{sig}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "// Finalizers: forced explicit inverses and transposition (Sec. IV)."
    );
    for fin in ["getri", "sytri", "potri", "trtri", "transpose"] {
        let _ = writeln!(out, "Matrix gmc_{fin}(const Matrix& a);");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_declares_all_custom_kernels() {
        let h = emit_runtime_header();
        for kernel in Kernel::ALL {
            if kernel.is_standard_blas() {
                assert!(
                    !h.contains(&format!("gmc_{}(", kernel.name().to_lowercase())),
                    "standard kernel {kernel} must use the cblas_ prefix"
                );
            } else {
                assert!(
                    h.contains(&format!("gmc_{}(", kernel.name().to_lowercase())),
                    "missing custom kernel {kernel}"
                );
            }
        }
    }

    #[test]
    fn header_declares_blas_and_finalizers() {
        let h = emit_runtime_header();
        for f in ["cblas_dgemm", "cblas_dtrsm", "gmc_getri", "gmc_transpose"] {
            assert!(h.contains(f), "missing {f}");
        }
        assert!(h.contains("class Matrix"));
        assert!(h.contains("#pragma once"));
    }

    #[test]
    fn header_is_balanced() {
        let h = emit_runtime_header();
        assert_eq!(h.matches('{').count(), h.matches('}').count());
        assert_eq!(h.matches('(').count(), h.matches(')').count());
    }
}
