use gmc_core::{ValRef, Variant};
use gmc_ir::Poly;

/// Name of the value behind a [`ValRef`] in generated code: `A0, A1, ...`
/// for inputs, `t0, t1, ...` for temporaries.
pub(crate) fn val_name(r: ValRef) -> String {
    match r {
        ValRef::Leaf(i) => format!("A{i}"),
        ValRef::Temp(i) => format!("t{i}"),
    }
}

/// Render a cost polynomial as a C-like arithmetic expression over the size
/// array `q` (used identically by the C++ and Rust emitters, with `idx`
/// formatting the variable access).
pub(crate) fn poly_expr<F: Fn(usize) -> String>(poly: &Poly, idx: F) -> String {
    if poly.is_zero() {
        return "0.0".to_string();
    }
    let mut terms = Vec::new();
    for (mono, coeff) in poly.iter() {
        let mut factors = Vec::new();
        let c = coeff.to_f64();
        // Render exact small rationals as divisions for readability.
        if (c - c.round()).abs() < 1e-12 {
            factors.push(format!("{:.1}", c.round()));
        } else {
            factors.push(format!("({}.0 / {}.0)", coeff.numer(), coeff.denom()));
        }
        for &(v, e) in mono.factors() {
            for _ in 0..e {
                factors.push(idx(v));
            }
        }
        terms.push(factors.join(" * "));
    }
    terms.join(" + ")
}

/// The last value computed by a variant's association steps (the chain
/// result before finalizers), or input 0 for single-matrix chains.
pub(crate) fn result_ref(variant: &Variant) -> ValRef {
    if variant.steps().is_empty() {
        ValRef::Leaf(0)
    } else {
        ValRef::Temp(variant.steps().len() - 1)
    }
}
