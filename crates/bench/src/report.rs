//! Plain-text report tables for the experiment binaries.

use crate::ecdf::EcdfSummary;

/// Print the header of a ratio-over-optimum table.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "set", "samples", "<=1.05", "<=1.10", "<=1.20", "<=1.50", "max", "mean"
    );
}

/// Print one summary row.
pub fn print_row(label: &str, s: &EcdfSummary) {
    println!(
        "{:<10} {:>9} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>10.2} {:>9.3}",
        label,
        s.n,
        100.0 * s.at_1_05,
        100.0 * s.at_1_1,
        100.0 * s.at_1_2,
        100.0 * s.at_1_5,
        s.max,
        s.mean
    );
}

/// Minimal command-line flag parsing: `--key value` pairs.
#[must_use]
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse an integer flag with a default.
#[must_use]
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    arg_value(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a `u64` flag with a default.
#[must_use]
pub fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `true` if the boolean flag is present.
#[must_use]
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--shapes", "12", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "--shapes", 5), 12);
        assert_eq!(arg_usize(&args, "--train", 7), 7);
        assert!(arg_flag(&args, "--full"));
        assert!(!arg_flag(&args, "--quick"));
        assert_eq!(arg_u64(&args, "--seed", 3), 3);
    }
}
