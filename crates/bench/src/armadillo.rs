//! An Armadillo-style baseline (the reference point of Sec. VII-B).
//!
//! Armadillo evaluates chains left-to-right with expression templates.
//! Following the paper's setup, the generated Armadillo code exploits as
//! much knowledge of the inputs as possible: `trimatl`/`trimatu` and
//! `symmatl` hints (mapping multiplies to `TRMM`/`SYMM`-class kernels) and
//! `inv_sympd` for inverted SPD operands. What Armadillo does *not* do is
//! propagate inversions (every `inv(...)` is materialized explicitly) or
//! infer features of intermediate results (they are plain dense matrices),
//! and it evaluates strictly left-to-right.

use gmc_ir::{Instance, Property, Shape, Structure};
use gmc_kernels::ExecError;
use gmc_linalg::{
    inverse_general, inverse_spd, inverse_triangular, matmul, symm, trmm, Matrix, Side, Transpose,
    Triangle,
};

/// FLOPs of the explicit inverse of one operand (by its declared features).
fn inverse_flops(structure: Structure, property: Property, m: f64) -> f64 {
    match (structure, property) {
        // inv_sympd: Cholesky-based, m^3.
        (Structure::Symmetric, Property::Spd) => m * m * m,
        // inv(trimatl(...)): triangular inversion, m^3 / 3.
        (Structure::LowerTri | Structure::UpperTri, _) => m * m * m / 3.0,
        // inv(...): LU-based, 2 m^3 (also used for symmetric indefinite).
        _ => 2.0 * m * m * m,
    }
}

/// FLOPs of one left-to-right multiply `(m x k) * (k x n)`, honouring the
/// structure hint of the *leaf* factor (intermediates are dense).
fn multiply_flops(m: f64, k: f64, n: f64, leaf_structure: Structure, leaf_inverted: bool) -> f64 {
    // An inverted leaf has been materialized into a dense matrix, so its
    // structural hint is lost to the multiply — except triangular inverses,
    // which stay triangular; Armadillo however stores `inv(...)` results as
    // dense `mat`, so the hint is lost there too.
    if !leaf_inverted && leaf_structure.is_triangular() {
        m * k * n // TRMM-class
    } else {
        2.0 * m * k * n // GEMM / SYMM class
    }
}

/// Total FLOPs of the Armadillo-style evaluation on an instance.
///
/// # Panics
///
/// Panics if `instance` does not match the shape.
#[must_use]
pub fn armadillo_flops(shape: &Shape, instance: &Instance) -> f64 {
    assert_eq!(instance.len(), shape.num_sizes());
    let q = instance.sizes();
    let mut total = 0.0;
    // Explicit inverses first.
    for (i, op) in shape.operands().iter().enumerate() {
        if op.inverted {
            total += inverse_flops(op.features.structure, op.features.property, q[i] as f64);
        }
    }
    // Left-to-right multiplies: ((M1 M2) M3) ...
    for i in 1..shape.len() {
        let m = q[0] as f64;
        let k = q[i] as f64;
        let n = q[i + 1] as f64;
        let op = shape.operand(i);
        total += multiply_flops(m, k, n, op.features.structure, op.inverted);
    }
    total
}

/// Execute the Armadillo-style evaluation numerically.
///
/// # Errors
///
/// Returns [`ExecError`] if an explicit inverse fails (singular operand).
pub fn armadillo_execute(shape: &Shape, leaves: &[Matrix]) -> Result<Matrix, ExecError> {
    assert_eq!(leaves.len(), shape.len(), "wrong number of matrices");
    // Materialize op(M_i).
    let mut mats: Vec<Matrix> = Vec::with_capacity(leaves.len());
    for (op, m) in shape.operands().iter().zip(leaves) {
        let mut v = m.clone();
        if op.inverted {
            v = match (op.features.structure, op.features.property) {
                (Structure::Symmetric, Property::Spd) => {
                    inverse_spd(&v).map_err(ExecError::Linalg)?
                }
                (Structure::LowerTri, _) => inverse_triangular(&v, Triangle::Lower),
                (Structure::UpperTri, _) => inverse_triangular(&v, Triangle::Upper),
                _ => inverse_general(&v).map_err(ExecError::Linalg)?,
            };
        }
        if op.transposed {
            v = v.transposed();
        }
        mats.push(v);
    }
    // Fold left-to-right with the hinted kernel.
    let mut acc = mats[0].clone();
    for (i, right) in mats.iter().enumerate().skip(1) {
        let op = shape.operand(i);
        acc = if !op.inverted && op.features.structure.is_triangular() {
            let tri = if op.features.structure == Structure::LowerTri {
                Triangle::Lower
            } else {
                Triangle::Upper
            };
            let mut b = acc.clone();
            trmm(Side::Right, tri, Transpose::No, 1.0, right, &mut b);
            b
        } else if !op.inverted && op.features.structure == Structure::Symmetric {
            let mut c = Matrix::zeros(acc.rows(), right.cols());
            symm(Side::Right, 1.0, right, &acc, Transpose::No, 0.0, &mut c);
            c
        } else {
            matmul(&acc, Transpose::No, right, Transpose::No)
        };
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_core::reference::evaluate_reference;
    use gmc_ir::{Features, Operand};
    use gmc_linalg::{random_general, random_lower_triangular, random_spd, relative_error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    #[test]
    fn flops_left_to_right_plain() {
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let inst = Instance::new(vec![2, 3, 4, 5]);
        // 2*2*3*4 + 2*2*4*5 = 48 + 80.
        assert_eq!(armadillo_flops(&shape, &inst), 128.0);
    }

    #[test]
    fn explicit_inverse_is_paid() {
        let gi =
            Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
        let shape = Shape::new(vec![g(), gi]).unwrap();
        let inst = Instance::new(vec![4, 6, 6]);
        // inverse 2*216 + gemm 2*4*6*6.
        assert_eq!(armadillo_flops(&shape, &inst), 432.0 + 288.0);
    }

    #[test]
    fn triangular_hint_halves_multiply() {
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::Singular));
        let shape = Shape::new(vec![g(), l]).unwrap();
        let inst = Instance::new(vec![4, 6, 6]);
        assert_eq!(armadillo_flops(&shape, &inst), 4.0 * 36.0);
    }

    #[test]
    fn execution_matches_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        let li =
            Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
        let p = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let shape = Shape::new(vec![g(), li, p]).unwrap();
        let a = random_general(&mut rng, 5, 7);
        let l = random_lower_triangular(&mut rng, 7, true);
        let pm = random_spd(&mut rng, 7);
        let got = armadillo_execute(&shape, &[a.clone(), l.clone(), pm.clone()]).unwrap();
        let want = evaluate_reference(&shape, &[a, l, pm]).unwrap();
        assert!(relative_error(&got, &want) < 1e-8);
    }

    #[test]
    fn armadillo_never_beats_left_to_right_variant_by_much() {
        // Armadillo pays explicit inverses where our left-to-right variant
        // solves linear systems, so on inverted chains it should cost at
        // least as much.
        let gi =
            Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
        let shape = Shape::new(vec![g(), gi, g()]).unwrap();
        let inst = Instance::new(vec![8, 12, 12, 4]);
        let arma = armadillo_flops(&shape, &inst);
        let ours = gmc_core::builder::left_to_right_variant(&shape)
            .unwrap()
            .flops(&inst);
        assert!(arma >= ours, "armadillo {arma} vs L {ours}");
    }
}
