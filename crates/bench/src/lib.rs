//! Experiment harness for the symgmc reproduction.
//!
//! * [`workload`] — random shape and instance generators matching
//!   Sec. VII's setup (ten feature options per matrix, at least one
//!   rectangular matrix per chain).
//! * [`ecdf`] — empirical CDF summaries of cost/time ratios over optimum.
//! * [`armadillo`] — the Armadillo-style baseline evaluator (left-to-right,
//!   explicit inverses, `trimatl`/`symmatl` multiply hints, no inverse
//!   propagation).
//! * [`report`] — plain-text tables for the experiment binaries.

#![warn(missing_docs)]
pub mod armadillo;
pub mod ecdf;
pub mod report;
pub mod workload;

pub use armadillo::{armadillo_execute, armadillo_flops};
pub use ecdf::Ecdf;
pub use workload::{enumerate_shapes, random_shape, sample_shapes, ShapeSampler};
