//! Shape workload generators for the experiments (Sec. VII).
//!
//! The paper restricts each matrix to ten feature/operator options (no
//! transpositions): general singular or inverted-general; SPD possibly
//! inverted; lower/upper triangular possibly nonsingular and possibly
//! inverted. Every chain must contain at least one rectangular matrix.

use gmc_ir::{Instance, Operand, Property, Shape, Structure};
use gmc_linalg::{
    random_general, random_lower_triangular, random_nonsingular, random_spd, random_symmetric,
    random_upper_triangular, Matrix,
};
use rand::Rng;

/// Sampler of random experiment shapes.
#[derive(Debug, Clone)]
pub struct ShapeSampler {
    options: Vec<Operand>,
    /// Probability that a matrix is the rectangular (plain general) option;
    /// the other nine options share the remaining mass equally. The
    /// FLOPs experiment uses the uniform `1/10`; the time experiment uses
    /// `1/2` (Sec. VII-B).
    rectangular_prob: f64,
}

impl ShapeSampler {
    /// Uniform sampling over the ten options (Sec. VII-A).
    #[must_use]
    pub fn uniform() -> Self {
        ShapeSampler {
            options: Operand::experiment_options(),
            rectangular_prob: 0.1,
        }
    }

    /// 50% rectangular probability, nine square options equiprobable
    /// (Sec. VII-B).
    #[must_use]
    pub fn half_rectangular() -> Self {
        ShapeSampler {
            options: Operand::experiment_options(),
            rectangular_prob: 0.5,
        }
    }

    /// Sample one shape of length `n` containing at least one rectangular
    /// matrix (resampling until the constraint holds).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Shape {
        loop {
            let ops: Vec<Operand> = (0..n)
                .map(|_| {
                    if rng.gen_bool(self.rectangular_prob) {
                        self.options[0] // plain general: the rectangular option
                    } else {
                        let i = rng.gen_range(1..self.options.len());
                        self.options[i]
                    }
                })
                .collect();
            if !ops.iter().any(|o| !o.forces_square()) {
                continue;
            }
            if let Ok(shape) = Shape::new(ops) {
                return shape;
            }
        }
    }
}

/// Sample `count` distinct-ish random shapes (duplicates allowed, as in the
/// paper's random sampling).
pub fn sample_shapes<R: Rng + ?Sized>(
    sampler: &ShapeSampler,
    rng: &mut R,
    n: usize,
    count: usize,
) -> Vec<Shape> {
    (0..count).map(|_| sampler.sample(rng, n)).collect()
}

/// Convenience: one random shape with the uniform option distribution.
pub fn random_shape<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Shape {
    ShapeSampler::uniform().sample(rng, n)
}

/// Enumerate *all* experiment shapes of length `n` with at least one
/// rectangular matrix — the `10^n - 9^n` shapes of Sec. VII-A. Use only for
/// small `n` (the count is ~41k at `n = 5`).
pub fn enumerate_shapes(n: usize) -> impl Iterator<Item = Shape> {
    let options = Operand::experiment_options();
    let total = 10usize.pow(n as u32);
    (0..total).filter_map(move |mut code| {
        let mut ops = Vec::with_capacity(n);
        let mut has_rect = false;
        for _ in 0..n {
            let opt = options[code % 10];
            has_rect |= !opt.forces_square();
            ops.push(opt);
            code /= 10;
        }
        if has_rect {
            Shape::new(ops).ok()
        } else {
            None
        }
    })
}

/// Generate concrete matrices realizing `shape` on `instance`: SPD, (well
/// conditioned) symmetric, triangular with dominant diagonals where
/// invertibility is declared, dense otherwise. Shared by the time
/// experiment and the integration tests.
///
/// # Panics
///
/// Panics if `instance` does not match the shape.
pub fn instantiate<R: Rng + ?Sized>(
    shape: &Shape,
    instance: &Instance,
    rng: &mut R,
) -> Vec<Matrix> {
    assert_eq!(instance.len(), shape.num_sizes(), "instance/shape mismatch");
    let q = instance.sizes();
    shape
        .operands()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let (rows, cols) = if op.transposed {
                (q[i + 1] as usize, q[i] as usize)
            } else {
                (q[i] as usize, q[i + 1] as usize)
            };
            match (op.features.structure, op.features.property) {
                (Structure::Symmetric, Property::Spd) => random_spd(rng, rows),
                (Structure::Symmetric, _) => {
                    let mut m = random_symmetric(rng, rows);
                    for d in 0..rows {
                        let v = m.get(d, d) + rows as f64;
                        m.set(d, d, v);
                    }
                    m
                }
                (Structure::LowerTri, p) => random_lower_triangular(rng, rows, p.is_invertible()),
                (Structure::UpperTri, p) => random_upper_triangular(rng, rows, p.is_invertible()),
                (Structure::General, p) if p.is_invertible() => random_nonsingular(rng, rows),
                _ => random_general(rng, rows, cols),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instantiate_produces_consistent_matrices() {
        let mut rng = StdRng::seed_from_u64(12);
        let sampler = ShapeSampler::uniform();
        for _ in 0..20 {
            let shape = sampler.sample(&mut rng, 5);
            let inst = gmc_ir::InstanceSampler::new(&shape, 3, 12).sample(&mut rng);
            let mats = instantiate(&shape, &inst, &mut rng);
            for (i, (op, m)) in shape.operands().iter().zip(&mats).enumerate() {
                let (r, c) = if op.transposed {
                    (inst.q(i + 1), inst.q(i))
                } else {
                    (inst.q(i), inst.q(i + 1))
                };
                assert_eq!((m.rows() as u64, m.cols() as u64), (r, c));
                if op.features.structure == Structure::LowerTri {
                    assert!(m.is_lower_triangular(0.0));
                }
                if op.features.structure == Structure::Symmetric {
                    assert!(m.is_symmetric(1e-12));
                }
            }
        }
    }

    #[test]
    fn sampled_shapes_have_a_rectangular_matrix() {
        let mut rng = StdRng::seed_from_u64(4);
        let sampler = ShapeSampler::uniform();
        for _ in 0..50 {
            let s = sampler.sample(&mut rng, 6);
            assert_eq!(s.len(), 6);
            assert!(s.has_rectangular());
        }
    }

    #[test]
    fn enumeration_count_matches_formula() {
        for n in 1..=4usize {
            let count = enumerate_shapes(n).count();
            assert_eq!(count, 10usize.pow(n as u32) - 9usize.pow(n as u32), "n={n}");
        }
    }

    #[test]
    fn half_rectangular_sampler_biases_toward_general() {
        let mut rng = StdRng::seed_from_u64(9);
        let sampler = ShapeSampler::half_rectangular();
        let mut rect = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let s = sampler.sample(&mut rng, 7);
            rect += s.operands().iter().filter(|o| !o.forces_square()).count();
            total += s.len();
        }
        let frac = rect as f64 / total as f64;
        assert!(frac > 0.4 && frac < 0.6, "rectangular fraction {frac}");
    }
}
