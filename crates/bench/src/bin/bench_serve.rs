//! Serving-layer throughput trajectory: cold vs. warm vs.
//! restored-from-disk compiles through the sharded
//! [`gmc_serve::CompileService`], written to `BENCH_serve.json`.
//!
//! Three phases over the same workload of distinct `.gmc` programs:
//!
//! * **cold** — a fresh service compiles every shape for the first time
//!   (full enumeration + selection per shape);
//! * **warm** — the same service replays the workload; every request is
//!   a shard-cache hit (lookup + emit only);
//! * **restored** — the service snapshots to disk, shuts down, and a
//!   *new* service starts from the snapshot; the replay must run at
//!   warm speed (every request a cache hit) with byte-identical
//!   artifacts, proving a restart never pays the cold path again.
//!
//! The warm phase runs twice — stage tracing on (the default) and
//! forced off — and records the difference as `trace_overhead_pct`
//! (required ≤ 3%). Overload-burst completion percentiles come from
//! the shared [`gmc_obs::Histogram`] the service itself publishes.
//!
//! Each phase is best-of-`reps` (fresh service per cold/restored rep) to
//! tame timer wobble on the 1-core dev host. Run with
//! `cargo run --release --bin bench_serve [--smoke] [--load] [output.json]`;
//! `--smoke` shrinks the workload for CI.
//!
//! `--load` adds a **socket-load sweep**: a closed-loop JSONL load
//! generator (optionally paced to a target QPS) against a live
//! Unix-socket daemon, sweeping connections × shards with a fixed 2 ms
//! injected per-compile service time so the rows measure transport
//! concurrency and routing policy rather than host codegen speed. The
//! sweep records client- and server-side (`{"op":"metrics"}`) p50/p99
//! per row, the multi-connection speedup over a serial single-client
//! baseline, and a maximally skewed hot-shape row where
//! power-of-two-choices routing is A/B'd against plain `hash % shards`
//! on server-side p99. The sweep also runs the **backpressure A/B**: a
//! greedy pipeliner bursting its whole budget on one connection while a
//! polite closed-loop client shares the daemon, measured with the
//! per-connection in-flight cap on vs. off — the polite client's p99
//! improvement is the cap's whole point.
//!
//! `--open-loop` (with `--load`) adds open-loop rows: generators fire
//! on a fixed schedule regardless of completions and latency is
//! measured from the *scheduled* send time, so sender lateness and
//! queue growth land in the tail instead of silently throttling the
//! offered load (coordinated omission).

use gmc_core::CompileOptions;
use gmc_obs::{force_trace_mode, Histogram, TraceMode};
use gmc_serve::fault::FaultPlan;
use gmc_serve::transport::{self, ListenAddr, SocketListener, SocketStream, TransportOptions};
use gmc_serve::{
    CompileRequest, CompileResponse, CompileService, Emit, FailureKind, RoutingMode, ServeConfig,
};
use std::fmt::Write as _;
use std::io::{BufRead as _, BufReader, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A workload of distinct chain programs: lengths 3..=3+k with feature
/// mixes cycling through general, triangular-solve, and SPD operands.
fn workload(count: usize) -> Vec<String> {
    let decls = [
        ("General, Singular", ""),
        ("LowerTri, NonSingular", "^-1"),
        ("Symmetric, SPD", ""),
        ("UpperTri, NonSingular", ""),
        ("General, Singular", ""),
    ];
    (0..count)
        .map(|i| {
            let n = 3 + i % 4;
            let mut src = String::new();
            let mut rhs = Vec::new();
            for j in 0..n {
                // Rotate the feature mix per program so every source has
                // a distinct shape.
                let (features, op) = decls[(i + j) % decls.len()];
                let _ = writeln!(src, "Matrix M{j} <{features}>;");
                rhs.push(format!("M{j}{op}"));
            }
            let _ = writeln!(src, "X{i} := {};", rhs.join(" * "));
            src
        })
        .collect()
}

fn submit_all(service: &mut CompileService, sources: &[String]) -> Vec<CompileResponse> {
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: Some(format!("x{i}")),
            source: source.clone(),
            emit: Emit::Both,
            deadline: None,
        });
    }
    let mut responses = service.drain();
    responses.sort_by_key(|r| r.id);
    responses
}

fn files_of(responses: &[CompileResponse]) -> Vec<Vec<(String, String)>> {
    responses
        .iter()
        .map(|r| r.result.as_ref().expect("workload compiles").files.clone())
        .collect()
}

/// Outcome rates and completion-latency tail of an overload burst.
struct Overload {
    burst: usize,
    queue_cap: usize,
    delay_ms: u64,
    deadline_ms: u64,
    served: usize,
    shed: usize,
    expired: usize,
    shed_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn run_overload_burst(options: &CompileOptions, burst: usize) -> Overload {
    const QUEUE_CAP: usize = 16;
    const DELAY_MS: u64 = 25;
    const DEADLINE_MS: u64 = 100;
    let source = "Matrix A <General, Singular>; Matrix B <General, Singular>; X := A * B;";
    let config = ServeConfig {
        shards: 1,
        options: options.clone(),
        queue_cap: QUEUE_CAP,
        faults: FaultPlan::parse(&format!("delay:{DELAY_MS}")).expect("delay spec"),
        ..ServeConfig::default()
    };
    let mut service = CompileService::start(config).expect("overload start");

    let t0 = Instant::now();
    for i in 0..burst {
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: source.to_owned(),
            emit: Emit::Cpp,
            deadline: Some(Duration::from_millis(DEADLINE_MS)),
        });
    }
    // Completion latencies land in the same log-linear histogram the
    // service itself publishes, so the recorded percentiles use one
    // quantile definition across the bench and the metrics endpoint.
    let completions = Histogram::new();
    let (mut served, mut shed, mut expired) = (0usize, 0usize, 0usize);
    while let Some(response) = service.recv() {
        completions.record(t0.elapsed());
        match &response.result {
            Ok(_) => served += 1,
            Err(f) if f.kind == FailureKind::Overloaded => shed += 1,
            Err(f) if f.kind == FailureKind::DeadlineExceeded => expired += 1,
            Err(f) => panic!("unexpected failure under overload: {f}"),
        }
    }
    let _ = service.shutdown();

    assert_eq!(
        served + shed + expired,
        burst,
        "every burst request gets exactly one response"
    );
    assert!(
        shed > 0,
        "a {burst}-deep burst over a {QUEUE_CAP}-slot queue must shed"
    );
    let completions = completions.snapshot();
    assert_eq!(completions.count as usize, burst, "one sample per response");
    Overload {
        burst,
        queue_cap: QUEUE_CAP,
        delay_ms: DELAY_MS,
        deadline_ms: DEADLINE_MS,
        served,
        shed,
        expired,
        shed_rate: shed as f64 / burst as f64,
        p50_ms: completions.quantile_ms(0.5),
        p99_ms: completions.quantile_ms(0.99),
    }
}

/// One row of the socket-load sweep: a fleet of closed-loop JSONL
/// clients against a live socket daemon.
struct LoadRow {
    label: &'static str,
    connections: usize,
    shards: usize,
    routing: RoutingMode,
    /// Offered load in requests/s (`0` = unpaced, run at capacity).
    target_qps: f64,
    requests: usize,
    qps: f64,
    client_p50_ms: f64,
    client_p99_ms: f64,
    server_p50_ms: f64,
    server_p99_ms: f64,
    /// Open-loop row: sends fired on the target schedule regardless of
    /// completions, latencies measured from the *scheduled* send time
    /// (lateness-inclusive, coordinated-omission-free).
    open_loop: bool,
}

fn escape_source(src: &str) -> String {
    src.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One load-generator connection: send requests in windows of
/// `window` (1 = strict closed loop), read the window's responses,
/// repeat. With `pace`, sends are held to the schedule `k * pace` from
/// the connection's start, which turns the closed loop into a
/// target-QPS generator. Latencies are matched send-order to
/// response-order — exact for `window == 1`, approximate for deeper
/// pipelines (the server-side histogram is authoritative there).
fn load_client(
    addr: &ListenAddr,
    sources: &[String],
    offset: usize,
    requests: usize,
    window: usize,
    pace: Option<Duration>,
) -> Vec<Duration> {
    let stream = SocketStream::connect(addr).expect("load client connect");
    let mut write = stream.try_clone().expect("clone write half");
    let mut reader = BufReader::new(stream);
    let lines: Vec<String> = sources.iter().map(|s| escape_source(s)).collect();
    let mut latencies = Vec::with_capacity(requests);
    let mut line = String::new();
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < requests {
        let batch = window.min(requests - sent);
        let mut send_times = Vec::with_capacity(batch);
        for _ in 0..batch {
            if let Some(interval) = pace {
                let due = start + interval * sent as u32;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let body = format!(
                "{{\"id\":{sent},\"emit\":\"cpp\",\"source\":\"{}\"}}\n",
                lines[(offset + sent) % lines.len()]
            );
            send_times.push(Instant::now());
            write.write_all(body.as_bytes()).expect("send request");
            sent += 1;
        }
        write.flush().expect("flush requests");
        for sent_at in send_times {
            line.clear();
            let n = reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "daemon closed mid-load");
            assert!(line.contains("\"ok\":true"), "load request failed: {line}");
            latencies.push(sent_at.elapsed());
        }
    }
    latencies
}

/// One open-loop generator connection: requests fire at `start +
/// k * interval` whether or not earlier ones completed — the schedule,
/// not the daemon, sets the send times. A reader thread matches each
/// response to its request's *scheduled* send instant by id, so the
/// recorded latency includes any sender lateness and all queueing: the
/// coordinated omission a closed loop hides at saturation is part of
/// the number here.
fn open_loop_client(
    addr: &ListenAddr,
    sources: &[String],
    offset: usize,
    requests: usize,
    interval: Duration,
) -> Vec<Duration> {
    let stream = SocketStream::connect(addr).expect("open-loop connect");
    let mut write = stream.try_clone().expect("clone write half");
    let lines: Vec<String> = sources.iter().map(|s| escape_source(s)).collect();
    let start = Instant::now();
    let reader = std::thread::spawn(move || -> Vec<Duration> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut latencies = Vec::with_capacity(requests);
        for _ in 0..requests {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .expect("read open-loop response");
            assert!(n > 0, "daemon closed mid-load");
            assert!(
                line.contains("\"ok\":true"),
                "open-loop request failed: {line}"
            );
            let at = line.find("\"id\":").expect("id in response") + 5;
            let rest = &line[at..];
            let id: u64 = rest[..rest.find([',', '}']).expect("id end")]
                .parse()
                .expect("numeric id");
            // The sender never fires early, so the scheduled instant is
            // always in the past by now.
            let scheduled = start + interval * id as u32;
            latencies.push(scheduled.elapsed());
        }
        latencies
    });
    for k in 0..requests {
        let due = start + interval * k as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let body = format!(
            "{{\"id\":{k},\"emit\":\"cpp\",\"source\":\"{}\"}}\n",
            lines[(offset + k) % lines.len()]
        );
        write.write_all(body.as_bytes()).expect("send request");
        write.flush().expect("flush request");
    }
    reader.join().expect("open-loop reader")
}

/// Ask a live daemon for its merged e2e p50/p99 over the socket
/// (`{"op":"metrics"}` — the same numbers a scraper reads).
fn probe_server_percentiles(addr: &ListenAddr) -> (f64, f64) {
    let mut stream = SocketStream::connect(addr).expect("metrics probe connect");
    stream
        .write_all(b"{\"op\":\"metrics\",\"id\":1}\n")
        .expect("send metrics op");
    stream.flush().expect("flush metrics op");
    stream.shutdown_write().expect("half-close probe");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read metrics line");
    let field = |key: &str| -> f64 {
        let at = line.find(key).unwrap_or_else(|| panic!("{key} in metrics"));
        let rest = &line[at + key.len()..];
        rest[..rest.find([',', '}']).expect("value end")]
            .parse()
            .expect("numeric percentile")
    };
    (field("\"e2e_p50_ms\":"), field("\"e2e_p99_ms\":"))
}

fn percentile_ms(latencies: &mut [Duration], q: f64) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx].as_secs_f64() * 1e3
}

/// Run one sweep point: a fresh service (every compile slowed by
/// `service_ms` — a deterministic stand-in for compile cost, so
/// connection/shard parallelism is measurable even on a 1-core host)
/// behind a Unix-socket daemon, primed over the socket, then hit by
/// `connections` concurrent load clients.
#[allow(clippy::too_many_arguments)]
fn run_load_row(
    label: &'static str,
    sources: &[String],
    connections: usize,
    shards: usize,
    routing: RoutingMode,
    target_qps: f64,
    per_conn: usize,
    window: usize,
    service_ms: u64,
    options: &CompileOptions,
) -> LoadRow {
    let dir = std::env::temp_dir().join("bench_serve_load");
    let _ = std::fs::create_dir_all(&dir);
    let addr = ListenAddr::Unix(dir.join(format!("{label}.sock")));
    let config = ServeConfig {
        shards,
        options: options.clone(),
        routing,
        faults: FaultPlan::parse(&format!("delay:{service_ms}")).expect("delay spec"),
        ..ServeConfig::default()
    };
    let mut service = CompileService::start(config).expect("load service start");
    // Prime every shape warm before measuring, through the service
    // directly: the measured phase then isolates transport + routing +
    // the injected service time, not cold selection.
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: source.clone(),
            emit: Emit::Cpp,
            deadline: None,
        });
    }
    let primed = service.drain();
    assert!(primed.iter().all(|r| r.result.is_ok()), "priming compiles");

    let listener = SocketListener::bind(&addr).expect("bind load socket");
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_shutdown = Arc::clone(&shutdown);
    let daemon = std::thread::spawn(move || {
        transport::serve(
            listener,
            service,
            TransportOptions::default(),
            serve_shutdown,
        )
    });

    let pace = (target_qps > 0.0).then(|| Duration::from_secs_f64(connections as f64 / target_qps));
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..connections)
            // Stagger each connection's starting shape so the fleet
            // doesn't hammer one home shard in lockstep.
            .map(|c| scope.spawn(move || load_client(addr, sources, c, per_conn, window, pace)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let (server_p50_ms, server_p99_ms) = probe_server_percentiles(&addr);

    shutdown.store(true, Ordering::SeqCst);
    let (service, report) = daemon.join().expect("daemon thread").expect("daemon io");
    let _ = service.shutdown();
    let requests = connections * per_conn;
    assert_eq!(report.failures, 0, "load runs clean");

    LoadRow {
        label,
        connections,
        shards,
        routing,
        target_qps,
        requests,
        qps: requests as f64 / elapsed,
        client_p50_ms: percentile_ms(&mut latencies, 0.50),
        client_p99_ms: percentile_ms(&mut latencies, 0.99),
        server_p50_ms,
        server_p99_ms,
        open_loop: false,
    }
}

/// One open-loop sweep point (`--open-loop`): `connections` generators
/// each fire at `target_qps / connections` on a fixed schedule,
/// regardless of completions. Percentiles are lateness-inclusive.
#[allow(clippy::too_many_arguments)]
fn run_open_loop_row(
    label: &'static str,
    sources: &[String],
    connections: usize,
    shards: usize,
    target_qps: f64,
    per_conn: usize,
    service_ms: u64,
    options: &CompileOptions,
) -> LoadRow {
    let dir = std::env::temp_dir().join("bench_serve_load");
    let _ = std::fs::create_dir_all(&dir);
    let addr = ListenAddr::Unix(dir.join(format!("{label}.sock")));
    let config = ServeConfig {
        shards,
        options: options.clone(),
        faults: FaultPlan::parse(&format!("delay:{service_ms}")).expect("delay spec"),
        ..ServeConfig::default()
    };
    let mut service = CompileService::start(config).expect("open-loop service start");
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: source.clone(),
            emit: Emit::Cpp,
            deadline: None,
        });
    }
    let primed = service.drain();
    assert!(primed.iter().all(|r| r.result.is_ok()), "priming compiles");

    let listener = SocketListener::bind(&addr).expect("bind open-loop socket");
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_shutdown = Arc::clone(&shutdown);
    // The schedule keeps firing into a backlog, so the generators' own
    // connections must be exempt from per-connection admission — the
    // row measures queueing delay, not the shedding policy.
    let daemon = std::thread::spawn(move || {
        transport::serve(
            listener,
            service,
            TransportOptions {
                conn_in_flight_cap: 0,
                ..TransportOptions::default()
            },
            serve_shutdown,
        )
    });

    let interval = Duration::from_secs_f64(connections as f64 / target_qps);
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..connections)
            .map(|c| scope.spawn(move || open_loop_client(addr, sources, c, per_conn, interval)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("open-loop client"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let (server_p50_ms, server_p99_ms) = probe_server_percentiles(&addr);
    shutdown.store(true, Ordering::SeqCst);
    let (service, report) = daemon.join().expect("daemon thread").expect("daemon io");
    let _ = service.shutdown();
    assert_eq!(report.failures, 0, "open-loop load runs clean");
    let requests = connections * per_conn;
    LoadRow {
        label,
        connections,
        shards,
        routing: RoutingMode::default(),
        target_qps,
        requests,
        qps: requests as f64 / elapsed,
        client_p50_ms: percentile_ms(&mut latencies, 0.50),
        client_p99_ms: percentile_ms(&mut latencies, 0.99),
        server_p50_ms,
        server_p99_ms,
        open_loop: true,
    }
}

/// The backpressure A/B: a greedy pipeliner fires its whole request
/// budget in one burst on one connection while a polite closed-loop
/// client (one request in flight) shares the daemon. With the
/// per-connection cap on, the greedy burst is shed at admission and the
/// polite client's tail stays flat; with caps off the burst monopolizes
/// the shard queue and the polite client's p99 absorbs the backlog.
struct GreedyContention {
    conn_cap: usize,
    greedy_requests: usize,
    greedy_served: u64,
    greedy_shed: u64,
    polite_requests: usize,
    polite_p50_ms: f64,
    polite_p99_ms: f64,
}

fn run_greedy_contention(
    sources: &[String],
    conn_cap: usize,
    greedy_requests: usize,
    polite_requests: usize,
    service_ms: u64,
    options: &CompileOptions,
) -> GreedyContention {
    let dir = std::env::temp_dir().join("bench_serve_load");
    let _ = std::fs::create_dir_all(&dir);
    let addr = ListenAddr::Unix(dir.join(format!("greedy_cap{conn_cap}.sock")));
    // One shard: the greedy backlog and the polite client contend for
    // the same queue, so the cap's effect is undiluted by routing.
    let config = ServeConfig {
        shards: 1,
        options: options.clone(),
        faults: FaultPlan::parse(&format!("delay:{service_ms}")).expect("delay spec"),
        ..ServeConfig::default()
    };
    let mut service = CompileService::start(config).expect("greedy service start");
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: source.clone(),
            emit: Emit::Cpp,
            deadline: None,
        });
    }
    let primed = service.drain();
    assert!(primed.iter().all(|r| r.result.is_ok()), "priming compiles");

    let listener = SocketListener::bind(&addr).expect("bind greedy socket");
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_shutdown = Arc::clone(&shutdown);
    let daemon = std::thread::spawn(move || {
        transport::serve(
            listener,
            service,
            TransportOptions {
                conn_in_flight_cap: conn_cap,
                ..TransportOptions::default()
            },
            serve_shutdown,
        )
    });

    let ((greedy_served, greedy_shed), mut polite) = std::thread::scope(|scope| {
        let addr = &addr;
        let greedy = scope.spawn(move || {
            let stream = SocketStream::connect(addr).expect("greedy connect");
            let mut write = stream.try_clone().expect("clone write half");
            let lines: Vec<String> = sources.iter().map(|s| escape_source(s)).collect();
            for k in 0..greedy_requests {
                let body = format!(
                    "{{\"id\":{k},\"emit\":\"cpp\",\"source\":\"{}\"}}\n",
                    lines[k % lines.len()]
                );
                write.write_all(body.as_bytes()).expect("greedy send");
            }
            write.flush().expect("greedy flush");
            // The greedy client *does* read (a never-reading client is
            // the slow-consumer policy's problem, tested elsewhere) — it
            // just pipelined its entire budget up front.
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let (mut served, mut shed) = (0u64, 0u64);
            for _ in 0..greedy_requests {
                line.clear();
                let n = reader.read_line(&mut line).expect("greedy read");
                assert!(n > 0, "daemon closed on the greedy client");
                if line.contains("\"ok\":true") {
                    served += 1;
                } else {
                    assert!(
                        line.contains("\"kind\":\"overloaded\""),
                        "greedy failures are shed, nothing else: {line}"
                    );
                    shed += 1;
                }
            }
            (served, shed)
        });
        let polite = scope.spawn(move || {
            // Let the greedy burst land first so every polite request
            // contends with it.
            std::thread::sleep(Duration::from_millis(5));
            load_client(addr, sources, 1, polite_requests, 1, None)
        });
        (
            greedy.join().expect("greedy client"),
            polite.join().expect("polite client"),
        )
    });

    shutdown.store(true, Ordering::SeqCst);
    let (service, report) = daemon.join().expect("daemon thread").expect("daemon io");
    let _ = service.shutdown();
    assert_eq!(
        report.snapshot.conn_shed, greedy_shed,
        "every shed came from the greedy connection"
    );
    GreedyContention {
        conn_cap,
        greedy_requests,
        greedy_served,
        greedy_shed,
        polite_requests,
        polite_p50_ms: percentile_ms(&mut polite, 0.50),
        polite_p99_ms: percentile_ms(&mut polite, 0.99),
    }
}

/// The single-client serial baseline: one request in flight at a time
/// through the service directly — the stdin daemon's client model —
/// with the same injected service time as the socket rows.
fn run_serial_baseline(
    sources: &[String],
    shards: usize,
    requests: usize,
    service_ms: u64,
    options: &CompileOptions,
) -> LoadRow {
    let config = ServeConfig {
        shards,
        options: options.clone(),
        faults: FaultPlan::parse(&format!("delay:{service_ms}")).expect("delay spec"),
        ..ServeConfig::default()
    };
    let mut service = CompileService::start(config).expect("baseline start");
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: source.clone(),
            emit: Emit::Cpp,
            deadline: None,
        });
    }
    let _ = service.drain();
    let mut latencies = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for i in 0..requests {
        let t = Instant::now();
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: sources[i % sources.len()].clone(),
            emit: Emit::Cpp,
            deadline: None,
        });
        let response = service.recv().expect("baseline response");
        assert!(response.result.is_ok());
        latencies.push(t.elapsed());
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let _ = service.shutdown();
    LoadRow {
        label: "serial_baseline",
        connections: 1,
        shards,
        routing: RoutingMode::default(),
        target_qps: 0.0,
        requests,
        qps: requests as f64 / elapsed,
        client_p50_ms: percentile_ms(&mut latencies, 0.50),
        client_p99_ms: percentile_ms(&mut latencies, 0.99),
        server_p50_ms: 0.0,
        server_p99_ms: 0.0,
        open_loop: false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let load = args.iter().any(|a| a == "--load");
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let (distinct, warm_rounds, reps) = if smoke { (6, 2, 2) } else { (12, 4, 5) };
    let shards = 2usize;
    let sources = workload(distinct);
    let options = CompileOptions {
        training_instances: 300,
        expand_by: 1,
        ..CompileOptions::default()
    };
    let snapshot_path = std::env::temp_dir().join("bench_serve_snapshot.txt");
    let _ = std::fs::remove_file(&snapshot_path);
    let config = |snap: bool| ServeConfig {
        shards,
        options: options.clone(),
        snapshot_path: snap.then(|| snapshot_path.clone()),
        ..ServeConfig::default()
    };

    // Cold: fresh service per rep, every shape selected from scratch.
    let mut cold_s = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..reps {
        let mut service = CompileService::start(config(false)).expect("cold start");
        let t = Instant::now();
        let responses = submit_all(&mut service, &sources);
        cold_s = cold_s.min(t.elapsed().as_secs_f64());
        assert!(responses.iter().all(|r| !r.cache_hit), "cold = no hits");
        reference = files_of(&responses);
        let _ = service.shutdown();
    }

    // Warm: one service, replay the workload after a priming pass.
    // Measured twice — stage tracing on (the default) and forced off —
    // to price the recording itself (`trace_overhead_pct`). The traced
    // run also writes the snapshot used by the restored phase.
    // Returns (best rep, rep spread %): the spread across reps of the
    // same measurement is the timer noise floor the trace-overhead
    // comparison is read against.
    let measure_warm = |mode: TraceMode, snap: bool| -> (f64, f64) {
        force_trace_mode(Some(mode));
        let mut service = CompileService::start(config(snap)).expect("warm start");
        let primed = submit_all(&mut service, &sources);
        assert_eq!(files_of(&primed), reference, "priming matches cold");
        let (mut best_s, mut worst_s) = (f64::INFINITY, 0.0f64);
        for _ in 0..reps {
            let t = Instant::now();
            for _ in 0..warm_rounds {
                let responses = submit_all(&mut service, &sources);
                debug_assert!(responses.iter().all(|r| r.cache_hit));
            }
            let rep_s = t.elapsed().as_secs_f64() / warm_rounds as f64;
            best_s = best_s.min(rep_s);
            worst_s = worst_s.max(rep_s);
        }
        if snap {
            service
                .save_snapshot(&snapshot_path)
                .expect("write snapshot");
        }
        let _ = service.shutdown();
        (best_s, (worst_s / best_s - 1.0) * 100.0)
    };
    let (warm_s, warm_spread_pct) = measure_warm(TraceMode::On, true);
    let (warm_off_s, warm_off_spread_pct) = measure_warm(TraceMode::Off, false);
    let noise_floor_pct = warm_spread_pct.max(warm_off_spread_pct);
    force_trace_mode(None);
    let snapshot_bytes = std::fs::metadata(&snapshot_path)
        .map(|m| m.len())
        .unwrap_or(0);

    // Restored: brand-new service per rep, loading the snapshot from
    // disk; the whole workload must be cache hits with identical bytes.
    let mut restored_s = f64::INFINITY;
    for _ in 0..reps {
        let mut service = CompileService::start(config(true)).expect("restored start");
        let t = Instant::now();
        let responses = submit_all(&mut service, &sources);
        restored_s = restored_s.min(t.elapsed().as_secs_f64());
        assert!(
            responses.iter().all(|r| r.cache_hit),
            "every restored request must be a cache hit"
        );
        assert_eq!(
            files_of(&responses),
            reference,
            "restored artifacts must be byte-identical to cold"
        );
        let stats = service.shutdown();
        assert_eq!(stats.restored(), distinct as u64);
    }

    // Overload burst: a single deliberately slowed shard (25 ms injected
    // delay per compile) with a small admission queue and a 100 ms
    // deadline takes a burst of requests all at once. This measures the
    // *robustness* envelope, not throughput: how much of the burst is
    // shed at admission, how much expires in the queue, and the
    // completion-latency tail of what does get served. Asserts are
    // structural only (exactly one response per request, the three
    // outcome classes partition the burst) — the rates themselves are
    // the recorded result.
    let burst = if smoke { 40 } else { 120 };
    let overload = run_overload_burst(&options, burst);

    // Socket-load sweep (--load): a closed-loop generator against the
    // multiplexed socket transport, sweeping connections x shards with a
    // fixed injected per-compile service time (2 ms sleep) so the rows
    // measure transport concurrency and routing policy, deterministic
    // across host core counts. The last two rows hammer ONE hot shape
    // (maximal skew, deep per-connection pipelines): under plain
    // hash%N every request queues on the shape's home shard, while
    // power-of-two-choices spills to the alternate once the home queue
    // is markedly deeper — the measured server-side p99 gap is the
    // routing win.
    type GreedyPair = Option<(GreedyContention, GreedyContention)>;
    let (load_rows, greedy_pair): (Vec<LoadRow>, GreedyPair) = if load {
        const SERVICE_MS: u64 = 2;
        let load_options = CompileOptions {
            training_instances: 60,
            ..CompileOptions::default()
        };
        let per_conn = if smoke { 40 } else { 150 };
        let skew_rounds = if smoke { 4 } else { 10 };
        let skew_window = 16;
        let hot: Vec<String> = vec![sources[0].clone()];
        let two = RoutingMode::default();
        let mut rows = vec![
            run_serial_baseline(&sources, 4, per_conn, SERVICE_MS, &load_options),
            run_load_row(
                "socket_c1_s4",
                &sources,
                1,
                4,
                two,
                0.0,
                per_conn,
                1,
                SERVICE_MS,
                &load_options,
            ),
            run_load_row(
                "socket_c2_s4",
                &sources,
                2,
                4,
                two,
                0.0,
                per_conn,
                1,
                SERVICE_MS,
                &load_options,
            ),
            run_load_row(
                "socket_c4_s4",
                &sources,
                4,
                4,
                two,
                0.0,
                per_conn,
                1,
                SERVICE_MS,
                &load_options,
            ),
            run_load_row(
                "socket_c4_s4_pipe8",
                &sources,
                4,
                4,
                two,
                0.0,
                per_conn,
                8,
                SERVICE_MS,
                &load_options,
            ),
            run_load_row(
                "socket_c4_s2",
                &sources,
                4,
                2,
                two,
                0.0,
                per_conn,
                1,
                SERVICE_MS,
                &load_options,
            ),
            run_load_row(
                "socket_c4_s4_paced",
                &sources,
                4,
                4,
                two,
                400.0,
                per_conn,
                1,
                SERVICE_MS,
                &load_options,
            ),
        ];
        rows.push(run_load_row(
            "skew_two_choices",
            &hot,
            4,
            2,
            RoutingMode::TwoChoices,
            0.0,
            skew_window * skew_rounds,
            skew_window,
            SERVICE_MS,
            &load_options,
        ));
        rows.push(run_load_row(
            "skew_hash_mod",
            &hot,
            4,
            2,
            RoutingMode::HashMod,
            0.0,
            skew_window * skew_rounds,
            skew_window,
            SERVICE_MS,
            &load_options,
        ));
        if open_loop {
            // Same offered load as the paced closed-loop row, but fired
            // on the schedule: the two rows' p99 gap is the coordinated
            // omission the closed loop conceals.
            rows.push(run_open_loop_row(
                "openloop_c4_s4",
                &sources,
                4,
                4,
                400.0,
                per_conn,
                SERVICE_MS,
                &load_options,
            ));
            // Offered beyond one shard's ~500 QPS capacity: the backlog
            // grows for the whole run and the lateness-inclusive p99
            // shows it (a closed loop would self-throttle and report a
            // flat tail here).
            rows.push(run_open_loop_row(
                "openloop_c4_s1_over",
                &sources,
                4,
                1,
                800.0,
                per_conn,
                SERVICE_MS,
                &load_options,
            ));
        }
        let greedy_n = if smoke { 80 } else { 200 };
        let polite_n = if smoke { 10 } else { 20 };
        let caps_off =
            run_greedy_contention(&sources, 0, greedy_n, polite_n, SERVICE_MS, &load_options);
        let caps_on =
            run_greedy_contention(&sources, 8, greedy_n, polite_n, SERVICE_MS, &load_options);
        println!(
            "greedy pipeliner ({greedy_n} reqs, 1 shard) vs polite closed loop ({polite_n} reqs): \
             caps off p99 {:.1} ms -> cap 8 p99 {:.1} ms ({:.1}x better; \
             greedy shed {} of {greedy_n})",
            caps_off.polite_p99_ms,
            caps_on.polite_p99_ms,
            caps_off.polite_p99_ms / caps_on.polite_p99_ms,
            caps_on.greedy_shed,
        );
        for r in &rows {
            println!(
                "load {:>20}: {} conn x {} shard(s) [{:?}]{}  {:7.0} QPS   \
                 client p50 {:7.2} ms  p99 {:7.2} ms   server p50 {:7.2} ms  p99 {:7.2} ms",
                r.label,
                r.connections,
                r.shards,
                r.routing,
                if r.target_qps > 0.0 {
                    format!(
                        " @{:.0} QPS offered{}",
                        r.target_qps,
                        if r.open_loop { ", open loop" } else { "" }
                    )
                } else {
                    String::new()
                },
                r.qps,
                r.client_p50_ms,
                r.client_p99_ms,
                r.server_p50_ms,
                r.server_p99_ms,
            );
        }
        let baseline_qps = rows[0].qps;
        let multi_qps = rows
            .iter()
            .find(|r| r.label == "socket_c4_s4_pipe8")
            .unwrap()
            .qps;
        let tc = rows.iter().find(|r| r.label == "skew_two_choices").unwrap();
        let hm = rows.iter().find(|r| r.label == "skew_hash_mod").unwrap();
        println!(
            "load summary: multi-conn speedup vs serial {:.2}x (>= 2x target)   \
             skew p99 two-choices {:.1} ms vs hash-mod {:.1} ms ({:.2}x better)",
            multi_qps / baseline_qps,
            tc.server_p99_ms,
            hm.server_p99_ms,
            hm.server_p99_ms / tc.server_p99_ms,
        );
        (rows, Some((caps_off, caps_on)))
    } else {
        (Vec::new(), None)
    };

    let per_req = |s: f64| s * 1e3 / distinct as f64;
    let (cold_ms, warm_ms, restored_ms) = (per_req(cold_s), per_req(warm_s), per_req(restored_s));
    let warm_notrace_ms = per_req(warm_off_s);
    // A negative measured overhead just means the difference is below
    // the rep-to-rep noise floor; the acceptance check reads the
    // clamped value so it never compares against a negative number.
    let trace_overhead_measured_pct = (warm_ms / warm_notrace_ms - 1.0) * 100.0;
    let trace_overhead_pct = trace_overhead_measured_pct.max(0.0);
    let restored_speedup = cold_ms / restored_ms;
    let warm_speedup = cold_ms / warm_ms;
    println!(
        "serve {distinct} shapes x {shards} shards: cold {cold_ms:8.3} ms/req   \
         warm {warm_ms:8.3} ms/req ({warm_speedup:.1}x)   \
         restored {restored_ms:8.3} ms/req ({restored_speedup:.1}x, snapshot {snapshot_bytes} B)"
    );
    println!(
        "warm replay tracing off: {warm_notrace_ms:8.3} ms/req   \
         recording overhead {trace_overhead_pct:.2}% \
         (measured {trace_overhead_measured_pct:+.2}%, noise floor {noise_floor_pct:.2}%, \
         target <= 3%)"
    );
    println!(
        "overload burst {burst} -> 1 shard (queue {cap}, +{delay} ms/compile, {dl} ms deadline): \
         served {served}   expired {expired}   shed {shed} ({rate:.0}%)   \
         completion p50 {p50:.1} ms   p99 {p99:.1} ms",
        burst = overload.burst,
        cap = overload.queue_cap,
        delay = overload.delay_ms,
        dl = overload.deadline_ms,
        served = overload.served,
        expired = overload.expired,
        shed = overload.shed,
        rate = overload.shed_rate * 100.0,
        p50 = overload.p50_ms,
        p99 = overload.p99_ms,
    );

    let mut json = String::from("{\n  \"bench\": \"serve_cold_warm_restored\",\n");
    let _ = writeln!(json, "  \"unit\": \"ms_per_request\",");
    let _ = writeln!(json, "  \"distinct_shapes\": {distinct},");
    let _ = writeln!(json, "  \"warm_rounds\": {warm_rounds},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cold_ms_per_req\": {cold_ms:.4},");
    let _ = writeln!(json, "  \"warm_ms_per_req\": {warm_ms:.4},");
    let _ = writeln!(json, "  \"warm_notrace_ms_per_req\": {warm_notrace_ms:.4},");
    let _ = writeln!(json, "  \"trace_overhead_pct\": {trace_overhead_pct:.2},");
    let _ = writeln!(
        json,
        "  \"trace_overhead_measured_pct\": {trace_overhead_measured_pct:.2},"
    );
    let _ = writeln!(json, "  \"noise_floor_pct\": {noise_floor_pct:.2},");
    let _ = writeln!(json, "  \"restored_ms_per_req\": {restored_ms:.4},");
    let _ = writeln!(json, "  \"warm_speedup_vs_cold\": {warm_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"restored_speedup_vs_cold\": {restored_speedup:.2},"
    );
    let _ = writeln!(json, "  \"snapshot_bytes\": {snapshot_bytes},");
    let _ = writeln!(json, "  \"overload_burst\": {},", overload.burst);
    let _ = writeln!(json, "  \"overload_queue_cap\": {},", overload.queue_cap);
    let _ = writeln!(json, "  \"overload_delay_ms\": {},", overload.delay_ms);
    let _ = writeln!(
        json,
        "  \"overload_deadline_ms\": {},",
        overload.deadline_ms
    );
    let _ = writeln!(json, "  \"overload_served\": {},", overload.served);
    let _ = writeln!(json, "  \"overload_expired\": {},", overload.expired);
    let _ = writeln!(json, "  \"overload_shed\": {},", overload.shed);
    let _ = writeln!(json, "  \"overload_shed_rate\": {:.4},", overload.shed_rate);
    let _ = writeln!(
        json,
        "  \"overload_completion_p50_ms\": {:.3},",
        overload.p50_ms
    );
    let _ = writeln!(
        json,
        "  \"overload_completion_p99_ms\": {:.3},",
        overload.p99_ms
    );
    if !load_rows.is_empty() {
        let baseline_qps = load_rows[0].qps;
        let multi_qps = load_rows
            .iter()
            .find(|r| r.label == "socket_c4_s4_pipe8")
            .unwrap()
            .qps;
        let tc = load_rows
            .iter()
            .find(|r| r.label == "skew_two_choices")
            .unwrap();
        let hm = load_rows
            .iter()
            .find(|r| r.label == "skew_hash_mod")
            .unwrap();
        let _ = writeln!(json, "  \"load\": {{");
        let _ = writeln!(json, "    \"transport\": \"unix_socket_jsonl\",");
        let _ = writeln!(json, "    \"service_ms_injected\": 2,");
        let _ = writeln!(
            json,
            "    \"multi_conn_speedup_vs_serial\": {:.2},",
            multi_qps / baseline_qps
        );
        let _ = writeln!(
            json,
            "    \"skew_two_choices_p99_ms\": {:.3},",
            tc.server_p99_ms
        );
        let _ = writeln!(
            json,
            "    \"skew_hash_mod_p99_ms\": {:.3},",
            hm.server_p99_ms
        );
        let _ = writeln!(
            json,
            "    \"skew_p99_improvement\": {:.2},",
            hm.server_p99_ms / tc.server_p99_ms
        );
        if let Some((caps_off, caps_on)) = &greedy_pair {
            let _ = writeln!(json, "    \"greedy\": {{");
            let _ = writeln!(json, "      \"shards\": 1,");
            let _ = writeln!(
                json,
                "      \"greedy_requests\": {},",
                caps_on.greedy_requests
            );
            let _ = writeln!(
                json,
                "      \"polite_requests\": {},",
                caps_on.polite_requests
            );
            let _ = writeln!(json, "      \"conn_in_flight_cap\": {},", caps_on.conn_cap);
            let _ = writeln!(
                json,
                "      \"polite_p50_ms_caps_off\": {:.3},",
                caps_off.polite_p50_ms
            );
            let _ = writeln!(
                json,
                "      \"polite_p99_ms_caps_off\": {:.3},",
                caps_off.polite_p99_ms
            );
            let _ = writeln!(
                json,
                "      \"polite_p50_ms_caps_on\": {:.3},",
                caps_on.polite_p50_ms
            );
            let _ = writeln!(
                json,
                "      \"polite_p99_ms_caps_on\": {:.3},",
                caps_on.polite_p99_ms
            );
            let _ = writeln!(
                json,
                "      \"greedy_served_caps_on\": {},",
                caps_on.greedy_served
            );
            let _ = writeln!(
                json,
                "      \"greedy_shed_caps_on\": {},",
                caps_on.greedy_shed
            );
            let _ = writeln!(
                json,
                "      \"greedy_shed_caps_off\": {},",
                caps_off.greedy_shed
            );
            let _ = writeln!(
                json,
                "      \"polite_p99_improvement\": {:.2}",
                caps_off.polite_p99_ms / caps_on.polite_p99_ms
            );
            let _ = writeln!(json, "    }},");
        }
        let _ = writeln!(json, "    \"rows\": [");
        for (i, r) in load_rows.iter().enumerate() {
            let routing = match r.routing {
                RoutingMode::TwoChoices => "two-choices",
                RoutingMode::HashMod => "hash-mod",
            };
            let _ = writeln!(
                json,
                "      {{\"label\": \"{}\", \"connections\": {}, \"shards\": {}, \
                 \"routing\": \"{}\", \"target_qps\": {:.0}, \"open_loop\": {}, \
                 \"requests\": {}, \
                 \"qps\": {:.1}, \"client_p50_ms\": {:.3}, \"client_p99_ms\": {:.3}, \
                 \"server_p50_ms\": {:.3}, \"server_p99_ms\": {:.3}}}{}",
                r.label,
                r.connections,
                r.shards,
                routing,
                r.target_qps,
                r.open_loop,
                r.requests,
                r.qps,
                r.client_p50_ms,
                r.client_p99_ms,
                r.server_p50_ms,
                r.server_p99_ms,
                if i + 1 < load_rows.len() { "," } else { "" },
            );
        }
        let _ = writeln!(json, "    ]");
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(
        json,
        "  \"note\": \"restored replay verified cache-hit and byte-identical to cold; \
         1-core dev host, so shard threads interleave — ratios measure per-request work \
         saved, not parallel scaling\""
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
