//! Serving-layer throughput trajectory: cold vs. warm vs.
//! restored-from-disk compiles through the sharded
//! [`gmc_serve::CompileService`], written to `BENCH_serve.json`.
//!
//! Three phases over the same workload of distinct `.gmc` programs:
//!
//! * **cold** — a fresh service compiles every shape for the first time
//!   (full enumeration + selection per shape);
//! * **warm** — the same service replays the workload; every request is
//!   a shard-cache hit (lookup + emit only);
//! * **restored** — the service snapshots to disk, shuts down, and a
//!   *new* service starts from the snapshot; the replay must run at
//!   warm speed (every request a cache hit) with byte-identical
//!   artifacts, proving a restart never pays the cold path again.
//!
//! Each phase is best-of-`reps` (fresh service per cold/restored rep) to
//! tame timer wobble on the 1-core dev host. Run with
//! `cargo run --release --bin bench_serve [--smoke] [output.json]`;
//! `--smoke` shrinks the workload for CI.

use gmc_core::CompileOptions;
use gmc_serve::{CompileRequest, CompileResponse, CompileService, Emit, ServeConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// A workload of distinct chain programs: lengths 3..=3+k with feature
/// mixes cycling through general, triangular-solve, and SPD operands.
fn workload(count: usize) -> Vec<String> {
    let decls = [
        ("General, Singular", ""),
        ("LowerTri, NonSingular", "^-1"),
        ("Symmetric, SPD", ""),
        ("UpperTri, NonSingular", ""),
        ("General, Singular", ""),
    ];
    (0..count)
        .map(|i| {
            let n = 3 + i % 4;
            let mut src = String::new();
            let mut rhs = Vec::new();
            for j in 0..n {
                // Rotate the feature mix per program so every source has
                // a distinct shape.
                let (features, op) = decls[(i + j) % decls.len()];
                let _ = writeln!(src, "Matrix M{j} <{features}>;");
                rhs.push(format!("M{j}{op}"));
            }
            let _ = writeln!(src, "X{i} := {};", rhs.join(" * "));
            src
        })
        .collect()
}

fn submit_all(service: &mut CompileService, sources: &[String]) -> Vec<CompileResponse> {
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: Some(format!("x{i}")),
            source: source.clone(),
            emit: Emit::Both,
        });
    }
    let mut responses = service.drain();
    responses.sort_by_key(|r| r.id);
    responses
}

fn files_of(responses: &[CompileResponse]) -> Vec<Vec<(String, String)>> {
    responses
        .iter()
        .map(|r| r.result.as_ref().expect("workload compiles").files.clone())
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let (distinct, warm_rounds, reps) = if smoke { (6, 2, 2) } else { (12, 4, 5) };
    let shards = 2usize;
    let sources = workload(distinct);
    let options = CompileOptions {
        training_instances: 300,
        expand_by: 1,
        ..CompileOptions::default()
    };
    let snapshot_path = std::env::temp_dir().join("bench_serve_snapshot.txt");
    let _ = std::fs::remove_file(&snapshot_path);
    let config = |snap: bool| ServeConfig {
        shards,
        options: options.clone(),
        snapshot_path: snap.then(|| snapshot_path.clone()),
        ..ServeConfig::default()
    };

    // Cold: fresh service per rep, every shape selected from scratch.
    let mut cold_s = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..reps {
        let mut service = CompileService::start(config(false)).expect("cold start");
        let t = Instant::now();
        let responses = submit_all(&mut service, &sources);
        cold_s = cold_s.min(t.elapsed().as_secs_f64());
        assert!(responses.iter().all(|r| !r.cache_hit), "cold = no hits");
        reference = files_of(&responses);
        let _ = service.shutdown();
    }

    // Warm: one service, replay the workload after a priming pass.
    let mut service = CompileService::start(config(true)).expect("warm start");
    let primed = submit_all(&mut service, &sources);
    assert_eq!(files_of(&primed), reference, "priming matches cold");
    let mut warm_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..warm_rounds {
            let responses = submit_all(&mut service, &sources);
            debug_assert!(responses.iter().all(|r| r.cache_hit));
        }
        warm_s = warm_s.min(t.elapsed().as_secs_f64() / warm_rounds as f64);
    }
    service
        .save_snapshot(&snapshot_path)
        .expect("write snapshot");
    let _ = service.shutdown();
    let snapshot_bytes = std::fs::metadata(&snapshot_path)
        .map(|m| m.len())
        .unwrap_or(0);

    // Restored: brand-new service per rep, loading the snapshot from
    // disk; the whole workload must be cache hits with identical bytes.
    let mut restored_s = f64::INFINITY;
    for _ in 0..reps {
        let mut service = CompileService::start(config(true)).expect("restored start");
        let t = Instant::now();
        let responses = submit_all(&mut service, &sources);
        restored_s = restored_s.min(t.elapsed().as_secs_f64());
        assert!(
            responses.iter().all(|r| r.cache_hit),
            "every restored request must be a cache hit"
        );
        assert_eq!(
            files_of(&responses),
            reference,
            "restored artifacts must be byte-identical to cold"
        );
        let stats = service.shutdown();
        assert_eq!(stats.restored(), distinct);
    }

    let per_req = |s: f64| s * 1e3 / distinct as f64;
    let (cold_ms, warm_ms, restored_ms) = (per_req(cold_s), per_req(warm_s), per_req(restored_s));
    let restored_speedup = cold_ms / restored_ms;
    let warm_speedup = cold_ms / warm_ms;
    println!(
        "serve {distinct} shapes x {shards} shards: cold {cold_ms:8.3} ms/req   \
         warm {warm_ms:8.3} ms/req ({warm_speedup:.1}x)   \
         restored {restored_ms:8.3} ms/req ({restored_speedup:.1}x, snapshot {snapshot_bytes} B)"
    );

    let mut json = String::from("{\n  \"bench\": \"serve_cold_warm_restored\",\n");
    let _ = writeln!(json, "  \"unit\": \"ms_per_request\",");
    let _ = writeln!(json, "  \"distinct_shapes\": {distinct},");
    let _ = writeln!(json, "  \"warm_rounds\": {warm_rounds},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cold_ms_per_req\": {cold_ms:.4},");
    let _ = writeln!(json, "  \"warm_ms_per_req\": {warm_ms:.4},");
    let _ = writeln!(json, "  \"restored_ms_per_req\": {restored_ms:.4},");
    let _ = writeln!(json, "  \"warm_speedup_vs_cold\": {warm_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"restored_speedup_vs_cold\": {restored_speedup:.2},"
    );
    let _ = writeln!(json, "  \"snapshot_bytes\": {snapshot_bytes},");
    let _ = writeln!(
        json,
        "  \"note\": \"restored replay verified cache-hit and byte-identical to cold; \
         1-core dev host, so shard threads interleave — ratios measure per-request work \
         saved, not parallel scaling\""
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
