//! Serving-layer throughput trajectory: cold vs. warm vs.
//! restored-from-disk compiles through the sharded
//! [`gmc_serve::CompileService`], written to `BENCH_serve.json`.
//!
//! Three phases over the same workload of distinct `.gmc` programs:
//!
//! * **cold** — a fresh service compiles every shape for the first time
//!   (full enumeration + selection per shape);
//! * **warm** — the same service replays the workload; every request is
//!   a shard-cache hit (lookup + emit only);
//! * **restored** — the service snapshots to disk, shuts down, and a
//!   *new* service starts from the snapshot; the replay must run at
//!   warm speed (every request a cache hit) with byte-identical
//!   artifacts, proving a restart never pays the cold path again.
//!
//! The warm phase runs twice — stage tracing on (the default) and
//! forced off — and records the difference as `trace_overhead_pct`
//! (required ≤ 3%). Overload-burst completion percentiles come from
//! the shared [`gmc_obs::Histogram`] the service itself publishes.
//!
//! Each phase is best-of-`reps` (fresh service per cold/restored rep) to
//! tame timer wobble on the 1-core dev host. Run with
//! `cargo run --release --bin bench_serve [--smoke] [output.json]`;
//! `--smoke` shrinks the workload for CI.

use gmc_core::CompileOptions;
use gmc_obs::{force_trace_mode, Histogram, TraceMode};
use gmc_serve::fault::FaultPlan;
use gmc_serve::{CompileRequest, CompileResponse, CompileService, Emit, FailureKind, ServeConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A workload of distinct chain programs: lengths 3..=3+k with feature
/// mixes cycling through general, triangular-solve, and SPD operands.
fn workload(count: usize) -> Vec<String> {
    let decls = [
        ("General, Singular", ""),
        ("LowerTri, NonSingular", "^-1"),
        ("Symmetric, SPD", ""),
        ("UpperTri, NonSingular", ""),
        ("General, Singular", ""),
    ];
    (0..count)
        .map(|i| {
            let n = 3 + i % 4;
            let mut src = String::new();
            let mut rhs = Vec::new();
            for j in 0..n {
                // Rotate the feature mix per program so every source has
                // a distinct shape.
                let (features, op) = decls[(i + j) % decls.len()];
                let _ = writeln!(src, "Matrix M{j} <{features}>;");
                rhs.push(format!("M{j}{op}"));
            }
            let _ = writeln!(src, "X{i} := {};", rhs.join(" * "));
            src
        })
        .collect()
}

fn submit_all(service: &mut CompileService, sources: &[String]) -> Vec<CompileResponse> {
    for (i, source) in sources.iter().enumerate() {
        service.submit(CompileRequest {
            id: i as u64,
            name: Some(format!("x{i}")),
            source: source.clone(),
            emit: Emit::Both,
            deadline: None,
        });
    }
    let mut responses = service.drain();
    responses.sort_by_key(|r| r.id);
    responses
}

fn files_of(responses: &[CompileResponse]) -> Vec<Vec<(String, String)>> {
    responses
        .iter()
        .map(|r| r.result.as_ref().expect("workload compiles").files.clone())
        .collect()
}

/// Outcome rates and completion-latency tail of an overload burst.
struct Overload {
    burst: usize,
    queue_cap: usize,
    delay_ms: u64,
    deadline_ms: u64,
    served: usize,
    shed: usize,
    expired: usize,
    shed_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn run_overload_burst(options: &CompileOptions, burst: usize) -> Overload {
    const QUEUE_CAP: usize = 16;
    const DELAY_MS: u64 = 25;
    const DEADLINE_MS: u64 = 100;
    let source = "Matrix A <General, Singular>; Matrix B <General, Singular>; X := A * B;";
    let config = ServeConfig {
        shards: 1,
        options: options.clone(),
        queue_cap: QUEUE_CAP,
        faults: FaultPlan::parse(&format!("delay:{DELAY_MS}")).expect("delay spec"),
        ..ServeConfig::default()
    };
    let mut service = CompileService::start(config).expect("overload start");

    let t0 = Instant::now();
    for i in 0..burst {
        service.submit(CompileRequest {
            id: i as u64,
            name: None,
            source: source.to_owned(),
            emit: Emit::Cpp,
            deadline: Some(Duration::from_millis(DEADLINE_MS)),
        });
    }
    // Completion latencies land in the same log-linear histogram the
    // service itself publishes, so the recorded percentiles use one
    // quantile definition across the bench and the metrics endpoint.
    let completions = Histogram::new();
    let (mut served, mut shed, mut expired) = (0usize, 0usize, 0usize);
    while let Some(response) = service.recv() {
        completions.record(t0.elapsed());
        match &response.result {
            Ok(_) => served += 1,
            Err(f) if f.kind == FailureKind::Overloaded => shed += 1,
            Err(f) if f.kind == FailureKind::DeadlineExceeded => expired += 1,
            Err(f) => panic!("unexpected failure under overload: {f}"),
        }
    }
    let _ = service.shutdown();

    assert_eq!(
        served + shed + expired,
        burst,
        "every burst request gets exactly one response"
    );
    assert!(
        shed > 0,
        "a {burst}-deep burst over a {QUEUE_CAP}-slot queue must shed"
    );
    let completions = completions.snapshot();
    assert_eq!(completions.count as usize, burst, "one sample per response");
    Overload {
        burst,
        queue_cap: QUEUE_CAP,
        delay_ms: DELAY_MS,
        deadline_ms: DEADLINE_MS,
        served,
        shed,
        expired,
        shed_rate: shed as f64 / burst as f64,
        p50_ms: completions.quantile_ms(0.5),
        p99_ms: completions.quantile_ms(0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let (distinct, warm_rounds, reps) = if smoke { (6, 2, 2) } else { (12, 4, 5) };
    let shards = 2usize;
    let sources = workload(distinct);
    let options = CompileOptions {
        training_instances: 300,
        expand_by: 1,
        ..CompileOptions::default()
    };
    let snapshot_path = std::env::temp_dir().join("bench_serve_snapshot.txt");
    let _ = std::fs::remove_file(&snapshot_path);
    let config = |snap: bool| ServeConfig {
        shards,
        options: options.clone(),
        snapshot_path: snap.then(|| snapshot_path.clone()),
        ..ServeConfig::default()
    };

    // Cold: fresh service per rep, every shape selected from scratch.
    let mut cold_s = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..reps {
        let mut service = CompileService::start(config(false)).expect("cold start");
        let t = Instant::now();
        let responses = submit_all(&mut service, &sources);
        cold_s = cold_s.min(t.elapsed().as_secs_f64());
        assert!(responses.iter().all(|r| !r.cache_hit), "cold = no hits");
        reference = files_of(&responses);
        let _ = service.shutdown();
    }

    // Warm: one service, replay the workload after a priming pass.
    // Measured twice — stage tracing on (the default) and forced off —
    // to price the recording itself (`trace_overhead_pct`). The traced
    // run also writes the snapshot used by the restored phase.
    let measure_warm = |mode: TraceMode, snap: bool| -> f64 {
        force_trace_mode(Some(mode));
        let mut service = CompileService::start(config(snap)).expect("warm start");
        let primed = submit_all(&mut service, &sources);
        assert_eq!(files_of(&primed), reference, "priming matches cold");
        let mut warm_s = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            for _ in 0..warm_rounds {
                let responses = submit_all(&mut service, &sources);
                debug_assert!(responses.iter().all(|r| r.cache_hit));
            }
            warm_s = warm_s.min(t.elapsed().as_secs_f64() / warm_rounds as f64);
        }
        if snap {
            service
                .save_snapshot(&snapshot_path)
                .expect("write snapshot");
        }
        let _ = service.shutdown();
        warm_s
    };
    let warm_s = measure_warm(TraceMode::On, true);
    let warm_off_s = measure_warm(TraceMode::Off, false);
    force_trace_mode(None);
    let snapshot_bytes = std::fs::metadata(&snapshot_path)
        .map(|m| m.len())
        .unwrap_or(0);

    // Restored: brand-new service per rep, loading the snapshot from
    // disk; the whole workload must be cache hits with identical bytes.
    let mut restored_s = f64::INFINITY;
    for _ in 0..reps {
        let mut service = CompileService::start(config(true)).expect("restored start");
        let t = Instant::now();
        let responses = submit_all(&mut service, &sources);
        restored_s = restored_s.min(t.elapsed().as_secs_f64());
        assert!(
            responses.iter().all(|r| r.cache_hit),
            "every restored request must be a cache hit"
        );
        assert_eq!(
            files_of(&responses),
            reference,
            "restored artifacts must be byte-identical to cold"
        );
        let stats = service.shutdown();
        assert_eq!(stats.restored(), distinct as u64);
    }

    // Overload burst: a single deliberately slowed shard (25 ms injected
    // delay per compile) with a small admission queue and a 100 ms
    // deadline takes a burst of requests all at once. This measures the
    // *robustness* envelope, not throughput: how much of the burst is
    // shed at admission, how much expires in the queue, and the
    // completion-latency tail of what does get served. Asserts are
    // structural only (exactly one response per request, the three
    // outcome classes partition the burst) — the rates themselves are
    // the recorded result.
    let burst = if smoke { 40 } else { 120 };
    let overload = run_overload_burst(&options, burst);

    let per_req = |s: f64| s * 1e3 / distinct as f64;
    let (cold_ms, warm_ms, restored_ms) = (per_req(cold_s), per_req(warm_s), per_req(restored_s));
    let warm_notrace_ms = per_req(warm_off_s);
    let trace_overhead_pct = (warm_ms / warm_notrace_ms - 1.0) * 100.0;
    let restored_speedup = cold_ms / restored_ms;
    let warm_speedup = cold_ms / warm_ms;
    println!(
        "serve {distinct} shapes x {shards} shards: cold {cold_ms:8.3} ms/req   \
         warm {warm_ms:8.3} ms/req ({warm_speedup:.1}x)   \
         restored {restored_ms:8.3} ms/req ({restored_speedup:.1}x, snapshot {snapshot_bytes} B)"
    );
    println!(
        "warm replay tracing off: {warm_notrace_ms:8.3} ms/req   \
         recording overhead {trace_overhead_pct:+.2}% (target <= 3%)"
    );
    println!(
        "overload burst {burst} -> 1 shard (queue {cap}, +{delay} ms/compile, {dl} ms deadline): \
         served {served}   expired {expired}   shed {shed} ({rate:.0}%)   \
         completion p50 {p50:.1} ms   p99 {p99:.1} ms",
        burst = overload.burst,
        cap = overload.queue_cap,
        delay = overload.delay_ms,
        dl = overload.deadline_ms,
        served = overload.served,
        expired = overload.expired,
        shed = overload.shed,
        rate = overload.shed_rate * 100.0,
        p50 = overload.p50_ms,
        p99 = overload.p99_ms,
    );

    let mut json = String::from("{\n  \"bench\": \"serve_cold_warm_restored\",\n");
    let _ = writeln!(json, "  \"unit\": \"ms_per_request\",");
    let _ = writeln!(json, "  \"distinct_shapes\": {distinct},");
    let _ = writeln!(json, "  \"warm_rounds\": {warm_rounds},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cold_ms_per_req\": {cold_ms:.4},");
    let _ = writeln!(json, "  \"warm_ms_per_req\": {warm_ms:.4},");
    let _ = writeln!(json, "  \"warm_notrace_ms_per_req\": {warm_notrace_ms:.4},");
    let _ = writeln!(json, "  \"trace_overhead_pct\": {trace_overhead_pct:.2},");
    let _ = writeln!(json, "  \"restored_ms_per_req\": {restored_ms:.4},");
    let _ = writeln!(json, "  \"warm_speedup_vs_cold\": {warm_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"restored_speedup_vs_cold\": {restored_speedup:.2},"
    );
    let _ = writeln!(json, "  \"snapshot_bytes\": {snapshot_bytes},");
    let _ = writeln!(json, "  \"overload_burst\": {},", overload.burst);
    let _ = writeln!(json, "  \"overload_queue_cap\": {},", overload.queue_cap);
    let _ = writeln!(json, "  \"overload_delay_ms\": {},", overload.delay_ms);
    let _ = writeln!(
        json,
        "  \"overload_deadline_ms\": {},",
        overload.deadline_ms
    );
    let _ = writeln!(json, "  \"overload_served\": {},", overload.served);
    let _ = writeln!(json, "  \"overload_expired\": {},", overload.expired);
    let _ = writeln!(json, "  \"overload_shed\": {},", overload.shed);
    let _ = writeln!(json, "  \"overload_shed_rate\": {:.4},", overload.shed_rate);
    let _ = writeln!(
        json,
        "  \"overload_completion_p50_ms\": {:.3},",
        overload.p50_ms
    );
    let _ = writeln!(
        json,
        "  \"overload_completion_p99_ms\": {:.3},",
        overload.p99_ms
    );
    let _ = writeln!(
        json,
        "  \"note\": \"restored replay verified cache-hit and byte-identical to cold; \
         1-core dev host, so shard threads interleave — ratios measure per-request work \
         saved, not parallel scaling\""
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
