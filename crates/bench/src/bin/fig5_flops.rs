//! Reproduction of **Fig. 5** (Sec. VII-A): empirical CDFs of the ratio
//! over the optimal number of FLOPs for the base set `E_s` (Theorem 2),
//! the expanded sets `E_s1` and `E_s2` (Algorithm 1, one and two steps),
//! and the left-to-right variant `L`, for chain lengths `n = 5, 6, 7`.
//!
//! Paper setup: all `10^n - 9^n` shapes, training on 1e5 instances with
//! sizes in `[2, 1000]`, validation on 1e3 instances per shape. Defaults
//! here are scaled to finish in minutes; pass `--paper-scale` dimensions
//! via the flags to approach the full experiment:
//!
//! ```text
//! cargo run -p gmc-bench --release --bin fig5_flops -- \
//!     --shapes 200 --train 5000 --validate 1000
//! ```

use gmc_bench::ecdf::{ascii_plot, csv_curves, Ecdf};
use gmc_bench::report::arg_flag;
use gmc_bench::report::{arg_u64, arg_usize, arg_value, print_header, print_row};
use gmc_bench::workload::{enumerate_shapes, sample_shapes, ShapeSampler};
use gmc_core::all_variants;
use gmc_core::{
    builder::left_to_right_variant, expand::CostMatrix, expand_set, select_base_set, Objective,
};
use gmc_ir::InstanceSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let shapes_per_n = arg_usize(&args, "--shapes", 40);
    let train = arg_usize(&args, "--train", 2000);
    let validate = arg_usize(&args, "--validate", 200);
    let lo = arg_u64(&args, "--lo", 2);
    let hi = arg_u64(&args, "--hi", 1000);
    let seed = arg_u64(&args, "--seed", 0xf165);

    println!("Fig. 5 reproduction: FLOP ratio over optimum");
    println!(
        "shapes/n = {shapes_per_n}, training = {train}, validation = {validate}, sizes in [{lo}, {hi}]"
    );
    println!("(paper: all 10^n - 9^n shapes, 1e5 training, 1e3 validation)");

    let all_shapes = arg_flag(&args, "--all-shapes");
    if all_shapes {
        println!("--all-shapes: exhaustively enumerating the 10^n - 9^n shapes per n (slow)");
    }

    // `--only-n 5` restricts the sweep (useful with --all-shapes, whose
    // shape count grows by ~10x per unit of n).
    let only_n = arg_value(&args, "--only-n").and_then(|v| v.parse::<usize>().ok());

    let sampler = ShapeSampler::uniform();
    for n in [5usize, 6, 7] {
        if only_n.is_some_and(|only| only != n) {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(seed + n as u64);
        let shapes = if all_shapes {
            enumerate_shapes(n).collect()
        } else {
            sample_shapes(&sampler, &mut rng, n, shapes_per_n)
        };

        let mut ecdf_es = Ecdf::new();
        let mut ecdf_es1 = Ecdf::new();
        let mut ecdf_es2 = Ecdf::new();
        let mut ecdf_l = Ecdf::new();

        for shape in &shapes {
            let inst_sampler = InstanceSampler::new(shape, lo, hi);
            let training = inst_sampler.sample_many(&mut rng, train);
            let pool = all_variants(shape).expect("valid shape");
            let matrix = CostMatrix::flops(&pool, &training);

            let base = select_base_set(shape, &training, matrix.optimal()).expect("base set");
            let base_idx: Vec<usize> = base
                .variants
                .iter()
                .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
                .collect();
            // One and two greedy expansion steps, minimizing average penalty
            // on the training set (Sec. VII-A).
            let es1 = expand_set(
                &matrix,
                &base_idx,
                base_idx.len() + 1,
                Objective::AvgPenalty,
            );
            let es2 = expand_set(
                &matrix,
                &base_idx,
                base_idx.len() + 2,
                Objective::AvgPenalty,
            );
            let l = left_to_right_variant(shape).expect("L variant");

            for q in inst_sampler.sample_many(&mut rng, validate) {
                let costs: Vec<f64> = pool.iter().map(|v| v.flops(&q)).collect();
                let opt = costs.iter().copied().fold(f64::INFINITY, f64::min);
                let best =
                    |set: &[usize]| set.iter().map(|&i| costs[i]).fold(f64::INFINITY, f64::min);
                ecdf_es.push(best(&base_idx) / opt);
                ecdf_es1.push(best(&es1) / opt);
                ecdf_es2.push(best(&es2) / opt);
                ecdf_l.push(l.flops(&q) / opt);
            }
        }

        print_header(&format!("n = {n} ({} shapes)", shapes.len()));
        print_row("E_s", &ecdf_es.summary());
        print_row("E_s1", &ecdf_es1.summary());
        print_row("E_s2", &ecdf_es2.summary());
        print_row("L", &ecdf_l.summary());

        // The figure itself: eCDF curves over the paper's x-range.
        let series = [
            ("E_s", &ecdf_es),
            ("E_s1", &ecdf_es1),
            ("E_s2", &ecdf_es2),
            ("L", &ecdf_l),
        ];
        println!("\n{}", ascii_plot(&series, 1.0, 1.5, 60, 16));
        if let Some(dir) = arg_value(&args, "--csv") {
            let path = format!("{dir}/fig5_n{n}.csv");
            std::fs::create_dir_all(&dir).expect("create csv dir");
            std::fs::write(&path, csv_curves(&series, 1.0, 1.5, 101)).expect("write csv");
            println!("wrote {path}");
        }
    }

    println!("\npaper reference points:");
    println!("  E_s : ratio < 2.1 on all instances; <= 1.2 on ~96%");
    println!("  E_s1: max observed 1.62; <= 1.05 on > 92%");
    println!("  E_s2: max observed 1.38; <= 1.05 on > 99%");
    println!("  L   : ratio > 465 on some instances; > 1.5 on > 23%");
}
