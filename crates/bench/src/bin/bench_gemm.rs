//! GEMM perf-trajectory harness: measures the blocked kernel against the
//! seed scalar kernel and writes `BENCH_gemm.json` so later PRs can track
//! the FLOP-rate trajectory.
//!
//! Run with `cargo run --release --bin bench_gemm [output.json]`.

use gmc_linalg::{gemm_blocked, gemm_scalar, random_general, Matrix, Transpose};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const SIZES: [usize; 4] = [64, 256, 512, 1024];

/// Best-of-`reps` GFLOP/s for one kernel at size n.
fn gflops<F: FnMut(&Matrix, &Matrix, &mut Matrix)>(n: usize, mut kernel: F) -> f64 {
    let mut rng = StdRng::seed_from_u64(n as u64);
    let a = random_general(&mut rng, n, n);
    let b = random_general(&mut rng, n, n);
    let mut c = Matrix::zeros(n, n);
    let flops = 2.0 * (n as f64).powi(3);
    // Warm-up (also faults in the packing workspace).
    kernel(&a, &b, &mut c);
    let reps = (5e8 / flops).clamp(1.0, 20.0) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(3) {
        let t = Instant::now();
        kernel(&a, &b, &mut c);
        best = best.min(t.elapsed().as_secs_f64());
    }
    flops / best / 1e9
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gemm.json".to_owned());
    let mut rows = Vec::new();
    for n in SIZES {
        let blocked = gflops(n, |a, b, c| {
            gemm_blocked(1.0, a, Transpose::No, b, Transpose::No, 0.0, c);
        });
        let scalar = gflops(n, |a, b, c| {
            gemm_scalar(1.0, a, Transpose::No, b, Transpose::No, 0.0, c);
        });
        println!(
            "n={n:<5} blocked {blocked:7.3} GFLOP/s   scalar {scalar:7.3} GFLOP/s   speedup {:.2}x",
            blocked / scalar
        );
        rows.push((n, blocked, scalar));
    }

    let mut json =
        String::from("{\n  \"bench\": \"gemm\",\n  \"unit\": \"GFLOP/s\",\n  \"sizes\": [\n");
    for (idx, (n, blocked, scalar)) in rows.iter().enumerate() {
        let comma = if idx + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"blocked\": {blocked:.4}, \"scalar\": {scalar:.4}, \"speedup\": {:.4}}}{comma}",
            blocked / scalar
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
