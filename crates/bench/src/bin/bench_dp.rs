//! Compiler-latency trajectory harness: times the flat interned DP solver
//! against the original HashMap formulation on 20-operand chains — cold
//! (fresh solver per solve) and warm (one reusable [`DpSolver`], its
//! interner/memo/arena allocation-free after the first solve, with the
//! final-state fold running on the selection engine's shared
//! first-strict-minimum reduction) — and writes `BENCH_dp.json`.
//!
//! Run with `cargo run --release --bin bench_dp [--smoke] [output.json]`.

use gmc_core::dp::optimal_cost_reference;
use gmc_core::{optimal_cost, DpSolver};
use gmc_ir::{Features, Instance, Operand, Property, Shape, Structure};
use std::fmt::Write as _;
use std::time::Instant;

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut out_path = "BENCH_dp.json".to_owned();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let g = Operand::plain(Features::general());
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let chains: [(&str, Vec<Operand>); 2] = [
        ("general-20", (0..20).map(|_| g).collect()),
        (
            "mixed-20",
            (0..20).map(|i| if i % 3 == 0 { l } else { g }).collect(),
        ),
    ];

    let mut rows = Vec::new();
    for (name, ops) in chains {
        let shape = Shape::new(ops).unwrap();
        let sizes: Vec<u64> = (0..21).map(|i| 2 + (i * 37) % 100).collect();
        let inst = Instance::new(sizes);
        // Warm-up + sanity: all solvers must agree bit-for-bit.
        let mut solver = DpSolver::new(&shape);
        let warm_cost = solver.optimal_cost(&inst).unwrap();
        let fast_cost = optimal_cost(&shape, &inst).unwrap();
        let ref_cost = optimal_cost_reference(&shape, &inst).unwrap();
        assert_eq!(fast_cost.to_bits(), ref_cost.to_bits(), "solver mismatch");
        assert_eq!(warm_cost.to_bits(), fast_cost.to_bits(), "warm mismatch");

        let reps = if smoke { 5 } else { 300 };
        let flat = best_of(reps, || optimal_cost(&shape, &inst).unwrap());
        let warm = best_of(reps, || solver.optimal_cost(&inst).unwrap());
        let reference = best_of(reps, || optimal_cost_reference(&shape, &inst).unwrap());
        println!(
            "{name:<12} warm {:8.1} us   flat {:8.1} us   reference {:8.1} us   \
             speedup {:.2}x (warm {:.2}x)",
            warm * 1e6,
            flat * 1e6,
            reference * 1e6,
            reference / flat,
            reference / warm,
        );
        rows.push((name, warm, flat, reference));
    }

    let mut json =
        String::from("{\n  \"bench\": \"optimal_cost\",\n  \"unit\": \"us\",\n  \"chains\": [\n");
    for (idx, (name, warm, flat, reference)) in rows.iter().enumerate() {
        let comma = if idx + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"chain\": \"{name}\", \"warm_us\": {:.2}, \"flat_us\": {:.2}, \
             \"reference_us\": {:.2}, \"speedup\": {:.4}, \"warm_speedup\": {:.4}}}{comma}",
            warm * 1e6,
            flat * 1e6,
            reference * 1e6,
            reference / flat,
            reference / warm
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
