//! Compiler-latency trajectory harness: times the flat interned DP solver
//! against the original HashMap formulation on 20-operand chains and
//! writes `BENCH_dp.json`.
//!
//! Run with `cargo run --release --bin bench_dp [output.json]`.

use gmc_core::dp::optimal_cost_reference;
use gmc_core::optimal_cost;
use gmc_ir::{Features, Instance, Operand, Property, Shape, Structure};
use std::fmt::Write as _;
use std::time::Instant;

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dp.json".to_owned());
    let g = Operand::plain(Features::general());
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let chains: [(&str, Vec<Operand>); 2] = [
        ("general-20", (0..20).map(|_| g).collect()),
        (
            "mixed-20",
            (0..20).map(|i| if i % 3 == 0 { l } else { g }).collect(),
        ),
    ];

    let mut rows = Vec::new();
    for (name, ops) in chains {
        let shape = Shape::new(ops).unwrap();
        let sizes: Vec<u64> = (0..21).map(|i| 2 + (i * 37) % 100).collect();
        let inst = Instance::new(sizes);
        // Warm-up + sanity: both solvers must agree bit-for-bit.
        let fast_cost = optimal_cost(&shape, &inst).unwrap();
        let ref_cost = optimal_cost_reference(&shape, &inst).unwrap();
        assert_eq!(fast_cost.to_bits(), ref_cost.to_bits(), "solver mismatch");

        let reps = 300;
        let flat = best_of(reps, || optimal_cost(&shape, &inst).unwrap());
        let reference = best_of(reps, || optimal_cost_reference(&shape, &inst).unwrap());
        println!(
            "{name:<12} flat {:8.1} us   reference {:8.1} us   speedup {:.2}x",
            flat * 1e6,
            reference * 1e6,
            reference / flat
        );
        rows.push((name, flat, reference));
    }

    let mut json =
        String::from("{\n  \"bench\": \"optimal_cost\",\n  \"unit\": \"us\",\n  \"chains\": [\n");
    for (idx, (name, flat, reference)) in rows.iter().enumerate() {
        let comma = if idx + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"chain\": \"{name}\", \"flat_us\": {:.2}, \"reference_us\": {:.2}, \"speedup\": {:.4}}}{comma}",
            flat * 1e6,
            reference * 1e6,
            reference / flat
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
