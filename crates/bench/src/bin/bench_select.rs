//! End-to-end selection-latency trajectory: enumerate the Catalan-132
//! pool of a 7-operand chain, fill the cost matrix, select the Theorem-2
//! base set, and run the Algorithm-1 expansion — once with a serial
//! session (`jobs = 1`) and once with the session's full thread budget —
//! writing `BENCH_select.json`.
//!
//! The two runs must select identical variant sets (the session pins
//! parallel == serial bit for bit); only wall-clock may differ. Build
//! with `--features parallel` to exercise the threaded scan; without the
//! feature (or on a single-core host) the "parallel" row degenerates to
//! serial and the JSON says so.
//!
//! Run with `cargo run --release [--features parallel] --bin bench_select
//! [output.json]`.

use gmc_core::{CompileSession, Objective};
use gmc_ir::{Features, InstanceSampler, Operand, Shape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// One full selection pass; returns the expanded index set.
fn select_once(session: &mut CompileSession, shape: &Shape) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(1234);
    let sampler = InstanceSampler::new(shape, 2, 500);
    let training = sampler.sample_many(&mut rng, 400);
    let pool = session.all_variants(shape).expect("pool under cap");
    let matrix = session.cost_matrix(&pool, &training);
    let base = gmc_core::select_base_set(shape, &training, matrix.optimal()).expect("base set");
    let initial: Vec<usize> = base
        .variants
        .iter()
        .map(|v| {
            pool.iter()
                .position(|p| p.paren() == v.paren())
                .expect("base variant in pool")
        })
        .collect();
    session.expand_set(&initial, initial.len() + 4, Objective::AvgPenalty)
}

fn best_of<F: FnMut() -> Vec<usize>>(reps: usize, mut f: F) -> (f64, Vec<usize>) {
    let mut best = f64::INFINITY;
    let mut result = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        result = std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_select.json".to_owned());
    let g = Operand::plain(Features::general());
    // n = 7: Catalan(6) = 132 variants, the paper's experiment scale.
    let shape = Shape::new(vec![g; 7]).unwrap();

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let parallel_feature = cfg!(feature = "parallel");

    let reps = 20;
    let mut serial_session = CompileSession::new();
    serial_session.set_jobs(1);
    let (serial_s, serial_set) = best_of(reps, || select_once(&mut serial_session, &shape));

    let mut parallel_session = CompileSession::new();
    parallel_session.set_jobs(host_threads.max(2));
    let (parallel_s, parallel_set) = best_of(reps, || select_once(&mut parallel_session, &shape));

    assert_eq!(
        serial_set, parallel_set,
        "parallel selection must pick the identical variant set"
    );

    let speedup = serial_s / parallel_s;
    let note = if !parallel_feature {
        "parallel feature disabled: both rows ran the serial scan"
    } else if host_threads == 1 {
        "single-core host: thread budget caps the parallel path at 1x"
    } else {
        "serial vs threaded candidate scan on the same pool"
    };
    println!(
        "selection n=7 pool=132: serial {:8.2} ms   jobs={} {:8.2} ms   speedup {:.2}x ({note})",
        serial_s * 1e3,
        parallel_session.jobs(),
        parallel_s * 1e3,
        speedup
    );

    let mut json = String::from("{\n  \"bench\": \"selection_end_to_end\",\n  \"unit\": \"ms\",\n");
    let _ = writeln!(json, "  \"chain\": \"general-7\",");
    let _ = writeln!(json, "  \"pool_variants\": 132,");
    let _ = writeln!(json, "  \"training_instances\": 400,");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"parallel_feature\": {parallel_feature},");
    let _ = writeln!(json, "  \"serial_ms\": {:.3},", serial_s * 1e3);
    let _ = writeln!(json, "  \"parallel_ms\": {:.3},", parallel_s * 1e3);
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"selected_variants\": {},", serial_set.len());
    let _ = writeln!(json, "  \"note\": \"{note}\"");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
