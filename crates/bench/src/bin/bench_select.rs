//! End-to-end selection-latency trajectory: enumerate the Catalan-132
//! pool of a 7-operand chain, fill the cost matrix, select the Theorem-2
//! base set, and run the Algorithm-1 expansion — once on the engine's
//! forced-portable (scalar) rung, once on the host's best SIMD rung
//! (both `jobs = 1`), once with the session's full thread budget, and
//! once with the enumeration engine pinned to its naive per-tree
//! reference — writing `BENCH_select.json`.
//!
//! All runs must select identical variant sets: the engine's canonical
//! blocked reduction makes scalar == AVX2 == AVX-512 bit for bit, the
//! session pins parallel == serial, and the memoized enumeration engine
//! pins memo == naive pools; only wall-clock may differ. The recorded
//! `speedup_vs_pr3` compares the SIMD single-thread time to the 7.498 ms
//! the pre-engine (PR 3) scalar pipeline measured on the same workload
//! and host. An `enumerate_*` breakdown isolates `build_pool` itself —
//! the stage PR 4 left dominant — naive versus memoized.
//!
//! Run with `cargo run --release [--features parallel] --bin
//! bench_select [--smoke] [output.json]`.

use gmc_core::simd::{self, SimdLevel};
use gmc_core::{
    build_pool_with_mode, force_enum_mode, force_frag_mode, force_trace_mode, CompileSession,
    EnumMode, FragMode, Objective, ParenTree, TraceMode, Variant,
};
use gmc_ir::{Features, InstanceSampler, Operand, Property, Shape, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Single-thread end-to-end selection latency of the PR 3 pipeline on
/// this workload (dev host), the baseline the tentpole is measured
/// against (see `BENCH_select.json` history).
const PR3_SERIAL_MS: f64 = 7.498;

/// One full selection pass; returns the expanded index set.
fn select_once(session: &mut CompileSession, shape: &Shape) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(1234);
    let sampler = InstanceSampler::new(shape, 2, 500);
    let training = sampler.sample_many(&mut rng, 400);
    let pool = session.all_variants(shape).expect("pool under cap");
    let matrix = session.cost_matrix(&pool, &training);
    let base = gmc_core::select_base_set(shape, &training, matrix.optimal()).expect("base set");
    let initial: Vec<usize> = base
        .variants
        .iter()
        .map(|v| {
            pool.iter()
                .position(|p| p.paren() == v.paren())
                .expect("base variant in pool")
        })
        .collect();
    session.expand_set(&initial, initial.len() + 4, Objective::AvgPenalty)
}

/// The fragment-store workload: eight related 7-chains sharing a
/// structured five-operand prefix (every sub-span of the prefix — the
/// bulk of each chain's span DAG — recurs in all eight shapes), with
/// inverted/structured operands so per-node lowering (inversion
/// propagation, kernel assignment, inference) dominates splicing.
fn frag_workload() -> Vec<Shape> {
    let g = Operand::plain(Features::general());
    let sy = Operand::plain(Features::new(Structure::Symmetric, Property::Spd));
    let lo = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let up = Operand::plain(Features::new(Structure::UpperTri, Property::NonSingular));
    let prefix = [g, lo.inverted(), sy.inverted(), up.inverted(), sy];
    let tails: [[Operand; 2]; 8] = [
        [g, g],
        [g, sy],
        [lo, g],
        [sy.inverted(), g],
        [up.inverted(), sy],
        [g, lo.inverted()],
        [sy, up],
        [lo.inverted(), up.inverted()],
    ];
    tails
        .iter()
        .map(|tail| {
            let mut ops = prefix.to_vec();
            ops.extend_from_slice(tail);
            Shape::new(ops).expect("workload shapes are valid")
        })
        .collect()
}

fn best_of<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        result = Some(std::hint::black_box(f()));
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, result.expect("reps >= 1"))
}

fn main() {
    let mut out_path = "BENCH_select.json".to_owned();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let g = Operand::plain(Features::general());
    // n = 7: Catalan(6) = 132 variants, the paper's experiment scale.
    let shape = Shape::new(vec![g; 7]).unwrap();

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let parallel_feature = cfg!(feature = "parallel");
    let simd_level = simd::active_level();

    let reps = if smoke { 2 } else { 20 };

    // Headline rows use a **fresh session per rep** (cold-compile
    // regime: what the first selection of a shape pays, enumeration
    // memo included), so they stay comparable with the PR 3/PR 4
    // baselines, which re-enumerated the pool on every rep. The
    // memo-warm repeat — the serving regime — is recorded separately
    // below as `warm_session_ms`.
    let cold_select = |jobs: usize| {
        let mut session = CompileSession::new();
        session.set_jobs(jobs);
        select_once(&mut session, &shape)
    };

    // Scalar rung, jobs = 1: the engine's portable reference path.
    simd::force_level(Some(SimdLevel::Portable));
    let (scalar_s, scalar_set) = best_of(reps, || cold_select(1));

    // Best SIMD rung, jobs = 1: the single-thread headline.
    simd::force_level(None);
    let (simd_s, simd_set) = best_of(reps, || cold_select(1));

    // Full thread budget on the SIMD rung (1x on the 1-core dev host).
    let parallel_jobs = host_threads.max(2);
    let (parallel_s, parallel_set) = best_of(reps, || cold_select(parallel_jobs));

    // Warm-session regime: one session re-selecting its shape, the
    // PoolBuilder fragment memo and matrix scratch already hot.
    let mut warm_session = CompileSession::new();
    warm_session.set_jobs(1);
    let _ = select_once(&mut warm_session, &shape);
    let (warm_s, warm_set) = best_of(reps, || select_once(&mut warm_session, &shape));

    // Enumeration breakdown: `build_pool` alone (the stage PR 4 left
    // dominant), naive per-tree lowering vs the memoized span-DAG
    // engine, cold each rep (a fresh `PoolBuilder`, like a first
    // compile of the shape). Pools must be bit-identical.
    let trees = ParenTree::enumerate(0, shape.len() - 1);
    let (enum_naive_s, naive_pool) = best_of(reps, || {
        build_pool_with_mode(&shape, &trees, 1, EnumMode::Naive).expect("naive pool")
    });
    let (enum_memo_s, memo_pool) = best_of(reps, || {
        build_pool_with_mode(&shape, &trees, 1, EnumMode::Memoized).expect("memoized pool")
    });
    assert_eq!(
        naive_pool, memo_pool,
        "memoized enumeration must build the bit-identical pool"
    );

    // Full selection with the enumeration engine pinned to the naive
    // reference: the session path both engines feed must select the
    // identical set.
    force_enum_mode(Some(EnumMode::Naive));
    let (naive_sel_s, naive_sel_set) = best_of(reps, || cold_select(1));
    force_enum_mode(None);

    // Cross-shape fragment store: enumerate the 8-shape related
    // workload (shared structured prefix) in three regimes. `off` is
    // the GMC_FRAG=off control (store never consulted); `cold` is a
    // fresh store discovering the workload (later shapes already splice
    // the earlier shapes' spans); `warm` is the serving/restart regime —
    // a store that has seen the workload re-enumerating it, every
    // association node a same-frame hit. One session per pass either
    // way, shapes cycled so the per-shape memo is re-targeted (and
    // dropped) on every shape: the store is the only state carried.
    let workload = frag_workload();
    let enumerate_workload = |session: &mut CompileSession| -> Vec<Vec<Variant>> {
        workload
            .iter()
            .map(|s| session.all_variants(s).expect("workload under cap"))
            .collect()
    };
    force_frag_mode(Some(FragMode::Off));
    let (frag_off_s, off_pools) = best_of(reps, || {
        let mut session = CompileSession::new();
        session.set_jobs(1);
        enumerate_workload(&mut session)
    });
    force_frag_mode(Some(FragMode::On));
    let (frag_cold_s, cold_pools) = best_of(reps, || {
        let mut session = CompileSession::new();
        session.set_jobs(1);
        enumerate_workload(&mut session)
    });
    let mut warm_store = CompileSession::new();
    warm_store.set_jobs(1);
    let _ = enumerate_workload(&mut warm_store);
    let (frag_warm_s, warm_pools) = best_of(reps, || enumerate_workload(&mut warm_store));
    force_frag_mode(None);
    let warm_stats = warm_store.fragment_cache_stats();

    assert_eq!(
        off_pools, cold_pools,
        "cold-store pools must be bit-identical to the GMC_FRAG=off control"
    );
    assert_eq!(
        off_pools, warm_pools,
        "warm-store pools must be bit-identical to the GMC_FRAG=off control"
    );
    let frag_speedup = frag_cold_s / frag_warm_s;

    // Smoke sanity for the observability layer: the stage profile a
    // traced session records over one selection pass must account for
    // that pass's wall-clock within 2x in either direction — the spans
    // cover the dominant work without gross double-counting.
    if smoke {
        force_trace_mode(Some(TraceMode::On));
        let mut session = CompileSession::new();
        session.set_jobs(1);
        let t = Instant::now();
        let _ = std::hint::black_box(select_once(&mut session, &shape));
        let wall_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
        let total_us = session.stage_profile().total_us();
        force_trace_mode(None);
        assert!(
            total_us <= wall_us.saturating_mul(2) && wall_us <= total_us.saturating_mul(2),
            "stage-profile total {total_us} us vs wall-clock {wall_us} us: beyond 2x"
        );
        println!("smoke: stage profile {total_us} us vs wall-clock {wall_us} us (within 2x)");
    }

    assert_eq!(
        scalar_set, simd_set,
        "scalar and SIMD selection must pick the identical variant set"
    );
    assert_eq!(
        simd_set, parallel_set,
        "parallel selection must pick the identical variant set"
    );
    assert_eq!(
        simd_set, warm_set,
        "warm-session selection must pick the identical variant set"
    );
    assert_eq!(
        simd_set, naive_sel_set,
        "naive-enumeration selection must pick the identical variant set"
    );

    let scalar_vs_simd = scalar_s / simd_s;
    let enum_speedup = enum_naive_s / enum_memo_s;
    let speedup_vs_pr3 = PR3_SERIAL_MS / (simd_s * 1e3);
    let parallel_speedup = simd_s / parallel_s;
    let note = if !parallel_feature {
        "parallel feature disabled: the parallel row ran the serial scan"
    } else if host_threads == 1 {
        "single-core host: thread budget caps the parallel path at 1x"
    } else {
        "serial vs threaded candidate scan on the same pool"
    };
    println!(
        "selection n=7 pool=132 (cold session): scalar {:7.3} ms   {} {:7.3} ms ({:.2}x)   \
         jobs={} {:7.3} ms   warm {:7.3} ms   vs PR3 baseline {:.2} ms: {:.2}x",
        scalar_s * 1e3,
        simd_level.name(),
        simd_s * 1e3,
        scalar_vs_simd,
        parallel_jobs,
        parallel_s * 1e3,
        warm_s * 1e3,
        PR3_SERIAL_MS,
        speedup_vs_pr3,
    );
    println!(
        "enumerate n=7 pool=132: naive {:7.3} ms   memoized {:7.3} ms ({:.2}x)   \
         naive-mode selection {:7.3} ms",
        enum_naive_s * 1e3,
        enum_memo_s * 1e3,
        enum_speedup,
        naive_sel_s * 1e3,
    );
    println!(
        "fragment store, 8 related 7-chains: off {:7.3} ms   cold {:7.3} ms   \
         warm {:7.3} ms ({:.2}x vs cold)   warm hit rate {:.3}",
        frag_off_s * 1e3,
        frag_cold_s * 1e3,
        frag_warm_s * 1e3,
        frag_speedup,
        warm_stats.hit_rate(),
    );

    let mut json = String::from("{\n  \"bench\": \"selection_end_to_end\",\n  \"unit\": \"ms\",\n");
    let _ = writeln!(json, "  \"chain\": \"general-7\",");
    let _ = writeln!(json, "  \"pool_variants\": 132,");
    let _ = writeln!(json, "  \"training_instances\": 400,");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"parallel_feature\": {parallel_feature},");
    let _ = writeln!(json, "  \"simd_level\": \"{}\",", simd_level.name());
    let _ = writeln!(json, "  \"scalar_ms\": {:.3},", scalar_s * 1e3);
    let _ = writeln!(json, "  \"simd_ms\": {:.3},", simd_s * 1e3);
    let _ = writeln!(json, "  \"scalar_vs_simd_speedup\": {scalar_vs_simd:.4},");
    let _ = writeln!(json, "  \"pr3_serial_ms\": {PR3_SERIAL_MS},");
    let _ = writeln!(json, "  \"speedup_vs_pr3\": {speedup_vs_pr3:.4},");
    let _ = writeln!(
        json,
        "  \"pr3_baseline_note\": \"pr3_serial_ms was measured on the 1-core AVX-512 dev \
         host; speedup_vs_pr3 is only meaningful on that host\","
    );
    let _ = writeln!(
        json,
        "  \"regime_note\": \"scalar/simd/serial/parallel rows are cold-session \
         (fresh session per rep, enumeration included, comparable to the PR3/PR4 \
         baselines); warm_session_ms is the memo-warm repeat (serving regime)\","
    );
    let _ = writeln!(json, "  \"serial_ms\": {:.3},", simd_s * 1e3);
    let _ = writeln!(json, "  \"parallel_ms\": {:.3},", parallel_s * 1e3);
    let _ = writeln!(json, "  \"speedup\": {parallel_speedup:.4},");
    let _ = writeln!(json, "  \"warm_session_ms\": {:.3},", warm_s * 1e3);
    let _ = writeln!(json, "  \"enumerate_naive_ms\": {:.3},", enum_naive_s * 1e3);
    let _ = writeln!(json, "  \"enumerate_memo_ms\": {:.3},", enum_memo_s * 1e3);
    let _ = writeln!(json, "  \"enumerate_speedup\": {enum_speedup:.4},");
    let _ = writeln!(
        json,
        "  \"naive_enum_selection_ms\": {:.3},",
        naive_sel_s * 1e3
    );
    let _ = writeln!(
        json,
        "  \"frag_workload_note\": \"frag_* rows enumerate 8 related structured 7-chains \
         sharing a 5-operand prefix: off = GMC_FRAG=off control, cold = fresh store, \
         warm = store that has seen the workload (serving/restart regime); pools \
         bit-identical across all three\","
    );
    let _ = writeln!(json, "  \"frag_off_ms\": {:.3},", frag_off_s * 1e3);
    let _ = writeln!(json, "  \"frag_cold_ms\": {:.3},", frag_cold_s * 1e3);
    let _ = writeln!(json, "  \"frag_warm_ms\": {:.3},", frag_warm_s * 1e3);
    let _ = writeln!(json, "  \"frag_speedup\": {frag_speedup:.4},");
    let _ = writeln!(
        json,
        "  \"frag_warm_hit_rate\": {:.4},",
        warm_stats.hit_rate()
    );
    let _ = writeln!(json, "  \"frag_pools_bit_identical\": true,");
    let _ = writeln!(json, "  \"enum_pools_bit_identical\": true,");
    let _ = writeln!(json, "  \"selected_variants\": {},", simd_set.len());
    let _ = writeln!(json, "  \"scalar_simd_sets_bit_identical\": true,");
    let _ = writeln!(json, "  \"note\": \"{note}\"");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
