//! Ablation study of the Sec. IV design choices (per-experiment index E8
//! in DESIGN.md): how much FLOP cost do the inversion-propagation heuristic
//! and the feature-inference tables actually save?
//!
//! For each sampled shape we lower the *same* parenthesizations with the
//! optimization disabled and compare against the full compiler, so the
//! measured gap isolates the lowering quality from the parenthesization
//! choice.
//!
//! ```text
//! cargo run -p gmc-bench --release --bin ablation -- --shapes 100 --instances 50
//! ```

use gmc_bench::ecdf::Ecdf;
use gmc_bench::report::{arg_u64, arg_usize, print_header, print_row};
use gmc_bench::workload::{sample_shapes, ShapeSampler};
use gmc_core::{build_variant_with, BuildOptions, ParenTree};
use gmc_ir::InstanceSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", 7);
    let num_shapes = arg_usize(&args, "--shapes", 60);
    let instances = arg_usize(&args, "--instances", 30);
    let seed = arg_u64(&args, "--seed", 0xab1a);

    println!("Ablation of the Sec. IV variant-construction pipeline (n = {n})");
    println!(
        "{num_shapes} shapes x {instances} instances, ratio = ablated FLOPs / full-compiler FLOPs"
    );

    let full = BuildOptions::default();
    let no_invprop = BuildOptions {
        propagate_single_inversion: false,
        ..full
    };
    let no_infer = BuildOptions {
        infer_structures: false,
        ..full
    };
    let neither = BuildOptions {
        propagate_single_inversion: false,
        infer_structures: false,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ShapeSampler::uniform();
    let shapes = sample_shapes(&sampler, &mut rng, n, num_shapes);

    let mut e_invprop = Ecdf::new();
    let mut e_infer = Ecdf::new();
    let mut e_neither = Ecdf::new();

    for shape in &shapes {
        let trees: Vec<ParenTree> = (0..=n).map(|h| ParenTree::fanning_out(n, h)).collect();
        let inst_sampler = InstanceSampler::new(shape, 2, 1000);
        for q in inst_sampler.sample_many(&mut rng, instances) {
            // Best-in-family cost under each lowering mode, on the same
            // parenthesization family (the fanning-out set).
            let best = |opts: BuildOptions| -> f64 {
                trees
                    .iter()
                    .map(|t| {
                        build_variant_with(shape, t, opts)
                            .expect("builds")
                            .flops(&q)
                    })
                    .fold(f64::INFINITY, f64::min)
            };
            let base = best(full);
            e_invprop.push(best(no_invprop) / base);
            e_infer.push(best(no_infer) / base);
            e_neither.push(best(neither) / base);
        }
    }

    print_header("ablated cost / full-compiler cost (fanning-out family)");
    print_row("-invprop", &e_invprop.summary());
    print_row("-infer", &e_infer.summary());
    print_row("-both", &e_neither.summary());
    println!(
        "\nreading: a max of {:.2} for -invprop means disabling the inversion-propagation",
        e_invprop.max()
    );
    println!(
        "heuristic made some instance {:.0}% more expensive; 1.00 rows would mean the",
        (e_invprop.max() - 1.0) * 100.0
    );
    println!("optimization never matters on the sampled workload.");
}
