//! Accuracy assessment of the Sec. VII-B performance models (experiment
//! E10 in DESIGN.md): how well does `sum(FLOPs / interpolated FLOP/s)`
//! predict actual variant execution time?
//!
//! The paper's claim is that "rather simple performance models" beat plain
//! FLOP counts for expansion and dispatch; this binary quantifies the
//! model's error on freshly sampled shapes and instances (never seen at
//! model-measurement time), and compares its *ranking* quality against
//! FLOPs: how often does each cost estimate pick the truly fastest of two
//! random variants?
//!
//! ```text
//! cargo run -p gmc-bench --release --bin model_accuracy -- --shapes 10 --instances 6
//! ```

use gmc_bench::report::{arg_u64, arg_usize};
use gmc_bench::workload::{instantiate, sample_shapes, ShapeSampler};
use gmc_core::all_variants;
use gmc_ir::InstanceSampler;
use gmc_perfmodel::{measure_models, quick_grid, MeasureOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", 7);
    let num_shapes = arg_usize(&args, "--shapes", 6);
    let instances = arg_usize(&args, "--instances", 4);
    let lo = arg_u64(&args, "--lo", 24);
    let hi = arg_u64(&args, "--hi", 160);
    let seed = arg_u64(&args, "--seed", 0xacc);

    println!("performance-model accuracy (n = {n}, {num_shapes} shapes x {instances} instances, sizes [{lo}, {hi}])");
    let t0 = Instant::now();
    let models = measure_models(&MeasureOptions {
        grid: quick_grid(),
        reps: 2,
        seed,
    });
    println!("models measured in {:.1}s", t0.elapsed().as_secs_f64());

    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ShapeSampler::half_rectangular();

    let mut abs_pct_errors: Vec<f64> = Vec::new();
    let mut model_rank_hits = 0usize;
    let mut flop_rank_hits = 0usize;
    let mut rank_trials = 0usize;

    for shape in sample_shapes(&sampler, &mut rng, n, num_shapes) {
        let pool = all_variants(&shape).expect("valid shape");
        let inst_sampler = InstanceSampler::new(&shape, lo, hi);
        for q in inst_sampler.sample_many(&mut rng, instances) {
            let leaves = instantiate(&shape, &q, &mut rng);
            // Measure a subsample of variants (full pool is 132 at n = 7).
            let stride = (pool.len() / 16).max(1);
            let chosen: Vec<usize> = (0..pool.len()).step_by(stride).collect();
            let mut measured: Vec<(usize, f64, f64, f64)> = Vec::new();
            for &vi in &chosen {
                let v = &pool[vi];
                let t0 = Instant::now();
                let _ = v.execute(&leaves).expect("variant executes");
                let t = t0.elapsed().as_secs_f64().max(1e-9);
                measured.push((vi, t, models.variant_time(v, &q), v.flops(&q)));
            }
            for &(_, t, est, _) in &measured {
                abs_pct_errors.push(100.0 * (est - t).abs() / t);
            }
            // Pairwise ranking quality.
            for i in 0..measured.len() {
                for j in i + 1..measured.len() {
                    let (a, b) = (&measured[i], &measured[j]);
                    if (a.1 - b.1).abs() / a.1.max(b.1) < 0.05 {
                        continue; // too close to call
                    }
                    rank_trials += 1;
                    let truth = a.1 < b.1;
                    if (a.2 < b.2) == truth {
                        model_rank_hits += 1;
                    }
                    if (a.3 < b.3) == truth {
                        flop_rank_hits += 1;
                    }
                }
            }
        }
    }

    abs_pct_errors.sort_by(f64::total_cmp);
    let mean = abs_pct_errors.iter().sum::<f64>() / abs_pct_errors.len() as f64;
    let median = abs_pct_errors[abs_pct_errors.len() / 2];
    let p90 = abs_pct_errors[(abs_pct_errors.len() as f64 * 0.9) as usize];
    println!(
        "\ntime-estimate error over {} variant executions:",
        abs_pct_errors.len()
    );
    println!("  mean |error| = {mean:.1}%   median = {median:.1}%   p90 = {p90:.1}%");
    println!("\npairwise ranking accuracy over {rank_trials} decided pairs:");
    println!(
        "  performance models: {:.1}%    raw FLOPs: {:.1}%",
        100.0 * model_rank_hits as f64 / rank_trials.max(1) as f64,
        100.0 * flop_rank_hits as f64 / rank_trials.max(1) as f64
    );
    println!("\n(the models should rank at least as well as FLOPs — that gap is why");
    println!(" E_s1,M beats E_s1,F in Fig. 6)");
}
