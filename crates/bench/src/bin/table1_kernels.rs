//! Reproduction of **Table I** (Appendix B): the kernel catalogue with its
//! cost functions, plus a measurement column showing each kernel's
//! throughput on our substrate, and the worked example of Sec. IV.
//!
//! ```text
//! cargo run -p gmc-bench --release --bin table1_kernels -- --size 96
//! ```

use gmc_bench::report::{arg_u64, arg_usize};
use gmc_core::{all_variants, build_variant, ParenTree};
use gmc_ir::{Features, Instance, Operand, Property, Shape, Structure};
use gmc_kernels::{cost_flops, cost_poly, Kernel, KernelClass};
use gmc_linalg::Side;
use gmc_perfmodel::{kernel_dims, measure_models, MeasureOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size = arg_usize(&args, "--size", 64) as u64;
    let seed = arg_u64(&args, "--seed", 7);

    println!("Table I reproduction: kernels, cost functions, and measured throughput");
    println!("(cost functions printed over (m, k, n) = (q0, q1, q2); side = Left)\n");

    let models = measure_models(&MeasureOptions {
        grid: vec![(size / 2).max(8), size.max(16)],
        reps: 2,
        seed,
    });

    println!(
        "{:<8} {:<9} {:<5} {:<34} {:>14} {:>12}",
        "kernel", "class", "dims", "cost function (FLOPs)", "flops@m=n=k", "GFLOP/s"
    );
    for kernel in Kernel::ALL {
        let class = match kernel.class() {
            KernelClass::Multiply => "multiply",
            KernelClass::Solve => "solve",
        };
        let poly = cost_poly(kernel, Side::Left, false, 0, 1, 2);
        let flops = cost_flops(kernel, Side::Left, false, size, size, size);
        let point = [size as f64, size as f64, size as f64];
        let perf = models.kernel_perf(kernel, &point);
        println!(
            "{:<8} {:<9} {:<5} {:<34} {:>14.0} {:>12.3}",
            kernel.name(),
            class,
            kernel_dims(kernel),
            poly.to_string(),
            flops,
            perf / 1e9
        );
    }

    println!("\ncheap-branch cost functions (two-case kernels):");
    for kernel in [
        Kernel::Trtrmm,
        Kernel::Getrsv,
        Kernel::Potrsv,
        Kernel::Trtrsv,
    ] {
        let cheap = cost_poly(kernel, Side::Left, true, 0, 1, 2);
        let costly = cost_poly(kernel, Side::Left, false, 0, 1, 2);
        println!(
            "  {:<8} cheap: {:<22} otherwise: {}",
            kernel.name(),
            cheap.to_string(),
            costly
        );
    }

    worked_example();
}

/// The Sec. IV worked example: (L1 G2^{-1}) G3 evaluated naively versus
/// with the inversion-propagation rewrite.
fn worked_example() {
    println!("\nSec. IV worked example: X2 := (L1 G2^{{-1}}) G3, m = 1000, n = 500");
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
    let gi = Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
    let g = Operand::plain(Features::general());
    let shape = Shape::new(vec![l, gi, g]).unwrap();
    let m = 1000u64;
    let n = 500u64;
    let inst = Instance::new(vec![m, m, m, n]);

    let v = build_variant(&shape, &ParenTree::left_to_right(0, 2)).unwrap();
    let got = v.flops(&inst);
    let mf = m as f64;
    let nf = n as f64;
    let naive = 8.0 / 3.0 * mf.powi(3) + 2.0 * mf * mf * nf;
    let rewritten = 5.0 / 3.0 * mf.powi(3) + 2.0 * mf * mf * nf;
    println!("  naive (GETRSV + GEMM):        {naive:>16.0} FLOPs (8/3 m^3 + 2 m^2 n)");
    println!("  rewritten (TRSM + GEGESV):    {rewritten:>16.0} FLOPs (5/3 m^3 + 2 m^2 n)");
    println!("  our left-to-right variant:    {got:>16.0} FLOPs");
    assert!(
        (got - rewritten).abs() < 1e-6,
        "the compiler must apply the rewrite"
    );
    println!(
        "  -> the compiler applies the rewrite; saving = {:.1}%",
        100.0 * (naive - got) / naive
    );

    // Also show the full optimal-variant landscape for this shape.
    let pool = all_variants(&shape).unwrap();
    let best = pool
        .iter()
        .map(|v| v.flops(&inst))
        .fold(f64::INFINITY, f64::min);
    println!("  optimal over all parenthesizations: {best:>12.0} FLOPs");
}
