//! Reproduction of **Fig. 6** (Sec. VII-B): empirical CDFs of the
//! execution-time ratio over the time-optimal variant for `n = 7` chains:
//! the base set `E_s`, the sets expanded by one variant using FLOPs
//! (`E_s1,F`) and performance models (`E_s1,M`), the left-to-right variant
//! `L`, and the Armadillo-style baseline.
//!
//! Paper setup: 1e3 shapes x 1e3 instances, sizes in `[50, 1000]`, kernels
//! timed on a six-point grid, 14-core OpenBLAS. Our kernels are
//! single-threaded from-scratch implementations, so the default sizes are
//! scaled down (see DESIGN.md); the flags restore any part of the paper
//! scale:
//!
//! ```text
//! cargo run -p gmc-bench --release --bin fig6_time -- \
//!     --shapes 50 --validate 100 --lo 50 --hi 1000 --paper-grid
//! ```

use gmc_bench::armadillo::armadillo_execute;
use gmc_bench::ecdf::{ascii_plot, csv_curves, Ecdf};
use gmc_bench::report::{arg_flag, arg_u64, arg_usize, arg_value, print_header, print_row};
use gmc_bench::workload::{instantiate, sample_shapes, ShapeSampler};
use gmc_core::all_variants;
use gmc_core::{
    builder::left_to_right_variant, expand::CostMatrix, expand_set, select_base_set, Objective,
    Variant,
};
use gmc_ir::InstanceSampler;
use gmc_linalg::Matrix;
use gmc_perfmodel::{measure_models, paper_grid, quick_grid, MeasureOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn time_variant(v: &Variant, leaves: &[Matrix]) -> f64 {
    let t0 = Instant::now();
    let _ = v.execute(leaves).expect("variant executes");
    t0.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--n", 7);
    let num_shapes = arg_usize(&args, "--shapes", 8);
    let train = arg_usize(&args, "--train", 1000);
    let validate = arg_usize(&args, "--validate", 8);
    let lo = arg_u64(&args, "--lo", 24);
    let hi = arg_u64(&args, "--hi", 160);
    let seed = arg_u64(&args, "--seed", 0xf166);
    let use_paper_grid = arg_flag(&args, "--paper-grid");

    println!("Fig. 6 reproduction: execution-time ratio over the time-optimal variant (n = {n})");
    println!("shapes = {num_shapes}, validation = {validate}/shape, sizes in [{lo}, {hi}]");
    println!("(paper: 1e3 shapes, 1e3 instances each, sizes in [50, 1000])");

    // Optionally cache measured models on disk (`--models <path>`).
    let models_path = gmc_bench::report::arg_value(&args, "--models");
    let cached = models_path
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|text| gmc_perfmodel::from_text(&text).ok());
    let models = if let Some(models) = cached {
        println!(
            "\nloaded performance models from {}",
            models_path.as_deref().unwrap_or("?")
        );
        models
    } else {
        println!("\nmeasuring per-kernel performance models...");
        let grid = if use_paper_grid {
            paper_grid()
        } else {
            quick_grid()
        };
        let t0 = Instant::now();
        let models = measure_models(&MeasureOptions {
            grid,
            reps: 2,
            seed,
        });
        println!("models ready in {:.1}s", t0.elapsed().as_secs_f64());
        if let Some(path) = &models_path {
            std::fs::write(path, gmc_perfmodel::to_text(&models)).expect("write models");
            println!("saved models to {path}");
        }
        models
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ShapeSampler::half_rectangular();
    let shapes = sample_shapes(&sampler, &mut rng, n, num_shapes);

    let mut ecdf_es = Ecdf::new();
    let mut ecdf_es1f = Ecdf::new();
    let mut ecdf_es1m = Ecdf::new();
    let mut ecdf_l = Ecdf::new();
    let mut ecdf_arma = Ecdf::new();
    let mut speedup_sum = [0.0f64; 3];
    let mut speedup_n = 0usize;

    for (si, shape) in shapes.iter().enumerate() {
        let inst_sampler = InstanceSampler::new(shape, lo, hi);
        let training = inst_sampler.sample_many(&mut rng, train);
        let pool = all_variants(shape).expect("valid shape");
        let flop_matrix = CostMatrix::flops(&pool, &training);

        let base = select_base_set(shape, &training, flop_matrix.optimal()).expect("base set");
        let base_idx: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        // Expansion by one variant: once with FLOPs, once with models.
        let es1f = expand_set(
            &flop_matrix,
            &base_idx,
            base_idx.len() + 1,
            Objective::AvgPenalty,
        );
        let model_matrix = CostMatrix::with(&pool, &training, |v, q| models.variant_time(v, q));
        let es1m = expand_set(
            &model_matrix,
            &base_idx,
            base_idx.len() + 1,
            Objective::AvgPenalty,
        );
        let l_variant = left_to_right_variant(shape).expect("L");
        let l_idx = pool
            .iter()
            .position(|p| p.paren() == l_variant.paren())
            .expect("L is in the pool");

        for q in inst_sampler.sample_many(&mut rng, validate) {
            let leaves = instantiate(shape, &q, &mut rng);
            // Measure every variant once; the optimum is the fastest.
            let times: Vec<f64> = pool.iter().map(|v| time_variant(v, &leaves)).collect();
            let t_opt = times.iter().copied().fold(f64::INFINITY, f64::min);

            // Each flavor dispatches with its cost rule, then we charge the
            // measured time of the dispatched variant.
            let dispatch_flops = |set: &[usize]| -> f64 {
                let best = set
                    .iter()
                    .min_by(|&&a, &&b| pool[a].flops(&q).total_cmp(&pool[b].flops(&q)))
                    .copied()
                    .expect("non-empty set");
                times[best]
            };
            let dispatch_model = |set: &[usize]| -> f64 {
                let best = set
                    .iter()
                    .min_by(|&&a, &&b| {
                        models
                            .variant_time(&pool[a], &q)
                            .total_cmp(&models.variant_time(&pool[b], &q))
                    })
                    .copied()
                    .expect("non-empty set");
                times[best]
            };

            let t_es = dispatch_flops(&base_idx);
            let t_es1f = dispatch_flops(&es1f);
            let t_es1m = dispatch_model(&es1m);
            let t_l = times[l_idx];
            let t0 = Instant::now();
            let _ = armadillo_execute(shape, &leaves).expect("armadillo executes");
            let t_arma = t0.elapsed().as_secs_f64().max(1e-9);

            ecdf_es.push(t_es / t_opt);
            ecdf_es1f.push(t_es1f / t_opt);
            ecdf_es1m.push(t_es1m / t_opt);
            ecdf_l.push(t_l / t_opt);
            ecdf_arma.push(t_arma / t_opt);
            speedup_sum[0] += t_arma / t_es;
            speedup_sum[1] += t_arma / t_es1f;
            speedup_sum[2] += t_arma / t_es1m;
            speedup_n += 1;
        }
        println!("shape {}/{} done: {}", si + 1, shapes.len(), shape);
    }

    print_header("execution-time ratio over optimum");
    print_row("E_s", &ecdf_es.summary());
    print_row("E_s1,F", &ecdf_es1f.summary());
    print_row("E_s1,M", &ecdf_es1m.summary());
    print_row("L", &ecdf_l.summary());
    print_row("Arma", &ecdf_arma.summary());

    let series = [
        ("E_s", &ecdf_es),
        ("E_s1,F", &ecdf_es1f),
        ("E_s1,M", &ecdf_es1m),
        ("L", &ecdf_l),
        ("Arma", &ecdf_arma),
    ];
    println!("\n{}", ascii_plot(&series, 1.0, 3.0, 60, 16));
    if let Some(dir) = arg_value(&args, "--csv") {
        let path = format!("{dir}/fig6_n{n}.csv");
        std::fs::create_dir_all(&dir).expect("create csv dir");
        std::fs::write(&path, csv_curves(&series, 1.0, 3.0, 101)).expect("write csv");
        println!("wrote {path}");
    }

    let k = speedup_n.max(1) as f64;
    println!(
        "\naverage speed-up over Armadillo: E_s {:.2}x, E_s1,F {:.2}x, E_s1,M {:.2}x",
        speedup_sum[0] / k,
        speedup_sum[1] / k,
        speedup_sum[2] / k
    );
    println!("paper reference: 2.30x, 2.32x, 2.34x; L and Armadillo trail all generated sets");
}
