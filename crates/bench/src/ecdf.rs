//! Empirical CDF summaries of ratio-over-optimum samples.

/// A collection of per-instance ratios over the optimum (always >= 1).
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    samples: Vec<f64>,
}

impl Ecdf {
    /// Create an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Ecdf::default()
    }

    /// Record one ratio sample.
    pub fn push(&mut self, ratio: f64) {
        self.samples.push(ratio);
    }

    /// Merge another collection into this one.
    pub fn extend(&mut self, other: &Ecdf) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Fraction of samples at or below `x` (the eCDF value at `x`).
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s <= x).count() as f64 / self.samples.len() as f64
    }

    /// The `p`-th percentile (0–100), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the collection is empty or `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "no samples");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    /// The largest ratio observed.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The mean ratio.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Summary row used by the experiment reports: fractions at the
    /// thresholds the paper quotes, plus the maximum.
    #[must_use]
    pub fn summary(&self) -> EcdfSummary {
        EcdfSummary {
            n: self.len(),
            at_1_05: self.fraction_at_or_below(1.05),
            at_1_1: self.fraction_at_or_below(1.1),
            at_1_2: self.fraction_at_or_below(1.2),
            at_1_5: self.fraction_at_or_below(1.5),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

impl Ecdf {
    /// The eCDF evaluated on an even grid over `[lo, hi]` with `points`
    /// samples: `(x, fraction <= x)` pairs, suitable for CSV export or
    /// plotting (the curves of Figs. 5 and 6).
    #[must_use]
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && lo < hi, "need a proper grid");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// Render several eCDFs as an ASCII plot (y: 0..100%, x: ratio over
/// optimum), one glyph per series — a terminal rendition of Figs. 5/6.
#[must_use]
pub fn ascii_plot(
    series: &[(&str, &Ecdf)],
    lo: f64,
    hi: f64,
    width: usize,
    height: usize,
) -> String {
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let mut rows = vec![vec![' '; width]; height];
    for (si, (_, e)) in series.iter().enumerate() {
        if e.is_empty() {
            continue;
        }
        let g = glyphs[si % glyphs.len()];
        for (col, (_, frac)) in e.curve(lo, hi, width).iter().enumerate() {
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            rows[row.min(height - 1)][col] = g;
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let pct = 100.0 * (1.0 - i as f64 / (height - 1) as f64);
        out.push_str(&format!("{pct:>5.0}% |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("       {}\n", "-".repeat(width)));
    out.push_str(&format!(
        "       {:<10}{:^width$}{:>10}\n",
        format!("{lo:.2}"),
        "ratio over optimum",
        format!("{hi:.2}"),
        width = width.saturating_sub(20)
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "       {} = {}\n",
            glyphs[si % glyphs.len()],
            name
        ));
    }
    out
}

/// Write eCDF curves as CSV: one `x` column plus one column per series.
#[must_use]
pub fn csv_curves(series: &[(&str, &Ecdf)], lo: f64, hi: f64, points: usize) -> String {
    let mut out = String::from("ratio");
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    let curves: Vec<Vec<(f64, f64)>> = series
        .iter()
        .map(|(_, e)| e.curve(lo, hi, points))
        .collect();
    for i in 0..points {
        let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
        out.push_str(&format!("{x:.4}"));
        for c in &curves {
            out.push_str(&format!(",{:.4}", c[i].1));
        }
        out.push('\n');
    }
    out
}

/// The headline numbers of an eCDF (thresholds from Sec. VII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcdfSummary {
    /// Sample count.
    pub n: usize,
    /// Fraction of instances with ratio <= 1.05.
    pub at_1_05: f64,
    /// Fraction <= 1.1.
    pub at_1_1: f64,
    /// Fraction <= 1.2.
    pub at_1_2: f64,
    /// Fraction <= 1.5.
    pub at_1_5: f64,
    /// Largest ratio.
    pub max: f64,
    /// Mean ratio.
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ecdf {
        let mut e = Ecdf::new();
        for r in [1.0, 1.0, 1.04, 1.15, 1.3, 2.0] {
            e.push(r);
        }
        e
    }

    #[test]
    fn fractions() {
        let e = sample();
        assert!((e.fraction_at_or_below(1.05) - 0.5).abs() < 1e-12);
        assert!((e.fraction_at_or_below(1.2) - 4.0 / 6.0).abs() < 1e-12);
        assert!((e.fraction_at_or_below(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_and_mean() {
        let e = sample();
        assert_eq!(e.max(), 2.0);
        assert!((e.mean() - (1.0 + 1.0 + 1.04 + 1.15 + 1.3 + 2.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let e = sample();
        assert_eq!(e.percentile(0.0), 1.0);
        assert_eq!(e.percentile(100.0), 2.0);
        assert!(e.percentile(50.0) <= 1.15 + 1e-12);
    }

    #[test]
    fn merge() {
        let mut a = sample();
        let b = sample();
        a.extend(&b);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn curve_is_monotone_from_zero_to_one() {
        let e = sample();
        let c = e.curve(1.0, 2.0, 11);
        assert_eq!(c.len(), 11);
        assert!(c.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn ascii_plot_contains_series_glyphs_and_legend() {
        let e = sample();
        let plot = ascii_plot(&[("E_s", &e), ("L", &e)], 1.0, 2.0, 40, 10);
        assert!(plot.contains("* = E_s"));
        assert!(plot.contains("+ = L"));
        assert!(plot.contains("100%"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let e = sample();
        let csv = csv_curves(&[("a", &e), ("b", &e)], 1.0, 1.5, 6);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ratio,a,b");
        assert_eq!(lines.len(), 7);
        assert!(lines[6].starts_with("1.5000"));
    }
}
