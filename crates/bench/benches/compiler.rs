//! Criterion micro-benchmarks for the compiler itself: variant
//! construction (Sec. IV lowering), full-pool enumeration, base-set
//! selection, and the DP optimal solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc_bench::workload::ShapeSampler;
use gmc_core::expand::CostMatrix;
use gmc_core::{all_variants, build_variant, optimal_cost, select_base_set, ParenTree};
use gmc_ir::InstanceSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_build_variant(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_variant");
    let mut rng = StdRng::seed_from_u64(1);
    let sampler = ShapeSampler::uniform();
    for n in [5usize, 7, 10] {
        let shape = sampler.sample(&mut rng, n);
        let tree = ParenTree::fanning_out(n, n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| build_variant(&shape, &tree).unwrap());
        });
    }
    group.finish();
}

fn bench_all_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_variants");
    let mut rng = StdRng::seed_from_u64(2);
    let sampler = ShapeSampler::uniform();
    for n in [5usize, 7] {
        let shape = sampler.sample(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| all_variants(&shape).unwrap());
        });
    }
    group.finish();
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_optimal_cost");
    let mut rng = StdRng::seed_from_u64(3);
    let sampler = ShapeSampler::uniform();
    for n in [7usize, 12, 20] {
        let shape = sampler.sample(&mut rng, n);
        let inst = InstanceSampler::new(&shape, 2, 1000).sample(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| optimal_cost(&shape, &inst).unwrap());
        });
    }
    group.finish();
}

fn bench_base_set_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_base_set");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let sampler = ShapeSampler::uniform();
    for n in [5usize, 7] {
        let shape = sampler.sample(&mut rng, n);
        let training = InstanceSampler::new(&shape, 2, 1000).sample_many(&mut rng, 500);
        let pool = all_variants(&shape).unwrap();
        let matrix = CostMatrix::flops(&pool, &training);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| select_base_set(&shape, &training, matrix.optimal()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build_variant,
    bench_all_variants,
    bench_dp,
    bench_base_set_selection
);
criterion_main!(benches);
