//! Criterion comparison of the blocked packed GEMM against the seed
//! scalar kernel across the paper's size sweep, plus the structured
//! kernels that route their off-diagonal work through the blocked core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmc_linalg::{
    gemm_blocked, gemm_scalar, random_general, random_lower_triangular, trmm, trsm, Matrix, Side,
    Transpose, Triangle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = StdRng::seed_from_u64(7);
    for n in [64usize, 256, 512, 1024] {
        let a = random_general(&mut rng, n, n);
        let b = random_general(&mut rng, n, n);
        let mut out = Matrix::zeros(n, n);
        let flops = 2 * n * n * n;
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| gemm_blocked(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |bench, _| {
            bench.iter(|| gemm_scalar(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut out));
        });
    }
    group.finish();
}

fn bench_structured(c: &mut Criterion) {
    let mut group = c.benchmark_group("structured");
    let mut rng = StdRng::seed_from_u64(8);
    let n = 512usize;
    let tri = random_lower_triangular(&mut rng, n, true);
    let g = random_general(&mut rng, n, n);
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function(BenchmarkId::new("trmm_left", n), |bench| {
        bench.iter(|| {
            let mut b = g.clone();
            trmm(
                Side::Left,
                Triangle::Lower,
                Transpose::No,
                1.0,
                &tri,
                &mut b,
            );
            b
        });
    });
    group.bench_function(BenchmarkId::new("trsm_left", n), |bench| {
        bench.iter(|| {
            let mut b = g.clone();
            trsm(
                Side::Left,
                Triangle::Lower,
                Transpose::No,
                1.0,
                &tri,
                &mut b,
            );
            b
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_structured);
criterion_main!(benches);
