//! Criterion benchmarks of the run-time dispatch overhead: the cost the
//! paper trades against performance when growing the variant set
//! (Sec. V: "both overheads grow linearly with the number of generated
//! variants").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc_bench::workload::ShapeSampler;
use gmc_core::{all_variants, CompiledChain};
use gmc_ir::InstanceSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    let mut rng = StdRng::seed_from_u64(6);
    let sampler = ShapeSampler::uniform();
    let shape = sampler.sample(&mut rng, 7);
    let pool = all_variants(&shape).unwrap();
    let inst = InstanceSampler::new(&shape, 2, 1000).sample(&mut rng);

    // Dispatch overhead as a function of the number of variants in the set.
    for k in [2usize, 4, 8, 16, 64, pool.len()] {
        let chain = CompiledChain::from_variants(shape.clone(), pool[..k].to_vec());
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| chain.dispatch(&inst));
        });
    }
    group.finish();
}

fn bench_instance_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let sampler = ShapeSampler::uniform();
    let shape = sampler.sample(&mut rng, 7);
    let pool = all_variants(&shape).unwrap();
    let chain = CompiledChain::from_variants(shape.clone(), pool[..4].to_vec());
    let inst = InstanceSampler::new(&shape, 4, 16).sample(&mut rng);
    // Zero matrices suffice for size inference.
    let q = inst.sizes();
    let leaves: Vec<gmc_linalg::Matrix> = shape
        .operands()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let (r, cl) = if op.transposed {
                (q[i + 1], q[i])
            } else {
                (q[i], q[i + 1])
            };
            gmc_linalg::Matrix::zeros(r as usize, cl as usize)
        })
        .collect();
    c.bench_function("instance_of", |b| {
        b.iter(|| chain.instance_of(&leaves).unwrap());
    });
}

/// Multi-versioned dispatch versus the "search at run time" alternative
/// the paper discusses in Sec. I: running the full DP and lowering the
/// winning parenthesization once the sizes are known. Dispatch over a
/// precompiled set is orders of magnitude cheaper, which is the paper's
/// case for multi-versioning in low-latency settings.
fn bench_dispatch_vs_runtime_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_vs_runtime_search");
    let mut rng = StdRng::seed_from_u64(8);
    let sampler = ShapeSampler::uniform();
    let shape = sampler.sample(&mut rng, 7);
    let pool = all_variants(&shape).unwrap();
    let chain = CompiledChain::from_variants(shape.clone(), pool[..3].to_vec());
    let inst = InstanceSampler::new(&shape, 2, 1000).sample(&mut rng);

    group.bench_function("multi_versioned_dispatch", |b| {
        b.iter(|| chain.dispatch(&inst));
    });
    group.bench_function("runtime_dp_search", |b| {
        b.iter(|| gmc_core::optimal_variant(&shape, &inst).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_instance_inference,
    bench_dispatch_vs_runtime_search
);
criterion_main!(benches);
