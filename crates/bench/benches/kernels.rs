//! Criterion throughput benchmarks of the kernel substrate: GEMM against
//! the structured kernels whose relative costs the paper's cost model
//! relies on (TRMM at half of GEMM, TRSM likewise, solves in between).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmc_kernels::{cost_flops, execute_assoc, AssocExec, Kernel};
use gmc_linalg::{
    random_general, random_lower_triangular, random_nonsingular, random_spd, Side, Triangle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let mut rng = StdRng::seed_from_u64(5);
    let m = 128usize;

    let cases: Vec<(Kernel, AssocExec, gmc_linalg::Matrix, gmc_linalg::Matrix)> = vec![
        (
            Kernel::Gemm,
            AssocExec {
                kernel: Kernel::Gemm,
                side: Side::Left,
                left_trans: false,
                right_trans: false,
                left_tri: None,
                right_tri: None,
            },
            random_general(&mut rng, m, m),
            random_general(&mut rng, m, m),
        ),
        (
            Kernel::Trmm,
            AssocExec {
                kernel: Kernel::Trmm,
                side: Side::Left,
                left_trans: false,
                right_trans: false,
                left_tri: Some(Triangle::Lower),
                right_tri: None,
            },
            random_lower_triangular(&mut rng, m, false),
            random_general(&mut rng, m, m),
        ),
        (
            Kernel::Trsm,
            AssocExec {
                kernel: Kernel::Trsm,
                side: Side::Left,
                left_trans: false,
                right_trans: false,
                left_tri: Some(Triangle::Lower),
                right_tri: None,
            },
            random_lower_triangular(&mut rng, m, true),
            random_general(&mut rng, m, m),
        ),
        (
            Kernel::Gegesv,
            AssocExec {
                kernel: Kernel::Gegesv,
                side: Side::Left,
                left_trans: false,
                right_trans: false,
                left_tri: None,
                right_tri: None,
            },
            random_nonsingular(&mut rng, m),
            random_general(&mut rng, m, m),
        ),
        (
            Kernel::Pogesv,
            AssocExec {
                kernel: Kernel::Pogesv,
                side: Side::Left,
                left_trans: false,
                right_trans: false,
                left_tri: None,
                right_tri: None,
            },
            random_spd(&mut rng, m),
            random_general(&mut rng, m, m),
        ),
    ];

    for (kernel, call, a, b) in &cases {
        let flops = cost_flops(*kernel, Side::Left, false, m as u64, m as u64, m as u64);
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            kernel,
            |bch, _| {
                bch.iter(|| execute_assoc(call, a, b).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
