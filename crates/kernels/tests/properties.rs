//! Property-based tests of the kernel catalogue: cost-function laws the
//! Sec. V theory depends on, mapping totality, and inference sanity.

use gmc_ir::{Property, Structure};
use gmc_kernels::{
    assign_kernel, cost_flops, cost_poly, infer_property, infer_structure, AssocOperand, Kernel,
    KernelClass,
};
use gmc_linalg::Side;
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (0usize..Kernel::ALL.len()).prop_map(|i| Kernel::ALL[i])
}

fn arb_side() -> impl Strategy<Value = Side> {
    any::<bool>().prop_map(|b| if b { Side::Left } else { Side::Right })
}

fn arb_structure() -> impl Strategy<Value = Structure> {
    (0usize..4).prop_map(|i| Structure::ALL[i])
}

fn arb_property() -> impl Strategy<Value = Property> {
    (0usize..4).prop_map(|i| Property::ALL[i])
}

/// Square-consistent sizes for a kernel invocation: Type-II coefficients
/// force the coefficient square; Type-I all-square kernels force everything
/// equal. Using all-equal sizes is always valid.
fn square_sizes(m: u64) -> (u64, u64, u64) {
    (m, m, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Monotonicity in each argument — the premise of Lemma 1.
    #[test]
    fn cost_is_monotone(kernel in arb_kernel(), side in arb_side(), cheap in any::<bool>(), m in 1u64..300, bump in 1u64..100) {
        let (a, b, c) = square_sizes(m);
        let base = cost_flops(kernel, side, cheap, a, b, c);
        prop_assert!(cost_flops(kernel, side, cheap, a + bump, b + bump, c + bump) >= base);
    }

    /// The symbolic polynomial and the direct evaluation agree on
    /// square-consistent instances.
    #[test]
    fn poly_matches_direct(kernel in arb_kernel(), side in arb_side(), cheap in any::<bool>(), m in 1u64..500) {
        let p = cost_poly(kernel, side, cheap, 0, 1, 2);
        let q = [m, m, m];
        let direct = cost_flops(kernel, side, cheap, m, m, m);
        let via_poly = p.eval(&q);
        prop_assert!((via_poly - direct).abs() <= 1e-9 * direct.max(1.0));
    }

    /// Costs scale cubically: doubling every dimension multiplies the cost
    /// by exactly 8 (all Table-I terms are degree 3).
    #[test]
    fn cost_is_homogeneous_of_degree_three(kernel in arb_kernel(), side in arb_side(), cheap in any::<bool>(), m in 1u64..200) {
        let base = cost_flops(kernel, side, cheap, m, m, m);
        let doubled = cost_flops(kernel, side, cheap, 2 * m, 2 * m, 2 * m);
        prop_assert!((doubled - 8.0 * base).abs() <= 1e-6 * doubled.max(1.0));
    }

    /// The cheap branch never exceeds the expensive branch.
    #[test]
    fn cheap_branch_is_cheaper_or_equal(kernel in arb_kernel(), side in arb_side(), m in 1u64..300) {
        let cheap = cost_flops(kernel, side, true, m, m, m);
        let costly = cost_flops(kernel, side, false, m, m, m);
        prop_assert!(cheap <= costly);
    }

    /// Kernel assignment is total over valid operand pairs and respects the
    /// multiply/solve split.
    #[test]
    fn mapping_is_total_and_classified(
        ls in arb_structure(), lp in arb_property(),
        rs in arb_structure(), rp in arb_property(),
        linv in any::<bool>(), rinv in any::<bool>(),
    ) {
        prop_assume!(!(linv && rinv));
        prop_assume!(!linv || lp.is_invertible());
        prop_assume!(!rinv || rp.is_invertible());
        let l = AssocOperand::new(ls, lp, linv);
        let r = AssocOperand::new(rs, rp, rinv);
        let choice = assign_kernel(l, r).unwrap();
        let expect_solve = linv || rinv;
        prop_assert_eq!(
            choice.kernel.class() == KernelClass::Solve,
            expect_solve,
            "kernel {} for inverted={}",
            choice.kernel, expect_solve
        );
        // The coefficient side points at the inverted operand.
        if linv {
            prop_assert_eq!(choice.side, Side::Left);
        }
        if rinv {
            prop_assert_eq!(choice.side, Side::Right);
        }
    }

    /// Structure inference is closed and General-absorbing.
    #[test]
    fn inference_absorbs_general(s in arb_structure()) {
        prop_assert_eq!(infer_structure(Structure::General, s), Structure::General);
        prop_assert_eq!(infer_structure(s, Structure::General), Structure::General);
    }

    /// Property inference never invents SPD or orthogonality from
    /// non-orthogonal operands.
    #[test]
    fn inference_is_conservative(lp in arb_property(), rp in arb_property(), lsq in any::<bool>(), rsq in any::<bool>()) {
        let out = infer_property(lp, lsq, rp, rsq);
        prop_assert_ne!(out, Property::Spd);
        if out == Property::Orthogonal {
            prop_assert_eq!(lp, Property::Orthogonal);
            prop_assert_eq!(rp, Property::Orthogonal);
        }
        if !(lsq && rsq) {
            prop_assert_eq!(out, Property::Singular);
        }
    }
}
