//! Exhaustive execution coverage: every kernel, on both sides, with every
//! supported coefficient-transposition pattern, verified against dense
//! reference arithmetic.

use gmc_kernels::{execute_assoc, AssocExec, Kernel};
use gmc_linalg::{
    inverse_general, inverse_spd, matmul, random_general, random_lower_triangular,
    random_nonsingular, random_spd, random_symmetric, random_upper_triangular, relative_error,
    Matrix, Side, Transpose, Triangle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 7;
const M: usize = 5; // companion dimension for rectangular operands

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xc0e)
}

/// Dense reference for `op(A)^{inv_a} * op(B)^{inv_b}` built from explicit
/// inverses and transposes.
fn reference(a: &Matrix, ta: bool, inv_a: bool, b: &Matrix, tb: bool, inv_b: bool) -> Matrix {
    let lift = |m: &Matrix, t: bool, inv: bool| -> Matrix {
        let mut x = m.clone();
        if inv {
            x = if x.is_symmetric(1e-12) && gmc_linalg::cholesky(&x).is_ok() {
                inverse_spd(&x).unwrap()
            } else {
                inverse_general(&x).unwrap()
            };
        }
        if t {
            x = x.transposed();
        }
        x
    };
    let la = lift(a, ta, inv_a);
    let lb = lift(b, tb, inv_b);
    matmul(&la, Transpose::No, &lb, Transpose::No)
}

fn check(call: &AssocExec, a: &Matrix, b: &Matrix, inv_left: bool, inv_right: bool) {
    let got = execute_assoc(call, a, b).unwrap_or_else(|e| panic!("{:?}: {e}", call.kernel));
    let want = reference(a, call.left_trans, inv_left, b, call.right_trans, inv_right);
    let err = relative_error(&got, &want);
    assert!(
        err < 1e-7,
        "{:?} side={:?}: error {err}",
        call.kernel,
        call.side
    );
}

#[test]
fn symm_right_with_transposed_general() {
    let mut r = rng();
    let s = random_symmetric(&mut r, N);
    let g = random_general(&mut r, N, M); // used transposed: M x N
    let call = AssocExec {
        kernel: Kernel::Symm,
        side: Side::Right,
        left_trans: true,
        right_trans: false,
        left_tri: None,
        right_tri: None,
    };
    check(&call, &g, &s, false, false);
}

#[test]
fn trmm_right_transposed_triangular() {
    let mut r = rng();
    let g = random_general(&mut r, M, N);
    let u = random_upper_triangular(&mut r, N, false);
    let call = AssocExec {
        kernel: Kernel::Trmm,
        side: Side::Right,
        left_trans: false,
        right_trans: true,
        left_tri: None,
        right_tri: Some(Triangle::Upper),
    };
    check(&call, &g, &u, false, false);
}

#[test]
fn trsymm_both_sides() {
    let mut r = rng();
    let l = random_lower_triangular(&mut r, N, false);
    let s = random_symmetric(&mut r, N);
    for (side, first, second) in [(Side::Left, &l, &s), (Side::Right, &s, &l)] {
        let call = AssocExec {
            kernel: Kernel::Trsymm,
            side,
            left_trans: false,
            right_trans: false,
            left_tri: (side == Side::Left).then_some(Triangle::Lower),
            right_tri: (side == Side::Right).then_some(Triangle::Lower),
        };
        check(&call, first, second, false, false);
    }
}

#[test]
fn solves_on_the_right_side() {
    // X * A^{-1} = B A^{-1} for every coefficient family.
    let mut r = rng();
    let rhs_g = random_general(&mut r, M, N);
    let cases: Vec<(Kernel, Matrix, Option<Triangle>)> = vec![
        (Kernel::Gegesv, random_nonsingular(&mut r, N), None),
        (
            Kernel::Sygesv,
            {
                let mut s = random_symmetric(&mut r, N);
                for i in 0..N {
                    let v = s.get(i, i) + N as f64;
                    s.set(i, i, v);
                }
                s
            },
            None,
        ),
        (Kernel::Pogesv, random_spd(&mut r, N), None),
        (
            Kernel::Trsm,
            random_lower_triangular(&mut r, N, true),
            Some(Triangle::Lower),
        ),
    ];
    for (kernel, coeff, tri) in cases {
        let call = AssocExec {
            kernel,
            side: Side::Right,
            left_trans: false,
            right_trans: false,
            left_tri: None,
            right_tri: tri,
        };
        check(&call, &rhs_g, &coeff, false, true);
    }
}

#[test]
fn transposed_coefficient_solves() {
    // op(A)^{-1} with op = transpose: supported on general and triangular
    // coefficients (symmetric/SPD transposes are no-ops).
    let mut r = rng();
    let b = random_general(&mut r, N, M);
    for (kernel, coeff, tri) in [
        (Kernel::Gegesv, random_nonsingular(&mut r, N), None),
        (
            Kernel::Trsm,
            random_lower_triangular(&mut r, N, true),
            Some(Triangle::Lower),
        ),
    ] {
        let call = AssocExec {
            kernel,
            side: Side::Left,
            left_trans: true,
            right_trans: false,
            left_tri: tri,
            right_tri: None,
        };
        check(&call, &coeff, &b, true, false);
    }
}

#[test]
fn symmetric_rhs_solves() {
    let mut r = rng();
    let s = random_symmetric(&mut r, N);
    for (kernel, coeff, tri) in [
        (Kernel::Gesysv, random_nonsingular(&mut r, N), None),
        (Kernel::Posysv, random_spd(&mut r, N), None),
        (
            Kernel::Trsysv,
            random_lower_triangular(&mut r, N, true),
            Some(Triangle::Lower),
        ),
    ] {
        let call = AssocExec {
            kernel,
            side: Side::Left,
            left_trans: false,
            right_trans: false,
            left_tri: tri,
            right_tri: None,
        };
        check(&call, &coeff, &s, true, false);
    }
}

#[test]
fn triangular_rhs_solves() {
    let mut r = rng();
    let l = random_lower_triangular(&mut r, N, false);
    for (kernel, coeff, ltri) in [
        (Kernel::Getrsv, random_nonsingular(&mut r, N), None),
        (Kernel::Potrsv, random_spd(&mut r, N), None),
        (
            Kernel::Trtrsv,
            random_lower_triangular(&mut r, N, true),
            Some(Triangle::Lower),
        ),
        (
            Kernel::Sytrsv,
            {
                let mut s = random_symmetric(&mut r, N);
                for i in 0..N {
                    let v = s.get(i, i) + N as f64;
                    s.set(i, i, v);
                }
                s
            },
            None,
        ),
    ] {
        let call = AssocExec {
            kernel,
            side: Side::Left,
            left_trans: false,
            right_trans: false,
            left_tri: ltri,
            right_tri: Some(Triangle::Lower),
        };
        check(&call, &coeff, &l, true, false);
    }
}

#[test]
fn sysymm_dense_product_of_symmetrics() {
    let mut r = rng();
    let s1 = random_symmetric(&mut r, N);
    let s2 = random_symmetric(&mut r, N);
    let call = AssocExec {
        kernel: Kernel::Sysymm,
        side: Side::Left,
        left_trans: false,
        right_trans: false,
        left_tri: None,
        right_tri: None,
    };
    check(&call, &s1, &s2, false, false);
}

#[test]
fn trtrmm_upper_times_lower() {
    let mut r = rng();
    let u = random_upper_triangular(&mut r, N, false);
    let l = random_lower_triangular(&mut r, N, false);
    let call = AssocExec {
        kernel: Kernel::Trtrmm,
        side: Side::Left,
        left_trans: false,
        right_trans: false,
        left_tri: Some(Triangle::Upper),
        right_tri: Some(Triangle::Lower),
    };
    check(&call, &u, &l, false, false);
}
