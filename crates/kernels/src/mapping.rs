//! The association-to-kernel mapping of Fig. 3.
//!
//! Every association combines two operands, at most one of which is
//! inverted (the builder's inversion-propagation step guarantees this).
//! The left table of Fig. 3 (no inversion) and the right table (one
//! inversion) are encoded here. The code generator always picks the
//! best-fitting (most specialized) kernel for the operand features.

use crate::kernel::Kernel;
use gmc_ir::{Property, Structure};
use gmc_linalg::Side;
use std::error::Error;
use std::fmt;

/// One operand of an association, as seen by kernel assignment: the
/// *effective* structure (after any transposition), the property, and
/// whether the operand is inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssocOperand {
    /// Effective structure (transposition already applied).
    pub structure: Structure,
    /// Property of the operand.
    pub property: Property,
    /// `true` if this operand is inverted in the association.
    pub inverted: bool,
}

impl AssocOperand {
    /// Create an operand description.
    #[must_use]
    pub fn new(structure: Structure, property: Property, inverted: bool) -> Self {
        AssocOperand {
            structure,
            property,
            inverted,
        }
    }
}

/// A kernel choice for an association: the kernel plus which side the
/// structured/coefficient operand sits on.
///
/// For multiply kernels with one structured operand (`SYMM`, `TRMM`,
/// `TRSYMM`) and for all solve kernels, `side` names the position of the
/// symmetric/triangular/coefficient operand. For symmetric two-operand
/// kernels (`GEMM`, `SYSYMM`, `TRTRMM`) the side is conventionally `Left`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelChoice {
    /// The assigned kernel.
    pub kernel: Kernel,
    /// Side of the structured/coefficient operand.
    pub side: Side,
}

/// Errors from kernel assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// Both operands are inverted; the builder must have rewritten this
    /// association before assignment.
    BothInverted,
    /// The inverted operand is not known to be invertible.
    NotInvertible(AssocOperand),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::BothInverted => {
                write!(
                    f,
                    "both operands inverted; inversion propagation must run first"
                )
            }
            MappingError::NotInvertible(op) => {
                write!(f, "inverted operand is not invertible: {op:?}")
            }
        }
    }
}

impl Error for MappingError {}

/// Structure category used by the lookup tables: general, symmetric, or
/// triangular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cat {
    Ge,
    Sy,
    Tr,
}

fn cat(s: Structure) -> Cat {
    match s {
        Structure::General => Cat::Ge,
        Structure::Symmetric => Cat::Sy,
        Structure::LowerTri | Structure::UpperTri => Cat::Tr,
    }
}

/// Assign the best-fitting kernel to the association `left * right`
/// (Fig. 3).
///
/// # Errors
///
/// Returns [`MappingError::BothInverted`] if both operands carry an
/// inversion (the caller must rewrite first) and
/// [`MappingError::NotInvertible`] if an inverted operand's property does
/// not guarantee invertibility.
pub fn assign_kernel(
    left: AssocOperand,
    right: AssocOperand,
) -> Result<KernelChoice, MappingError> {
    if left.inverted && right.inverted {
        return Err(MappingError::BothInverted);
    }
    for op in [left, right] {
        if op.inverted && !op.property.is_invertible() {
            return Err(MappingError::NotInvertible(op));
        }
    }

    if !left.inverted && !right.inverted {
        // Left table of Fig. 3: products.
        let choice = match (cat(left.structure), cat(right.structure)) {
            (Cat::Ge, Cat::Ge) => KernelChoice {
                kernel: Kernel::Gemm,
                side: Side::Left,
            },
            (Cat::Sy, Cat::Ge) => KernelChoice {
                kernel: Kernel::Symm,
                side: Side::Left,
            },
            (Cat::Ge, Cat::Sy) => KernelChoice {
                kernel: Kernel::Symm,
                side: Side::Right,
            },
            (Cat::Tr, Cat::Ge) => KernelChoice {
                kernel: Kernel::Trmm,
                side: Side::Left,
            },
            (Cat::Ge, Cat::Tr) => KernelChoice {
                kernel: Kernel::Trmm,
                side: Side::Right,
            },
            (Cat::Sy, Cat::Sy) => KernelChoice {
                kernel: Kernel::Sysymm,
                side: Side::Left,
            },
            (Cat::Tr, Cat::Sy) => KernelChoice {
                kernel: Kernel::Trsymm,
                side: Side::Left,
            },
            (Cat::Sy, Cat::Tr) => KernelChoice {
                kernel: Kernel::Trsymm,
                side: Side::Right,
            },
            (Cat::Tr, Cat::Tr) => KernelChoice {
                kernel: Kernel::Trtrmm,
                side: Side::Left,
            },
        };
        return Ok(choice);
    }

    // Right table of Fig. 3: solves. The inverted operand is the
    // coefficient matrix.
    let (coeff, rhs, side) = if left.inverted {
        (left, right, Side::Left)
    } else {
        (right, left, Side::Right)
    };
    let kernel = match (cat(coeff.structure), coeff.property, cat(rhs.structure)) {
        // SPD coefficients get the PO* kernels.
        (Cat::Sy, Property::Spd, Cat::Ge) => Kernel::Pogesv,
        (Cat::Sy, Property::Spd, Cat::Sy) => Kernel::Posysv,
        (Cat::Sy, Property::Spd, Cat::Tr) => Kernel::Potrsv,
        // Plain symmetric coefficients.
        (Cat::Sy, _, Cat::Ge) => Kernel::Sygesv,
        (Cat::Sy, _, Cat::Sy) => Kernel::Sysysv,
        (Cat::Sy, _, Cat::Tr) => Kernel::Sytrsv,
        // General coefficients.
        (Cat::Ge, _, Cat::Ge) => Kernel::Gegesv,
        (Cat::Ge, _, Cat::Sy) => Kernel::Gesysv,
        (Cat::Ge, _, Cat::Tr) => Kernel::Getrsv,
        // Triangular coefficients.
        (Cat::Tr, _, Cat::Ge) => Kernel::Trsm,
        (Cat::Tr, _, Cat::Sy) => Kernel::Trsysv,
        (Cat::Tr, _, Cat::Tr) => Kernel::Trtrsv,
    };
    Ok(KernelChoice { kernel, side })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(structure: Structure, property: Property, inverted: bool) -> AssocOperand {
        AssocOperand::new(structure, property, inverted)
    }

    fn ge() -> AssocOperand {
        op(Structure::General, Property::Singular, false)
    }

    fn sy() -> AssocOperand {
        op(Structure::Symmetric, Property::Singular, false)
    }

    fn spd(inv: bool) -> AssocOperand {
        op(Structure::Symmetric, Property::Spd, inv)
    }

    fn lo(inv: bool) -> AssocOperand {
        op(Structure::LowerTri, Property::NonSingular, inv)
    }

    #[test]
    fn product_table() {
        assert_eq!(assign_kernel(ge(), ge()).unwrap().kernel, Kernel::Gemm);
        let c = assign_kernel(sy(), ge()).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Symm, Side::Left));
        let c = assign_kernel(ge(), sy()).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Symm, Side::Right));
        let c = assign_kernel(lo(false), ge()).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Trmm, Side::Left));
        let c = assign_kernel(ge(), lo(false)).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Trmm, Side::Right));
        assert_eq!(assign_kernel(sy(), sy()).unwrap().kernel, Kernel::Sysymm);
        assert_eq!(
            assign_kernel(lo(false), sy()).unwrap().kernel,
            Kernel::Trsymm
        );
        assert_eq!(
            assign_kernel(sy(), lo(false)).unwrap().kernel,
            Kernel::Trsymm
        );
        assert_eq!(
            assign_kernel(lo(false), lo(false)).unwrap().kernel,
            Kernel::Trtrmm
        );
    }

    #[test]
    fn spd_products_use_symmetric_kernels() {
        // A non-inverted SPD operand is just a symmetric matrix to a product.
        assert_eq!(
            assign_kernel(spd(false), ge()).unwrap().kernel,
            Kernel::Symm
        );
        assert_eq!(
            assign_kernel(spd(false), spd(false)).unwrap().kernel,
            Kernel::Sysymm
        );
    }

    #[test]
    fn solve_table_by_coefficient() {
        let gen_inv = op(Structure::General, Property::NonSingular, true);
        assert_eq!(assign_kernel(gen_inv, ge()).unwrap().kernel, Kernel::Gegesv);
        assert_eq!(assign_kernel(gen_inv, sy()).unwrap().kernel, Kernel::Gesysv);
        assert_eq!(
            assign_kernel(gen_inv, lo(false)).unwrap().kernel,
            Kernel::Getrsv
        );

        let sym_inv = op(Structure::Symmetric, Property::NonSingular, true);
        assert_eq!(assign_kernel(sym_inv, ge()).unwrap().kernel, Kernel::Sygesv);
        assert_eq!(assign_kernel(sym_inv, sy()).unwrap().kernel, Kernel::Sysysv);
        assert_eq!(
            assign_kernel(sym_inv, lo(false)).unwrap().kernel,
            Kernel::Sytrsv
        );

        assert_eq!(
            assign_kernel(spd(true), ge()).unwrap().kernel,
            Kernel::Pogesv
        );
        assert_eq!(
            assign_kernel(spd(true), sy()).unwrap().kernel,
            Kernel::Posysv
        );
        assert_eq!(
            assign_kernel(spd(true), lo(false)).unwrap().kernel,
            Kernel::Potrsv
        );

        assert_eq!(assign_kernel(lo(true), ge()).unwrap().kernel, Kernel::Trsm);
        assert_eq!(
            assign_kernel(lo(true), sy()).unwrap().kernel,
            Kernel::Trsysv
        );
        assert_eq!(
            assign_kernel(lo(true), lo(false)).unwrap().kernel,
            Kernel::Trtrsv
        );
    }

    #[test]
    fn solve_side_follows_inverted_operand() {
        let c = assign_kernel(ge(), lo(true)).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Trsm, Side::Right));
        let c = assign_kernel(lo(true), ge()).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Trsm, Side::Left));
        let c = assign_kernel(sy(), spd(true)).unwrap();
        assert_eq!((c.kernel, c.side), (Kernel::Posysv, Side::Right));
    }

    #[test]
    fn both_inverted_rejected() {
        let gi = op(Structure::General, Property::NonSingular, true);
        assert_eq!(assign_kernel(gi, gi), Err(MappingError::BothInverted));
    }

    #[test]
    fn inverted_singular_rejected() {
        let bad = op(Structure::General, Property::Singular, true);
        assert!(matches!(
            assign_kernel(bad, ge()),
            Err(MappingError::NotInvertible(_))
        ));
    }

    #[test]
    fn every_feature_pair_maps_to_some_kernel() {
        // Exhaustive coverage of the two tables: no combination panics.
        let structures = [
            Structure::General,
            Structure::Symmetric,
            Structure::LowerTri,
            Structure::UpperTri,
        ];
        for &ls in &structures {
            for &rs in &structures {
                for linv in [false, true] {
                    for rinv in [false, true] {
                        if linv && rinv {
                            continue;
                        }
                        let l = op(ls, Property::NonSingular, linv);
                        let r = op(rs, Property::NonSingular, rinv);
                        assert!(assign_kernel(l, r).is_ok());
                    }
                }
            }
        }
    }
}
