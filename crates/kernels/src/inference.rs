//! Feature inference for intermediate results (Fig. 4).
//!
//! After each association the code generator infers the structure and
//! property of the result from the operands' features alone — no algebraic
//! relations between matrices are tracked, so the inference is conservative
//! but never wrong (Sec. IV, step 4).

use gmc_ir::{Property, Structure};

/// Infer the structure of `X := op_eff(A) * op_eff(B)` from the operands'
/// *effective* structures (left table of Fig. 4).
///
/// For solve kernels, pass the effective structure of the coefficient
/// matrix itself: inversion preserves triangularity and symmetry, so the
/// same table covers `A^{-1} B` and `A B^{-1}`.
///
/// Rules:
/// * anything involving a general operand is general;
/// * symmetric times symmetric (or symmetric/triangular mixes) is general —
///   symmetry is not preserved by multiplication;
/// * same-triangularity products stay triangular, mixed triangularity is
///   general.
#[must_use]
pub fn infer_structure(left: Structure, right: Structure) -> Structure {
    use Structure::{General, LowerTri, Symmetric, UpperTri};
    match (left, right) {
        (LowerTri, LowerTri) => LowerTri,
        (UpperTri, UpperTri) => UpperTri,
        (General | Symmetric | LowerTri | UpperTri, _) => General,
    }
}

/// Infer the property of the result (right table of Fig. 4).
///
/// The result is known invertible only when *both* operands are square and
/// invertible (feature-wise, a product of invertible square matrices is
/// invertible). Orthogonality survives only when both operands are
/// orthogonal and neither is inverted away from the group (the inverse of
/// an orthogonal matrix is orthogonal, so inversion flags are irrelevant
/// here). SPD-ness is never inferred: `A B` of two SPD matrices is not
/// symmetric in general, and the tables do not track the algebraic
/// relations that would justify it.
///
/// `left_square` / `right_square` state whether the operands' features force
/// them square; a rectangular operand can only yield a
/// [`Property::Singular`] result.
#[must_use]
pub fn infer_property(
    left: Property,
    left_square: bool,
    right: Property,
    right_square: bool,
) -> Property {
    if !left_square || !right_square {
        return Property::Singular;
    }
    match (left, right) {
        (Property::Orthogonal, Property::Orthogonal) => Property::Orthogonal,
        (l, r) if l.is_invertible() && r.is_invertible() => Property::NonSingular,
        _ => Property::Singular,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_absorbs() {
        for s in Structure::ALL {
            assert_eq!(infer_structure(Structure::General, s), Structure::General);
            assert_eq!(infer_structure(s, Structure::General), Structure::General);
        }
    }

    #[test]
    fn triangular_products() {
        assert_eq!(
            infer_structure(Structure::LowerTri, Structure::LowerTri),
            Structure::LowerTri
        );
        assert_eq!(
            infer_structure(Structure::UpperTri, Structure::UpperTri),
            Structure::UpperTri
        );
        assert_eq!(
            infer_structure(Structure::LowerTri, Structure::UpperTri),
            Structure::General
        );
        assert_eq!(
            infer_structure(Structure::UpperTri, Structure::LowerTri),
            Structure::General
        );
    }

    #[test]
    fn symmetry_not_preserved() {
        assert_eq!(
            infer_structure(Structure::Symmetric, Structure::Symmetric),
            Structure::General
        );
        assert_eq!(
            infer_structure(Structure::Symmetric, Structure::LowerTri),
            Structure::General
        );
    }

    #[test]
    fn paper_example_ut_times_l_is_lower() {
        // X := U^T L: effective structure of U^T is LowerTri.
        let ut_eff = Structure::UpperTri.transposed();
        assert_eq!(
            infer_structure(ut_eff, Structure::LowerTri),
            Structure::LowerTri
        );
    }

    #[test]
    fn rectangular_results_are_singular() {
        assert_eq!(
            infer_property(Property::NonSingular, true, Property::NonSingular, false),
            Property::Singular
        );
    }

    #[test]
    fn invertibility_propagates() {
        assert_eq!(
            infer_property(Property::NonSingular, true, Property::Spd, true),
            Property::NonSingular
        );
        assert_eq!(
            infer_property(Property::Orthogonal, true, Property::NonSingular, true),
            Property::NonSingular
        );
        assert_eq!(
            infer_property(Property::Singular, true, Property::NonSingular, true),
            Property::Singular
        );
    }

    #[test]
    fn orthogonality_is_a_group() {
        assert_eq!(
            infer_property(Property::Orthogonal, true, Property::Orthogonal, true),
            Property::Orthogonal
        );
    }

    #[test]
    fn qt_g_is_general_per_paper() {
        // The paper's example: Q^T G is inferred general even when Q is the
        // Q-factor of G's QR decomposition.
        assert_eq!(
            infer_structure(Structure::General, Structure::General),
            Structure::General
        );
        assert_eq!(
            infer_property(Property::Orthogonal, true, Property::Singular, false),
            Property::Singular
        );
    }

    #[test]
    fn spd_never_inferred() {
        for l in Property::ALL {
            for r in Property::ALL {
                assert_ne!(infer_property(l, true, r, true), Property::Spd);
            }
        }
    }
}
