//! FLOP cost functions of Table I.
//!
//! Every association in a variant combines an operand of size
//! `q_a × q_b` with an operand of size `q_b × q_c` (Sec. III-B). Costs are
//! expressed over these three size symbols. In the paper's `(m, k, n)`
//! convention `m = q_a`, `k = q_b`, `n = q_c`.
//!
//! The `cheap` flag selects the cheaper branch of cost functions with two
//! cases (e.g. `TRTRMM`: `m³/3` when both operands have the same
//! triangularity, `2m³/3` otherwise; `GETRSV`: `2m³` when coefficient side
//! and right-hand-side triangularity line up favourably, `8m³/3` otherwise).
//! The variant builder computes the flag from the association's features.

use crate::kernel::{FinalizeKernel, Kernel};
use gmc_ir::{Poly, Ratio};
use gmc_linalg::Side;

/// Cost-function type of Sec. V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// `phi(a, b, c) = beta * a * b * c`.
    TypeI,
    /// `phi(a, b, c) = beta1 * a^3 + beta2 * a^2 * c` (coefficient on the left).
    TypeIIa,
    /// `phi(a, b, c) = beta1 * c^3 + beta2 * c^2 * a` (coefficient on the right).
    TypeIIb,
}

/// The cost class of a kernel invocation.
#[must_use]
pub fn cost_class(kernel: Kernel, side: Side) -> CostClass {
    if kernel.is_type_two() {
        match side {
            Side::Left => CostClass::TypeIIa,
            Side::Right => CostClass::TypeIIb,
        }
    } else {
        CostClass::TypeI
    }
}

fn r(num: i64, den: i64) -> Ratio {
    Ratio::new(i128::from(num), i128::from(den))
}

/// The Type-I coefficient `beta` such that `phi = beta * q_a * q_b * q_c`
/// on valid instances (where the square-operand equalities hold).
///
/// Returns `None` for Type II invocations.
#[must_use]
pub fn type_one_beta(kernel: Kernel, cheap: bool) -> Option<Ratio> {
    let beta = match kernel {
        Kernel::Gemm | Kernel::Symm | Kernel::Sysymm => r(2, 1),
        Kernel::Trmm | Kernel::Trsymm | Kernel::Trsm | Kernel::Trsysv => r(1, 1),
        Kernel::Trtrmm => {
            if cheap {
                r(1, 3)
            } else {
                r(2, 3)
            }
        }
        Kernel::Gesysv => r(8, 3),
        Kernel::Getrsv => {
            if cheap {
                r(2, 1)
            } else {
                r(8, 3)
            }
        }
        Kernel::Sysysv | Kernel::Sytrsv | Kernel::Posysv => r(7, 3),
        Kernel::Potrsv => {
            if cheap {
                r(5, 3)
            } else {
                r(7, 3)
            }
        }
        Kernel::Trtrsv => {
            if cheap {
                r(1, 3)
            } else {
                r(1, 1)
            }
        }
        Kernel::Gegesv | Kernel::Sygesv | Kernel::Pogesv => return None,
    };
    Some(beta)
}

/// The Type-II coefficients `(beta1, beta2)` of `beta1 x³ + beta2 x² y`.
///
/// Returns `None` for Type I kernels.
#[must_use]
pub fn type_two_betas(kernel: Kernel) -> Option<(Ratio, Ratio)> {
    match kernel {
        Kernel::Gegesv => Some((r(2, 3), r(2, 1))),
        Kernel::Sygesv | Kernel::Pogesv => Some((r(1, 3), r(2, 1))),
        _ => None,
    }
}

/// Symbolic FLOP cost of one association: the kernel is invoked on operands
/// `q_a × q_b` and `q_b × q_c`, with the structured/coefficient operand on
/// `side`.
///
/// For Type-I kernels the cost is `beta q_a q_b q_c`; on valid instances the
/// square-operand equalities make this identical to the `beta m³` /
/// `beta m² n` forms of Table I. For Type-II kernels the coefficient matrix
/// is square (`q_a ~ q_b` on the left, `q_b ~ q_c` on the right) and the
/// cost keeps its two-term form.
#[must_use]
pub fn cost_poly(kernel: Kernel, side: Side, cheap: bool, a: usize, b: usize, c: usize) -> Poly {
    match cost_class(kernel, side) {
        CostClass::TypeI => {
            let beta = type_one_beta(kernel, cheap).expect("type I kernel has beta");
            Poly::term(beta, &[(a, 1), (b, 1), (c, 1)])
        }
        CostClass::TypeIIa => {
            // Coefficient is q_a × q_b with q_a ~ q_b; RHS q_b × q_c.
            let (b1, b2) = type_two_betas(kernel).expect("type II kernel has betas");
            let mut p = Poly::term(b1, &[(a, 2), (b, 1)]);
            p += &Poly::term(b2, &[(a, 1), (b, 1), (c, 1)]);
            p
        }
        CostClass::TypeIIb => {
            // Coefficient is q_b × q_c with q_b ~ q_c; RHS q_a × q_b.
            let (b1, b2) = type_two_betas(kernel).expect("type II kernel has betas");
            let mut p = Poly::term(b1, &[(b, 1), (c, 2)]);
            p += &Poly::term(b2, &[(a, 1), (b, 1), (c, 1)]);
            p
        }
    }
}

/// Concrete FLOP cost of one association on sizes `(qa, qb, qc)`.
#[must_use]
pub fn cost_flops(kernel: Kernel, side: Side, cheap: bool, qa: u64, qb: u64, qc: u64) -> f64 {
    let (qa, qb, qc) = (qa as f64, qb as f64, qc as f64);
    match cost_class(kernel, side) {
        CostClass::TypeI => type_one_beta(kernel, cheap).expect("type I").to_f64() * qa * qb * qc,
        CostClass::TypeIIa => {
            let (b1, b2) = type_two_betas(kernel).expect("type II");
            b1.to_f64() * qa * qa * qb + b2.to_f64() * qa * qb * qc
        }
        CostClass::TypeIIb => {
            let (b1, b2) = type_two_betas(kernel).expect("type II");
            b1.to_f64() * qb * qc * qc + b2.to_f64() * qa * qb * qc
        }
    }
}

/// Symbolic FLOP cost of a finalizer applied to a `q_a × q_a` result (for
/// explicit inverses) or `q_a × q_c` result (transpose; zero FLOPs).
#[must_use]
pub fn finalize_cost_poly(kernel: FinalizeKernel, a: usize) -> Poly {
    match kernel {
        FinalizeKernel::Getri | FinalizeKernel::Sytri => Poly::term(r(2, 1), &[(a, 3)]),
        FinalizeKernel::Potri => Poly::term(r(1, 1), &[(a, 3)]),
        FinalizeKernel::Trtri => Poly::term(r(1, 3), &[(a, 3)]),
        FinalizeKernel::Transpose => Poly::zero(),
    }
}

/// Concrete FLOP cost of a finalizer on an `m × m` (or `m × n`) result.
#[must_use]
pub fn finalize_cost_flops(kernel: FinalizeKernel, m: u64) -> f64 {
    let m = m as f64;
    match kernel {
        FinalizeKernel::Getri | FinalizeKernel::Sytri => 2.0 * m * m * m,
        FinalizeKernel::Potri => m * m * m,
        FinalizeKernel::Trtri => m * m * m / 3.0,
        FinalizeKernel::Transpose => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_cost_is_2mkn() {
        let p = cost_poly(Kernel::Gemm, Side::Left, false, 0, 1, 2);
        assert_eq!(p.to_string(), "2*q0*q1*q2");
        assert_eq!(cost_flops(Kernel::Gemm, Side::Left, false, 3, 4, 5), 120.0);
    }

    #[test]
    fn trsm_cost_depends_on_side_only_through_symbols() {
        // Left: coefficient q_a ~ q_b square, cost m^2 n = qa qb qc.
        let left = cost_flops(Kernel::Trsm, Side::Left, false, 10, 10, 5);
        assert_eq!(left, 500.0);
        // Right: coefficient q_b ~ q_c, cost m n^2 = qa qb qc.
        let right = cost_flops(Kernel::Trsm, Side::Right, false, 5, 10, 10);
        assert_eq!(right, 500.0);
    }

    #[test]
    fn gegesv_left_matches_table() {
        // 2/3 m^3 + 2 m^2 n with m = 6, n = 4.
        let got = cost_flops(Kernel::Gegesv, Side::Left, false, 6, 6, 4);
        let want = 2.0 / 3.0 * 216.0 + 2.0 * 36.0 * 4.0;
        assert!((got - want).abs() < 1e-12);
        let p = cost_poly(Kernel::Gegesv, Side::Left, false, 0, 1, 2);
        assert!((p.eval(&[6, 6, 4]) - want).abs() < 1e-12);
    }

    #[test]
    fn gegesv_right_matches_table() {
        // X op(A) = B: 2/3 n^3 + 2 n^2 m with m = 4 (rows of B), n = 6.
        let got = cost_flops(Kernel::Gegesv, Side::Right, false, 4, 6, 6);
        let want = 2.0 / 3.0 * 216.0 + 2.0 * 36.0 * 4.0;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn sygesv_pogesv_share_betas() {
        assert_eq!(
            type_two_betas(Kernel::Sygesv),
            type_two_betas(Kernel::Pogesv)
        );
        let (b1, b2) = type_two_betas(Kernel::Sygesv).unwrap();
        assert_eq!(b1, Ratio::new(1, 3));
        assert_eq!(b2, Ratio::from(2));
    }

    #[test]
    fn cheap_flags_select_cheaper_branch() {
        for k in [
            Kernel::Trtrmm,
            Kernel::Getrsv,
            Kernel::Potrsv,
            Kernel::Trtrsv,
        ] {
            let cheap = cost_flops(k, Side::Left, true, 8, 8, 8);
            let costly = cost_flops(k, Side::Left, false, 8, 8, 8);
            assert!(cheap < costly, "{k}");
        }
    }

    #[test]
    fn table_one_square_costs() {
        // All-square kernels at m = 3 (27 m^3-units).
        let m3 = 27.0;
        let cases = [
            (Kernel::Sysymm, false, 2.0 * m3),
            (Kernel::Trsymm, false, m3),
            (Kernel::Trtrmm, true, m3 / 3.0),
            (Kernel::Trtrmm, false, 2.0 * m3 / 3.0),
            (Kernel::Gesysv, false, 8.0 * m3 / 3.0),
            (Kernel::Getrsv, true, 2.0 * m3),
            (Kernel::Getrsv, false, 8.0 * m3 / 3.0),
            (Kernel::Sysysv, false, 7.0 * m3 / 3.0),
            (Kernel::Sytrsv, false, 7.0 * m3 / 3.0),
            (Kernel::Posysv, false, 7.0 * m3 / 3.0),
            (Kernel::Potrsv, true, 5.0 * m3 / 3.0),
            (Kernel::Potrsv, false, 7.0 * m3 / 3.0),
            (Kernel::Trsysv, false, m3),
            (Kernel::Trtrsv, true, m3 / 3.0),
            (Kernel::Trtrsv, false, m3),
        ];
        for (k, cheap, want) in cases {
            let got = cost_flops(k, Side::Left, cheap, 3, 3, 3);
            assert!(
                (got - want).abs() < 1e-12,
                "{k} cheap={cheap}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn finalizer_costs() {
        assert_eq!(finalize_cost_flops(FinalizeKernel::Getri, 4), 128.0);
        assert_eq!(finalize_cost_flops(FinalizeKernel::Potri, 4), 64.0);
        assert!((finalize_cost_flops(FinalizeKernel::Trtri, 3) - 9.0).abs() < 1e-12);
        assert_eq!(finalize_cost_flops(FinalizeKernel::Transpose, 100), 0.0);
        assert!(finalize_cost_poly(FinalizeKernel::Transpose, 0).is_zero());
        assert_eq!(
            finalize_cost_poly(FinalizeKernel::Trtri, 1).to_string(),
            "1/3*q1^3"
        );
    }

    #[test]
    fn poly_and_flops_agree_on_random_sizes() {
        for k in Kernel::ALL {
            for side in [Side::Left, Side::Right] {
                for cheap in [false, true] {
                    let p = cost_poly(k, side, cheap, 0, 1, 2);
                    // Use square-consistent sizes so the Type-I abc form is valid.
                    let q = [7u64, 7, 7];
                    let direct = cost_flops(k, side, cheap, q[0], q[1], q[2]);
                    assert!((p.eval(&q) - direct).abs() < 1e-9, "{k} {side:?}");
                }
            }
        }
    }

    #[test]
    fn cost_class_assignment() {
        assert_eq!(cost_class(Kernel::Gemm, Side::Left), CostClass::TypeI);
        assert_eq!(cost_class(Kernel::Gegesv, Side::Left), CostClass::TypeIIa);
        assert_eq!(cost_class(Kernel::Gegesv, Side::Right), CostClass::TypeIIb);
        assert_eq!(cost_class(Kernel::Trsm, Side::Right), CostClass::TypeI);
    }
}
