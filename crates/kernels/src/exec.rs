//! Numeric execution of the kernel catalogue on top of [`gmc_linalg`].
//!
//! Each association kernel is executed by the most structure-exploiting
//! routine available in the substrate. One documented substitution (see
//! DESIGN.md): symmetric-indefinite coefficient solves (`SY..SV`) factor via
//! LU with partial pivoting rather than Bunch–Kaufman LDLᵀ; numerically
//! correct, with the Table-I cost model unchanged.

use crate::kernel::{FinalizeKernel, Kernel};
use gmc_linalg::{
    cholesky, gemm_with, getrs, inverse_general, inverse_spd, inverse_triangular, lu_factor,
    matmul, potrs, symm, trmm, trsm, GemmWorkspace, LinalgError, Matrix, Side, Transpose, Triangle,
};
use std::error::Error;
use std::fmt;

/// Everything needed to execute one association numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssocExec {
    /// The kernel to invoke.
    pub kernel: Kernel,
    /// Side of the structured/coefficient operand.
    pub side: Side,
    /// Implicit transposition of the first (left) operand.
    pub left_trans: bool,
    /// Implicit transposition of the second (right) operand.
    pub right_trans: bool,
    /// Stored triangle of the left operand, if triangular.
    pub left_tri: Option<Triangle>,
    /// Stored triangle of the right operand, if triangular.
    pub right_tri: Option<Triangle>,
}

/// Errors from numeric kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The underlying linear-algebra routine failed.
    Linalg(LinalgError),
    /// The call requests a transposition pattern the kernel does not
    /// support; the variant builder should have rewritten it away.
    UnsupportedTranspose(Kernel),
    /// A triangular operand is missing its triangle annotation.
    MissingTriangle(Kernel),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Linalg(e) => write!(f, "kernel execution failed: {e}"),
            ExecError::UnsupportedTranspose(k) => {
                write!(
                    f,
                    "kernel {k} does not support the requested transposition pattern"
                )
            }
            ExecError::MissingTriangle(k) => {
                write!(f, "kernel {k} requires a triangle annotation")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ExecError {
    fn from(e: LinalgError) -> Self {
        ExecError::Linalg(e)
    }
}

fn t(flag: bool) -> Transpose {
    if flag {
        Transpose::Yes
    } else {
        Transpose::No
    }
}

/// Triangular-times-triangular multiply exploiting both triangles.
///
/// Computes `op(A) * op(B)` where both operands are triangular; only the
/// live triangles are read, keeping the operation ~6x cheaper than a dense
/// GEMM for same-triangularity inputs.
fn trtr_multiply(
    a: &Matrix,
    ta: bool,
    tri_a: Triangle,
    b: &Matrix,
    tb: bool,
    tri_b: Triangle,
) -> Matrix {
    let n = a.rows();
    let ea = if ta { tri_a.transposed() } else { tri_a };
    let eb = if tb { tri_b.transposed() } else { tri_b };
    let av = |i: usize, j: usize| {
        let v = if ta { a.get(j, i) } else { a.get(i, j) };
        let live = match ea {
            Triangle::Lower => j <= i,
            Triangle::Upper => i <= j,
        };
        if live {
            v
        } else {
            0.0
        }
    };
    let bv = |i: usize, j: usize| {
        let v = if tb { b.get(j, i) } else { b.get(i, j) };
        let live = match eb {
            Triangle::Lower => j <= i,
            Triangle::Upper => i <= j,
        };
        if live {
            v
        } else {
            0.0
        }
    };
    let mut c = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            // Restrict the summation index to where both factors are live.
            let (lo_a, hi_a) = match ea {
                Triangle::Lower => (0, i),
                Triangle::Upper => (i, n - 1),
            };
            let (lo_b, hi_b) = match eb {
                Triangle::Lower => (j, n - 1),
                Triangle::Upper => (0, j),
            };
            let lo = lo_a.max(lo_b);
            let hi = hi_a.min(hi_b);
            if lo > hi {
                continue;
            }
            let mut s = 0.0;
            for k in lo..=hi {
                s += av(i, k) * bv(k, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

/// Execute one association: `result := op(left) * op(right)` via the call's
/// kernel.
///
/// # Errors
///
/// Returns [`ExecError`] if a factorization fails, a triangle annotation is
/// missing, or the transposition pattern is unsupported (a variant-builder
/// bug rather than a user error).
pub fn execute_assoc(call: &AssocExec, left: &Matrix, right: &Matrix) -> Result<Matrix, ExecError> {
    let k = call.kernel;
    match k {
        Kernel::Gemm => Ok(matmul(left, t(call.left_trans), right, t(call.right_trans))),
        Kernel::Symm => {
            // Structured (symmetric) operand on `side`; symmetric operands
            // carry no transposition (removed by simplification).
            let (a, b, tb) = match call.side {
                Side::Left => {
                    if call.left_trans {
                        return Err(ExecError::UnsupportedTranspose(k));
                    }
                    (left, right, call.right_trans)
                }
                Side::Right => {
                    if call.right_trans {
                        return Err(ExecError::UnsupportedTranspose(k));
                    }
                    (right, left, call.left_trans)
                }
            };
            let (m, n) = match call.side {
                Side::Left => (a.rows(), if tb { b.rows() } else { b.cols() }),
                Side::Right => (if tb { b.cols() } else { b.rows() }, a.rows()),
            };
            let mut c = Matrix::zeros(m, n);
            symm(call.side, 1.0, a, b, t(tb), 0.0, &mut c);
            Ok(c)
        }
        Kernel::Trmm | Kernel::Trsymm => {
            // Triangular operand on `side` (transposable); the other operand
            // must be untransposed (TRMM does not support it; the builder
            // rewrites).
            let (tri_op, tri, ta, other, other_trans) = match call.side {
                Side::Left => (
                    left,
                    call.left_tri.ok_or(ExecError::MissingTriangle(k))?,
                    call.left_trans,
                    right,
                    call.right_trans,
                ),
                Side::Right => (
                    right,
                    call.right_tri.ok_or(ExecError::MissingTriangle(k))?,
                    call.right_trans,
                    left,
                    call.left_trans,
                ),
            };
            if other_trans {
                return Err(ExecError::UnsupportedTranspose(k));
            }
            let mut b = other.clone();
            trmm(call.side, tri, t(ta), 1.0, tri_op, &mut b);
            Ok(b)
        }
        Kernel::Sysymm => {
            // Both symmetric; no transpositions possible.
            if call.left_trans || call.right_trans {
                return Err(ExecError::UnsupportedTranspose(k));
            }
            Ok(matmul(left, Transpose::No, right, Transpose::No))
        }
        Kernel::Trtrmm => {
            let tri_l = call.left_tri.ok_or(ExecError::MissingTriangle(k))?;
            let tri_r = call.right_tri.ok_or(ExecError::MissingTriangle(k))?;
            Ok(trtr_multiply(
                left,
                call.left_trans,
                tri_l,
                right,
                call.right_trans,
                tri_r,
            ))
        }
        // Solve kernels: the coefficient operand sits on `side` and is
        // logically inverted; the right-hand side must be untransposed.
        Kernel::Gegesv | Kernel::Gesysv | Kernel::Getrsv => {
            let (coeff, ta, rhs, rhs_trans) = solve_operands(call, left, right);
            if rhs_trans {
                return Err(ExecError::UnsupportedTranspose(k));
            }
            let f = lu_factor(coeff)?;
            let mut x = rhs.clone();
            getrs(&f, t(ta), call.side, &mut x);
            Ok(x)
        }
        Kernel::Sygesv | Kernel::Sysysv | Kernel::Sytrsv => {
            // Symmetric coefficient: transposition is a no-op; factor via LU
            // (documented substitution for Bunch–Kaufman).
            let (coeff, _ta, rhs, rhs_trans) = solve_operands(call, left, right);
            if rhs_trans {
                return Err(ExecError::UnsupportedTranspose(k));
            }
            let f = lu_factor(coeff)?;
            let mut x = rhs.clone();
            getrs(&f, Transpose::No, call.side, &mut x);
            Ok(x)
        }
        Kernel::Pogesv | Kernel::Posysv | Kernel::Potrsv => {
            let (coeff, _ta, rhs, rhs_trans) = solve_operands(call, left, right);
            if rhs_trans {
                return Err(ExecError::UnsupportedTranspose(k));
            }
            let f = cholesky(coeff)?;
            let mut x = rhs.clone();
            potrs(&f, call.side, &mut x);
            Ok(x)
        }
        Kernel::Trsm | Kernel::Trsysv | Kernel::Trtrsv => {
            let (coeff, ta, rhs, rhs_trans) = solve_operands(call, left, right);
            if rhs_trans {
                return Err(ExecError::UnsupportedTranspose(k));
            }
            let tri = match call.side {
                Side::Left => call.left_tri,
                Side::Right => call.right_tri,
            }
            .ok_or(ExecError::MissingTriangle(k))?;
            let mut x = rhs.clone();
            trsm(call.side, tri, t(ta), 1.0, coeff, &mut x);
            Ok(x)
        }
    }
}

/// [`execute_assoc`] with a caller-provided GEMM packing workspace.
///
/// `GEMM` steps pack their panels into `ws` (reused across calls —
/// a compile session passes its owned workspace here); every other
/// kernel is unaffected and delegates to [`execute_assoc`].
///
/// # Errors
///
/// Same as [`execute_assoc`].
pub fn execute_assoc_with(
    ws: &mut GemmWorkspace,
    call: &AssocExec,
    left: &Matrix,
    right: &Matrix,
) -> Result<Matrix, ExecError> {
    if call.kernel == Kernel::Gemm {
        let m = if call.left_trans {
            left.cols()
        } else {
            left.rows()
        };
        let n = if call.right_trans {
            right.rows()
        } else {
            right.cols()
        };
        let mut c = Matrix::zeros(m, n);
        gemm_with(
            ws,
            1.0,
            left,
            t(call.left_trans),
            right,
            t(call.right_trans),
            0.0,
            &mut c,
        );
        return Ok(c);
    }
    execute_assoc(call, left, right)
}

fn solve_operands<'m>(
    call: &AssocExec,
    left: &'m Matrix,
    right: &'m Matrix,
) -> (&'m Matrix, bool, &'m Matrix, bool) {
    match call.side {
        Side::Left => (left, call.left_trans, right, call.right_trans),
        Side::Right => (right, call.right_trans, left, call.left_trans),
    }
}

/// Execute a finalizer on the chain's end result.
///
/// `tri` must name the stored triangle for [`FinalizeKernel::Trtri`].
///
/// # Errors
///
/// Returns [`ExecError`] on factorization failure or a missing triangle
/// annotation.
pub fn execute_finalize(
    kernel: FinalizeKernel,
    tri: Option<Triangle>,
    input: &Matrix,
) -> Result<Matrix, ExecError> {
    match kernel {
        FinalizeKernel::Getri | FinalizeKernel::Sytri => Ok(inverse_general(input)?),
        FinalizeKernel::Potri => Ok(inverse_spd(input)?),
        FinalizeKernel::Trtri => {
            let tri = tri.ok_or(ExecError::MissingTriangle(Kernel::Trtrmm))?;
            Ok(inverse_triangular(input, tri))
        }
        FinalizeKernel::Transpose => Ok(input.transposed()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_linalg::{
        random_general, random_lower_triangular, random_nonsingular, random_spd, random_symmetric,
        random_upper_triangular, relative_error,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    fn call(kernel: Kernel, side: Side) -> AssocExec {
        AssocExec {
            kernel,
            side,
            left_trans: false,
            right_trans: false,
            left_tri: None,
            right_tri: None,
        }
    }

    #[test]
    fn gemm_with_transposes() {
        let mut r = rng();
        let a = random_general(&mut r, 4, 6);
        let b = random_general(&mut r, 4, 5);
        let mut c = call(Kernel::Gemm, Side::Left);
        c.left_trans = true;
        let got = execute_assoc(&c, &a, &b).unwrap();
        let want = matmul(&a, Transpose::Yes, &b, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn symm_left_and_right() {
        let mut r = rng();
        let s = random_symmetric(&mut r, 5);
        let g = random_general(&mut r, 5, 3);
        let got = execute_assoc(&call(Kernel::Symm, Side::Left), &s, &g).unwrap();
        let want = matmul(&s, Transpose::No, &g, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);

        let h = random_general(&mut r, 3, 5);
        let got = execute_assoc(&call(Kernel::Symm, Side::Right), &h, &s).unwrap();
        let want = matmul(&h, Transpose::No, &s, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_left_with_transpose() {
        let mut r = rng();
        let l = random_lower_triangular(&mut r, 4, true);
        let g = random_general(&mut r, 4, 6);
        let mut c = call(Kernel::Trmm, Side::Left);
        c.left_tri = Some(Triangle::Lower);
        c.left_trans = true;
        let got = execute_assoc(&c, &l, &g).unwrap();
        let want = matmul(&l, Transpose::Yes, &g, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_rejects_transposed_general() {
        let mut r = rng();
        let l = random_lower_triangular(&mut r, 4, true);
        let g = random_general(&mut r, 6, 4);
        let mut c = call(Kernel::Trmm, Side::Left);
        c.left_tri = Some(Triangle::Lower);
        c.right_trans = true;
        assert!(matches!(
            execute_assoc(&c, &l, &g),
            Err(ExecError::UnsupportedTranspose(Kernel::Trmm))
        ));
    }

    #[test]
    fn trtrmm_same_and_mixed_triangularity() {
        let mut r = rng();
        let l1 = random_lower_triangular(&mut r, 5, true);
        let l2 = random_lower_triangular(&mut r, 5, true);
        let u = random_upper_triangular(&mut r, 5, true);

        let mut c = call(Kernel::Trtrmm, Side::Left);
        c.left_tri = Some(Triangle::Lower);
        c.right_tri = Some(Triangle::Lower);
        let got = execute_assoc(&c, &l1, &l2).unwrap();
        let want = matmul(&l1, Transpose::No, &l2, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
        assert!(got.is_lower_triangular(1e-14));

        let mut c = call(Kernel::Trtrmm, Side::Left);
        c.left_tri = Some(Triangle::Lower);
        c.right_tri = Some(Triangle::Upper);
        let got = execute_assoc(&c, &l1, &u).unwrap();
        let want = matmul(&l1, Transpose::No, &u, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trtrmm_with_transposed_operand() {
        let mut r = rng();
        let l1 = random_lower_triangular(&mut r, 4, true);
        let l2 = random_lower_triangular(&mut r, 4, true);
        let mut c = call(Kernel::Trtrmm, Side::Left);
        c.left_tri = Some(Triangle::Lower);
        c.right_tri = Some(Triangle::Lower);
        c.right_trans = true;
        let got = execute_assoc(&c, &l1, &l2).unwrap();
        let want = matmul(&l1, Transpose::No, &l2, Transpose::Yes);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn gegesv_solves_left_and_right() {
        let mut r = rng();
        let a = random_nonsingular(&mut r, 5);
        let b = random_general(&mut r, 5, 3);
        let got = execute_assoc(&call(Kernel::Gegesv, Side::Left), &a, &b).unwrap();
        // a * got == b
        let back = matmul(&a, Transpose::No, &got, Transpose::No);
        assert!(relative_error(&back, &b) < 1e-9);

        let c2 = random_general(&mut r, 3, 5);
        let got = execute_assoc(&call(Kernel::Gegesv, Side::Right), &c2, &a).unwrap();
        let back = matmul(&got, Transpose::No, &a, Transpose::No);
        assert!(relative_error(&back, &c2) < 1e-9);
    }

    #[test]
    fn gegesv_transposed_coefficient() {
        let mut r = rng();
        let a = random_nonsingular(&mut r, 4);
        let b = random_general(&mut r, 4, 2);
        let mut c = call(Kernel::Gegesv, Side::Left);
        c.left_trans = true;
        let got = execute_assoc(&c, &a, &b).unwrap();
        let back = matmul(&a, Transpose::Yes, &got, Transpose::No);
        assert!(relative_error(&back, &b) < 1e-9);
    }

    #[test]
    fn pogesv_solves_spd_system() {
        let mut r = rng();
        let a = random_spd(&mut r, 6);
        let b = random_general(&mut r, 6, 2);
        let got = execute_assoc(&call(Kernel::Pogesv, Side::Left), &a, &b).unwrap();
        let back = matmul(&a, Transpose::No, &got, Transpose::No);
        assert!(relative_error(&back, &b) < 1e-9);
    }

    #[test]
    fn sygesv_solves_symmetric_indefinite() {
        let mut r = rng();
        let mut a = random_symmetric(&mut r, 5);
        // Shift the diagonal to keep it nonsingular but possibly indefinite.
        for i in 0..5 {
            let v = a.get(i, i) + if i % 2 == 0 { 4.0 } else { -4.0 };
            a.set(i, i, v);
        }
        let b = random_general(&mut r, 5, 3);
        let got = execute_assoc(&call(Kernel::Sygesv, Side::Left), &a, &b).unwrap();
        let back = matmul(&a, Transpose::No, &got, Transpose::No);
        assert!(relative_error(&back, &b) < 1e-9);
    }

    #[test]
    fn trsm_right_side() {
        let mut r = rng();
        let u = random_upper_triangular(&mut r, 4, true);
        let b = random_general(&mut r, 3, 4);
        let mut c = call(Kernel::Trsm, Side::Right);
        c.right_tri = Some(Triangle::Upper);
        let got = execute_assoc(&c, &b, &u).unwrap();
        let back = matmul(&got, Transpose::No, &u, Transpose::No);
        assert!(relative_error(&back, &b) < 1e-10);
    }

    #[test]
    fn trtrsv_triangular_rhs() {
        let mut r = rng();
        let l = random_lower_triangular(&mut r, 5, true);
        let l2 = random_lower_triangular(&mut r, 5, true);
        let mut c = call(Kernel::Trtrsv, Side::Left);
        c.left_tri = Some(Triangle::Lower);
        c.right_tri = Some(Triangle::Lower);
        let got = execute_assoc(&c, &l, &l2).unwrap();
        let back = matmul(&l, Transpose::No, &got, Transpose::No);
        assert!(relative_error(&back, &l2) < 1e-10);
    }

    #[test]
    fn finalizers() {
        let mut r = rng();
        let a = random_nonsingular(&mut r, 4);
        let inv = execute_finalize(FinalizeKernel::Getri, None, &a).unwrap();
        assert!(matmul(&a, Transpose::No, &inv, Transpose::No).is_identity(1e-9));

        let p = random_spd(&mut r, 4);
        let inv = execute_finalize(FinalizeKernel::Potri, None, &p).unwrap();
        assert!(matmul(&p, Transpose::No, &inv, Transpose::No).is_identity(1e-9));

        let l = random_lower_triangular(&mut r, 4, true);
        let inv = execute_finalize(FinalizeKernel::Trtri, Some(Triangle::Lower), &l).unwrap();
        assert!(matmul(&l, Transpose::No, &inv, Transpose::No).is_identity(1e-9));

        let g = random_general(&mut r, 3, 5);
        let gt = execute_finalize(FinalizeKernel::Transpose, None, &g).unwrap();
        assert_eq!(gt, g.transposed());
    }

    #[test]
    fn solve_singular_coefficient_errors() {
        let a = Matrix::zeros(3, 3);
        let b = Matrix::identity(3);
        assert!(matches!(
            execute_assoc(&call(Kernel::Gegesv, Side::Left), &a, &b),
            Err(ExecError::Linalg(_))
        ));
    }
}
