//! Kernel catalogue for the `symgmc` generalized matrix chain compiler.
//!
//! This crate is the *instruction set* `I` of the paper's LAMP instance
//! (Definition 1): the kernels of Table I, each with
//!
//! * a FLOP cost function ([`cost`]), exactly as listed in Table I, in both
//!   symbolic ([`gmc_ir::Poly`]) and concrete form;
//! * a cost-type classification (Type I / IIa / IIb, Sec. V);
//! * the association-to-kernel mapping of Fig. 3 ([`mapping`]);
//! * the structure/property inference tables of Fig. 4 ([`inference`]);
//! * a numeric implementation on top of [`gmc_linalg`] ([`exec`]).
//!
//! Kernels whose names have a white background in Fig. 3 exist in BLAS
//! (`GEMM`, `SYMM`, `TRMM`, `TRSM`); the rest are the paper's custom kernels
//! (gray background), which we implement from scratch.

#![warn(missing_docs)]
pub mod cost;
pub mod exec;
pub mod inference;
pub mod kernel;
pub mod mapping;

pub use cost::{cost_flops, cost_poly, finalize_cost_flops, finalize_cost_poly, CostClass};
pub use exec::{execute_assoc, execute_assoc_with, execute_finalize, AssocExec, ExecError};
pub use inference::{infer_property, infer_structure};
pub use kernel::{FinalizeKernel, Kernel, KernelClass};
pub use mapping::{assign_kernel, AssocOperand, KernelChoice, MappingError};
