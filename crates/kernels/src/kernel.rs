//! The kernel enumeration (Table I of the paper).

use std::fmt;

/// Broad kernel class following the paper's naming convention: `..MM`
/// kernels compute matrix products, `..SV` kernels solve linear systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Matrix-product kernels (`XXMM` / `XXYYMM`).
    Multiply,
    /// Linear-system kernels (`XXSV` / `XXYYSV`).
    Solve,
}

/// The association kernels of Table I.
///
/// For `Solve` kernels the first two letters name the coefficient matrix
/// features and the next two the right-hand side features (`GE` general,
/// `SY` symmetric, `PO` symmetric positive-definite, `TR` triangular).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// `C := alpha op(A) op(B) + beta C`, general times general (BLAS).
    Gemm,
    /// Symmetric times general (BLAS).
    Symm,
    /// Triangular times general (BLAS).
    Trmm,
    /// Symmetric times symmetric (custom).
    Sysymm,
    /// Triangular times symmetric (custom).
    Trsymm,
    /// Triangular times triangular (custom).
    Trtrmm,
    /// Solve with general coefficient, general right-hand side (custom; the
    /// paper elongates the name to avoid clashing with LAPACK `GESV`).
    Gegesv,
    /// Solve with general coefficient, symmetric right-hand side (custom).
    Gesysv,
    /// Solve with general coefficient, triangular right-hand side (custom).
    Getrsv,
    /// Solve with symmetric coefficient, general right-hand side (custom).
    Sygesv,
    /// Solve with symmetric coefficient, symmetric right-hand side (custom).
    Sysysv,
    /// Solve with symmetric coefficient, triangular right-hand side (custom).
    Sytrsv,
    /// Solve with SPD coefficient, general right-hand side (custom).
    Pogesv,
    /// Solve with SPD coefficient, symmetric right-hand side (custom).
    Posysv,
    /// Solve with SPD coefficient, triangular right-hand side (custom).
    Potrsv,
    /// Solve with triangular coefficient, general right-hand side (BLAS).
    Trsm,
    /// Solve with triangular coefficient, symmetric right-hand side (custom).
    Trsysv,
    /// Solve with triangular coefficient, triangular right-hand side (custom).
    Trtrsv,
}

impl Kernel {
    /// All association kernels, in Table-I order.
    pub const ALL: [Kernel; 18] = [
        Kernel::Gemm,
        Kernel::Symm,
        Kernel::Trmm,
        Kernel::Sysymm,
        Kernel::Trsymm,
        Kernel::Trtrmm,
        Kernel::Gegesv,
        Kernel::Gesysv,
        Kernel::Getrsv,
        Kernel::Sygesv,
        Kernel::Sysysv,
        Kernel::Sytrsv,
        Kernel::Pogesv,
        Kernel::Posysv,
        Kernel::Potrsv,
        Kernel::Trsm,
        Kernel::Trsysv,
        Kernel::Trtrsv,
    ];

    /// The BLAS-style upper-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Gemm => "GEMM",
            Kernel::Symm => "SYMM",
            Kernel::Trmm => "TRMM",
            Kernel::Sysymm => "SYSYMM",
            Kernel::Trsymm => "TRSYMM",
            Kernel::Trtrmm => "TRTRMM",
            Kernel::Gegesv => "GEGESV",
            Kernel::Gesysv => "GESYSV",
            Kernel::Getrsv => "GETRSV",
            Kernel::Sygesv => "SYGESV",
            Kernel::Sysysv => "SYSYSV",
            Kernel::Sytrsv => "SYTRSV",
            Kernel::Pogesv => "POGESV",
            Kernel::Posysv => "POSYSV",
            Kernel::Potrsv => "POTRSV",
            Kernel::Trsm => "TRSM",
            Kernel::Trsysv => "TRSYSV",
            Kernel::Trtrsv => "TRTRSV",
        }
    }

    /// Multiply or solve.
    #[must_use]
    pub fn class(self) -> KernelClass {
        match self {
            Kernel::Gemm
            | Kernel::Symm
            | Kernel::Trmm
            | Kernel::Sysymm
            | Kernel::Trsymm
            | Kernel::Trtrmm => KernelClass::Multiply,
            _ => KernelClass::Solve,
        }
    }

    /// `true` if this kernel exists in standard BLAS (white background in
    /// Fig. 3); the rest are the paper's custom kernels.
    #[must_use]
    pub fn is_standard_blas(self) -> bool {
        matches!(
            self,
            Kernel::Gemm | Kernel::Symm | Kernel::Trmm | Kernel::Trsm
        )
    }

    /// `true` if the kernel solves a linear system with a non-triangular
    /// coefficient matrix and a general (rectangular-capable) right-hand
    /// side — the Type II kernels of Sec. V.
    #[must_use]
    pub fn is_type_two(self) -> bool {
        matches!(self, Kernel::Gegesv | Kernel::Sygesv | Kernel::Pogesv)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Unary finalizer kernels.
///
/// When a propagated inversion or transposition reaches the end result of a
/// chain, the paper forces an explicit inverse or transpose (Sec. IV). These
/// are not association kernels, so they live in their own enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FinalizeKernel {
    /// Explicit inverse of a general matrix (LAPACK `GETRF` + `GETRI`, 2m³).
    Getri,
    /// Explicit inverse of a symmetric indefinite matrix (2m³).
    Sytri,
    /// Explicit inverse of an SPD matrix (`POTRF` + `POTRI`, m³).
    Potri,
    /// Explicit inverse of a triangular matrix (`TRTRI`, m³/3).
    Trtri,
    /// Explicit out-of-place transpose (0 FLOPs; memory traffic only).
    Transpose,
}

impl FinalizeKernel {
    /// The LAPACK-style name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FinalizeKernel::Getri => "GETRI",
            FinalizeKernel::Sytri => "SYTRI",
            FinalizeKernel::Potri => "POTRI",
            FinalizeKernel::Trtri => "TRTRI",
            FinalizeKernel::Transpose => "TRANSPOSE",
        }
    }
}

impl fmt::Display for FinalizeKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eighteen_association_kernels() {
        assert_eq!(Kernel::ALL.len(), 18);
        // All names unique.
        let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn six_multiplies_twelve_solves() {
        let mults = Kernel::ALL
            .iter()
            .filter(|k| k.class() == KernelClass::Multiply)
            .count();
        assert_eq!(mults, 6);
        assert_eq!(Kernel::ALL.len() - mults, 12);
    }

    #[test]
    fn standard_blas_subset() {
        let std: Vec<Kernel> = Kernel::ALL
            .iter()
            .copied()
            .filter(|k| k.is_standard_blas())
            .collect();
        assert_eq!(
            std,
            vec![Kernel::Gemm, Kernel::Symm, Kernel::Trmm, Kernel::Trsm]
        );
    }

    #[test]
    fn type_two_kernels_are_the_three_general_rhs_solvers() {
        let t2: Vec<Kernel> = Kernel::ALL
            .iter()
            .copied()
            .filter(|k| k.is_type_two())
            .collect();
        assert_eq!(t2, vec![Kernel::Gegesv, Kernel::Sygesv, Kernel::Pogesv]);
    }

    #[test]
    fn solve_kernel_names_end_in_sv() {
        for k in Kernel::ALL {
            if k.class() == KernelClass::Solve && k != Kernel::Trsm {
                assert!(k.name().ends_with("SV"), "{k}");
            }
        }
    }
}
