//! Grid measurement of kernel performance.
//!
//! For each kernel we run the numeric implementation on every point of a
//! 1D/2D/3D size grid, record FLOP/s (Table-I FLOPs divided by the best
//! observed wall time), and hand the samples to a [`GridInterpolator`].

use crate::grid::kernel_dims;
use crate::interp::GridInterpolator;
use crate::model::PerfModels;
use gmc_kernels::{
    cost_flops, execute_assoc, execute_finalize, finalize_cost_flops, AssocExec, FinalizeKernel,
    Kernel,
};
use gmc_linalg::{
    random_general, random_lower_triangular, random_nonsingular, random_spd, random_symmetric,
    Matrix, Side, Triangle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// Options for [`measure_models`].
#[derive(Debug, Clone)]
pub struct MeasureOptions {
    /// Grid points per axis (strictly increasing sizes).
    pub grid: Vec<u64>,
    /// Timing repetitions per point; the best time is kept.
    pub reps: usize,
    /// RNG seed for operand generation.
    pub seed: u64,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            grid: crate::grid::quick_grid(),
            reps: 2,
            seed: 0xbe2c4,
        }
    }
}

/// The "natural" cheap-branch setting used when timing each kernel (the
/// operands generated below realize the cheap case where one exists).
#[must_use]
pub fn natural_cheap(kernel: Kernel) -> bool {
    matches!(
        kernel,
        Kernel::Trtrmm | Kernel::Getrsv | Kernel::Potrsv | Kernel::Trtrsv
    )
}

/// Generate the operand pair for timing `kernel` at coefficient size `m`
/// and companion dimension `n` (ignored by 1-D kernels).
fn operands_for(kernel: Kernel, m: usize, n: usize, rng: &mut StdRng) -> (Matrix, Matrix) {
    match kernel {
        Kernel::Gemm => unreachable!("GEMM is handled by the 3-D path"),
        Kernel::Symm => (random_symmetric(rng, m), random_general(rng, m, n)),
        Kernel::Trmm => (
            random_lower_triangular(rng, m, false),
            random_general(rng, m, n),
        ),
        Kernel::Trsm => (
            random_lower_triangular(rng, m, true),
            random_general(rng, m, n),
        ),
        Kernel::Gegesv => (random_nonsingular(rng, m), random_general(rng, m, n)),
        Kernel::Sygesv => (diag_dominant_symmetric(rng, m), random_general(rng, m, n)),
        Kernel::Pogesv => (random_spd(rng, m), random_general(rng, m, n)),
        Kernel::Sysymm => (random_symmetric(rng, m), random_symmetric(rng, m)),
        Kernel::Trsymm => (
            random_lower_triangular(rng, m, false),
            random_symmetric(rng, m),
        ),
        Kernel::Trtrmm => (
            random_lower_triangular(rng, m, false),
            random_lower_triangular(rng, m, false),
        ),
        Kernel::Gesysv => (random_nonsingular(rng, m), random_symmetric(rng, m)),
        Kernel::Getrsv => (
            random_nonsingular(rng, m),
            random_lower_triangular(rng, m, false),
        ),
        Kernel::Sysysv => (diag_dominant_symmetric(rng, m), random_symmetric(rng, m)),
        Kernel::Sytrsv => (
            diag_dominant_symmetric(rng, m),
            random_lower_triangular(rng, m, false),
        ),
        Kernel::Posysv => (random_spd(rng, m), random_symmetric(rng, m)),
        Kernel::Potrsv => (random_spd(rng, m), random_lower_triangular(rng, m, false)),
        Kernel::Trsysv => (
            random_lower_triangular(rng, m, true),
            random_symmetric(rng, m),
        ),
        Kernel::Trtrsv => (
            random_lower_triangular(rng, m, true),
            random_lower_triangular(rng, m, false),
        ),
    }
}

fn diag_dominant_symmetric(rng: &mut StdRng, m: usize) -> Matrix {
    let mut a = random_symmetric(rng, m);
    for i in 0..m {
        let v = a.get(i, i) + m as f64;
        a.set(i, i, v);
    }
    a
}

fn exec_call(kernel: Kernel) -> AssocExec {
    let tri = |needed: bool| if needed { Some(Triangle::Lower) } else { None };
    let left_tri = matches!(
        kernel,
        Kernel::Trmm
            | Kernel::Trsm
            | Kernel::Trsymm
            | Kernel::Trtrmm
            | Kernel::Trsysv
            | Kernel::Trtrsv
    );
    let right_tri = matches!(
        kernel,
        Kernel::Trtrmm | Kernel::Getrsv | Kernel::Sytrsv | Kernel::Potrsv | Kernel::Trtrsv
    );
    AssocExec {
        kernel,
        side: Side::Left,
        left_trans: false,
        right_trans: false,
        left_tri: tri(left_tri),
        right_tri: tri(right_tri),
    }
}

fn best_time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best.max(1e-9)
}

/// Measure performance models for all association and finalizer kernels.
///
/// Every kernel is timed on its grid (three axes for `GEMM`, two for
/// one-square-operand kernels, one for all-square kernels); the recorded
/// quantity is FLOP/s, except for the zero-FLOP transpose finalizer where
/// it is elements/s.
#[must_use]
pub fn measure_models(options: &MeasureOptions) -> PerfModels {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let axis: Vec<f64> = options.grid.iter().map(|&g| g as f64).collect();
    let g = options.grid.len();
    let mut assoc: HashMap<Kernel, GridInterpolator> = HashMap::new();

    for kernel in Kernel::ALL {
        let dims = kernel_dims(kernel);
        let mut values = Vec::with_capacity(g.pow(dims as u32));
        match dims {
            3 => {
                for &m in &options.grid {
                    for &k in &options.grid {
                        for &n in &options.grid {
                            let a = random_general(&mut rng, m as usize, k as usize);
                            let b = random_general(&mut rng, k as usize, n as usize);
                            let call = exec_call(kernel);
                            let t = best_time(options.reps, || {
                                let _ = execute_assoc(&call, &a, &b).expect("kernel runs");
                            });
                            values.push(cost_flops(kernel, Side::Left, false, m, k, n) / t);
                        }
                    }
                }
            }
            2 => {
                for &m in &options.grid {
                    for &n in &options.grid {
                        let (a, b) = operands_for(kernel, m as usize, n as usize, &mut rng);
                        let call = exec_call(kernel);
                        let t = best_time(options.reps, || {
                            let _ = execute_assoc(&call, &a, &b).expect("kernel runs");
                        });
                        let flops = cost_flops(kernel, Side::Left, natural_cheap(kernel), m, m, n);
                        values.push(flops / t);
                    }
                }
            }
            _ => {
                for &m in &options.grid {
                    let (a, b) = operands_for(kernel, m as usize, m as usize, &mut rng);
                    let call = exec_call(kernel);
                    let t = best_time(options.reps, || {
                        let _ = execute_assoc(&call, &a, &b).expect("kernel runs");
                    });
                    let flops = cost_flops(kernel, Side::Left, natural_cheap(kernel), m, m, m);
                    values.push(flops / t);
                }
            }
        }
        assoc.insert(kernel, GridInterpolator::new(axis.clone(), dims, values));
    }

    // Finalizers: 1-D grids.
    let mut finalize: HashMap<FinalizeKernel, GridInterpolator> = HashMap::new();
    for kernel in [
        FinalizeKernel::Getri,
        FinalizeKernel::Sytri,
        FinalizeKernel::Potri,
        FinalizeKernel::Trtri,
        FinalizeKernel::Transpose,
    ] {
        let mut values = Vec::with_capacity(g);
        for &m in &options.grid {
            let input = match kernel {
                FinalizeKernel::Potri => random_spd(&mut rng, m as usize),
                FinalizeKernel::Trtri => random_lower_triangular(&mut rng, m as usize, true),
                FinalizeKernel::Sytri => diag_dominant_symmetric(&mut rng, m as usize),
                _ => random_nonsingular(&mut rng, m as usize),
            };
            let tri = matches!(kernel, FinalizeKernel::Trtri).then_some(Triangle::Lower);
            let t = best_time(options.reps, || {
                let _ = execute_finalize(kernel, tri, &input).expect("finalizer runs");
            });
            let work = if kernel == FinalizeKernel::Transpose {
                (m * m) as f64 // elements moved
            } else {
                finalize_cost_flops(kernel, m)
            };
            values.push(work / t);
        }
        finalize.insert(kernel, GridInterpolator::new(axis.clone(), 1, values));
    }

    PerfModels::new(assoc, finalize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_kernels_on_tiny_grid() {
        let options = MeasureOptions {
            grid: vec![8, 16],
            reps: 1,
            seed: 7,
        };
        let models = measure_models(&options);
        for k in Kernel::ALL {
            let p = models.kernel_perf(k, &[12.0, 12.0, 12.0]);
            assert!(p.is_finite() && p > 0.0, "{k}: perf {p}");
        }
    }

    #[test]
    fn natural_cheap_set() {
        assert!(natural_cheap(Kernel::Trtrmm));
        assert!(natural_cheap(Kernel::Getrsv));
        assert!(!natural_cheap(Kernel::Gemm));
        assert!(!natural_cheap(Kernel::Gegesv));
    }
}
