//! The assembled performance model: a [`gmc_core::CostModel`] that
//! estimates a variant's execution time by summing per-kernel-call
//! estimates `FLOPs / interpolated FLOP/s`.

use crate::grid::kernel_dims;
use crate::interp::GridInterpolator;
use gmc_core::{CostModel, Variant};
use gmc_ir::Instance;
use gmc_kernels::{cost_flops, finalize_cost_flops, FinalizeKernel, Kernel};
use gmc_linalg::Side;
use std::collections::HashMap;

/// Measured performance models for every kernel.
#[derive(Debug, Clone)]
pub struct PerfModels {
    assoc: HashMap<Kernel, GridInterpolator>,
    finalize: HashMap<FinalizeKernel, GridInterpolator>,
}

impl PerfModels {
    /// Assemble models from per-kernel interpolators (see
    /// [`crate::measure::measure_models`]).
    ///
    /// # Panics
    ///
    /// Panics if any association or finalizer kernel is missing a model.
    #[must_use]
    pub fn new(
        assoc: HashMap<Kernel, GridInterpolator>,
        finalize: HashMap<FinalizeKernel, GridInterpolator>,
    ) -> Self {
        for k in Kernel::ALL {
            assert!(assoc.contains_key(&k), "missing model for {k}");
        }
        for k in [
            FinalizeKernel::Getri,
            FinalizeKernel::Sytri,
            FinalizeKernel::Potri,
            FinalizeKernel::Trtri,
            FinalizeKernel::Transpose,
        ] {
            assert!(finalize.contains_key(&k), "missing model for {k}");
        }
        PerfModels { assoc, finalize }
    }

    /// The interpolator behind an association kernel (for persistence).
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees every kernel has a model.
    #[must_use]
    pub fn assoc_model(&self, kernel: Kernel) -> &crate::interp::GridInterpolator {
        &self.assoc[&kernel]
    }

    /// The interpolator behind a finalizer kernel (for persistence).
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees every finalizer has a model.
    #[must_use]
    pub fn finalize_model(&self, kernel: FinalizeKernel) -> &crate::interp::GridInterpolator {
        &self.finalize[&kernel]
    }

    /// Interpolated FLOP/s of `kernel` at the point `(m, k, n)` (only the
    /// first [`kernel_dims`] coordinates are used).
    ///
    /// # Panics
    ///
    /// Panics if fewer coordinates than the kernel's dimensionality are
    /// supplied.
    #[must_use]
    pub fn kernel_perf(&self, kernel: Kernel, point: &[f64]) -> f64 {
        self.assoc[&kernel].interpolate(point)
    }

    /// Estimated execution time (seconds) of one association.
    #[must_use]
    pub fn step_time(
        &self,
        kernel: Kernel,
        side: Side,
        cheap: bool,
        qa: u64,
        qb: u64,
        qc: u64,
    ) -> f64 {
        let flops = cost_flops(kernel, side, cheap, qa, qb, qc);
        let point = match kernel_dims(kernel) {
            3 => [qa as f64, qb as f64, qc as f64],
            2 => match side {
                // (coefficient size, companion dimension).
                Side::Left => [qa as f64, qc as f64, 0.0],
                Side::Right => [qc as f64, qa as f64, 0.0],
            },
            _ => [qa as f64, 0.0, 0.0],
        };
        let perf = self.kernel_perf(kernel, &point).max(1.0);
        flops / perf
    }

    /// Estimated execution time (seconds) of a finalizer on an `m x m`
    /// result (`m x n` for the transpose, which is costed per element).
    #[must_use]
    pub fn finalize_time(&self, kernel: FinalizeKernel, m: u64) -> f64 {
        let work = if kernel == FinalizeKernel::Transpose {
            (m * m) as f64
        } else {
            finalize_cost_flops(kernel, m)
        };
        let rate = self.finalize[&kernel].interpolate(&[m as f64]).max(1.0);
        work / rate
    }

    /// Fill a session-owned [`gmc_core::expand::CostMatrix`] with
    /// model-estimated times for `pool` × `instances`, reusing the
    /// matrix's buffers (the session-scratch analogue of
    /// `CostMatrix::with(pool, instances, |v, q| models.variant_time(v, q))`).
    ///
    /// Goes through the matrix's batched row API so the per-variant
    /// model resolution of [`PerfModels::variant_times_into`] is hoisted
    /// out of the per-instance loop; every cell is bit-identical to the
    /// per-cell `variant_time` closure.
    pub fn fill_cost_matrix(
        &self,
        pool: &[Variant],
        instances: &[Instance],
        matrix: &mut gmc_core::expand::CostMatrix,
    ) {
        matrix.fill_rows_with(
            pool,
            instances,
            |v, qs, row| self.variant_times_into(v, qs, row),
            1,
        );
    }

    /// Batched [`PerfModels::variant_time`]: one row of estimated times
    /// for `variant` over `instances`, written into `out`.
    ///
    /// Resolves each step's interpolator (a hash lookup per kernel), its
    /// grid dimensionality, and each finalizer's model **once per
    /// variant**, then streams the instances — the axis/model lookup no
    /// longer sits in the per-instance loop. The per-cell arithmetic and
    /// summation order match `variant_time` exactly, so the row is
    /// bit-identical to the one-at-a-time evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != instances.len()`.
    pub fn variant_times_into(&self, variant: &Variant, instances: &[Instance], out: &mut [f64]) {
        assert_eq!(out.len(), instances.len(), "one output cell per instance");
        struct StepPlan<'a> {
            interp: &'a GridInterpolator,
            dims: usize,
            kernel: Kernel,
            side: Side,
            cheap: bool,
            triplet: (usize, usize, usize),
        }
        let steps: Vec<StepPlan<'_>> = variant
            .steps()
            .iter()
            .map(|s| StepPlan {
                interp: &self.assoc[&s.kernel],
                dims: kernel_dims(s.kernel),
                kernel: s.kernel,
                side: s.side,
                cheap: s.cheap,
                triplet: s.triplet,
            })
            .collect();
        let finals: Vec<(&GridInterpolator, FinalizeKernel, usize)> = variant
            .finalizes()
            .iter()
            .map(|f| (&self.finalize[&f.kernel], f.kernel, f.size_sym))
            .collect();
        for (q, cell) in instances.iter().zip(out) {
            let sizes = q.sizes();
            let mut total = 0.0;
            for s in &steps {
                let (a, b, c) = s.triplet;
                let (qa, qb, qc) = (sizes[a], sizes[b], sizes[c]);
                let flops = cost_flops(s.kernel, s.side, s.cheap, qa, qb, qc);
                let point = match s.dims {
                    3 => [qa as f64, qb as f64, qc as f64],
                    2 => match s.side {
                        // (coefficient size, companion dimension).
                        Side::Left => [qa as f64, qc as f64, 0.0],
                        Side::Right => [qc as f64, qa as f64, 0.0],
                    },
                    _ => [qa as f64, 0.0, 0.0],
                };
                let perf = s.interp.interpolate(&point).max(1.0);
                total += flops / perf;
            }
            for &(interp, kernel, size_sym) in &finals {
                let m = sizes[size_sym];
                let work = if kernel == FinalizeKernel::Transpose {
                    (m * m) as f64
                } else {
                    finalize_cost_flops(kernel, m)
                };
                total += work / interp.interpolate(&[m as f64]).max(1.0);
            }
            *cell = total;
        }
    }

    /// Estimated execution time (seconds) of a whole variant on `q`.
    #[must_use]
    pub fn variant_time(&self, variant: &Variant, q: &Instance) -> f64 {
        let sizes = q.sizes();
        let mut total = 0.0;
        for s in variant.steps() {
            let (a, b, c) = s.triplet;
            total += self.step_time(s.kernel, s.side, s.cheap, sizes[a], sizes[b], sizes[c]);
        }
        for f in variant.finalizes() {
            total += self.finalize_time(f.kernel, sizes[f.size_sym]);
        }
        total
    }
}

impl CostModel for PerfModels {
    fn variant_cost(&self, variant: &Variant, q: &Instance) -> f64 {
        self.variant_time(variant, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure_models, MeasureOptions};
    use gmc_core::{all_variants, CompiledChain};
    use gmc_ir::{Features, Operand, Shape};

    fn tiny_models() -> PerfModels {
        measure_models(&MeasureOptions {
            grid: vec![8, 32],
            reps: 1,
            seed: 3,
        })
    }

    #[test]
    fn variant_time_is_positive_and_monotone_in_sizes() {
        let models = tiny_models();
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g, g]).unwrap();
        let vs = all_variants(&shape).unwrap();
        let small = Instance::new(vec![8, 8, 8, 8]);
        let large = Instance::new(vec![32, 32, 32, 32]);
        for v in &vs {
            let ts = models.variant_time(v, &small);
            let tl = models.variant_time(v, &large);
            assert!(ts > 0.0);
            assert!(tl > ts, "time must grow with size");
        }
    }

    #[test]
    fn model_dispatch_works_with_compiled_chain() {
        let models = tiny_models();
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g, g]).unwrap();
        let pool = all_variants(&shape).unwrap();
        let chain = CompiledChain::from_variants(shape, pool);
        let q = Instance::new(vec![4, 32, 4, 32]);
        let (idx, cost) = chain.dispatch_with(&q, &models);
        assert!(cost > 0.0);
        assert!(idx < chain.variants().len());
    }

    #[test]
    fn fill_cost_matrix_matches_one_shot() {
        let models = tiny_models();
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g, g, g]).unwrap();
        let pool = all_variants(&shape).unwrap();
        let instances: Vec<Instance> = (1..5u64)
            .map(|s| Instance::new(vec![4 * s, 8, 2 * s, 16, 4]))
            .collect();
        let one_shot =
            gmc_core::expand::CostMatrix::with(&pool, &instances, |v, q| models.variant_time(v, q));
        let mut reused = gmc_core::expand::CostMatrix::new();
        models.fill_cost_matrix(&pool, &instances, &mut reused);
        models.fill_cost_matrix(&pool, &instances, &mut reused);
        for v in 0..one_shot.num_variants() {
            for i in 0..one_shot.num_instances() {
                assert_eq!(one_shot.cost(v, i).to_bits(), reused.cost(v, i).to_bits());
            }
        }
    }

    #[test]
    fn transpose_finalizer_costed_per_element() {
        let models = tiny_models();
        let t8 = models.finalize_time(FinalizeKernel::Transpose, 8);
        let t32 = models.finalize_time(FinalizeKernel::Transpose, 32);
        assert!(t8 > 0.0 && t32 > t8);
    }
}
