//! Performance models for execution-time dispatch (Sec. VII-B of the paper).
//!
//! The paper builds per-kernel models by timing each kernel on a
//! 3D/2D/1D Cartesian grid with six points per axis over `[50, 1000]`,
//! recording the performance (FLOP/s) at each point, and estimating a
//! kernel call's time as `FLOPs / interpolated performance`. A variant's
//! time estimate is the sum over its kernel calls.
//!
//! This crate reproduces that construction on top of our own kernel
//! substrate: [`measure::measure_models`] times every kernel on a grid,
//! [`interp::GridInterpolator`] performs clamped multilinear interpolation,
//! and [`model::PerfModels`] implements [`gmc_core::CostModel`] so compiled
//! chains can dispatch on estimated execution time.

#![warn(missing_docs)]
pub mod grid;
pub mod interp;
pub mod measure;
pub mod model;
pub mod serialize;

pub use grid::{kernel_dims, paper_grid, quick_grid};
pub use interp::GridInterpolator;
pub use measure::{measure_models, MeasureOptions};
pub use model::PerfModels;
pub use serialize::{from_text, to_text, LoadError};
