//! Measurement grids and kernel dimensionality.

use gmc_kernels::Kernel;

/// The paper's grid: six points per axis over `[50, 1000]`.
#[must_use]
pub fn paper_grid() -> Vec<u64> {
    vec![50, 100, 300, 500, 700, 1000]
}

/// A small grid suitable for quick model building on a laptop-scale run of
/// the experiments (our kernels are single-threaded; see DESIGN.md).
#[must_use]
pub fn quick_grid() -> Vec<u64> {
    vec![32, 64, 128, 256]
}

/// Number of free size axes of a kernel invocation:
///
/// * `GEMM` has three (`m`, `k`, `n`);
/// * kernels with one square structured/coefficient operand and a general
///   rectangular companion have two (`m`, `n`);
/// * kernels whose operands are all square have one (`m`).
#[must_use]
pub fn kernel_dims(kernel: Kernel) -> usize {
    match kernel {
        Kernel::Gemm => 3,
        Kernel::Symm
        | Kernel::Trmm
        | Kernel::Trsm
        | Kernel::Gegesv
        | Kernel::Sygesv
        | Kernel::Pogesv => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_paper() {
        assert_eq!(paper_grid(), vec![50, 100, 300, 500, 700, 1000]);
    }

    #[test]
    fn dims_partition_the_catalogue() {
        let mut counts = [0usize; 4];
        for k in Kernel::ALL {
            counts[kernel_dims(k)] += 1;
        }
        assert_eq!(counts[3], 1); // GEMM
        assert_eq!(counts[2], 6); // one-square-operand kernels
        assert_eq!(counts[1], 11); // all-square kernels
        assert_eq!(counts[0], 0);
    }
}
