//! Clamped multilinear interpolation on a Cartesian grid.

/// A `d`-dimensional Cartesian grid of sample values with multilinear
/// interpolation (d ∈ {1, 2, 3}); queries outside the grid are clamped to
/// the boundary, matching the paper's "crude but effective" models.
///
/// Values are stored row-major over the axes: index
/// `((i0 * g + i1) * g + i2)` for 3-D with `g` points per axis.
#[derive(Debug, Clone)]
pub struct GridInterpolator {
    axis: Vec<f64>,
    dims: usize,
    values: Vec<f64>,
}

impl GridInterpolator {
    /// Create an interpolator over `axis^dims` samples.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not 1–3, the axis is not strictly increasing, or
    /// `values.len() != axis.len().pow(dims)`.
    #[must_use]
    pub fn new(axis: Vec<f64>, dims: usize, values: Vec<f64>) -> Self {
        assert!((1..=3).contains(&dims), "dims must be 1, 2, or 3");
        assert!(axis.len() >= 2, "need at least two grid points");
        assert!(
            axis.windows(2).all(|w| w[0] < w[1]),
            "axis must be strictly increasing"
        );
        assert_eq!(
            values.len(),
            axis.len().pow(dims as u32),
            "values must fill the grid"
        );
        GridInterpolator { axis, dims, values }
    }

    /// Number of axes.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The shared axis values.
    #[must_use]
    pub fn axis(&self) -> &[f64] {
        &self.axis
    }

    /// The flattened sample values (row-major over the axes).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Locate `x` on the axis: returns `(lower index, fraction)` with the
    /// query clamped into the grid range.
    fn locate(&self, x: f64) -> (usize, f64) {
        let n = self.axis.len();
        if x <= self.axis[0] {
            return (0, 0.0);
        }
        if x >= self.axis[n - 1] {
            return (n - 2, 1.0);
        }
        let mut i = 0;
        while self.axis[i + 1] < x {
            i += 1;
        }
        let t = (x - self.axis[i]) / (self.axis[i + 1] - self.axis[i]);
        (i, t)
    }

    fn value_at(&self, idx: &[usize]) -> f64 {
        let g = self.axis.len();
        let mut flat = 0;
        for &i in idx {
            flat = flat * g + i;
        }
        self.values[flat]
    }

    /// Interpolate at `point` (only the first `dims` coordinates are used).
    ///
    /// Allocation-free: axis location and corner indices live in fixed
    /// `d <= 3` stack arrays, so cost-model row fills can call this in
    /// their per-instance hot loop. The arithmetic (and therefore every
    /// bit of the result) is unchanged from the original formulation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dims` coordinates are supplied.
    #[must_use]
    pub fn interpolate(&self, point: &[f64]) -> f64 {
        assert!(point.len() >= self.dims, "point has too few coordinates");
        let mut located = [(0usize, 0.0f64); 3];
        for (slot, &x) in located[..self.dims].iter_mut().zip(point) {
            *slot = self.locate(x);
        }
        // Sum over the 2^d corners of the surrounding cell.
        let corners = 1usize << self.dims;
        let mut acc = 0.0;
        let mut idx = [0usize; 3];
        for corner in 0..corners {
            let mut weight = 1.0;
            for (d, &(i, t)) in located[..self.dims].iter().enumerate() {
                if corner & (1 << d) == 0 {
                    weight *= 1.0 - t;
                    idx[d] = i;
                } else {
                    weight *= t;
                    idx[d] = i + 1;
                }
            }
            if weight != 0.0 {
                acc += weight * self.value_at(&idx[..self.dims]);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_linear() {
        let it = GridInterpolator::new(vec![0.0, 10.0], 1, vec![0.0, 100.0]);
        assert_eq!(it.interpolate(&[5.0]), 50.0);
        assert_eq!(it.interpolate(&[0.0]), 0.0);
        assert_eq!(it.interpolate(&[10.0]), 100.0);
    }

    #[test]
    fn clamping_outside_range() {
        let it = GridInterpolator::new(vec![1.0, 2.0], 1, vec![3.0, 7.0]);
        assert_eq!(it.interpolate(&[0.0]), 3.0);
        assert_eq!(it.interpolate(&[9.0]), 7.0);
    }

    #[test]
    fn two_d_bilinear() {
        // f(x, y) = x + 10 y sampled on {0,1}^2 interpolates exactly.
        let it = GridInterpolator::new(vec![0.0, 1.0], 2, vec![0.0, 10.0, 1.0, 11.0]);
        assert!((it.interpolate(&[0.5, 0.5]) - 5.5).abs() < 1e-12);
        assert!((it.interpolate(&[0.25, 0.75]) - 7.75).abs() < 1e-12);
    }

    #[test]
    fn three_d_trilinear_reproduces_linear_function() {
        let axis = vec![0.0, 2.0, 4.0];
        let f = |x: f64, y: f64, z: f64| 1.0 + x + 2.0 * y + 3.0 * z;
        let mut values = Vec::new();
        for &x in &axis {
            for &y in &axis {
                for &z in &axis {
                    values.push(f(x, y, z));
                }
            }
        }
        let it = GridInterpolator::new(axis, 3, values);
        for p in [[1.0, 1.0, 1.0], [0.5, 3.0, 2.5], [4.0, 0.0, 4.0]] {
            assert!((it.interpolate(&p) - f(p[0], p[1], p[2])).abs() < 1e-9);
        }
    }

    #[test]
    fn interior_multi_cell_lookup() {
        let it = GridInterpolator::new(vec![0.0, 1.0, 2.0, 4.0], 1, vec![0.0, 1.0, 4.0, 16.0]);
        assert!((it.interpolate(&[3.0]) - 10.0).abs() < 1e-12); // halfway 4..16
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_axis() {
        let _ = GridInterpolator::new(vec![1.0, 1.0], 1, vec![0.0, 0.0]);
    }
}
