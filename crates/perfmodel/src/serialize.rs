//! Plain-text persistence for measured performance models.
//!
//! Measuring models on the paper grid takes minutes; applications (and the
//! Fig. 6 harness via `--models <path>`) can measure once and reload. The
//! format is a simple line-oriented text file — no external dependencies:
//!
//! ```text
//! gmc-perfmodels v1
//! kernel GEMM 3
//! axis 32 64 128
//! values 1.1e9 ...
//! finalize GETRI 1
//! axis 32 64 128
//! values 9.0e8 ...
//! ```

use crate::interp::GridInterpolator;
use crate::model::PerfModels;
use gmc_kernels::{FinalizeKernel, Kernel};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from loading a model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The header line is missing or has the wrong version.
    BadHeader,
    /// A malformed line (payload: 1-based line number).
    BadLine(usize),
    /// An unknown kernel name.
    UnknownKernel(String),
    /// Models are missing for some kernels.
    Incomplete,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "missing or incompatible header"),
            LoadError::BadLine(n) => write!(f, "malformed model file at line {n}"),
            LoadError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            LoadError::Incomplete => write!(f, "model file does not cover every kernel"),
        }
    }
}

impl Error for LoadError {}

const HEADER: &str = "gmc-perfmodels v1";

fn kernel_by_name(name: &str) -> Option<Kernel> {
    Kernel::ALL.into_iter().find(|k| k.name() == name)
}

fn finalize_by_name(name: &str) -> Option<FinalizeKernel> {
    [
        FinalizeKernel::Getri,
        FinalizeKernel::Sytri,
        FinalizeKernel::Potri,
        FinalizeKernel::Trtri,
        FinalizeKernel::Transpose,
    ]
    .into_iter()
    .find(|k| k.name() == name)
}

fn emit_entry(out: &mut String, tag: &str, name: &str, it: &GridInterpolator) {
    out.push_str(&format!("{tag} {name} {}\n", it.dims()));
    out.push_str("axis");
    for a in it.axis() {
        out.push_str(&format!(" {a}"));
    }
    out.push('\n');
    out.push_str("values");
    for v in it.values() {
        out.push_str(&format!(" {v:e}"));
    }
    out.push('\n');
}

/// Serialize models to the text format.
#[must_use]
pub fn to_text(models: &PerfModels) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for kernel in Kernel::ALL {
        emit_entry(
            &mut out,
            "kernel",
            kernel.name(),
            models.assoc_model(kernel),
        );
    }
    for kernel in [
        FinalizeKernel::Getri,
        FinalizeKernel::Sytri,
        FinalizeKernel::Potri,
        FinalizeKernel::Trtri,
        FinalizeKernel::Transpose,
    ] {
        emit_entry(
            &mut out,
            "finalize",
            kernel.name(),
            models.finalize_model(kernel),
        );
    }
    out
}

/// Parse models from the text format.
///
/// # Errors
///
/// Returns [`LoadError`] for malformed or incomplete files.
pub fn from_text(text: &str) -> Result<PerfModels, LoadError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(LoadError::BadHeader),
    }
    let mut assoc: HashMap<Kernel, GridInterpolator> = HashMap::new();
    let mut finalize: HashMap<FinalizeKernel, GridInterpolator> = HashMap::new();

    while let Some((ln, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().ok_or(LoadError::BadLine(ln + 1))?;
        let name = parts.next().ok_or(LoadError::BadLine(ln + 1))?;
        let dims: usize = parts
            .next()
            .and_then(|d| d.parse().ok())
            .ok_or(LoadError::BadLine(ln + 1))?;

        let (_, axis_line) = lines.next().ok_or(LoadError::BadLine(ln + 2))?;
        let axis: Vec<f64> = axis_line
            .trim()
            .strip_prefix("axis")
            .ok_or(LoadError::BadLine(ln + 2))?
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| LoadError::BadLine(ln + 2))?;

        let (_, values_line) = lines.next().ok_or(LoadError::BadLine(ln + 3))?;
        let values: Vec<f64> = values_line
            .trim()
            .strip_prefix("values")
            .ok_or(LoadError::BadLine(ln + 3))?
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| LoadError::BadLine(ln + 3))?;

        if axis.len() < 2 || values.len() != axis.len().pow(dims as u32) {
            return Err(LoadError::BadLine(ln + 3));
        }
        let it = GridInterpolator::new(axis, dims, values);
        match tag {
            "kernel" => {
                let k =
                    kernel_by_name(name).ok_or_else(|| LoadError::UnknownKernel(name.into()))?;
                assoc.insert(k, it);
            }
            "finalize" => {
                let k =
                    finalize_by_name(name).ok_or_else(|| LoadError::UnknownKernel(name.into()))?;
                finalize.insert(k, it);
            }
            _ => return Err(LoadError::BadLine(ln + 1)),
        }
    }
    if assoc.len() != Kernel::ALL.len() || finalize.len() != 5 {
        return Err(LoadError::Incomplete);
    }
    Ok(PerfModels::new(assoc, finalize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure_models, MeasureOptions};
    use gmc_linalg::Side;

    fn tiny() -> PerfModels {
        measure_models(&MeasureOptions {
            grid: vec![8, 16],
            reps: 1,
            seed: 1,
        })
    }

    #[test]
    fn round_trip_preserves_estimates() {
        let m = tiny();
        let text = to_text(&m);
        let loaded = from_text(&text).unwrap();
        for kernel in Kernel::ALL {
            for p in [[8.0, 8.0, 8.0], [12.0, 16.0, 9.0], [40.0, 40.0, 40.0]] {
                let a = m.kernel_perf(kernel, &p);
                let b = loaded.kernel_perf(kernel, &p);
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{kernel}");
            }
        }
        let a = m.step_time(Kernel::Gemm, Side::Left, false, 10, 11, 12);
        let b = loaded.step_time(Kernel::Gemm, Side::Left, false, 10, 11, 12);
        assert!((a - b).abs() <= 1e-12 * a.max(1e-12));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(from_text("nope\n"), Err(LoadError::BadHeader)));
    }

    #[test]
    fn truncated_file_rejected() {
        let m = tiny();
        let text = to_text(&m);
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(from_text(&truncated).is_err());
    }

    #[test]
    fn unknown_kernel_rejected() {
        let text = format!("{HEADER}\nkernel BOGUS 1\naxis 1 2\nvalues 1 2\n");
        assert!(matches!(from_text(&text), Err(LoadError::UnknownKernel(_))));
    }

    #[test]
    fn incomplete_file_rejected() {
        let text = format!("{HEADER}\nkernel GEMM 1\naxis 1 2\nvalues 1 2\n");
        assert!(matches!(from_text(&text), Err(LoadError::Incomplete)));
    }
}
