//! Integration of the performance models with the selection machinery:
//! Theorem-2 base sets and Algorithm-1 expansions driven by estimated
//! execution time instead of FLOPs.

use gmc_core::expand::CostMatrix;
use gmc_core::{all_variants, expand_set, select_base_set_with, Objective};
use gmc_ir::{Features, InstanceSampler, Operand, Property, Shape, Structure};
use gmc_perfmodel::{from_text, measure_models, to_text, MeasureOptions, PerfModels};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn models() -> PerfModels {
    measure_models(&MeasureOptions {
        grid: vec![8, 24, 48],
        reps: 1,
        seed: 99,
    })
}

fn test_shape() -> Shape {
    let g = Operand::plain(Features::general());
    let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
    let p = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
    Shape::new(vec![g, l, g, p, g]).unwrap()
}

#[test]
fn time_based_base_set_is_valid_and_bounded() {
    let models = models();
    let shape = test_shape();
    let mut rng = StdRng::seed_from_u64(17);
    let sampler = InstanceSampler::new(&shape, 8, 48);
    let training = sampler.sample_many(&mut rng, 120);
    let pool = all_variants(&shape).unwrap();

    // Time-based optimum per training instance.
    let matrix = CostMatrix::with(&pool, &training, |v, q| models.variant_time(v, q));
    let base = select_base_set_with(&shape, &training, matrix.optimal(), |v, q| {
        models.variant_time(v, q)
    })
    .unwrap();
    let classes = shape.size_classes().num_classes();
    assert_eq!(base.representatives.len(), classes);
    assert!(!base.variants.is_empty());

    // The time-selected set still has finite penalty on fresh instances
    // under the time metric over the enumerated pool.
    for q in sampler.sample_many(&mut rng, 100) {
        let opt = pool
            .iter()
            .map(|v| models.variant_time(v, &q))
            .fold(f64::INFINITY, f64::min);
        let best = base
            .variants
            .iter()
            .map(|v| models.variant_time(v, &q))
            .fold(f64::INFINITY, f64::min);
        assert!(best.is_finite() && best >= opt);
    }
}

#[test]
fn time_based_expansion_reduces_time_objective() {
    let models = models();
    let shape = test_shape();
    let mut rng = StdRng::seed_from_u64(5);
    let training = InstanceSampler::new(&shape, 8, 48).sample_many(&mut rng, 80);
    let pool = all_variants(&shape).unwrap();
    let matrix = CostMatrix::with(&pool, &training, |v, q| models.variant_time(v, q));

    let base = select_base_set_with(&shape, &training, matrix.optimal(), |v, q| {
        models.variant_time(v, q)
    })
    .unwrap();
    let base_idx: Vec<usize> = base
        .variants
        .iter()
        .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
        .collect();
    let before = matrix.objective(&base_idx, Objective::AvgPenalty);
    let grown = expand_set(
        &matrix,
        &base_idx,
        base_idx.len() + 2,
        Objective::AvgPenalty,
    );
    let after = matrix.objective(&grown, Objective::AvgPenalty);
    assert!(after <= before + 1e-12);
}

#[test]
fn persisted_models_drive_identical_selection() {
    let models = models();
    let reloaded = from_text(&to_text(&models)).unwrap();
    let shape = test_shape();
    let mut rng = StdRng::seed_from_u64(23);
    let training = InstanceSampler::new(&shape, 8, 48).sample_many(&mut rng, 60);
    let pool = all_variants(&shape).unwrap();

    let m1 = CostMatrix::with(&pool, &training, |v, q| models.variant_time(v, q));
    let m2 = CostMatrix::with(&pool, &training, |v, q| reloaded.variant_time(v, q));
    let s1 = expand_set(&m1, &[], 3, Objective::AvgPenalty);
    let s2 = expand_set(&m2, &[], 3, Objective::AvgPenalty);
    assert_eq!(s1, s2, "persistence must not perturb selection");
}
