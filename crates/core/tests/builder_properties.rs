//! Property-based tests of the Sec. IV variant builder: structural
//! invariants every lowered variant must satisfy, over random experiment
//! shapes and random parenthesizations.

use gmc_core::{all_variants, build_variant, ParenTree, ValRef};
use gmc_ir::{InstanceSampler, Operand, Shape};
use gmc_kernels::KernelClass;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_shape() -> impl Strategy<Value = Shape> {
    (1usize..=6)
        .prop_flat_map(|n| proptest::collection::vec(0usize..10, n))
        .prop_map(|codes| {
            let options = Operand::experiment_options();
            Shape::new(codes.into_iter().map(|i| options[i]).collect()).unwrap()
        })
}

fn arb_tree_for(n: usize) -> impl Strategy<Value = ParenTree> {
    // Pick a random parenthesization by index into the enumeration.
    let trees = ParenTree::enumerate(0, n - 1);
    let len = trees.len();
    (0..len).prop_map(move |i| trees[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn variant_structure_invariants(shape in arb_shape(), seed in 0u64..10_000) {
        let n = shape.len();
        let mut rng = StdRng::seed_from_u64(seed);
        for tree in ParenTree::enumerate(0, n - 1).iter().take(10) {
            let v = build_variant(&shape, tree).unwrap();
            // Exactly n - 1 association steps.
            prop_assert_eq!(v.steps().len(), n - 1);
            // Every leaf is consumed exactly once across all steps
            // (single-matrix chains have no steps at all).
            let mut leaf_uses = vec![0usize; n];
            let mut temp_uses = vec![0usize; v.steps().len()];
            for s in v.steps() {
                for r in [s.left, s.right] {
                    match r {
                        ValRef::Leaf(i) => leaf_uses[i] += 1,
                        ValRef::Temp(t) => temp_uses[t] += 1,
                    }
                }
            }
            if n >= 2 {
                prop_assert!(leaf_uses.iter().all(|&u| u == 1), "each matrix used once");
            }
            // Every temp except the last is consumed exactly once; the last
            // is the result.
            if !v.steps().is_empty() {
                let k = v.steps().len();
                prop_assert!(temp_uses[..k - 1].iter().all(|&u| u == 1));
                prop_assert_eq!(temp_uses[k - 1], 0);
            }
            // Temps are only referenced after they are produced.
            for (idx, s) in v.steps().iter().enumerate() {
                for r in [s.left, s.right] {
                    if let ValRef::Temp(t) = r {
                        prop_assert!(t < idx);
                    }
                }
            }
            // Cost is a degree-3 polynomial (or zero for n = 1 with no op).
            prop_assert!(v.cost_poly().is_zero() || v.cost_poly().degree() == 3);
            // Cost is positive on any instance (n >= 2).
            if n >= 2 {
                let q = InstanceSampler::new(&shape, 2, 100).sample(&mut rng);
                prop_assert!(v.flops(&q) > 0.0);
            }
        }
    }

    #[test]
    fn no_inversions_means_no_solves(shape in arb_shape()) {
        // Inversions cannot be created out of thin air: a chain with no
        // inverted operand lowers to multiply kernels only, and never
        // forces an explicit inverse. (The converse bound does not hold:
        // propagation can *split* one inversion into two solves, as in the
        // Sec. IV worked example.)
        prop_assume!(shape.operands().iter().all(|o| !o.inverted));
        for v in all_variants(&shape).unwrap().iter() {
            for s in v.steps() {
                prop_assert_eq!(
                    s.kernel.class(),
                    KernelClass::Multiply,
                    "{} uses a solve without any inversion",
                    v.paren()
                );
            }
            prop_assert!(v
                .finalizes()
                .iter()
                .all(|f| f.kernel == gmc_kernels::FinalizeKernel::Transpose));
        }
    }

    #[test]
    fn all_variants_of_a_shape_share_result_shape(shape in arb_shape(), seed in 0u64..10_000) {
        prop_assume!(shape.len() >= 2);
        let vs = all_variants(&shape).unwrap();
        let first = vs[0].result();
        for v in &vs {
            let r = v.result();
            prop_assert_eq!(r.rows_sym, first.rows_sym);
            prop_assert_eq!(r.cols_sym, first.cols_sym);
        }
        let _ = seed;
    }

    #[test]
    fn fanning_out_variant_count_bound(shape in arb_shape(), tree_seed in 0u64..100) {
        // |E| <= n + 1 and the base family always exists.
        let fanning = gmc_core::fanning_out_set(&shape).unwrap();
        prop_assert!(fanning.len() <= shape.len() + 1);
        prop_assert!(!fanning.is_empty());
        let _ = tree_seed;
    }

    #[test]
    fn triplets_are_canonical(shape in arb_shape(), idx in 0usize..5) {
        let n = shape.len();
        prop_assume!(n >= 2);
        let trees = ParenTree::enumerate(0, n - 1);
        let tree = &trees[idx % trees.len()];
        let v = build_variant(&shape, tree).unwrap();
        let classes = shape.size_classes();
        for s in v.steps() {
            for sym in [s.triplet.0, s.triplet.1, s.triplet.2] {
                prop_assert!(sym < shape.num_sizes());
                prop_assert_eq!(classes.find(sym), sym, "symbols are class representatives");
            }
        }
    }
}

#[test]
fn random_tree_strategy_is_exercised() {
    use proptest::strategy::ValueTree;
    // Smoke test for the helper (kept out of proptest to avoid an unused
    // warning if strategies change).
    let mut runner = proptest::test_runner::TestRunner::default();
    let strat = arb_tree_for(5);
    for _ in 0..5 {
        let tree = strat
            .new_tree(&mut runner)
            .expect("strategy works")
            .current();
        assert_eq!(tree.span(), (0, 4));
    }
}
