//! The cross-shape fragment store's contract: consulting the store must
//! never change a single emitted bit. Pools assembled from store hits —
//! including hits relocated across frames, hits surviving LRU pressure,
//! and hits warmed from a persisted snapshot — must equal the pools a
//! store-less session builds, by whole-[`Variant`] equality (steps,
//! `ValRef`s, finalizes, exact-rational cost polynomials). The
//! off-reference is a capacity-0 store (every lookup misses, nothing is
//! ever inserted — the same lowering work `GMC_FRAG=off` does) rather
//! than [`gmc_core::force_frag_mode`], which is process-global and would
//! race the other tests in this binary.

use gmc_core::{CompileOptions, CompileSession, SessionSnapshot, Variant};
use gmc_ir::{Operand, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counter assertions only hold when the store is actually consulted.
/// Under `GMC_FRAG=off` (the CI rung) every session lowers store-less,
/// and under `GMC_ENUM=naive` the per-tree reference lowering never
/// reaches the store either — in both cases the bit-identity checks
/// below still run, but hits/inserts/evictions are legitimately zero.
fn store_active() -> bool {
    gmc_core::active_frag_mode() == gmc_core::FragMode::On
        && gmc_core::active_enum_mode() == gmc_core::EnumMode::Memoized
}

/// The paper's experiment operands plus valid transposed forms, so
/// structured/inverted/transposed descriptor runs all reach the store.
fn operand_options() -> Vec<Operand> {
    let base = Operand::experiment_options();
    let mut out = base.clone();
    for op in base {
        let t = op.transposed();
        if t.is_valid() {
            out.push(t);
        }
    }
    out
}

fn random_shape(rng: &mut StdRng, n: usize) -> Option<Shape> {
    let options = operand_options();
    let ops: Vec<Operand> = (0..n)
        .map(|_| options[rand::Rng::gen_range(rng, 0..options.len())])
        .collect();
    Shape::new(ops).ok()
}

/// A random sequence of shapes sharing operands (and therefore spans) —
/// the workload the store exists for.
fn random_sequence(rng: &mut StdRng, len: usize) -> Vec<Shape> {
    let mut shapes = Vec::new();
    while shapes.len() < len {
        let n = 2 + rand::Rng::gen_range(rng, 0..6);
        if let Some(s) = random_shape(rng, n) {
            shapes.push(s);
        }
    }
    shapes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Store-assembled pools are bit-identical to store-less pools for
    /// random shape sequences and `jobs` in {1, 4} — with the store
    /// actually doing work (hits occur across the sequence).
    #[test]
    fn store_assembled_pools_equal_storeless_pools_exactly(
        seq_seed in 0u64..50_000,
        jobs_sel in 0usize..2,
    ) {
        let jobs = [1usize, 4][jobs_sel];
        let mut rng = StdRng::seed_from_u64(seq_seed);
        let shapes = random_sequence(&mut rng, 8);

        let mut with_store = CompileSession::new();
        with_store.set_jobs(jobs);
        let mut without = CompileSession::new();
        without.set_jobs(jobs);
        without.set_fragment_cache_capacity(0);

        for shape in &shapes {
            let a: Vec<Variant> = with_store.all_variants(shape).unwrap();
            let b: Vec<Variant> = without.all_variants(shape).unwrap();
            prop_assert_eq!(&a, &b, "jobs = {}", jobs);
        }
        if store_active() {
            let stats = with_store.fragment_cache_stats();
            prop_assert!(stats.hits + stats.misses > 0, "store was consulted");
        }
        prop_assert_eq!(without.fragment_cache_stats().inserts, 0);
    }

    /// Under LRU pressure (a store far smaller than the working set)
    /// eviction fires and re-lowered fragments are still bit-identical.
    #[test]
    fn eviction_under_pressure_stays_bit_identical(
        seq_seed in 0u64..50_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seq_seed);
        let shapes = random_sequence(&mut rng, 8);

        let mut tiny = CompileSession::new();
        tiny.set_jobs(1);
        tiny.set_fragment_cache_capacity(3);
        let mut reference = CompileSession::new();
        reference.set_jobs(1);
        reference.set_fragment_cache_capacity(0);

        for shape in &shapes {
            // Twice per shape so the tiny store must also serve hits on
            // entries that survived (or were re-inserted after) eviction.
            for _ in 0..2 {
                let a: Vec<Variant> = tiny.all_variants(shape).unwrap();
                let b: Vec<Variant> = reference.all_variants(shape).unwrap();
                prop_assert_eq!(&a, &b);
            }
            prop_assert!(tiny.num_cached_fragments() <= 3, "capacity respected");
        }
        if store_active() {
            let stats = tiny.fragment_cache_stats();
            prop_assert!(
                stats.evictions > 0,
                "8 shapes x capacity 3 must evict (inserts = {})",
                stats.inserts
            );
        }
    }
}

#[test]
fn related_shapes_share_fragments_across_the_store() {
    // Shapes that share a prefix of operands share every sub-span of
    // that prefix; after the first compile the rest must hit.
    let options = operand_options();
    let mut session = CompileSession::new();
    session.set_jobs(1);
    for tail in options.iter().take(8) {
        let mut ops = vec![options[0], options[1], options[2]];
        ops.push(*tail);
        if let Ok(shape) = Shape::new(ops) {
            let _ = session.all_variants(&shape).unwrap();
        }
    }
    let stats = session.fragment_cache_stats();
    if store_active() {
        assert!(
            stats.hits > 0,
            "shared prefix spans must hit ({} misses)",
            stats.misses
        );
    } else {
        assert_eq!(stats.inserts, 0, "GMC_FRAG=off bypasses the store");
    }
}

#[test]
fn snapshot_round_trip_restores_fragments_and_emits_identically() {
    let opts = CompileOptions {
        training_instances: 120,
        expand_by: 1,
        ..CompileOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(777);
    let shapes = random_sequence(&mut rng, 5);

    // Original daemon: compile, emit, snapshot (chains + hot fragments).
    let mut original = CompileSession::with_options(opts.clone());
    let mut want = Vec::new();
    for (i, shape) in shapes.iter().enumerate() {
        let chain = original.compile(shape).unwrap();
        let mut rust = String::new();
        gmc_codegen::emit_rust_into(&mut rust, &chain, &format!("f{i}"));
        want.push(rust);
    }
    let snap = original.snapshot();
    if store_active() {
        assert!(snap.num_fragments() > 0, "hot fragments are persisted");
    }
    let text = snap.encode();
    drop(original);

    // Restarted daemon: fragments are warmed before the chain rebuild,
    // so the rebuild itself assembles from store hits; every persisted
    // entry lands (fresh store, ample capacity) and the re-emit is
    // byte-identical.
    let snap = SessionSnapshot::decode(&text).unwrap();
    let mut restored = CompileSession::with_options(opts);
    assert_eq!(restored.restore(&snap).unwrap(), shapes.len());
    let stats = restored.fragment_cache_stats();
    if store_active() {
        assert_eq!(
            stats.restored,
            snap.num_fragments() as u64,
            "every persisted fragment restored exactly once"
        );
        assert!(
            stats.hits > 0,
            "the restore rebuild must hit warm fragments"
        );
    }
    for (i, shape) in shapes.iter().enumerate() {
        let chain = restored.compile(shape).unwrap();
        let mut rust = String::new();
        gmc_codegen::emit_rust_into(&mut rust, &chain, &format!("f{i}"));
        assert_eq!(rust, want[i], "byte-identical emit for shape {i}");
    }
}
