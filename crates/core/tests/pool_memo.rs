//! The memoized enumeration engine's contract: for any shape, the
//! span-DAG fragment engine must produce **exactly** the pool the
//! per-tree reference lowering produces — same order, same steps, same
//! `ValRef`s, same finalizes, same (exact-rational) cost polynomials —
//! for every thread count. `Variant` derives `PartialEq` over all of
//! those, so the pin is whole-value equality.

use gmc_core::{build_pool_with_mode, CompileSession, EnumMode, ParenTree, Variant};
use gmc_ir::{Operand, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's ten experiment operands plus transposed forms of every
/// option that admits one, so inversion *and* transposition rewrites
/// (and their interaction with structured operands) all get exercised.
fn operand_options() -> Vec<Operand> {
    let base = Operand::experiment_options();
    let mut out = base.clone();
    for op in base {
        let t = op.transposed();
        if t.is_valid() {
            out.push(t);
        }
    }
    out
}

fn random_shape(rng: &mut StdRng, n: usize) -> Option<Shape> {
    let options = operand_options();
    let ops: Vec<Operand> = (0..n)
        .map(|_| options[rand::Rng::gen_range(rng, 0..options.len())])
        .collect();
    Shape::new(ops).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact pool equality, memoized vs naive, across random shapes with
    /// inverted/transposed/structured operands, chain lengths up to 10,
    /// and `jobs` in {1, 4}.
    #[test]
    fn memoized_pool_equals_naive_pool_exactly(
        n in 1usize..=10,
        shape_seed in 0u64..50_000,
    ) {
        let mut rng = StdRng::seed_from_u64(shape_seed);
        let shape = match random_shape(&mut rng, n) {
            Some(s) => s,
            None => return Ok(()),
        };
        let trees = ParenTree::enumerate(0, n - 1);
        let naive = build_pool_with_mode(&shape, &trees, 1, EnumMode::Naive).unwrap();
        for jobs in [1usize, 4] {
            let memo = build_pool_with_mode(&shape, &trees, jobs, EnumMode::Memoized).unwrap();
            prop_assert_eq!(&naive, &memo, "jobs = {}", jobs);
            if jobs > 1 {
                let naive_par =
                    build_pool_with_mode(&shape, &trees, jobs, EnumMode::Naive).unwrap();
                prop_assert_eq!(&naive, &naive_par, "naive jobs = {}", jobs);
            }
        }
        // Spot-check the invariants the equality is standing in for.
        for (v, tree) in naive.iter().zip(&trees) {
            prop_assert_eq!(v.paren(), tree);
            prop_assert_eq!(v.steps().len(), n - 1);
        }
    }

    /// A session's pool (memoized, shape-keyed scratch reused across
    /// calls) matches the one-shot naive pool, including after the
    /// session compiles *other* shapes in between (memo invalidation).
    #[test]
    fn session_pools_survive_memo_invalidation(
        n in 2usize..=7,
        shape_seed in 0u64..50_000,
    ) {
        let mut rng = StdRng::seed_from_u64(shape_seed);
        let (shape, other) = match (random_shape(&mut rng, n), random_shape(&mut rng, 3)) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(()),
        };
        let trees = ParenTree::enumerate(0, n - 1);
        let reference: Vec<Variant> =
            build_pool_with_mode(&shape, &trees, 1, EnumMode::Naive).unwrap();
        let mut session = CompileSession::new();
        session.set_jobs(1);
        prop_assert_eq!(&session.all_variants(&shape).unwrap(), &reference);
        // Re-target the memo to a different shape, then come back warm.
        let _ = session.all_variants(&other).unwrap();
        prop_assert_eq!(&session.all_variants(&shape).unwrap(), &reference);
        prop_assert_eq!(&session.all_variants(&shape).unwrap(), &reference);
    }
}
