//! Session-reuse guarantees: a long-lived [`CompileSession`] must behave
//! exactly like a procession of fresh one-shot pipelines — same selected
//! variants, bit-identical costs — while reusing its arenas, and the
//! parallel feature must not change a single selected index. The same
//! bar holds for the bounded cache and warm-restart persistence: LRU
//! eviction only ever forgets (re-compiles are bit-identical), and a
//! save → drop → load round trip emits byte-identical C++/Rust.

use gmc_core::dp::optimal_cost_reference;
use gmc_core::{
    expand_set, select_base_set, CompileOptions, CompileSession, CompiledChain, CostMatrix,
    Objective, SessionSnapshot,
};
use gmc_ir::{Instance, InstanceSampler, Operand, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_shape(rng: &mut StdRng, n: usize) -> Option<Shape> {
    let options = Operand::experiment_options();
    let ops: Vec<Operand> = (0..n)
        .map(|_| options[rand::Rng::gen_range(rng, 0..options.len())])
        .collect();
    Shape::new(ops).ok()
}

#[test]
fn same_program_twice_is_bit_identical_to_fresh_sessions() {
    let source = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        Matrix P <Symmetric, SPD>;
        X := A * L^-1 * P^-1;
    ";
    let opts = CompileOptions {
        training_instances: 300,
        expand_by: 2,
        ..CompileOptions::default()
    };

    let mut session = CompileSession::with_options(opts.clone());
    let (program, id1) = session.parse(source).unwrap();
    let first = session.compile(program.shape()).unwrap();
    let (_, id2) = session.parse(source).unwrap();
    assert_eq!(id1, id2, "re-parsing interns to the same shape id");
    let second = session.compile(program.shape()).unwrap();
    assert_eq!(
        session.num_cached_chains(),
        1,
        "second compile is a cache hit"
    );

    let fresh = CompiledChain::compile_with(program.shape().clone(), &opts).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let sampler = InstanceSampler::new(program.shape(), 2, 400);
    for chain in [&second, &fresh] {
        assert_eq!(first.variants().len(), chain.variants().len());
        for (a, b) in first.variants().iter().zip(chain.variants()) {
            assert_eq!(a.paren(), b.paren());
            assert_eq!(a.cost_poly(), b.cost_poly());
            for q in sampler.sample_many(&mut rng, 20) {
                assert_eq!(a.flops(&q).to_bits(), b.flops(&q).to_bits());
            }
        }
    }
}

#[test]
fn fifty_distinct_programs_through_one_session() {
    // 50 distinct shapes through one session: per-shape DP costs must be
    // bit-identical to a fresh solver AND to the HashMap reference, and
    // compiled selections must match fresh-session compiles.
    let mut rng = StdRng::seed_from_u64(2026);
    let opts = CompileOptions {
        training_instances: 60,
        size_hi: 200,
        ..CompileOptions::default()
    };
    let mut session = CompileSession::with_options(opts.clone());
    let mut distinct: Vec<Shape> = Vec::new();
    while distinct.len() < 50 {
        let n = 2 + distinct.len() % 6;
        if let Some(shape) = random_shape(&mut rng, n) {
            if !distinct.contains(&shape) {
                distinct.push(shape);
            }
        }
    }
    for (i, shape) in distinct.iter().enumerate() {
        let sampler = InstanceSampler::new(shape, 2, 300);
        // Dispatch-loop pattern: several instances against the session's
        // warm per-shape solver.
        for _ in 0..3 {
            let q = sampler.sample(&mut rng);
            let warm = session.optimal_cost(shape, &q).unwrap();
            let cold = gmc_core::optimal_cost(shape, &q).unwrap();
            let reference = optimal_cost_reference(shape, &q).unwrap();
            assert_eq!(warm.to_bits(), cold.to_bits(), "shape {i}: warm vs cold");
            assert_eq!(
                warm.to_bits(),
                reference.to_bits(),
                "shape {i}: warm vs ref"
            );
        }
        // Every 10th shape, run full compilation both ways.
        if i % 10 == 0 {
            let via_session = session.compile(shape).unwrap();
            let fresh = CompiledChain::compile_with(shape.clone(), &opts).unwrap();
            assert_eq!(via_session.variants().len(), fresh.variants().len());
            for (a, b) in via_session.variants().iter().zip(fresh.variants()) {
                assert_eq!(a.paren(), b.paren(), "shape {i}");
                assert_eq!(a.cost_poly(), b.cost_poly(), "shape {i}");
            }
        }
    }
    assert_eq!(session.num_shapes(), 50);
}

#[test]
fn lru_eviction_at_capacity_recompiles_bit_identically() {
    // A capacity-2 cache cycling through 4 shapes: the counters prove
    // the LRU policy (oldest shape evicted), and the post-eviction
    // recompile is bit-identical to the cached original.
    let opts = CompileOptions {
        training_instances: 80,
        ..CompileOptions::default()
    };
    let mut session = CompileSession::with_options(opts);
    session.set_chain_cache_capacity(2);
    let mut rng = StdRng::seed_from_u64(99);
    let mut shapes = Vec::new();
    while shapes.len() < 4 {
        if let Some(s) = random_shape(&mut rng, 3 + shapes.len() % 3) {
            if !shapes.contains(&s) {
                shapes.push(s);
            }
        }
    }
    let originals: Vec<CompiledChain> =
        shapes.iter().map(|s| session.compile(s).unwrap()).collect();
    // 4 compiles into capacity 2: all misses, 2 evictions (the oldest).
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 4, 2));
    assert_eq!(session.num_cached_chains(), 2);
    // The two newest shapes are resident (hits); the two oldest were
    // evicted and recompile from scratch, selecting identical variants.
    for (i, shape) in shapes.iter().enumerate().rev() {
        let again = session.compile(shape).unwrap();
        assert_eq!(again.variants().len(), originals[i].variants().len());
        for (a, b) in again.variants().iter().zip(originals[i].variants()) {
            assert_eq!(a.paren(), b.paren(), "shape {i}");
            assert_eq!(a.cost_poly(), b.cost_poly(), "shape {i}");
        }
    }
    let stats = session.cache_stats();
    assert_eq!(stats.hits, 2, "shapes 3 and 2 were resident");
    assert_eq!(stats.misses, 6, "shapes 1 and 0 re-selected");
}

#[test]
fn save_drop_load_round_trip_emits_byte_identical_artifacts() {
    let opts = CompileOptions {
        training_instances: 120,
        expand_by: 1,
        ..CompileOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(4242);
    let mut shapes = Vec::new();
    while shapes.len() < 6 {
        if let Some(s) = random_shape(&mut rng, 2 + shapes.len() % 5) {
            if !shapes.contains(&s) {
                shapes.push(s);
            }
        }
    }

    // Original session: compile everything, emit, snapshot to disk.
    let mut original = CompileSession::with_options(opts.clone());
    let mut want = Vec::new();
    for (i, shape) in shapes.iter().enumerate() {
        let chain = original.compile(shape).unwrap();
        let mut cpp = String::new();
        gmc_codegen::emit_cpp_into(&mut cpp, &chain, &format!("f{i}"));
        let mut rust = String::new();
        gmc_codegen::emit_rust_into(&mut rust, &chain, &format!("f{i}"));
        want.push((cpp, rust));
    }
    let dir = std::env::temp_dir().join("gmc_core_persist_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.snap");
    original.snapshot().save(&path).unwrap();
    drop(original);

    // Fresh process-equivalent: load and re-emit without re-selection.
    let mut restored = CompileSession::with_options(opts);
    let snap = SessionSnapshot::load(&path).unwrap();
    assert_eq!(restored.restore(&snap).unwrap(), shapes.len());
    for (i, shape) in shapes.iter().enumerate() {
        let chain = restored.compile(shape).unwrap();
        let mut cpp = String::new();
        gmc_codegen::emit_cpp_into(&mut cpp, &chain, &format!("f{i}"));
        let mut rust = String::new();
        gmc_codegen::emit_rust_into(&mut rust, &chain, &format!("f{i}"));
        assert_eq!(cpp, want[i].0, "C++ byte-identical for shape {i}");
        assert_eq!(rust, want[i].1, "Rust byte-identical for shape {i}");
    }
    // And the counters prove no selection pipeline ran: all hits.
    let stats = restored.cache_stats();
    assert_eq!((stats.hits, stats.misses), (shapes.len() as u64, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel and serial selection must pick identical variant sets —
    /// pool order, cost matrix contents, base set, and every expansion
    /// step. Under `--features parallel` the jobs=4 session actually
    /// threads the scan; without it the property still pins the jobs
    /// knob as a no-op.
    #[test]
    fn parallel_and_serial_selection_are_identical(
        n in 3usize..=6,
        code_seed in 0u64..5_000,
        expand_by in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(code_seed);
        let shape = match random_shape(&mut rng, n) {
            Some(s) => s,
            None => return Ok(()),
        };
        let sampler = InstanceSampler::new(&shape, 2, 300);
        let training: Vec<Instance> = sampler.sample_many(&mut rng, 150);

        let mut serial = CompileSession::new();
        serial.set_jobs(1);
        let mut threaded = CompileSession::new();
        threaded.set_jobs(4);

        // Stage 1: enumeration order and contents.
        let pool_s = serial.all_variants(&shape).unwrap();
        let pool_p = threaded.all_variants(&shape).unwrap();
        prop_assert_eq!(pool_s.len(), pool_p.len());
        for (a, b) in pool_s.iter().zip(&pool_p) {
            prop_assert_eq!(a.paren(), b.paren());
            prop_assert_eq!(a.cost_poly(), b.cost_poly());
        }

        // Stage 2: cost matrix contents, bit for bit.
        let one_shot = CostMatrix::flops(&pool_s, &training);
        {
            let m_p = threaded.cost_matrix(&pool_p, &training);
            for v in 0..one_shot.num_variants() {
                for i in 0..one_shot.num_instances() {
                    prop_assert_eq!(one_shot.cost(v, i).to_bits(), m_p.cost(v, i).to_bits());
                }
            }
        }

        // Stage 3: base set + greedy expansion.
        let base = select_base_set(&shape, &training, one_shot.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool_s.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let k = initial.len() + expand_by;
        let reference = expand_set(&one_shot, &initial, k, Objective::AvgPenalty);
        let _ = serial.cost_matrix(&pool_s, &training);
        let from_serial = serial.expand_set(&initial, k, Objective::AvgPenalty);
        let from_threaded = threaded.expand_set(&initial, k, Objective::AvgPenalty);
        prop_assert_eq!(&reference, &from_serial);
        prop_assert_eq!(&reference, &from_threaded);

        // Stage 4: whole-pipeline compile.
        let opts = CompileOptions {
            training_instances: 100,
            expand_by,
            ..CompileOptions::default()
        };
        serial.set_options(opts.clone());
        threaded.set_options(opts);
        let chain_s = serial.compile(&shape).unwrap();
        let chain_p = threaded.compile(&shape).unwrap();
        prop_assert_eq!(chain_s.variants().len(), chain_p.variants().len());
        for (a, b) in chain_s.variants().iter().zip(chain_p.variants()) {
            prop_assert_eq!(a.paren(), b.paren());
        }
    }
}
