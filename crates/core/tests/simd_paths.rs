//! Cross-rung bit-identity of the vectorized selection engine: the
//! scalar, AVX2, and AVX-512 scan paths must produce bit-identical
//! `CostMatrix` contents, `candidate_value` scores, and selected sets —
//! across ragged instance counts (1, 7, 8, 9, 63, 400, exercising every
//! block/tail split of the canonical 8-lane reduction) and every
//! `scan_stripe` value. On hosts without AVX-512 (or AVX2) the missing
//! rungs are skipped; the portable rung always runs, so the ladder's
//! bottom stays pinned (CI additionally forces it via `GMC_SIMD`).

use gmc_core::expand::candidate_value;
use gmc_core::simd::{self, SimdLevel};
use gmc_core::{
    all_variants, expand_set_striped_level, select_base_set, CostMatrix, ExpandScratch, Objective,
};
use gmc_ir::{Instance, InstanceSampler, Operand, Shape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ragged instance counts of the satellite contract: every
/// full-block/tail combination of the 8-lane reduction.
const RAGGED_COUNTS: [usize; 6] = [1, 7, 8, 9, 63, 400];

fn random_shape(rng: &mut StdRng, n: usize) -> Option<Shape> {
    let options = Operand::experiment_options();
    let ops: Vec<Operand> = (0..n)
        .map(|_| options[rand::Rng::gen_range(rng, 0..options.len())])
        .collect();
    Shape::new(ops).ok()
}

/// Fill the matrix on every available rung and require bit-identical
/// cells and optima; returns the portable-rung matrix as the reference.
fn matrix_identical_across_rungs(pool: &[gmc_core::Variant], instances: &[Instance]) -> CostMatrix {
    let mut reference = CostMatrix::new();
    reference.fill_flops_level(pool, instances, 1, SimdLevel::Portable);
    for level in simd::available_levels() {
        let mut m = CostMatrix::new();
        m.fill_flops_level(pool, instances, 1, level);
        assert_eq!(m.num_variants(), reference.num_variants());
        assert_eq!(m.num_instances(), reference.num_instances());
        for v in 0..reference.num_variants() {
            for i in 0..reference.num_instances() {
                assert_eq!(
                    m.cost(v, i).to_bits(),
                    reference.cost(v, i).to_bits(),
                    "cell ({v}, {i}) on {level:?} with {} instances",
                    instances.len()
                );
            }
        }
        for (a, b) in m.optimal().iter().zip(reference.optimal()) {
            assert_eq!(a.to_bits(), b.to_bits(), "optimal on {level:?}");
        }
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scan_paths_are_bit_identical_across_rungs(
        n in 3usize..=6,
        seed in 0u64..5_000,
        ragged_idx in 0usize..RAGGED_COUNTS.len(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = match random_shape(&mut rng, n) {
            Some(s) => s,
            None => return Ok(()),
        };
        let ni = RAGGED_COUNTS[ragged_idx];
        let sampler = InstanceSampler::new(&shape, 2, 300);
        let training: Vec<Instance> = sampler.sample_many(&mut rng, ni);
        let pool = all_variants(&shape).unwrap();

        // Stage 1: cost-matrix contents, every rung, bit for bit.
        let matrix = matrix_identical_across_rungs(&pool, &training);

        // Stage 2: candidate scores from a seed set, every rung.
        let seed_set: Vec<usize> = (0..pool.len().min(2)).collect();
        let mut best = vec![f64::INFINITY; matrix.num_instances()];
        for &v in &seed_set {
            simd::min_in_place(SimdLevel::Portable, &mut best, matrix.row(v));
        }
        for obj in [Objective::AvgPenalty, Objective::MaxPenalty] {
            for d in 0..matrix.num_variants() {
                let want = candidate_value(&matrix, &best, d, obj, SimdLevel::Portable);
                for level in simd::available_levels() {
                    let got = candidate_value(&matrix, &best, d, obj, level);
                    prop_assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "candidate {} objective {:?} on {:?} (ni = {})",
                        d, obj, level, ni
                    );
                }
            }
        }

        // Stage 3: selected sets — every rung x every stripe value.
        let base = select_base_set(&shape, &training, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let k = initial.len() + 3;
        let mut scratch = ExpandScratch::default();
        let reference = expand_set_striped_level(
            &matrix,
            &initial,
            k,
            Objective::AvgPenalty,
            &mut scratch,
            1,
            0,
            SimdLevel::Portable,
        );
        for level in simd::available_levels() {
            for stripe in [0usize, 1, 3, 7, 1000] {
                let got = expand_set_striped_level(
                    &matrix,
                    &initial,
                    k,
                    Objective::AvgPenalty,
                    &mut scratch,
                    4,
                    stripe,
                    level,
                );
                prop_assert_eq!(
                    &reference,
                    &got,
                    "selected set on {:?} stripe {} (ni = {})",
                    level,
                    stripe,
                    ni
                );
            }
        }
    }
}

/// A deterministic (non-proptest) sweep of the exact ragged counts on
/// the paper-scale 7-operand chain, so the contract holds on the
/// workload `bench_select` measures.
#[test]
fn paper_scale_chain_is_rung_identical_on_every_ragged_count() {
    let g = Operand::plain(gmc_ir::Features::general());
    let shape = Shape::new(vec![g; 7]).unwrap();
    let pool = all_variants(&shape).unwrap();
    let mut rng = StdRng::seed_from_u64(1234);
    let sampler = InstanceSampler::new(&shape, 2, 500);
    for ni in RAGGED_COUNTS {
        let training = sampler.sample_many(&mut rng, ni);
        let matrix = matrix_identical_across_rungs(&pool, &training);
        let base = select_base_set(&shape, &training, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let mut scratch = ExpandScratch::default();
        let reference = expand_set_striped_level(
            &matrix,
            &initial,
            initial.len() + 4,
            Objective::AvgPenalty,
            &mut scratch,
            1,
            0,
            SimdLevel::Portable,
        );
        for level in simd::available_levels() {
            let got = expand_set_striped_level(
                &matrix,
                &initial,
                initial.len() + 4,
                Objective::AvgPenalty,
                &mut scratch,
                1,
                0,
                level,
            );
            assert_eq!(reference, got, "{level:?} with {ni} instances");
        }
    }
}
