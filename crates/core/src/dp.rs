//! Dynamic-programming solver for the GMCP with *known* sizes.
//!
//! This is the generalized-matrix-chain analogue of the classical MCP
//! dynamic program (Barthels et al., CGO 2018): for every sub-chain
//! `[i, j]` it keeps, per distinct result descriptor (structure, property,
//! pending operators, stored orientation), the minimum cost of computing
//! that sub-chain. Because feature inference makes the downstream kernel
//! choice depend on the intermediate's features, the DP state must be the
//! descriptor, not just the span.
//!
//! The result equals `min_{A in A} T(A, q)` over the full variant set and
//! is cross-validated against [`crate::enumerate::all_variants`] by tests.

use crate::builder::{associate, finalizes_for, leaf_descs, BuildError, NodeDesc};
use gmc_ir::{Instance, Shape};
use gmc_kernels::{cost_flops, finalize_cost_flops};
use std::collections::HashMap;

/// State key: everything about an intermediate that affects downstream
/// decisions (the temp index does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DescKey {
    structure: gmc_ir::Structure,
    property: gmc_ir::Property,
    transposed: bool,
    inverted: bool,
    rows: usize,
    cols: usize,
}

fn key(d: &NodeDesc) -> DescKey {
    DescKey {
        structure: d.structure,
        property: d.property,
        transposed: d.transposed,
        inverted: d.inverted,
        rows: d.rows,
        cols: d.cols,
    }
}

/// The optimal FLOP count over all variants for `shape` on `instance`.
///
/// Runs in `O(n^3 s^2)` where `s` is the (small) number of distinct
/// descriptor states per span, so it scales to chains far beyond the
/// enumeration limit.
///
/// # Errors
///
/// Propagates [`BuildError`] (unreachable for valid shapes).
///
/// # Panics
///
/// Panics if `instance` has the wrong number of sizes for `shape`.
pub fn optimal_cost(shape: &Shape, instance: &Instance) -> Result<f64, BuildError> {
    optimal(shape, instance).map(|(_, cost)| cost)
}

/// The optimal *variant* (and its cost) for `shape` on `instance`: the
/// run-time-search alternative discussed in Sec. I of the paper (as
/// implemented by Linnea for fixed sizes). The DP reconstructs the best
/// parenthesization by backtracking and lowers it with the deterministic
/// Sec. IV builder.
///
/// # Errors
///
/// Propagates [`BuildError`] (unreachable for valid shapes).
///
/// # Panics
///
/// Panics if `instance` has the wrong number of sizes for `shape`.
pub fn optimal_variant(
    shape: &Shape,
    instance: &Instance,
) -> Result<(crate::variant::Variant, f64), BuildError> {
    let (tree, cost) = optimal(shape, instance)?;
    let variant = crate::builder::build_variant(shape, &tree)?;
    debug_assert!(
        (variant.flops(instance) - cost).abs() <= 1e-6 * cost.max(1.0),
        "backtracked tree must reproduce the DP cost"
    );
    Ok((variant, cost))
}

fn optimal(
    shape: &Shape,
    instance: &Instance,
) -> Result<(crate::paren::ParenTree, f64), BuildError> {
    assert_eq!(
        instance.len(),
        shape.num_sizes(),
        "instance length must be n + 1"
    );
    let n = shape.len();
    let classes = shape.size_classes();
    let leaves = leaf_descs(shape, &classes);
    let q = instance.sizes();

    use crate::paren::ParenTree;
    /// Back-pointer: the split and the child state keys (`None` = leaf).
    type Back = (usize, Option<DescKey>, Option<DescKey>);
    type State = (NodeDesc, f64, Option<Back>);

    if n == 1 {
        let desc = leaves[0];
        let (finalizes, _) = finalizes_for(&desc)?;
        let cost = finalizes
            .iter()
            .map(|f| finalize_cost_flops(f.kernel, q[f.size_sym]))
            .sum();
        return Ok((ParenTree::Leaf(0), cost));
    }

    // best[i][j - i - 1] for spans [i, j], j > i; leaves handled separately.
    // Each entry: descriptor -> (desc, min cost, back-pointer).
    let mut best: Vec<Vec<HashMap<DescKey, State>>> = vec![Vec::new(); n];
    for (i, row) in best.iter_mut().enumerate() {
        row.resize(n - i - 1, HashMap::new());
    }

    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut states: HashMap<DescKey, State> = HashMap::new();
            for split in i..j {
                // Left sub-chain [i, split], right [split + 1, j].
                let left_states: Vec<(NodeDesc, f64, Option<DescKey>)> = if split == i {
                    vec![(leaves[i], 0.0, None)]
                } else {
                    best[i][split - i - 1]
                        .iter()
                        .map(|(k, &(d, c, _))| (d, c, Some(*k)))
                        .collect()
                };
                let right_states: Vec<(NodeDesc, f64, Option<DescKey>)> = if split + 1 == j {
                    vec![(leaves[j], 0.0, None)]
                } else {
                    best[split + 1][j - split - 2]
                        .iter()
                        .map(|(k, &(d, c, _))| (d, c, Some(*k)))
                        .collect()
                };
                for &(ld, lc, lk) in &left_states {
                    for &(rd, rc, rk) in &right_states {
                        let (step, result) = associate(ld, rd, &classes)?;
                        let (a, b, c) = step.triplet;
                        let cost = lc
                            + rc
                            + cost_flops(step.kernel, step.side, step.cheap, q[a], q[b], q[c]);
                        let entry =
                            states
                                .entry(key(&result))
                                .or_insert((result, f64::INFINITY, None));
                        if cost < entry.1 {
                            *entry = (result, cost, Some((split, lk, rk)));
                        }
                    }
                }
            }
            best[i][j - i - 1] = states;
        }
    }

    // Pick the best final state including forced finalizers.
    let mut min = f64::INFINITY;
    let mut min_key: Option<DescKey> = None;
    for (k, (desc, cost, _)) in &best[0][n - 2] {
        let (finalizes, _) = finalizes_for(desc)?;
        let extra: f64 = finalizes
            .iter()
            .map(|f| finalize_cost_flops(f.kernel, q[f.size_sym]))
            .sum();
        if cost + extra < min {
            min = cost + extra;
            min_key = Some(*k);
        }
    }
    let min_key = min_key.expect("non-empty chain has final states");

    // Backtrack the optimal parenthesization.
    type BestTable = [Vec<
        HashMap<
            DescKey,
            (
                NodeDesc,
                f64,
                Option<(usize, Option<DescKey>, Option<DescKey>)>,
            ),
        >,
    >];
    #[allow(clippy::type_complexity)]
    fn rebuild(best: &BestTable, i: usize, j: usize, k: Option<DescKey>) -> ParenTree {
        match k {
            None => ParenTree::Leaf(i),
            Some(k) => {
                let (_, _, back) = best[i][j - i - 1][&k];
                let (split, lk, rk) = back.expect("internal states have back-pointers");
                ParenTree::node(rebuild(best, i, split, lk), rebuild(best, split + 1, j, rk))
            }
        }
    }
    let tree = rebuild(&best, 0, n - 1, Some(min_key));
    Ok((tree, min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_variants;
    use gmc_ir::{Features, InstanceSampler, Operand, Property, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn operands() -> Vec<Operand> {
        Operand::experiment_options()
    }

    #[test]
    fn matches_enumeration_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(99);
        let opts = operands();
        for trial in 0..40 {
            let n = 2 + trial % 5;
            let ops: Vec<Operand> = (0..n)
                .map(|_| opts[rand::Rng::gen_range(&mut rng, 0..opts.len())])
                .collect();
            let shape = match Shape::new(ops) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let sampler = InstanceSampler::new(&shape, 2, 60);
            let inst = sampler.sample(&mut rng);
            let vs = all_variants(&shape).unwrap();
            let enum_min = vs
                .iter()
                .map(|v| v.flops(&inst))
                .fold(f64::INFINITY, f64::min);
            let dp = optimal_cost(&shape, &inst).unwrap();
            let rel = (dp - enum_min).abs() / enum_min.max(1.0);
            assert!(
                rel < 1e-9,
                "shape {} inst {inst}: dp {dp} enum {enum_min}",
                shape
            );
        }
    }

    #[test]
    fn classic_mcp_dp() {
        // Standard matrix chain: DP must reproduce the textbook optimum.
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 4]).unwrap();
        // q = (10, 100, 5, 50, 1): textbook DP gives the optimal GEMM plan.
        let inst = gmc_ir::Instance::new(vec![10, 100, 5, 50, 1]);
        let dp = optimal_cost(&shape, &inst).unwrap();
        let vs = all_variants(&shape).unwrap();
        let enum_min = vs
            .iter()
            .map(|v| v.flops(&inst))
            .fold(f64::INFINITY, f64::min);
        assert!((dp - enum_min).abs() < 1e-9);
    }

    #[test]
    fn single_matrix_chain() {
        let spd = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let shape = Shape::new(vec![spd]).unwrap();
        let inst = gmc_ir::Instance::new(vec![6, 6]);
        // Explicit SPD inverse: m^3.
        assert_eq!(optimal_cost(&shape, &inst).unwrap(), 216.0);
    }

    #[test]
    fn optimal_variant_reproduces_optimal_cost() {
        let mut rng = StdRng::seed_from_u64(321);
        let opts = operands();
        for trial in 0..20 {
            let n = 2 + trial % 5;
            let ops: Vec<Operand> = (0..n)
                .map(|_| opts[rand::Rng::gen_range(&mut rng, 0..opts.len())])
                .collect();
            let shape = match Shape::new(ops) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let inst = InstanceSampler::new(&shape, 2, 400).sample(&mut rng);
            let (variant, cost) = super::optimal_variant(&shape, &inst).unwrap();
            let direct = variant.flops(&inst);
            assert!(
                (direct - cost).abs() <= 1e-9 * cost.max(1.0),
                "variant cost {direct} vs dp {cost} on {shape}"
            );
            assert!((cost - optimal_cost(&shape, &inst).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn scales_to_long_chains() {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 20]).unwrap();
        let sizes: Vec<u64> = (0..21).map(|i| 2 + (i * 37) % 100).collect();
        let inst = gmc_ir::Instance::new(sizes);
        let c = optimal_cost(&shape, &inst).unwrap();
        assert!(c.is_finite() && c > 0.0);
    }
}
