//! Dynamic-programming solver for the GMCP with *known* sizes.
//!
//! This is the generalized-matrix-chain analogue of the classical MCP
//! dynamic program (Barthels et al., CGO 2018): for every sub-chain
//! `[i, j]` it keeps, per distinct result descriptor (structure, property,
//! pending operators, stored orientation), the minimum cost of computing
//! that sub-chain. Because feature inference makes the downstream kernel
//! choice depend on the intermediate's features, the DP state must be the
//! descriptor, not just the span.
//!
//! The result equals `min_{A in A} T(A, q)` over the full variant set and
//! is cross-validated against [`crate::enumerate::all_variants`] by tests.
//!
//! Two entry points exist: the free functions [`optimal_cost`] /
//! [`optimal_variant`] (one-shot, allocate their own state), and
//! [`DpSolver`], a long-lived solver for one shape that reuses its
//! descriptor interner, association memo, and state arena across
//! instances — after the first solve, [`DpSolver::optimal_cost`] performs
//! **no allocation**, which is what dispatch loops over many concrete
//! size vectors want. [`crate::session::CompileSession`] keeps one
//! `DpSolver` per compiled shape.
//!
//! # Implementation notes (hot-path layout)
//!
//! The solver is allocation-lean by design, replacing the original
//! `HashMap<DescKey, State>`-per-span formulation (kept as
//! [`optimal_cost_reference`] for benchmarking and cross-checks):
//!
//! * descriptors are interned once into dense `u32` ids ([`Interner`]),
//!   so span tables are flat `Vec`s addressed by slot, not hash maps;
//! * `associate` + `cost_flops` results are memoized per `(left id,
//!   right id)` pair ([`AssocMemo`]) — sound because the association
//!   outcome depends only on the interned descriptor fields, never on
//!   where a value is stored — which collapses the inner relaxation loop
//!   to table lookups on chains with few distinct descriptors;
//! * per-split candidate lists are iterated in place instead of being
//!   collected into fresh `Vec`s;
//! * backtracking is an explicit work-stack loop, so chain length is not
//!   bounded by the call stack (see the 50-operand regression test).
//!
//! Costs are accumulated in exactly the original order (`(lc + rc) +
//! step`), so the optimum is bit-identical to the reference solver.

use crate::builder::{associate, finalizes_for, leaf_descs, BuildError, NodeDesc};
use crate::variant::{Finalize, ValRef};
use gmc_ir::{EquivClasses, Instance, Property, Shape, Structure};
use gmc_kernels::{cost_flops, finalize_cost_flops, Kernel};
use gmc_linalg::Side;
use std::collections::HashMap;

/// State key: everything about an intermediate that affects downstream
/// decisions (the temp index does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DescKey {
    structure: gmc_ir::Structure,
    property: gmc_ir::Property,
    transposed: bool,
    inverted: bool,
    rows: usize,
    cols: usize,
}

fn key(d: &NodeDesc) -> DescKey {
    DescKey {
        structure: d.structure,
        property: d.property,
        transposed: d.transposed,
        inverted: d.inverted,
        rows: d.rows,
        cols: d.cols,
    }
}

/// Sentinel slot meaning "child is the single leaf of its span".
const LEAF: u32 = u32::MAX;
/// Sentinel for the slot-scratch table ("descriptor not in this span").
const NO_SLOT: u32 = u32::MAX;

/// Dense descriptor interner: `DescKey -> u32`, with the canonical
/// [`NodeDesc`] kept for `associate`/`finalizes_for` calls.
struct Interner {
    /// Lazily allocated per-feature-key id tables, indexed `rows * nsym +
    /// cols` (symbols are canonical and `< nsym`), so interning is pure
    /// array addressing — no hashing anywhere in the solver's hot loop.
    ids: Vec<Option<Box<[u32]>>>,
    nsym: usize,
    descs: Vec<NodeDesc>,
    /// Feature key (see [`fkey`]) per interned descriptor.
    fkeys: Vec<u16>,
}

const NO_ID: u32 = u32::MAX;

impl Interner {
    fn new(nsym: usize) -> Self {
        Interner {
            ids: (0..FKEYS).map(|_| None).collect(),
            nsym,
            descs: Vec::new(),
            fkeys: Vec::new(),
        }
    }

    fn intern(&mut self, d: NodeDesc) -> u32 {
        let fk = fkey(&d);
        let table = self.ids[fk as usize]
            .get_or_insert_with(|| vec![NO_ID; self.nsym * self.nsym].into_boxed_slice());
        let slot = &mut table[d.rows * self.nsym + d.cols];
        if *slot == NO_ID {
            let id = u32::try_from(self.descs.len()).expect("descriptor space fits u32");
            self.descs.push(d);
            self.fkeys.push(fk);
            *slot = id;
        }
        *slot
    }
}

/// The feature part of a descriptor, as a dense 7-bit key: structure (2),
/// property (2), pending transpose/inversion (1 + 1), and squareness (1).
/// These bits determine everything about an association except the size
/// symbols (see [`AssocMemo`]). Squareness compares canonical symbols
/// directly — every interned descriptor stores canonicalized symbols.
fn fkey(d: &NodeDesc) -> u16 {
    let s = match d.structure {
        Structure::General => 0u16,
        Structure::Symmetric => 1,
        Structure::LowerTri => 2,
        Structure::UpperTri => 3,
    };
    let p = match d.property {
        Property::Singular => 0u16,
        Property::NonSingular => 1,
        Property::Spd => 2,
        Property::Orthogonal => 3,
    };
    s | (p << 2)
        | (u16::from(d.transposed) << 4)
        | (u16::from(d.inverted) << 5)
        | (u16::from(d.rows == d.cols) << 6)
}

/// Number of distinct feature keys.
const FKEYS: usize = 1 << 7;

/// Feature-level memo of the association rewrite.
///
/// `associate`'s control flow — operand swaps, kernel assignment, the
/// `cheap` flag, and structure/property inference — depends only on the
/// *features* of the two descriptors ([`fkey`]): `normalize` and
/// `swap_rewrite` move flags, never size symbols, and the only
/// symbol-dependent inputs are each operand's squareness (folded into the
/// key) and the size triplet. So one `associate` call per feature pair
/// yields a [`Recipe`] from which the result descriptor and step cost for
/// *any* symbol pair are reconstructed with a few array reads; in debug
/// builds every reconstruction is asserted against a direct `associate`
/// call.
struct AssocMemo {
    /// `recipes[fkey_l][fkey_r]`, rows allocated on first use.
    recipes: Vec<Option<Box<[Option<Recipe>; FKEYS]>>>,
}

/// How an association transforms its operands, minus the size symbols.
#[derive(Clone, Copy, Debug)]
struct Recipe {
    /// Final operand order differs from the input order.
    swapped: bool,
    /// Final pending-transpose flags (these select effective dimensions).
    l_trans: bool,
    r_trans: bool,
    kernel: Kernel,
    side: Side,
    cheap: bool,
    res_structure: Structure,
    res_property: Property,
    res_transposed: bool,
    res_inverted: bool,
}

impl Default for AssocMemo {
    fn default() -> Self {
        AssocMemo {
            recipes: (0..FKEYS).map(|_| None).collect(),
        }
    }
}

impl AssocMemo {
    /// `(result id, step flops)` for associating `lid * rid`.
    fn get_or_compute(
        &mut self,
        lid: u32,
        rid: u32,
        interner: &mut Interner,
        classes: &EquivClasses,
        q: &[u64],
    ) -> Result<(u32, f64), BuildError> {
        let (l, r) = (lid as usize, rid as usize);
        let row = interner.fkeys[l] as usize;
        let col = interner.fkeys[r] as usize;
        let recipe = match self.recipes[row].as_ref().and_then(|row| row[col]) {
            Some(recipe) => recipe,
            None => {
                // One associate call per feature pair, with the operands
                // source-tagged so the final order can be read off the step.
                let mut ld = interner.descs[l];
                let mut rd = interner.descs[r];
                ld.source = ValRef::Leaf(0);
                rd.source = ValRef::Leaf(1);
                let (step, result) = associate(ld, rd, classes)?;
                let recipe = Recipe {
                    swapped: step.left == ValRef::Leaf(1),
                    l_trans: step.left_trans,
                    r_trans: step.right_trans,
                    kernel: step.kernel,
                    side: step.side,
                    cheap: step.cheap,
                    res_structure: result.structure,
                    res_property: result.property,
                    res_transposed: result.transposed,
                    res_inverted: result.inverted,
                };
                self.recipes[row].get_or_insert_with(|| Box::new([None; FKEYS]))[col] =
                    Some(recipe);
                recipe
            }
        };

        let (sl, sr) = if recipe.swapped { (r, l) } else { (l, r) };
        let (ld, rd) = (&interner.descs[sl], &interner.descs[sr]);
        let (l_rows, l_cols) = if recipe.l_trans {
            (ld.cols, ld.rows)
        } else {
            (ld.rows, ld.cols)
        };
        let r_cols = if recipe.r_trans { rd.rows } else { rd.cols };
        // Interned symbols are canonical by construction (leaves are
        // canonicalized, results carry triplet components), so no find().
        let triplet = (l_rows, l_cols, r_cols);
        let flops = cost_flops(
            recipe.kernel,
            recipe.side,
            recipe.cheap,
            q[triplet.0],
            q[triplet.1],
            q[triplet.2],
        );
        let result = NodeDesc {
            structure: recipe.res_structure,
            property: recipe.res_property,
            transposed: recipe.res_transposed,
            inverted: recipe.res_inverted,
            rows: triplet.0,
            cols: triplet.2,
            source: ValRef::Temp(usize::MAX),
        };

        #[cfg(debug_assertions)]
        {
            let (step, direct) = associate(interner.descs[l], interner.descs[r], classes)?;
            let (a, b, c) = step.triplet;
            debug_assert_eq!((a, b, c), triplet, "recipe must reproduce the triplet");
            debug_assert_eq!(
                key(&direct),
                key(&result),
                "recipe must reproduce the result"
            );
            debug_assert_eq!(
                cost_flops(step.kernel, step.side, step.cheap, q[a], q[b], q[c]).to_bits(),
                flops.to_bits(),
                "recipe must reproduce the step cost"
            );
        }

        let rid_res = interner.intern(result);
        Ok((rid_res, flops))
    }
}

/// All span states in one structure-of-arrays arena: span `[i, j]` owns
/// the contiguous range `spans[i * n + j]`, and back-pointers address
/// slots *relative* to the child span's range. One arena means the solver
/// performs O(1) allocations total instead of three `Vec`s per span.
#[derive(Default)]
struct StateArena {
    ids: Vec<u32>,
    costs: Vec<f64>,
    /// `(split, left slot, right slot)`; [`LEAF`] slots denote leaf children.
    back: Vec<(u32, u32, u32)>,
    /// `span index -> (start, len)` into the arrays above.
    spans: Vec<(u32, u32)>,
}

impl StateArena {
    fn range(&self, i: usize, j: usize, n: usize) -> (usize, usize) {
        let (start, len) = self.spans[i * n + j];
        (start as usize, len as usize)
    }
}

/// The optimal FLOP count over all variants for `shape` on `instance`.
///
/// Runs in `O(n^3 s^2)` where `s` is the (small) number of distinct
/// descriptor states per span, so it scales to chains far beyond the
/// enumeration limit. One-shot convenience: allocates a fresh
/// [`DpSolver`]; callers that solve the same shape on many instances
/// should hold a `DpSolver` (or a [`crate::session::CompileSession`]) to
/// reuse its arenas.
///
/// # Errors
///
/// Propagates [`BuildError`] (unreachable for valid shapes).
///
/// # Panics
///
/// Panics if `instance` has the wrong number of sizes for `shape`.
pub fn optimal_cost(shape: &Shape, instance: &Instance) -> Result<f64, BuildError> {
    DpSolver::new(shape).optimal_cost(instance)
}

/// The optimal *variant* (and its cost) for `shape` on `instance`: the
/// run-time-search alternative discussed in Sec. I of the paper (as
/// implemented by Linnea for fixed sizes). The DP reconstructs the best
/// parenthesization by backtracking and lowers it with the deterministic
/// Sec. IV builder.
///
/// # Errors
///
/// Propagates [`BuildError`] (unreachable for valid shapes).
///
/// # Panics
///
/// Panics if `instance` has the wrong number of sizes for `shape`.
pub fn optimal_variant(
    shape: &Shape,
    instance: &Instance,
) -> Result<(crate::variant::Variant, f64), BuildError> {
    DpSolver::new(shape).optimal_variant(instance)
}

/// Up to two finalizer steps per descriptor (inverse, then transpose),
/// memoized per interned id so repeated solves cost no allocation.
type FinRecipe = [Option<Finalize>; 2];

/// A reusable DP solver for one shape.
///
/// Owns the descriptor [`Interner`], the feature-level [`AssocMemo`], the
/// span [`StateArena`], and the finalize memo, all of which persist across
/// [`DpSolver::optimal_cost`] calls. The set of descriptors reachable per
/// span depends only on the shape (never on the instance sizes), so after
/// the first solve every table is warm and subsequent solves are
/// allocation-free with costs **bit-identical** to a fresh solver — the
/// relaxation order and summation order do not depend on table warmth.
pub struct DpSolver {
    shape: Shape,
    classes: EquivClasses,
    leaves: Vec<NodeDesc>,
    leaf_ids: Vec<u32>,
    interner: Interner,
    memo: AssocMemo,
    arena: StateArena,
    /// Scratch: desc id -> absolute arena slot in the span being built.
    slot_of: Vec<u32>,
    /// Lazily computed finalizer recipe per interned descriptor id.
    fin_memo: Vec<Option<FinRecipe>>,
    /// Scratch for the final-state totals (cost + finalizers), reduced
    /// with the selection engine's first-strict-minimum helper.
    final_totals: Vec<f64>,
}

impl DpSolver {
    /// A solver for `shape` with cold tables; the first solve warms them.
    #[must_use]
    pub fn new(shape: &Shape) -> Self {
        let classes = shape.size_classes();
        let leaves = leaf_descs(shape, &classes);
        let mut interner = Interner::new(shape.num_sizes());
        let leaf_ids: Vec<u32> = leaves.iter().map(|&d| interner.intern(d)).collect();
        let n = shape.len();
        let mut arena = StateArena::default();
        arena.spans.resize(n * n, (0, 0));
        DpSolver {
            shape: shape.clone(),
            classes,
            leaves,
            leaf_ids,
            interner,
            memo: AssocMemo::default(),
            arena,
            slot_of: Vec::new(),
            fin_memo: Vec::new(),
            final_totals: Vec::new(),
        }
    }

    /// The shape this solver is specialized to.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The optimal FLOP count for `instance` (see [`optimal_cost`]).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] (unreachable for valid shapes).
    ///
    /// # Panics
    ///
    /// Panics if `instance` has the wrong number of sizes for the shape.
    pub fn optimal_cost(&mut self, instance: &Instance) -> Result<f64, BuildError> {
        if self.shape.len() == 1 {
            return self.leaf_cost(instance);
        }
        self.solve(instance).map(|(_, cost)| cost)
    }

    /// The optimal variant and its cost (see [`optimal_variant`]).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] (unreachable for valid shapes).
    ///
    /// # Panics
    ///
    /// Panics if `instance` has the wrong number of sizes for the shape.
    pub fn optimal_variant(
        &mut self,
        instance: &Instance,
    ) -> Result<(crate::variant::Variant, f64), BuildError> {
        let (tree, cost) = if self.shape.len() == 1 {
            (crate::paren::ParenTree::Leaf(0), self.leaf_cost(instance)?)
        } else {
            let (min_slot, cost) = self.solve(instance)?;
            (self.backtrack(min_slot), cost)
        };
        let variant = crate::builder::build_variant(&self.shape, &tree)?;
        debug_assert!(
            (variant.flops(instance) - cost).abs() <= 1e-6 * cost.max(1.0),
            "backtracked tree must reproduce the DP cost"
        );
        Ok((variant, cost))
    }

    fn leaf_cost(&self, instance: &Instance) -> Result<f64, BuildError> {
        assert_eq!(
            instance.len(),
            self.shape.num_sizes(),
            "instance length must be n + 1"
        );
        let q = instance.sizes();
        let (finalizes, _) = finalizes_for(&self.leaves[0])?;
        Ok(finalizes
            .iter()
            .map(|f| finalize_cost_flops(f.kernel, q[f.size_sym]))
            .sum())
    }

    /// Finalize cost of the interned descriptor `id` on sizes `q`, through
    /// the per-id recipe memo (summation order matches [`finalizes_for`]).
    fn finalize_cost(&mut self, id: u32, q: &[u64]) -> Result<f64, BuildError> {
        if self.fin_memo.len() < self.interner.descs.len() {
            self.fin_memo.resize(self.interner.descs.len(), None);
        }
        let recipe = match self.fin_memo[id as usize] {
            Some(r) => r,
            None => {
                let (finalizes, _) = finalizes_for(&self.interner.descs[id as usize])?;
                debug_assert!(finalizes.len() <= 2, "at most inverse + transpose");
                let mut r: FinRecipe = [None, None];
                for (dst, f) in r.iter_mut().zip(&finalizes) {
                    *dst = Some(*f);
                }
                self.fin_memo[id as usize] = Some(r);
                r
            }
        };
        Ok(recipe
            .iter()
            .flatten()
            .map(|f| finalize_cost_flops(f.kernel, q[f.size_sym]))
            .sum())
    }

    /// Fill the arena for `instance` and return the winning final-span slot
    /// and total cost. Requires `n > 1`.
    fn solve(&mut self, instance: &Instance) -> Result<(u32, f64), BuildError> {
        assert_eq!(
            instance.len(),
            self.shape.num_sizes(),
            "instance length must be n + 1"
        );
        let n = self.shape.len();
        let q = instance.sizes();

        // Reset the arena (capacity is retained across solves).
        self.arena.ids.clear();
        self.arena.costs.clear();
        self.arena.back.clear();
        self.arena.spans.iter_mut().for_each(|s| *s = (0, 0));

        let DpSolver {
            ref classes,
            ref leaf_ids,
            ref mut interner,
            ref mut memo,
            ref mut arena,
            ref mut slot_of,
            ..
        } = *self;

        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                let start = arena.ids.len();
                for split in i..j {
                    // Left sub-chain [i, split], right [split + 1, j]. Single
                    // leaves are pseudo-states with zero cost.
                    let (l_start, ln, l_leaf) = if split == i {
                        (0, 1, true)
                    } else {
                        let (s0, sl) = arena.range(i, split, n);
                        (s0, sl, false)
                    };
                    let (r_start, rn, r_leaf) = if split + 1 == j {
                        (0, 1, true)
                    } else {
                        let (s0, sl) = arena.range(split + 1, j, n);
                        (s0, sl, false)
                    };
                    for ls in 0..ln {
                        let (lid, lc) = if l_leaf {
                            (leaf_ids[i], 0.0)
                        } else {
                            (arena.ids[l_start + ls], arena.costs[l_start + ls])
                        };
                        let lslot = if l_leaf { LEAF } else { ls as u32 };
                        for rs in 0..rn {
                            let (rid, rc) = if r_leaf {
                                (leaf_ids[j], 0.0)
                            } else {
                                (arena.ids[r_start + rs], arena.costs[r_start + rs])
                            };
                            let rslot = if r_leaf { LEAF } else { rs as u32 };
                            let (res_id, flops) =
                                memo.get_or_compute(lid, rid, interner, classes, q)?;
                            let cost = lc + rc + flops;
                            if slot_of.len() < interner.descs.len() {
                                slot_of.resize(interner.descs.len(), NO_SLOT);
                            }
                            let slot = slot_of[res_id as usize];
                            if slot == NO_SLOT {
                                slot_of[res_id as usize] = arena.ids.len() as u32;
                                arena.ids.push(res_id);
                                arena.costs.push(cost);
                                arena.back.push((split as u32, lslot, rslot));
                            } else if cost < arena.costs[slot as usize] {
                                arena.costs[slot as usize] = cost;
                                arena.back[slot as usize] = (split as u32, lslot, rslot);
                            }
                        }
                    }
                }
                // Reset only the touched scratch entries for the next span.
                for &id in &arena.ids[start..] {
                    slot_of[id as usize] = NO_SLOT;
                }
                arena.spans[i * n + j] = (start as u32, (arena.ids.len() - start) as u32);
            }
        }

        // Pick the best final state including forced finalizers. The
        // per-slot totals fill a reusable scratch vector and the winner
        // is the *first strict minimum* — the same tie-break rule and
        // reduction helper (`simd::argmin_first`) the selection
        // engine's candidate scan uses, identical on every ladder rung.
        let (f0, flen) = self.arena.range(0, n - 1, n);
        let mut totals = std::mem::take(&mut self.final_totals);
        totals.clear();
        for slot in 0..flen {
            let id = self.arena.ids[f0 + slot];
            let extra = self.finalize_cost(id, q)?;
            totals.push(self.arena.costs[f0 + slot] + extra);
        }
        let (min_slot, min) = crate::simd::argmin_first(crate::simd::active_level(), &totals)
            .expect("non-empty chain has final states");
        self.final_totals = totals;
        Ok((min_slot as u32, min))
    }

    /// Reconstruct the winning parenthesization from the filled arena.
    ///
    /// Backtracks iteratively (chain length must not be bounded by the call
    /// stack): an explicit work stack interleaves expansion with combining.
    fn backtrack(&self, min_slot: u32) -> crate::paren::ParenTree {
        use crate::paren::ParenTree;
        let n = self.shape.len();
        enum Task {
            Build { i: usize, j: usize, slot: u32 },
            Combine,
        }
        let mut work = vec![Task::Build {
            i: 0,
            j: n - 1,
            slot: min_slot,
        }];
        let mut built: Vec<ParenTree> = Vec::new();
        while let Some(task) = work.pop() {
            match task {
                Task::Build { i, j, slot } => {
                    if slot == LEAF {
                        built.push(ParenTree::Leaf(i));
                    } else {
                        let (start, _) = self.arena.range(i, j, n);
                        let (split, lslot, rslot) = self.arena.back[start + slot as usize];
                        let split = split as usize;
                        work.push(Task::Combine);
                        work.push(Task::Build {
                            i: split + 1,
                            j,
                            slot: rslot,
                        });
                        work.push(Task::Build {
                            i,
                            j: split,
                            slot: lslot,
                        });
                    }
                }
                Task::Combine => {
                    let right = built.pop().expect("combine has right subtree");
                    let left = built.pop().expect("combine has left subtree");
                    built.push(ParenTree::node(left, right));
                }
            }
        }
        debug_assert_eq!(built.len(), 1);
        built.pop().expect("backtrack yields a tree")
    }
}

/// The original HashMap-per-span formulation, kept verbatim as the
/// benchmark baseline and as a cross-check oracle for the flat solver.
/// Not part of the public API.
#[doc(hidden)]
pub fn optimal_cost_reference(shape: &Shape, instance: &Instance) -> Result<f64, BuildError> {
    assert_eq!(
        instance.len(),
        shape.num_sizes(),
        "instance length must be n + 1"
    );
    let n = shape.len();
    let classes = shape.size_classes();
    let leaves = leaf_descs(shape, &classes);
    let q = instance.sizes();

    /// Back-pointer: the split and the child state keys (`None` = leaf).
    type Back = (usize, Option<DescKey>, Option<DescKey>);
    type State = (NodeDesc, f64, Option<Back>);

    if n == 1 {
        let desc = leaves[0];
        let (finalizes, _) = finalizes_for(&desc)?;
        return Ok(finalizes
            .iter()
            .map(|f| finalize_cost_flops(f.kernel, q[f.size_sym]))
            .sum());
    }

    let mut best: Vec<Vec<HashMap<DescKey, State>>> = vec![Vec::new(); n];
    for (i, row) in best.iter_mut().enumerate() {
        row.resize(n - i - 1, HashMap::new());
    }

    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut states: HashMap<DescKey, State> = HashMap::new();
            for split in i..j {
                let left_states: Vec<(NodeDesc, f64, Option<DescKey>)> = if split == i {
                    vec![(leaves[i], 0.0, None)]
                } else {
                    best[i][split - i - 1]
                        .iter()
                        .map(|(k, &(d, c, _))| (d, c, Some(*k)))
                        .collect()
                };
                let right_states: Vec<(NodeDesc, f64, Option<DescKey>)> = if split + 1 == j {
                    vec![(leaves[j], 0.0, None)]
                } else {
                    best[split + 1][j - split - 2]
                        .iter()
                        .map(|(k, &(d, c, _))| (d, c, Some(*k)))
                        .collect()
                };
                for &(ld, lc, lk) in &left_states {
                    for &(rd, rc, rk) in &right_states {
                        let (step, result) = associate(ld, rd, &classes)?;
                        let (a, b, c) = step.triplet;
                        let cost = lc
                            + rc
                            + cost_flops(step.kernel, step.side, step.cheap, q[a], q[b], q[c]);
                        let entry =
                            states
                                .entry(key(&result))
                                .or_insert((result, f64::INFINITY, None));
                        if cost < entry.1 {
                            *entry = (result, cost, Some((split, lk, rk)));
                        }
                    }
                }
            }
            best[i][j - i - 1] = states;
        }
    }

    let mut min = f64::INFINITY;
    for (desc, cost, _) in best[0][n - 2].values() {
        let (finalizes, _) = finalizes_for(desc)?;
        let extra: f64 = finalizes
            .iter()
            .map(|f| finalize_cost_flops(f.kernel, q[f.size_sym]))
            .sum();
        if cost + extra < min {
            min = cost + extra;
        }
    }
    Ok(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_variants;
    use gmc_ir::{Features, InstanceSampler, Operand, Property, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn operands() -> Vec<Operand> {
        Operand::experiment_options()
    }

    #[test]
    fn matches_enumeration_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(99);
        let opts = operands();
        for trial in 0..40 {
            let n = 2 + trial % 5;
            let ops: Vec<Operand> = (0..n)
                .map(|_| opts[rand::Rng::gen_range(&mut rng, 0..opts.len())])
                .collect();
            let shape = match Shape::new(ops) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let sampler = InstanceSampler::new(&shape, 2, 60);
            let inst = sampler.sample(&mut rng);
            let vs = all_variants(&shape).unwrap();
            let enum_min = vs
                .iter()
                .map(|v| v.flops(&inst))
                .fold(f64::INFINITY, f64::min);
            let dp = optimal_cost(&shape, &inst).unwrap();
            let rel = (dp - enum_min).abs() / enum_min.max(1.0);
            assert!(
                rel < 1e-9,
                "shape {} inst {inst}: dp {dp} enum {enum_min}",
                shape
            );
        }
    }

    #[test]
    fn matches_reference_solver_bit_for_bit() {
        // The flat interned solver must reproduce the HashMap reference
        // exactly (same costs, same summation order).
        let mut rng = StdRng::seed_from_u64(1234);
        let opts = operands();
        for trial in 0..60 {
            let n = 2 + trial % 9;
            let ops: Vec<Operand> = (0..n)
                .map(|_| opts[rand::Rng::gen_range(&mut rng, 0..opts.len())])
                .collect();
            let shape = match Shape::new(ops) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let inst = InstanceSampler::new(&shape, 2, 300).sample(&mut rng);
            let fast = optimal_cost(&shape, &inst).unwrap();
            let reference = optimal_cost_reference(&shape, &inst).unwrap();
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "flat vs reference on {shape} {inst}"
            );
        }
    }

    #[test]
    fn classic_mcp_dp() {
        // Standard matrix chain: DP must reproduce the textbook optimum.
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 4]).unwrap();
        // q = (10, 100, 5, 50, 1): textbook DP gives the optimal GEMM plan.
        let inst = gmc_ir::Instance::new(vec![10, 100, 5, 50, 1]);
        let dp = optimal_cost(&shape, &inst).unwrap();
        let vs = all_variants(&shape).unwrap();
        let enum_min = vs
            .iter()
            .map(|v| v.flops(&inst))
            .fold(f64::INFINITY, f64::min);
        assert!((dp - enum_min).abs() < 1e-9);
    }

    #[test]
    fn single_matrix_chain() {
        let spd = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let shape = Shape::new(vec![spd]).unwrap();
        let inst = gmc_ir::Instance::new(vec![6, 6]);
        // Explicit SPD inverse: m^3.
        assert_eq!(optimal_cost(&shape, &inst).unwrap(), 216.0);
    }

    #[test]
    fn optimal_variant_reproduces_optimal_cost() {
        let mut rng = StdRng::seed_from_u64(321);
        let opts = operands();
        for trial in 0..20 {
            let n = 2 + trial % 5;
            let ops: Vec<Operand> = (0..n)
                .map(|_| opts[rand::Rng::gen_range(&mut rng, 0..opts.len())])
                .collect();
            let shape = match Shape::new(ops) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let inst = InstanceSampler::new(&shape, 2, 400).sample(&mut rng);
            let (variant, cost) = super::optimal_variant(&shape, &inst).unwrap();
            let direct = variant.flops(&inst);
            assert!(
                (direct - cost).abs() <= 1e-9 * cost.max(1.0),
                "variant cost {direct} vs dp {cost} on {shape}"
            );
            assert!((cost - optimal_cost(&shape, &inst).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn scales_to_long_chains() {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 20]).unwrap();
        let sizes: Vec<u64> = (0..21).map(|i| 2 + (i * 37) % 100).collect();
        let inst = gmc_ir::Instance::new(sizes);
        let c = optimal_cost(&shape, &inst).unwrap();
        assert!(c.is_finite() && c > 0.0);
        assert_eq!(
            c.to_bits(),
            optimal_cost_reference(&shape, &inst).unwrap().to_bits()
        );
    }

    #[test]
    fn solver_reuse_is_bit_identical_across_instances() {
        // One DpSolver solving many instances of one shape must reproduce
        // fresh-solver and reference costs exactly: warm tables change
        // nothing about relaxation or summation order.
        let mut rng = StdRng::seed_from_u64(77);
        let opts = operands();
        for trial in 0..10 {
            let n = 2 + trial % 7;
            let ops: Vec<Operand> = (0..n)
                .map(|_| opts[rand::Rng::gen_range(&mut rng, 0..opts.len())])
                .collect();
            let shape = match Shape::new(ops) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let sampler = InstanceSampler::new(&shape, 2, 500);
            let mut solver = DpSolver::new(&shape);
            for _ in 0..8 {
                let inst = sampler.sample(&mut rng);
                let warm = solver.optimal_cost(&inst).unwrap();
                let cold = optimal_cost(&shape, &inst).unwrap();
                let reference = optimal_cost_reference(&shape, &inst).unwrap();
                assert_eq!(warm.to_bits(), cold.to_bits(), "warm vs cold on {shape}");
                assert_eq!(
                    warm.to_bits(),
                    reference.to_bits(),
                    "warm vs ref on {shape}"
                );
            }
        }
    }

    #[test]
    fn solver_variant_reuse_matches_free_function() {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 6]).unwrap();
        let mut solver = DpSolver::new(&shape);
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = InstanceSampler::new(&shape, 2, 300);
        for _ in 0..5 {
            let inst = sampler.sample(&mut rng);
            let (warm_v, warm_c) = solver.optimal_variant(&inst).unwrap();
            let (cold_v, cold_c) = optimal_variant(&shape, &inst).unwrap();
            assert_eq!(warm_v.paren(), cold_v.paren());
            assert_eq!(warm_c.to_bits(), cold_c.to_bits());
        }
    }

    #[test]
    fn fifty_operand_chain_backtracks_iteratively() {
        // Regression for the recursive `rebuild` stack hazard: a 50-operand
        // mixed chain must solve and reconstruct its variant.
        let g = Operand::plain(Features::general());
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let ops: Vec<Operand> = (0..50).map(|i| if i % 3 == 0 { l } else { g }).collect();
        let shape = Shape::new(ops).unwrap();
        let sizes: Vec<u64> = (0..51).map(|i| 2 + (i * 23) % 80).collect();
        let inst = gmc_ir::Instance::new(sizes);
        let (variant, cost) = optimal_variant(&shape, &inst).unwrap();
        assert!(cost.is_finite() && cost > 0.0);
        assert_eq!(variant.steps().len(), 49);
        assert!((variant.flops(&inst) - cost).abs() <= 1e-9 * cost);
        assert_eq!(
            cost.to_bits(),
            optimal_cost_reference(&shape, &inst).unwrap().to_bits()
        );
    }
}
