//! The memoized enumeration engine: build the variant pool with
//! **per-fragment** instead of **per-tree** work.
//!
//! [`crate::builder::build_variant`] re-lowers every association of every
//! tree from scratch, even though the lowering of a sub-span
//! parenthesization depends only on that span's leaf descriptors — the
//! same `(i, j)` sub-tree is re-derived in every one of the
//! `Catalan(n - 1)` full trees containing it. [`PoolBuilder`] instead:
//!
//! 1. enumerates parenthesizations as a [`SpanDag`] (each distinct
//!    sub-tree interned once per span — 301 nodes instead of 792
//!    per-tree associations for `n = 7`),
//! 2. lowers each DAG node **exactly once** into a
//!    [`Fragment`](crate::builder::Fragment) — the association's
//!    rewrite/kernel/feature results with span-local `ValRef`s plus the
//!    exact cumulative cost polynomial — and
//! 3. assembles each full variant by walking its root's sub-DAG in the
//!    builder's leftmost-available-first order, splicing fragment steps
//!    with a constant `Temp`-offset renumber.
//!
//! The output is **bit-identical** to per-tree [`build_variant`] lowering
//! — same steps, same `ValRef`s, same finalizes, same (exact-rational)
//! cost polynomials, same pool order — pinned by
//! `crates/core/tests/pool_memo.rs` and selectable at runtime via the
//! `GMC_ENUM` environment variable (see [`crate::enumerate`]).
//!
//! A [`crate::session::CompileSession`] owns one `PoolBuilder` and reuses
//! its scratch across compiles; the memo is invalidated whenever the
//! session hands it a different interned shape key.
//!
//! Above the per-shape memo sits the **cross-shape** fragment store
//! ([`crate::fragcache::FragmentCache`]): the `*_cached` build entry
//! points consult it before lowering each DAG node, so a shape change —
//! which drops the memo — still assembles shared sub-spans from fragments
//! lowered for *other* shapes. The store caches failed lowerings too, and
//! both layers preserve the exact-once contract and bit-identical output.

use crate::builder::{
    finalizes_for, leaf_descs, lower_node, BuildError, BuildOptions, Fragment, NodeDesc,
};
use crate::fragcache::{FragKey, FragmentCache, Frame};
use crate::paren::{NodeId, ParenTree, SpanDag};
use crate::variant::{ResultDesc, ValRef, Variant};
use gmc_ir::{EquivClasses, Shape, ShapeId};
use gmc_kernels::finalize_cost_poly;
use std::sync::Arc;

/// Observability counters for one prepared memo (reset whenever the
/// builder re-targets a different shape).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Interned DAG nodes (leaves included).
    pub nodes: usize,
    /// Fragments lowered since the memo was (re)prepared — each DAG node
    /// is lowered at most once, so this never exceeds `nodes`.
    pub fragments_lowered: usize,
    /// Variants assembled from the shared fragment table.
    pub variants_assembled: usize,
}

/// A span's store identity, shared by every tree over the span: the
/// symbolic frame, the localized leaf-descriptor run, and the run's
/// content hash.
type SpanIdentity = (Frame, Arc<[NodeDesc]>, u64);

/// The memoized enumeration engine (see the [module docs](self)).
///
/// Owned by a [`crate::session::CompileSession`] (one per session, keyed
/// by the session's interned [`ShapeId`]); the free functions create a
/// throwaway builder per call.
#[derive(Debug)]
pub struct PoolBuilder {
    /// Identity of the currently memoized shape: the caller-supplied key
    /// plus the options the fragments were lowered under. `None` means
    /// the memo is empty or was prepared keyless (one-shot use).
    key: Option<(ShapeId, BuildOptions)>,
    /// The shape the memo was prepared for. Checked on the warm path in
    /// addition to `key`: [`ShapeId`]s from different interners can
    /// collide, and a stale memo must never be served for a different
    /// shape.
    shape: Option<Shape>,
    dag: SpanDag,
    /// One slot per DAG node, filled lazily in ascending (topological)
    /// id order. A failed lowering is memoized too: every tree containing
    /// the fragment fails with the same error the per-tree reference
    /// would report. Slots are `Arc`ed so a cross-shape cache hit is a
    /// pointer clone rather than a deep fragment copy.
    frags: Vec<Option<Result<Arc<Fragment>, BuildError>>>,
    /// Per-span store identity — the frame, localized descriptor run,
    /// and run content hash shared by **every** tree over the span —
    /// computed lazily (indexed `lo * n + hi`) and reused across the
    /// span's nodes, so keying a node for the cross-shape store is
    /// allocation- and hash-free beyond its first sibling.
    span_ids: Vec<Option<SpanIdentity>>,
    classes: EquivClasses,
    leaves: Vec<NodeDesc>,
    stats: PoolStats,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        PoolBuilder::new()
    }
}

impl PoolBuilder {
    /// An empty builder with no memoized shape.
    #[must_use]
    pub fn new() -> Self {
        PoolBuilder {
            key: None,
            shape: None,
            dag: SpanDag::new(1),
            frags: Vec::new(),
            span_ids: Vec::new(),
            classes: EquivClasses::new(0),
            leaves: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Counters for the currently memoized shape.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            nodes: self.dag.num_nodes(),
            ..self.stats
        }
    }

    /// Re-target the memo: reuse it if `key` matches the prepared shape,
    /// otherwise rebuild the leaf descriptors and drop every interned
    /// node and fragment. A `None` key never matches (one-shot callers
    /// pay one preparation per call, exactly as before).
    fn prepare(&mut self, key: Option<ShapeId>, shape: &Shape, options: BuildOptions) {
        if let (Some(id), Some(have)) = (key, self.key) {
            if have == (id, options) && self.shape.as_ref() == Some(shape) {
                return;
            }
        }
        self.key = key.map(|id| (id, options));
        self.shape = key.is_some().then(|| shape.clone());
        self.dag = SpanDag::new(shape.len());
        self.frags = vec![None; shape.len()];
        self.span_ids.clear();
        self.span_ids.resize(shape.len() * shape.len(), None);
        self.classes = shape.size_classes();
        self.leaves = leaf_descs(shape, &self.classes);
        self.stats = PoolStats::default();
    }

    /// The cross-shape cache identity of node `id`: its span's descriptor
    /// run and tree renumbered into the span-local frame, plus the frame
    /// itself (chain offset + global symbol per local slot) so a hit from
    /// elsewhere can be relocated. `None` for spans too wide to encode
    /// (> 63 leaves), which simply bypass the store.
    fn span_key(&mut self, id: NodeId, options: BuildOptions) -> Option<(Frame, FragKey)> {
        let (lo, hi) = self.dag.span(id);
        let width = hi - lo + 1;
        if width > 63 {
            return None;
        }
        let slot = lo * self.dag.chain_len() + hi;
        if self.span_ids[slot].is_none() {
            // Local size symbols in first-occurrence order over the
            // span's positions. Sound because `size_classes` merges only
            // adjacent symbols: the partition restricted to `lo..=hi + 1`
            // is fully determined by the span's own operand run.
            let mut syms: Vec<usize> = Vec::with_capacity(width + 1);
            for p in lo..=hi + 1 {
                let g = self.classes.find(p);
                if !syms.contains(&g) {
                    syms.push(g);
                }
            }
            let local = |g: usize| {
                syms.iter()
                    .position(|&s| s == g)
                    .expect("descriptor symbols come from span positions")
            };
            let run: Arc<[NodeDesc]> = (lo..=hi)
                .map(|p| {
                    let mut d = self.leaves[p];
                    d.rows = local(d.rows);
                    d.cols = local(d.cols);
                    d.source = ValRef::Leaf(p - lo);
                    d
                })
                .collect();
            let run_hash = FragKey::hash_run(&run);
            let frame = Frame {
                lo,
                syms: syms.into(),
            };
            self.span_ids[slot] = Some((frame, run, run_hash));
        }
        let (frame, run, run_hash) = self.span_ids[slot].as_ref().expect("filled above");
        let tree = self.dag.code(id);
        Some((
            frame.clone(),
            FragKey::from_hashed(options, tree, run.clone(), *run_hash),
        ))
    }

    /// Lower every not-yet-lowered DAG node, in ascending id order
    /// (children always precede parents), consulting the cross-shape
    /// fragment store (when one is supplied) before lowering each
    /// association node. Leaves are never cached — constructing one is
    /// cheaper than a lookup.
    fn lower_pending(&mut self, options: BuildOptions, mut cache: Option<&mut FragmentCache>) {
        self.frags.resize(self.dag.num_nodes(), None);
        for id in 0..self.dag.num_nodes() {
            if self.frags[id].is_some() {
                continue;
            }
            let lowered = match self.dag.children(id) {
                None => {
                    let (lo, _) = self.dag.span(id);
                    self.stats.fragments_lowered += 1;
                    Ok(Arc::new(Fragment::leaf(self.leaves[lo])))
                }
                Some((l, r)) => {
                    let keyed = match &cache {
                        Some(_) => self.span_key(id, options),
                        None => None,
                    };
                    if let (Some(c), Some((frame, key))) = (cache.as_deref_mut(), keyed.as_ref()) {
                        if let Some(found) = c.lookup(key, frame) {
                            self.frags[id] = Some(found);
                            continue;
                        }
                    }
                    // Propagate child errors left-first: the left child's
                    // associations are issued before the right's, whose
                    // are issued before this node's own — matching which
                    // error the per-tree reference surfaces first.
                    let lowered = match (&self.frags[l], &self.frags[r]) {
                        (Some(Err(e)), _) | (_, Some(Err(e))) => Err(e.clone()),
                        (Some(Ok(lf)), Some(Ok(rf))) => lower_node(
                            lf.as_ref(),
                            self.dag.num_leaves(l),
                            rf.as_ref(),
                            self.dag.num_leaves(r),
                            &self.classes,
                            options,
                        )
                        .map(Arc::new),
                        _ => unreachable!("children lowered before parents"),
                    };
                    self.stats.fragments_lowered += 1;
                    if let (Some(c), Some((frame, key))) = (cache.as_deref_mut(), keyed) {
                        c.insert(key, lowered.as_ref(), &frame);
                    }
                    lowered
                }
            };
            self.frags[id] = Some(lowered);
        }
    }

    /// Splice the flattened steps of `id`'s sub-tree into `out`, with the
    /// sub-tree's span-local `Temp` indices relocated by `base` (the
    /// number of steps issued before this sub-tree in the containing
    /// variant's total order).
    fn emit_steps(&self, id: NodeId, base: usize, out: &mut Vec<crate::variant::Step>) {
        let Some((l, r)) = self.dag.children(id) else {
            return;
        };
        self.emit_steps(l, base, out);
        self.emit_steps(r, base + (self.dag.num_leaves(l) - 1), out);
        let frag = self.fragment(id).expect("emit only over Ok fragments");
        let mut step = frag.step.expect("association node has a step");
        if let ValRef::Temp(t) = step.left {
            step.left = ValRef::Temp(t + base);
        }
        if let ValRef::Temp(t) = step.right {
            step.right = ValRef::Temp(t + base);
        }
        out.push(step);
    }

    fn fragment(&self, id: NodeId) -> Result<&Fragment, BuildError> {
        match &self.frags[id] {
            Some(Ok(f)) => Ok(f.as_ref()),
            Some(Err(e)) => Err(e.clone()),
            None => unreachable!("fragment lowered before assembly"),
        }
    }

    /// Assemble the full variant rooted at `id` from the shared fragment
    /// table: copy + renumber the spliced steps, clone the memoized cost,
    /// and finalize the end result — bit-identical to
    /// [`crate::builder::build_variant`] on the same tree.
    fn assemble(&self, id: NodeId) -> Result<Variant, BuildError> {
        let frag = self.fragment(id)?;
        let n = self.dag.num_leaves(id);
        let mut steps = Vec::with_capacity(n - 1);
        self.emit_steps(id, 0, &mut steps);
        let (finalizes, delivered) = finalizes_for(&frag.result)?;
        let mut cost = frag.cost.clone();
        for fin in &finalizes {
            cost += &finalize_cost_poly(fin.kernel, fin.size_sym);
        }
        Ok(Variant {
            steps,
            finalizes,
            cost,
            paren: self.dag.tree(id),
            result: ResultDesc {
                structure: delivered.structure,
                property: delivered.property,
                rows_sym: delivered.rows,
                cols_sym: delivered.cols,
            },
            num_leaves: n,
        })
    }

    /// Assemble the variants for `roots`, in order, splitting the work
    /// across up to `jobs` threads over the read-only fragment table.
    /// Output order and contents are identical for every `jobs` value.
    fn assemble_many(&mut self, roots: &[NodeId], jobs: usize) -> Result<Vec<Variant>, BuildError> {
        self.stats.variants_assembled += roots.len();
        let this = &*self;
        crate::enumerate::map_collect(roots, jobs, |&id| this.assemble(id))
    }

    /// Build the variant for **every** parenthesization of `shape`, in
    /// [`ParenTree::enumerate`] order, lowering each distinct sub-span
    /// fragment once. `key` identifies the shape across calls (a
    /// session passes its interned [`ShapeId`] so repeat compiles of the
    /// same shape reuse the memo; `None` prepares from scratch).
    ///
    /// The caller is responsible for the `Catalan(n - 1)` pool-size cap —
    /// this method materializes the full pool unconditionally.
    ///
    /// # Errors
    ///
    /// Propagates the same [`BuildError`] per-tree lowering would report
    /// for the first failing tree (unreachable for valid shapes).
    pub fn build_full(
        &mut self,
        key: Option<ShapeId>,
        shape: &Shape,
        jobs: usize,
    ) -> Result<Vec<Variant>, BuildError> {
        self.build_full_cached(key, shape, jobs, None)
    }

    /// [`PoolBuilder::build_full`] consulting (and populating) a
    /// cross-shape [`FragmentCache`] for every association node the
    /// per-shape memo has not already lowered. Sessions pass their store
    /// here when the fragment cache is active (`GMC_FRAG`).
    ///
    /// # Errors
    ///
    /// As [`PoolBuilder::build_full`] — cached failures propagate the
    /// identical [`BuildError`] the lowering originally produced.
    pub fn build_full_cached(
        &mut self,
        key: Option<ShapeId>,
        shape: &Shape,
        jobs: usize,
        cache: Option<&mut FragmentCache>,
    ) -> Result<Vec<Variant>, BuildError> {
        self.prepare(key, shape, BuildOptions::default());
        let roots = self.dag.enumerate_roots();
        self.lower_pending(BuildOptions::default(), cache);
        self.assemble_many(&roots, jobs)
    }

    /// Build the variants for an explicit list of parenthesizations (the
    /// warm-restart restore path), sharing fragments across the trees —
    /// and with any previously memoized pool for the same `key`.
    ///
    /// # Errors
    ///
    /// [`BuildError::TreeShapeMismatch`] for a tree that does not span
    /// the whole chain, otherwise as [`PoolBuilder::build_full`].
    pub fn build_for_trees(
        &mut self,
        key: Option<ShapeId>,
        shape: &Shape,
        trees: &[ParenTree],
        jobs: usize,
    ) -> Result<Vec<Variant>, BuildError> {
        self.build_for_trees_cached(key, shape, trees, jobs, None)
    }

    /// [`PoolBuilder::build_for_trees`] consulting (and populating) a
    /// cross-shape [`FragmentCache`] — the warm-restart path uses this so
    /// a snapshot-restored store lets the very first rebuild of a
    /// previously seen shape splice warm fragments.
    ///
    /// # Errors
    ///
    /// As [`PoolBuilder::build_for_trees`].
    pub fn build_for_trees_cached(
        &mut self,
        key: Option<ShapeId>,
        shape: &Shape,
        trees: &[ParenTree],
        jobs: usize,
        cache: Option<&mut FragmentCache>,
    ) -> Result<Vec<Variant>, BuildError> {
        self.prepare(key, shape, BuildOptions::default());
        let full_span = (0, shape.len() - 1);
        let roots: Vec<NodeId> = trees
            .iter()
            .map(|t| {
                if t.span() != full_span {
                    return Err(BuildError::TreeShapeMismatch);
                }
                self.dag.intern_tree(t).ok_or(BuildError::TreeShapeMismatch)
            })
            .collect::<Result<_, _>>()?;
        self.lower_pending(BuildOptions::default(), cache);
        self.assemble_many(&roots, jobs)
    }
}

/// One-shot conveniences mirroring the naive free functions.
impl PoolBuilder {
    /// [`PoolBuilder::build_full`] through a throwaway builder.
    ///
    /// # Errors
    ///
    /// As [`PoolBuilder::build_full`].
    pub fn full_pool(shape: &Shape, jobs: usize) -> Result<Vec<Variant>, BuildError> {
        PoolBuilder::new().build_full(None, shape, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_variant;
    use gmc_ir::{Features, Operand, Property, Structure};

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    #[test]
    fn memoized_pool_is_bit_identical_to_reference_for_n7() {
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let spd = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let shape = Shape::new(vec![g(), l, g(), spd, g(), g().transposed(), g()]).unwrap();
        let trees = ParenTree::enumerate(0, 6);
        let reference: Vec<Variant> = trees
            .iter()
            .map(|t| build_variant(&shape, t).unwrap())
            .collect();
        let mut builder = PoolBuilder::new();
        let pool = builder.build_full(None, &shape, 1).unwrap();
        assert_eq!(pool, reference, "exact Variant equality");
        let stats = builder.stats();
        assert_eq!(stats.nodes, 301, "shared sub-trees");
        assert_eq!(stats.fragments_lowered, 301, "each node lowered once");
        assert_eq!(stats.variants_assembled, 132);
    }

    #[test]
    fn single_matrix_chain_assembles_finalizers() {
        let spd = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let shape = Shape::new(vec![spd]).unwrap();
        let pool = PoolBuilder::full_pool(&shape, 1).unwrap();
        let reference = build_variant(&shape, &ParenTree::Leaf(0)).unwrap();
        assert_eq!(pool, vec![reference]);
    }

    #[test]
    fn session_key_reuses_the_memo_across_calls() {
        let shape = Shape::new(vec![g(); 6]).unwrap();
        let key = {
            let mut interner = gmc_ir::ShapeInterner::new();
            interner.intern(&shape)
        };
        let mut builder = PoolBuilder::new();
        let first = builder.build_full(Some(key), &shape, 1).unwrap();
        let lowered = builder.stats().fragments_lowered;
        let again = builder.build_full(Some(key), &shape, 1).unwrap();
        assert_eq!(first, again);
        assert_eq!(
            builder.stats().fragments_lowered,
            lowered,
            "warm rebuild lowers nothing new"
        );
        // A different shape under a different key invalidates the memo.
        let other = Shape::new(vec![g(); 4]).unwrap();
        let other_key = {
            let mut interner = gmc_ir::ShapeInterner::new();
            interner.intern(&other);
            let mut i2 = gmc_ir::ShapeInterner::new();
            i2.intern(&shape);
            i2.intern(&other)
        };
        let pool = builder.build_full(Some(other_key), &other, 1).unwrap();
        assert_eq!(pool.len(), 5);
        assert_eq!(builder.stats().nodes, 4 + 3 + 2 * 2 + 5, "fresh DAG");
    }

    #[test]
    fn cross_shape_store_skips_relowering_of_shared_spans() {
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let spd = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        // Two shapes sharing a 4-operand prefix, differing in the suffix.
        let a = Shape::new(vec![g(), l, g(), spd, g()]).unwrap();
        let b = Shape::new(vec![g(), l, g(), spd, g().transposed(), g()]).unwrap();
        let mut cache = crate::fragcache::FragmentCache::new(1 << 12);
        let mut builder = PoolBuilder::new();
        let pool_a = builder
            .build_full_cached(None, &a, 1, Some(&mut cache))
            .unwrap();
        let pool_b = builder
            .build_full_cached(None, &b, 1, Some(&mut cache))
            .unwrap();
        let hits = cache.stats().hits;
        assert!(hits > 0, "shared prefix spans must hit the store");
        assert!(
            builder.stats().fragments_lowered < builder.stats().nodes,
            "hits skip lowering: {} of {} nodes lowered",
            builder.stats().fragments_lowered,
            builder.stats().nodes
        );
        // Bit-identical to the store-less builds.
        assert_eq!(pool_a, PoolBuilder::new().build_full(None, &a, 1).unwrap());
        assert_eq!(pool_b, PoolBuilder::new().build_full(None, &b, 1).unwrap());
        // Rebuilding shape `a` cold (memo dropped by the `b` build) now
        // hits the store for every association node.
        let pool_a2 = builder
            .build_full_cached(None, &a, 1, Some(&mut cache))
            .unwrap();
        assert_eq!(pool_a2, pool_a);
        assert_eq!(
            builder.stats().fragments_lowered,
            a.len(),
            "only leaves lowered on the warm rebuild"
        );
    }

    #[test]
    fn explicit_trees_share_fragments_and_validate_spans() {
        let shape = Shape::new(vec![g(); 5]).unwrap();
        let trees = [
            ParenTree::left_to_right(0, 4),
            ParenTree::right_to_left(0, 4),
            ParenTree::left_to_right(0, 4),
        ];
        let mut builder = PoolBuilder::new();
        let got = builder.build_for_trees(None, &shape, &trees, 1).unwrap();
        for (v, t) in got.iter().zip(&trees) {
            assert_eq!(v, &build_variant(&shape, t).unwrap());
        }
        // The duplicate tree re-used its fragments: only two spines.
        assert!(builder.stats().fragments_lowered <= 5 + 4 + 4);
        // A tree over the wrong span is rejected like the reference.
        let short = [ParenTree::left_to_right(0, 3)];
        assert_eq!(
            builder.build_for_trees(None, &shape, &short, 1),
            Err(BuildError::TreeShapeMismatch)
        );
    }
}
