//! The Lemma-1 constants of Sec. V, computed exactly.
//!
//! Lemma 1 matches a term `t_e` in a fanning-out variant's cost against a
//! term `t_o` in the optimal variant's cost and bounds `t_e <= alpha t_o`
//! with a kernel-pair-specific constant `alpha`. The paper states that the
//! worst constant over all kernel pairs, `alpha-hat`, is bounded above
//! by 8 — so `T(E_m) < 2 alpha-hat T_opt <= 16 T_opt` (Lemma 2) and
//! `rho <= 15` (Theorem 1). This module computes those constants from the
//! Table-I coefficients so the claim is checked, not assumed.

use gmc_ir::Ratio;
use gmc_kernels::{cost::type_one_beta, cost::type_two_betas, Kernel};

/// The cost-function shape of one kernel invocation: `beta abc` for Type I,
/// `beta1 x^3 + beta2 x^2 y` for Type II (either orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermKind {
    /// Type I with coefficient `beta`.
    TypeI(Ratio),
    /// Type II with coefficients `(beta1, beta2)`.
    TypeII(Ratio, Ratio),
}

/// All distinct term kinds arising from the kernel catalogue (both cheap
/// branches of two-case kernels).
#[must_use]
pub fn catalogue_terms() -> Vec<(Kernel, bool, TermKind)> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        for cheap in [false, true] {
            let kind = if let Some((b1, b2)) = type_two_betas(kernel) {
                TermKind::TypeII(b1, b2)
            } else {
                let beta = type_one_beta(kernel, cheap).expect("type I kernel");
                TermKind::TypeI(beta)
            };
            if cheap && out.iter().any(|&(k, _, t)| k == kernel && t == kind) {
                continue; // kernel without a cheap branch
            }
            out.push((kernel, cheap, kind));
        }
    }
    out
}

/// The Lemma-1 constant `alpha` for a specific `(t_e, t_o)` pair, i.e. the
/// worst case over the lemma's sub-cases for those term kinds.
#[must_use]
pub fn alpha_for(te: TermKind, to: TermKind) -> Ratio {
    match (te, to) {
        // Case I: both Type I — alpha = beta_e / beta_o.
        (TermKind::TypeI(be), TermKind::TypeI(bo)) => be / bo,
        // Case II: t_e Type I, t_o Type II (betas b2', b3' in the paper's
        // notation): sub-cases give beta1/(beta2 + beta3) and beta1/beta3;
        // the bound is their maximum.
        (TermKind::TypeI(b1), TermKind::TypeII(b2, b3)) => {
            let first = b1 / (b2 + b3);
            let rest = b1 / b3;
            if first > rest {
                first
            } else {
                rest
            }
        }
        // Case III: t_e Type II, t_o Type I — alpha = (beta1 + beta2)/beta3.
        (TermKind::TypeII(b1, b2), TermKind::TypeI(b3)) => (b1 + b2) / b3,
        // Case IV: both Type II — alpha = beta1/beta3 + beta2/beta4.
        (TermKind::TypeII(b1, b2), TermKind::TypeII(b3, b4)) => b1 / b3 + b2 / b4,
    }
}

/// The worst Lemma-1 constant over a set of term kinds (`alpha-hat`).
#[must_use]
pub fn alpha_hat(terms: &[TermKind]) -> Ratio {
    let mut worst = Ratio::ZERO;
    for &te in terms {
        for &to in terms {
            let a = alpha_for(te, to);
            if a > worst {
                worst = a;
            }
        }
    }
    worst
}

/// `alpha-hat` over the *entire* kernel catalogue — the constant behind
/// Theorem 1's `rho = 2 alpha-hat - 1`.
#[must_use]
pub fn catalogue_alpha_hat() -> Ratio {
    let kinds: Vec<TermKind> = catalogue_terms().iter().map(|&(_, _, k)| k).collect();
    alpha_hat(&kinds)
}

/// The term kind of one concrete kernel invocation.
#[must_use]
pub fn term_kind(kernel: Kernel, cheap: bool) -> TermKind {
    if let Some((b1, b2)) = type_two_betas(kernel) {
        TermKind::TypeII(b1, b2)
    } else {
        TermKind::TypeI(type_one_beta(kernel, cheap).expect("type I kernel"))
    }
}

/// A *per-shape* penalty bound, usually far tighter than the global
/// `rho = 15` (the paper: "the constant rho = 15 is in general very
/// pessimistic").
///
/// `alpha-hat` is computed only over the kernel invocations that actually
/// occur in the given variants (e.g. the full pool `A` of a shape); the
/// bound is `rho = 2 alpha-hat - 1` per Lemma 2 / Theorem 1. For a
/// standard matrix chain this recovers `rho = 1` (i.e. `T_E < 2 T_opt`).
#[must_use]
pub fn shape_penalty_bound(variants: &[crate::variant::Variant]) -> Ratio {
    let mut kinds: Vec<TermKind> = Vec::new();
    for v in variants {
        for s in v.steps() {
            let k = term_kind(s.kernel, s.cheap);
            if !kinds.contains(&k) {
                kinds.push(k);
            }
        }
    }
    if kinds.is_empty() {
        return Ratio::ZERO;
    }
    let two = Ratio::new(2, 1);
    alpha_hat(&kinds) * two - Ratio::ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::new(n.into(), d.into())
    }

    #[test]
    fn catalogue_alpha_hat_is_eight() {
        // The paper: "the value of alpha-hat is bounded above by 8". With
        // the Table-I coefficients the bound is attained exactly:
        // beta_e = 8/3 (GESYSV) against beta_o = 1/3 (TRTRMM same-tri).
        assert_eq!(catalogue_alpha_hat(), r(8, 1));
    }

    #[test]
    fn standard_chain_alpha_is_one() {
        // Only GEMM: alpha-hat = 1, recovering T(E_m) < 2 T_opt.
        let gemm = TermKind::TypeI(r(2, 1));
        assert_eq!(alpha_hat(&[gemm]), r(1, 1));
    }

    #[test]
    fn gemm_plus_trmm_alpha_is_two() {
        // The paper's G..L..G example: kernels GEMM and TRMM give
        // alpha-hat = 2 and hence T(E_m) < 4 T_opt.
        let gemm = TermKind::TypeI(r(2, 1));
        let trmm = TermKind::TypeI(r(1, 1));
        assert_eq!(alpha_hat(&[gemm, trmm]), r(2, 1));
    }

    #[test]
    fn case_rules() {
        // Case I.
        assert_eq!(
            alpha_for(TermKind::TypeI(r(8, 3)), TermKind::TypeI(r(1, 3))),
            r(8, 1)
        );
        // Case II: max(b1/(b2+b3), b1/b3).
        assert_eq!(
            alpha_for(TermKind::TypeI(r(8, 3)), TermKind::TypeII(r(2, 3), r(2, 1))),
            r(4, 3)
        );
        // Case III.
        assert_eq!(
            alpha_for(TermKind::TypeII(r(2, 3), r(2, 1)), TermKind::TypeI(r(1, 3))),
            r(8, 1)
        );
        // Case IV.
        assert_eq!(
            alpha_for(
                TermKind::TypeII(r(2, 3), r(2, 1)),
                TermKind::TypeII(r(1, 3), r(2, 1))
            ),
            r(3, 1)
        );
    }

    #[test]
    fn catalogue_has_both_type_two_families() {
        let terms = catalogue_terms();
        let type2: Vec<_> = terms
            .iter()
            .filter(|(_, _, k)| matches!(k, TermKind::TypeII(..)))
            .collect();
        // GEGESV with (2/3, 2) plus SYGESV/POGESV with (1/3, 2), cheap flag
        // deduplicated.
        assert_eq!(type2.len(), 3);
    }

    #[test]
    fn per_shape_bound_for_standard_chain_is_one() {
        use gmc_ir::{Features, Operand, Shape};
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 5]).unwrap();
        let pool = crate::enumerate::all_variants(&shape).unwrap();
        // Only GEMM occurs: rho = 2 * 1 - 1 = 1, the known MC bound.
        assert_eq!(shape_penalty_bound(&pool), r(1, 1));
    }

    #[test]
    fn per_shape_bound_with_triangular_matrix_is_three() {
        use gmc_ir::{Features, Operand, Property, Shape, Structure};
        let g = Operand::plain(Features::general());
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::Singular));
        let shape = Shape::new(vec![g, g, l, g]).unwrap();
        let pool = crate::enumerate::all_variants(&shape).unwrap();
        // GEMM (beta 2) and TRMM (beta 1): alpha-hat = 2, rho = 3 — the
        // paper's T(E_m) < 4 T_opt example.
        assert_eq!(shape_penalty_bound(&pool), r(3, 1));
    }

    #[test]
    fn per_shape_bound_never_exceeds_global_rho() {
        use gmc_ir::{Operand, Shape};
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let options = Operand::experiment_options();
        for _ in 0..20 {
            let n = 2 + rng.gen_range(0..5);
            let ops: Vec<Operand> = (0..n)
                .map(|_| options[rng.gen_range(0..options.len())])
                .collect();
            let Ok(shape) = Shape::new(ops) else { continue };
            let pool = crate::enumerate::all_variants(&shape).unwrap();
            let bound = shape_penalty_bound(&pool);
            assert!(bound <= r(15, 1), "{shape}: bound {bound}");
        }
    }

    #[test]
    fn measured_fanning_out_penalty_respects_per_shape_bound() {
        use crate::theory::penalty;
        use gmc_ir::{Features, InstanceSampler, Operand, Property, Shape, Structure};
        use rand::{rngs::StdRng, SeedableRng};
        let g = Operand::plain(Features::general());
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let shape = Shape::new(vec![g, l, g, g]).unwrap();
        let pool = crate::enumerate::all_variants(&shape).unwrap();
        let bound = shape_penalty_bound(&pool).to_f64();
        let fanning = crate::theory::fanning_out_set(&shape).unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let sampler = InstanceSampler::new(&shape, 2, 1000);
        for _ in 0..300 {
            let q = sampler.sample(&mut rng);
            let opt = pool
                .iter()
                .map(|v| v.flops(&q))
                .fold(f64::INFINITY, f64::min);
            let best = fanning
                .iter()
                .map(|(_, v)| v.flops(&q))
                .fold(f64::INFINITY, f64::min);
            assert!(
                penalty(best, opt) <= bound + 1e-9,
                "penalty exceeded per-shape bound"
            );
        }
    }

    #[test]
    fn theorem_one_rho_from_alpha_hat() {
        // rho = 2 alpha-hat - 1 = 15.
        let rho = catalogue_alpha_hat() * r(2, 1) - r(1, 1);
        assert_eq!(rho, r(15, 1));
    }
}
