//! From parenthesization to code variant (Sec. IV of the paper).
//!
//! The builder extends the parenthesization's partial order of associations
//! to a total order (leftmost available association first) and then runs
//! four steps per association:
//!
//! 1. **Propagation of inversion** — rewrites like
//!    `M1^{-1} M2^{-1} = (M2 M1)^{-1}` and
//!    `L G^{-1} = (G L^{-1})^{-1}` that avoid expensive solves with general
//!    or symmetric coefficient matrices.
//! 2. **Kernel assignment** — the Fig. 3 lookup tables.
//! 3. **Propagation of transposition** — rewrites like
//!    `L G^T = (G L^T)^T` when the assigned kernel does not support the
//!    transposition pattern.
//! 4. **Inference of features and sizes** — the Fig. 4 lookup tables.

use crate::paren::ParenTree;
use crate::variant::{Finalize, ResultDesc, Step, ValRef, Variant};
use gmc_ir::{EquivClasses, Poly, Property, Shape, Structure};
use gmc_kernels::{
    assign_kernel, cost_poly, finalize_cost_poly, infer_property, infer_structure, AssocOperand,
    FinalizeKernel, Kernel, MappingError,
};
use gmc_linalg::{Side, Triangle};
use std::error::Error;
use std::fmt;

/// Errors from variant construction.
///
/// For a valid [`Shape`] these should be unreachable; they surface bugs in
/// the rewrite pipeline rather than user errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The parenthesization does not cover leaves `0..n`.
    TreeShapeMismatch,
    /// Kernel assignment failed.
    Mapping(MappingError),
    /// The final result carries an inversion but is not invertible.
    UninvertibleResult,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TreeShapeMismatch => {
                write!(f, "parenthesization does not match the chain length")
            }
            BuildError::Mapping(e) => write!(f, "kernel assignment failed: {e}"),
            BuildError::UninvertibleResult => {
                write!(f, "an inversion propagated to a singular end result")
            }
        }
    }
}

impl Error for BuildError {}

impl From<MappingError> for BuildError {
    fn from(e: MappingError) -> Self {
        BuildError::Mapping(e)
    }
}

/// Descriptor of an in-flight value (leaf or intermediate) during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct NodeDesc {
    /// Stored structure of the materialized value.
    pub structure: Structure,
    /// Property of the value.
    pub property: Property,
    /// Pending logical transposition.
    pub transposed: bool,
    /// Pending logical inversion.
    pub inverted: bool,
    /// Canonical row-size symbol of the stored value.
    pub rows: usize,
    /// Canonical column-size symbol of the stored value.
    pub cols: usize,
    /// Where the stored value lives.
    pub source: ValRef,
}

impl NodeDesc {
    /// Effective structure after the pending transposition.
    fn eff_structure(&self) -> Structure {
        if self.transposed {
            self.structure.transposed()
        } else {
            self.structure
        }
    }

    /// Effective (row, column) symbols after the pending transposition.
    fn eff_dims(&self) -> (usize, usize) {
        if self.transposed {
            (self.cols, self.rows)
        } else {
            (self.rows, self.cols)
        }
    }

    /// Stored triangle, if the stored structure is triangular.
    fn stored_tri(&self) -> Option<Triangle> {
        match self.structure {
            Structure::LowerTri => Some(Triangle::Lower),
            Structure::UpperTri => Some(Triangle::Upper),
            _ => None,
        }
    }

    /// Normalization applied before every association (and to leaves):
    /// inversion of an orthogonal value becomes transposition, and
    /// transposition of a symmetric value is dropped.
    fn normalize(mut self) -> Self {
        if self.inverted && self.property == Property::Orthogonal {
            self.inverted = false;
            self.transposed = !self.transposed;
        }
        if self.transposed && self.structure == Structure::Symmetric {
            self.transposed = false;
        }
        self
    }

    fn is_square(&self, classes: &EquivClasses) -> bool {
        classes.same(self.rows, self.cols)
    }
}

/// Optimization switches for variant construction, used by the ablation
/// experiments (`gmc-bench --bin ablation`) to quantify the Sec. IV design
/// choices. Defaults enable everything, matching the paper.
///
/// `Hash` because the options are part of every
/// [`fragcache`](crate::fragcache) key: fragments lowered under different
/// switches are distinct cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BuildOptions {
    /// Apply the single-operand inversion-propagation heuristic
    /// (`L G^{-1} = (G L^{-1})^{-1}`, Sec. IV step 1). The mandatory
    /// both-inverted rewrite is always applied — without it some
    /// associations have no kernel at all.
    pub propagate_single_inversion: bool,
    /// Infer structures of intermediate results (Fig. 4). When disabled,
    /// every intermediate is treated as a dense general matrix, so
    /// downstream associations cannot use specialized kernels.
    pub infer_structures: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            propagate_single_inversion: true,
            infer_structures: true,
        }
    }
}

/// Swap the operands of an association, toggling the given flag on both —
/// the unified rewrite of steps 1 and 3:
///
/// * inversion: `A^{-1} B^{-1} -> (B A)^{-1}` and `L G^{-1} -> (G L^{-1})^{-1}`
///   (toggle `inverted`);
/// * transposition: `A B^T -> (B A^T)^T` (toggle `transposed`).
fn swap_rewrite(l: &mut NodeDesc, r: &mut NodeDesc, toggle_inverted: bool) {
    std::mem::swap(l, r);
    if toggle_inverted {
        l.inverted = !l.inverted;
        r.inverted = !r.inverted;
    } else {
        l.transposed = !l.transposed;
        r.transposed = !r.transposed;
    }
}

/// Does the assigned kernel support the current transposition pattern?
///
/// Only the structured/coefficient operand of `SYMM`-, `TRMM`-, and
/// solve-class kernels supports implicit transposition; `GEMM` and
/// `TRTRMM` support it on both operands; symmetric operands never carry a
/// transposition (normalized away).
fn pattern_supported(kernel: Kernel, side: Side, l: &NodeDesc, r: &NodeDesc) -> bool {
    match kernel {
        Kernel::Gemm | Kernel::Trtrmm | Kernel::Sysymm => true,
        Kernel::Symm | Kernel::Trmm | Kernel::Trsymm => {
            // The non-structured operand must be untransposed.
            match side {
                Side::Left => !r.transposed,
                Side::Right => !l.transposed,
            }
        }
        _ => {
            // Solve kernels: the right-hand side must be untransposed.
            match side {
                Side::Left => !r.transposed,
                Side::Right => !l.transposed,
            }
        }
    }
}

/// Lower one association per Sec. IV steps 1–4.
///
/// Returns the kernel-call [`Step`] and the descriptor of its result.
pub(crate) fn associate(
    left: NodeDesc,
    right: NodeDesc,
    classes: &EquivClasses,
) -> Result<(Step, NodeDesc), BuildError> {
    associate_with(left, right, classes, BuildOptions::default())
}

/// [`associate`] with explicit optimization switches.
pub(crate) fn associate_with(
    left: NodeDesc,
    right: NodeDesc,
    classes: &EquivClasses,
    options: BuildOptions,
) -> Result<(Step, NodeDesc), BuildError> {
    let mut l = left.normalize();
    let mut r = right.normalize();
    let mut pending_inverted = false;
    let mut pending_transposed = false;

    // Step 1: propagation of inversion.
    if l.inverted && r.inverted {
        // M1^{-1} M2^{-1} = (M2 M1)^{-1}.
        swap_rewrite(&mut l, &mut r, true);
        pending_inverted = true;
    } else if options.propagate_single_inversion && (l.inverted || r.inverted) {
        let (inv, other) = if l.inverted { (&l, &r) } else { (&r, &l) };
        let inv_is_dense = matches!(
            inv.eff_structure(),
            Structure::General | Structure::Symmetric
        );
        let other_is_cheap_coeff = other.property == Property::Orthogonal
            || (other.eff_structure().is_triangular() && other.property.is_invertible());
        if inv_is_dense && other_is_cheap_coeff {
            // e.g. L G^{-1} = (G L^{-1})^{-1}: swap, toggle inversions,
            // propagate an inversion to the result.
            swap_rewrite(&mut l, &mut r, true);
            pending_inverted = true;
        }
    }
    // The rewrite may have produced an inverted orthogonal operand.
    l = l.normalize();
    r = r.normalize();

    // Step 2: kernel assignment (Fig. 3).
    let mut choice = assign_kernel(
        AssocOperand::new(l.eff_structure(), l.property, l.inverted),
        AssocOperand::new(r.eff_structure(), r.property, r.inverted),
    )?;

    // Step 3: propagation of transposition.
    if !pattern_supported(choice.kernel, choice.side, &l, &r) {
        // A B -> (B^T A^T)^T.
        swap_rewrite(&mut l, &mut r, false);
        pending_transposed = true;
        l = l.normalize();
        r = r.normalize();
        choice = assign_kernel(
            AssocOperand::new(l.eff_structure(), l.property, l.inverted),
            AssocOperand::new(r.eff_structure(), r.property, r.inverted),
        )?;
        debug_assert!(
            pattern_supported(choice.kernel, choice.side, &l, &r),
            "transposition rewrite must yield a supported pattern"
        );
    }

    // The `cheap` flag of two-case cost functions (Table I).
    let cheap = match choice.kernel {
        Kernel::Trtrmm | Kernel::Trtrsv => l.eff_structure() == r.eff_structure(),
        Kernel::Getrsv | Kernel::Potrsv => {
            let rhs_eff = match choice.side {
                Side::Left => r.eff_structure(),
                Side::Right => l.eff_structure(),
            };
            matches!(
                (choice.side, rhs_eff),
                (Side::Left, Structure::LowerTri) | (Side::Right, Structure::UpperTri)
            )
        }
        _ => false,
    };

    // Step 4: inference of features and sizes (Fig. 4).
    let (l_rows, l_cols) = l.eff_dims();
    let (r_rows, r_cols) = r.eff_dims();
    debug_assert!(
        classes.same(l_cols, r_rows),
        "inner dimensions must agree symbolically"
    );
    let triplet = (
        classes.find(l_rows),
        classes.find(l_cols),
        classes.find(r_cols),
    );

    let structure = if options.infer_structures {
        infer_structure(l.eff_structure(), r.eff_structure())
    } else {
        Structure::General
    };
    let property = infer_property(
        l.property,
        l.is_square(classes),
        r.property,
        r.is_square(classes),
    );

    let step = Step {
        left: l.source,
        right: r.source,
        kernel: choice.kernel,
        side: choice.side,
        left_trans: l.transposed,
        right_trans: r.transposed,
        left_tri: l.stored_tri(),
        right_tri: r.stored_tri(),
        cheap,
        triplet,
    };
    let result = NodeDesc {
        structure,
        property,
        transposed: pending_transposed,
        inverted: pending_inverted,
        rows: triplet.0,
        cols: triplet.2,
        // Caller assigns the real temp index.
        source: ValRef::Temp(usize::MAX),
    };
    Ok((step, result))
}

/// Leaf descriptors for a shape's operands, with symbols canonicalized.
pub(crate) fn leaf_descs(shape: &Shape, classes: &EquivClasses) -> Vec<NodeDesc> {
    shape
        .operands()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            // In the chain, op(M_i) has size q_i x q_{i+1}; when the operand
            // is transposed the *stored* matrix therefore has the swapped
            // size q_{i+1} x q_i.
            let (rows, cols) = if op.transposed {
                (classes.find(i + 1), classes.find(i))
            } else {
                (classes.find(i), classes.find(i + 1))
            };
            NodeDesc {
                structure: op.features.structure,
                property: op.features.property,
                transposed: op.transposed,
                inverted: op.inverted,
                rows,
                cols,
                source: ValRef::Leaf(i),
            }
            .normalize()
        })
        .collect()
}

/// Finalizer steps for a pending inversion/transposition on the end result.
pub(crate) fn finalizes_for(desc: &NodeDesc) -> Result<(Vec<Finalize>, NodeDesc), BuildError> {
    let mut out = Vec::new();
    let mut d = desc.normalize();
    if d.inverted {
        if !d.property.is_invertible() {
            return Err(BuildError::UninvertibleResult);
        }
        let kernel = match (d.structure, d.property) {
            (Structure::Symmetric, Property::Spd) => FinalizeKernel::Potri,
            (Structure::Symmetric, _) => FinalizeKernel::Sytri,
            (Structure::LowerTri | Structure::UpperTri, _) => FinalizeKernel::Trtri,
            (Structure::General, _) => FinalizeKernel::Getri,
        };
        out.push(Finalize {
            kernel,
            tri: d.stored_tri(),
            size_sym: d.rows,
        });
        d.inverted = false;
        // Inversion preserves the structures we track.
    }
    if d.transposed {
        out.push(Finalize {
            kernel: FinalizeKernel::Transpose,
            tri: None,
            size_sym: d.rows,
        });
        d.structure = d.structure.transposed();
        std::mem::swap(&mut d.rows, &mut d.cols);
        d.transposed = false;
    }
    Ok((out, d))
}

/// A memoized lowering of one span-DAG node: the node's own association
/// step plus everything needed to splice it into any containing variant.
///
/// `ValRef`s are **span-local**: the flattened steps of the node's
/// sub-tree are numbered `Temp(0)..Temp(s - 2)` for `s` leaves (leaf
/// references stay absolute — a sub-tree of span `(i, j)` always reads
/// leaves `i..=j`, the same in every containing tree). Relocating a
/// fragment into a larger tree is therefore a constant offset added to
/// every `Temp` index.
///
/// This is valid because the builder's leftmost-available-first total
/// order decomposes recursively: for a node with children `L` and `R`,
/// every association in `L` has leftmost leaf `<=` every association in
/// `R`'s, and within an unfinished `L` some association is always ready
/// — so the order is exactly `order(L) ++ order(R) ++ [root]`, and a
/// sub-tree's steps always form one contiguous block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Fragment {
    /// The association step closing this node (`None` for leaves), with
    /// span-local operand references; its own local index is
    /// `num_leaves - 2`.
    pub step: Option<Step>,
    /// Exact cumulative FLOP cost of the node's whole sub-tree. [`Poly`]
    /// coefficients are exact rationals, so summing per-fragment instead
    /// of per-step-in-issue-order yields the identical polynomial.
    pub cost: Poly,
    /// Descriptor of the node's result; `source` is span-local
    /// (`Leaf(i)` or `Temp(num_leaves - 2)`).
    pub result: NodeDesc,
}

impl Fragment {
    /// The fragment of a leaf: no step, zero cost, the leaf descriptor.
    pub fn leaf(desc: NodeDesc) -> Fragment {
        Fragment {
            step: None,
            cost: Poly::zero(),
            result: desc,
        }
    }
}

/// Lower the association of two already-lowered fragments (Sec. IV
/// steps 1–4, the body of [`build_variant`]'s loop) into the parent's
/// fragment, renumbering the right child's result into the parent's
/// span-local frame: with `ln`/`rn` leaves under the children, the left
/// child's steps keep indices `0..ln - 1`, the right child's shift up by
/// `ln - 1`, and the new step lands at `ln + rn - 2`.
pub(crate) fn lower_node(
    left: &Fragment,
    left_leaves: usize,
    right: &Fragment,
    right_leaves: usize,
    classes: &EquivClasses,
    options: BuildOptions,
) -> Result<Fragment, BuildError> {
    let nl = left_leaves - 1;
    let nr = right_leaves - 1;
    let l = left.result;
    let mut r = right.result;
    if let ValRef::Temp(t) = r.source {
        r.source = ValRef::Temp(t + nl);
    }
    let (step, mut result) = associate_with(l, r, classes, options)?;
    result.source = ValRef::Temp(nl + nr);
    let mut cost = left.cost.clone();
    cost += &right.cost;
    cost += &cost_poly(
        step.kernel,
        step.side,
        step.cheap,
        step.triplet.0,
        step.triplet.1,
        step.triplet.2,
    );
    Ok(Fragment {
        step: Some(step),
        cost,
        result,
    })
}

/// The total ordering of associations: repeatedly issue the ready
/// association (both children available) whose leftmost leaf is smallest.
fn association_order(tree: &ParenTree) -> Vec<(ParenTree, ParenTree)> {
    // Flatten internal nodes.
    fn collect(tree: &ParenTree, nodes: &mut Vec<(ParenTree, ParenTree)>) {
        if let ParenTree::Node(l, r) = tree {
            collect(l, nodes);
            collect(r, nodes);
            nodes.push((l.as_ref().clone(), r.as_ref().clone()));
        }
    }
    let mut nodes = Vec::new();
    collect(tree, &mut nodes);

    // Simulate readiness: a node is ready when both children are leaves or
    // already-issued nodes.
    let mut issued: Vec<(ParenTree, ParenTree)> = Vec::new();
    let mut done: Vec<ParenTree> = Vec::new();
    let is_avail = |t: &ParenTree, done: &[ParenTree]| match t {
        ParenTree::Leaf(_) => true,
        node => done.contains(node),
    };
    while issued.len() < nodes.len() {
        let next = nodes
            .iter()
            .filter(|(l, r)| {
                let whole = ParenTree::node(l.clone(), r.clone());
                !done.contains(&whole) && is_avail(l, &done) && is_avail(r, &done)
            })
            .min_by_key(|(l, _)| l.span().0)
            .expect("some association is always ready")
            .clone();
        done.push(ParenTree::node(next.0.clone(), next.1.clone()));
        issued.push(next);
    }
    issued
}

/// Construct the deterministic code variant for `paren` (Sec. IV).
///
/// This per-tree lowering is the **reference implementation** (like
/// `optimal_cost_reference` for the DP solver): the memoized enumeration
/// engine ([`crate::pool::PoolBuilder`]) must produce bit-identical
/// variants, which `crates/core/tests/pool_memo.rs` pins. Pool-sized
/// work should go through [`crate::enumerate::build_pool_with_mode`] or
/// a session, which lower each distinct sub-span once instead of once
/// per containing tree.
///
/// # Errors
///
/// Returns [`BuildError::TreeShapeMismatch`] if the tree does not span
/// exactly the chain's matrices; other errors indicate invalid shapes.
pub fn build_variant(shape: &Shape, paren: &ParenTree) -> Result<Variant, BuildError> {
    build_variant_with(shape, paren, BuildOptions::default())
}

/// [`build_variant`] with explicit optimization switches (see
/// [`BuildOptions`]); used by the ablation experiments.
///
/// # Errors
///
/// Same as [`build_variant`].
pub fn build_variant_with(
    shape: &Shape,
    paren: &ParenTree,
    options: BuildOptions,
) -> Result<Variant, BuildError> {
    let n = shape.len();
    if paren.span() != (0, n - 1) {
        return Err(BuildError::TreeShapeMismatch);
    }
    let classes = shape.size_classes();
    let leaves = leaf_descs(shape, &classes);

    let mut steps: Vec<Step> = Vec::with_capacity(n.saturating_sub(1));
    let mut cost = Poly::zero();
    // Map from issued subtree to its descriptor.
    let mut descs: Vec<(ParenTree, NodeDesc)> = Vec::new();
    let lookup = |t: &ParenTree, descs: &[(ParenTree, NodeDesc)], leaves: &[NodeDesc]| match t {
        ParenTree::Leaf(i) => leaves[*i],
        node => {
            descs
                .iter()
                .find(|(k, _)| k == node)
                .expect("child issued before parent")
                .1
        }
    };

    for (lt, rt) in association_order(paren) {
        let l = lookup(&lt, &descs, &leaves);
        let r = lookup(&rt, &descs, &leaves);
        let (step, mut result) = associate_with(l, r, &classes, options)?;
        result.source = ValRef::Temp(steps.len());
        cost += &cost_poly(
            step.kernel,
            step.side,
            step.cheap,
            step.triplet.0,
            step.triplet.1,
            step.triplet.2,
        );
        steps.push(step);
        descs.push((ParenTree::node(lt, rt), result));
    }

    let final_desc = if n == 1 {
        leaves[0]
    } else {
        descs.last().expect("n > 1 implies associations").1
    };
    let (finalizes, delivered) = finalizes_for(&final_desc)?;
    for fin in &finalizes {
        cost += &finalize_cost_poly(fin.kernel, fin.size_sym);
    }

    Ok(Variant {
        steps,
        finalizes,
        cost,
        paren: paren.clone(),
        result: ResultDesc {
            structure: delivered.structure,
            property: delivered.property,
            rows_sym: delivered.rows,
            cols_sym: delivered.cols,
        },
        num_leaves: n,
    })
}

/// The left-to-right variant `L` that the paper uses as an in-house point
/// of reference (equal to the fanning-out variant `E_0`).
///
/// # Errors
///
/// Propagates [`build_variant`] errors.
pub fn left_to_right_variant(shape: &Shape) -> Result<Variant, BuildError> {
    build_variant(shape, &ParenTree::left_to_right(0, shape.len() - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Instance, Operand};

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    fn g_inv() -> Operand {
        Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted()
    }

    fn l_ns() -> Operand {
        Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular))
    }

    fn spd() -> Operand {
        Operand::plain(Features::new(Structure::Symmetric, Property::Spd))
    }

    #[test]
    fn plain_mc_uses_gemm_and_classic_cost() {
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let tree = ParenTree::left_to_right(0, 2);
        let v = build_variant(&shape, &tree).unwrap();
        assert_eq!(v.steps().len(), 2);
        assert!(v.steps().iter().all(|s| s.kernel == Kernel::Gemm));
        // (M1 M2) M3 costs 2 q0 q1 q2 + 2 q0 q2 q3.
        let inst = Instance::new(vec![2, 3, 4, 5]);
        assert_eq!(v.flops(&inst), 2.0 * 24.0 + 2.0 * 40.0);
    }

    #[test]
    fn paper_worked_example_inverse_propagation() {
        // X2 := (L1 G2^{-1}) G3 with L1, G2 m x m and G3 m x n.
        // The builder must rewrite L1 G2^{-1} = (G2 L1^{-1})^{-1}:
        //   X1 := G2 L1^{-1} via TRSM (m^3),
        //   X2 := X1^{-1} G3 via GEGESV (2/3 m^3 + 2 m^2 n),
        // for a total of 5/3 m^3 + 2 m^2 n FLOPs.
        let shape = Shape::new(vec![l_ns(), g_inv(), g()]).unwrap();
        let tree = ParenTree::left_to_right(0, 2);
        let v = build_variant(&shape, &tree).unwrap();
        assert_eq!(v.steps().len(), 2);
        assert_eq!(v.steps()[0].kernel, Kernel::Trsm);
        assert_eq!(v.steps()[1].kernel, Kernel::Gegesv);
        // m = 10, n = 7: 5/3 * 1000 + 2 * 100 * 7.
        let inst = Instance::new(vec![10, 10, 10, 7]);
        let want = 5.0 / 3.0 * 1000.0 + 2.0 * 100.0 * 7.0;
        assert!((v.flops(&inst) - want).abs() < 1e-9, "{}", v.flops(&inst));
        assert!(v.finalizes().is_empty());
    }

    #[test]
    fn both_inverted_rewrites_to_product() {
        // G1^{-1} G2^{-1} = (G2 G1)^{-1}: GEMM then a forced explicit
        // inverse on the end result.
        let shape = Shape::new(vec![g_inv(), g_inv()]).unwrap();
        let tree = ParenTree::left_to_right(0, 1);
        let v = build_variant(&shape, &tree).unwrap();
        assert_eq!(v.steps().len(), 1);
        assert_eq!(v.steps()[0].kernel, Kernel::Gemm);
        // Operands swapped: the step's left operand is leaf 1.
        assert_eq!(v.steps()[0].left, ValRef::Leaf(1));
        assert_eq!(v.steps()[0].right, ValRef::Leaf(0));
        assert_eq!(v.finalizes().len(), 1);
        assert_eq!(v.finalizes()[0].kernel, FinalizeKernel::Getri);
        // Cost: 2 m^3 (GEMM) + 2 m^3 (GETRI).
        let inst = Instance::new(vec![5, 5, 5]);
        assert!((v.flops(&inst) - 4.0 * 125.0).abs() < 1e-9);
    }

    #[test]
    fn trmm_transposition_rewrite() {
        // L G^T: TRMM does not support a transposed general operand, so the
        // association becomes (G L^T)^T with a transpose finalizer.
        let shape = Shape::new(vec![l_ns(), g().transposed()]).unwrap();
        let tree = ParenTree::left_to_right(0, 1);
        let v = build_variant(&shape, &tree).unwrap();
        assert_eq!(v.steps().len(), 1);
        let s = v.steps()[0];
        assert_eq!(s.kernel, Kernel::Trmm);
        assert_eq!(s.side, Side::Right);
        assert_eq!(s.left, ValRef::Leaf(1));
        assert!(!s.left_trans, "general operand untransposed after rewrite");
        assert!(s.right_trans, "triangular operand transposed after rewrite");
        assert_eq!(v.finalizes().len(), 1);
        assert_eq!(v.finalizes()[0].kernel, FinalizeKernel::Transpose);
    }

    #[test]
    fn spd_solve_uses_po_kernels() {
        let shape = Shape::new(vec![spd().inverted(), g()]).unwrap();
        let v = build_variant(&shape, &ParenTree::left_to_right(0, 1)).unwrap();
        assert_eq!(v.steps()[0].kernel, Kernel::Pogesv);
        assert_eq!(v.steps()[0].side, Side::Left);
    }

    #[test]
    fn triangular_structure_inferred_through_chain() {
        // L1 L2 stays lower-triangular, and (L1 L2) L3 uses TRTRMM twice
        // with the cheap (same-triangularity) branch.
        let shape = Shape::new(vec![l_ns(), l_ns(), l_ns()]).unwrap();
        let v = build_variant(&shape, &ParenTree::left_to_right(0, 2)).unwrap();
        assert!(v.steps().iter().all(|s| s.kernel == Kernel::Trtrmm));
        assert!(v.steps().iter().all(|s| s.cheap));
        assert_eq!(v.result().structure, Structure::LowerTri);
        assert_eq!(v.result().property, Property::NonSingular);
    }

    #[test]
    fn single_matrix_chain_inverse() {
        let shape = Shape::new(vec![spd().inverted()]).unwrap();
        let v = build_variant(&shape, &ParenTree::Leaf(0)).unwrap();
        assert!(v.steps().is_empty());
        assert_eq!(v.finalizes().len(), 1);
        assert_eq!(v.finalizes()[0].kernel, FinalizeKernel::Potri);
        let inst = Instance::new(vec![4, 4]);
        assert_eq!(v.flops(&inst), 64.0);
    }

    #[test]
    fn association_order_is_leftmost_first() {
        // ((M1 M2) M3) (M4 M5): M1 M2 first, then (..) M3, then M4 M5, then root.
        let tree = ParenTree::node(
            ParenTree::left_to_right(0, 2),
            ParenTree::left_to_right(3, 4),
        );
        let order = association_order(&tree);
        let spans: Vec<(usize, usize)> = order
            .iter()
            .map(|(l, r)| (l.span().0, r.span().1))
            .collect();
        assert_eq!(spans, vec![(0, 1), (0, 2), (3, 4), (0, 4)]);
    }

    #[test]
    fn wrong_tree_rejected() {
        let shape = Shape::new(vec![g(), g()]).unwrap();
        let tree = ParenTree::left_to_right(0, 2);
        assert_eq!(
            build_variant(&shape, &tree),
            Err(BuildError::TreeShapeMismatch)
        );
    }

    #[test]
    fn disabling_inverse_propagation_costs_more() {
        // The Sec. IV worked example again: without the heuristic, the
        // first association must solve a general system (GETRSV) instead of
        // a triangular one (TRSM).
        let shape = Shape::new(vec![l_ns(), g_inv(), g()]).unwrap();
        let tree = ParenTree::left_to_right(0, 2);
        let off = BuildOptions {
            propagate_single_inversion: false,
            infer_structures: true,
        };
        let naive = build_variant_with(&shape, &tree, off).unwrap();
        assert_eq!(naive.steps()[0].kernel, Kernel::Getrsv);
        let smart = build_variant(&shape, &tree).unwrap();
        let inst = Instance::new(vec![10, 10, 10, 7]);
        assert!(naive.flops(&inst) > smart.flops(&inst));
        // 8/3 m^3 + 2 m^2 n for the naive form.
        let want = 8.0 / 3.0 * 1000.0 + 2.0 * 100.0 * 7.0;
        assert!((naive.flops(&inst) - want).abs() < 1e-9);
    }

    #[test]
    fn disabling_structure_inference_loses_specialized_kernels() {
        let shape = Shape::new(vec![l_ns(), l_ns(), l_ns()]).unwrap();
        let off = BuildOptions {
            propagate_single_inversion: true,
            infer_structures: false,
        };
        let v = build_variant_with(&shape, &ParenTree::left_to_right(0, 2), off).unwrap();
        // First association still sees two leaves (TRTRMM), but the second
        // sees a "general" intermediate and degrades to TRMM.
        assert_eq!(v.steps()[0].kernel, Kernel::Trtrmm);
        assert_eq!(v.steps()[1].kernel, Kernel::Trmm);
        let full = build_variant(&shape, &ParenTree::left_to_right(0, 2)).unwrap();
        let inst = Instance::new(vec![9, 9, 9, 9]);
        assert!(v.flops(&inst) > full.flops(&inst));
    }

    #[test]
    fn kalman_like_chain_builds() {
        // G1 G2 G3^T P^{-1}.
        let shape = Shape::new(vec![g(), g(), g().transposed(), spd().inverted()]).unwrap();
        for tree in ParenTree::enumerate(0, 3) {
            let v = build_variant(&shape, &tree).unwrap();
            assert_eq!(v.steps().len(), 3);
            assert!(!v.cost_poly().is_zero());
        }
    }
}
