//! The vectorized selection engine: lane primitives behind the
//! runtime-dispatch ladder (AVX-512 > AVX2 > portable), plus the
//! **canonical blocked reduction order** that makes every rung
//! bit-identical.
//!
//! # Why a canonical order
//!
//! Floating-point addition does not reassociate, so a naive "sum the
//! penalties with SIMD" would produce different bits than the scalar
//! loop, and selection results would depend on the host CPU. Instead,
//! every reduction in the selection hot path — the Algorithm-1 penalty
//! sums ([`penalty_sum`]), the max-penalty fold ([`penalty_max`]), and
//! the first-strict-minimum scans ([`argmin_first`]) — follows one fixed
//! order on **all** rungs, scalar included:
//!
//! 1. **Blocked accumulation.** Eight partial accumulators `acc[0..8]`
//!    (one per f64 lane of a 512-bit vector); element `i` folds into
//!    `acc[i % 8]`, blocks of eight processed in index order. The
//!    scalar rung runs the same eight accumulators in a software loop;
//!    the AVX2 rung runs them as two 4-lane registers; the AVX-512 rung
//!    as one 8-lane register. The per-lane operation sequence is
//!    identical in all three, so the partial sums match bit for bit.
//! 2. **Tail.** The `len % 8` remainder folds element `j` into `acc[j]`
//!    scalar-wise on every rung.
//! 3. **Deterministic tree reduce.** The eight accumulators combine as
//!    `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))` (or the same tree with
//!    `max`).
//!
//! This order **supersedes** the straight left-to-right fold the scalar
//! selection code used before the engine existed (and the
//! `powi`-per-monomial order of [`gmc_ir::Poly::eval`] for cost-matrix
//! cells — see [`CompiledPoly`]); values may differ from the old fold in
//! the final ulp, and the blocked order is now the pinned reference.
//! Selection stays deterministic across hosts because every rung
//! reproduces it exactly.
//!
//! Element-wise kernels ([`min_in_place`], the `min`/`penalty` steps
//! inside the reductions, and [`CompiledPoly::eval_rows`], which
//! vectorizes *across instances* so each cell keeps a fixed scalar
//! operation sequence) need no such care: they reassociate nothing.
//!
//! # Dispatch ladder
//!
//! [`active_level`] picks the best rung the executing CPU supports,
//! capped by the `GMC_SIMD` environment variable (`portable`/`off`,
//! `avx2`, or `avx512`; read once) and by [`force_level`] (benchmarks).
//! Every public function also clamps an explicitly requested
//! [`SimdLevel`] to what the CPU supports, so the `unsafe`
//! `#[target_feature]` kernels are only ever entered after a positive
//! runtime feature check — the same contract `gmc_linalg::gemm` uses.
//!
//! # Numeric preconditions
//!
//! The engine assumes costs are non-NaN (cost polynomials over finite
//! sizes and measured rates always are). `min`/`max` lane instructions
//! and the `optimal > 0` penalty mask resolve NaN inputs differently
//! from their scalar `f64` counterparts, so with NaN costs the
//! bit-identity guarantee (and nothing else) would be lost.

use gmc_ir::{Instance, Poly};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Number of f64 lanes in the widest rung (one 512-bit register); also
/// the accumulator count of the canonical blocked reduction.
pub const LANES: usize = 8;

/// A rung of the selection engine's runtime-dispatch ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Pure-Rust scalar loops (the reference implementation of the
    /// canonical order; always available).
    Portable,
    /// 256-bit lanes (`avx2`): the blocked reduction runs as two 4-lane
    /// registers.
    Avx2,
    /// 512-bit lanes (`avx512f`): one 8-lane register per reduction.
    Avx512,
}

impl SimdLevel {
    /// Stable lower-case name (`portable` / `avx2` / `avx512`), as
    /// accepted by the `GMC_SIMD` environment variable.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// The best rung the executing CPU supports (cached; ignores overrides).
#[must_use]
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if std::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Portable
    })
}

/// Process-global override set by [`force_level`]: 0 = none, else
/// `1 + level as u8`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Force the engine onto one rung (`None` restores runtime dispatch).
///
/// For benchmarks and diagnostics — the override is process-global, so
/// concurrent callers that need a *specific* rung should use the
/// `_level` entry points instead. Requests above what the CPU supports
/// are clamped, never trusted.
pub fn force_level(level: Option<SimdLevel>) {
    FORCED.store(level.map_or(0, |l| 1 + l as u8), Ordering::Relaxed);
}

/// Cap requested by the `GMC_SIMD` environment variable, read once.
/// Unrecognized values are reported on stderr and ignored — a typo must
/// not silently disable (or pretend to apply) the pin.
fn env_cap() -> SimdLevel {
    static CAP: OnceLock<SimdLevel> = OnceLock::new();
    *CAP.get_or_init(|| match std::env::var("GMC_SIMD").as_deref() {
        Ok("portable" | "off" | "scalar" | "0") => SimdLevel::Portable,
        Ok("avx2") => SimdLevel::Avx2,
        Ok("avx512") | Err(_) => SimdLevel::Avx512,
        Ok(other) => {
            eprintln!(
                "gmc-core: ignoring unrecognized GMC_SIMD=`{other}` \
                 (expected portable|avx2|avx512)"
            );
            SimdLevel::Avx512
        }
    })
}

/// The rung selection runs on: the detected level, capped by `GMC_SIMD`
/// and by [`force_level`] (a forced rung never exceeds either the CPU's
/// capability or the environment pin).
#[must_use]
pub fn active_level() -> SimdLevel {
    let cap = detected_level().min(env_cap());
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Portable,
        2 => SimdLevel::Avx2.min(cap),
        3 => SimdLevel::Avx512.min(cap),
        _ => cap,
    }
}

/// Clamp an explicitly requested level to what the CPU can actually
/// run: the safety gate in front of every `#[target_feature]` kernel.
fn clamp(level: SimdLevel) -> SimdLevel {
    level.min(detected_level())
}

/// The penalty of one instance (Eq. 2), in the exact operation order
/// every rung uses: `best / optimal - 1`, gated on `optimal > 0`.
#[inline]
fn penalty_elem(best: f64, optimal: f64) -> f64 {
    if optimal > 0.0 {
        best / optimal - 1.0
    } else {
        0.0
    }
}

/// The canonical deterministic tree combine of the eight lane
/// accumulators.
#[inline]
fn tree_reduce<const MAX: bool>(acc: [f64; LANES]) -> f64 {
    let c = |a: f64, b: f64| if MAX { a.max(b) } else { a + b };
    c(
        c(c(acc[0], acc[1]), c(acc[2], acc[3])),
        c(c(acc[4], acc[5]), c(acc[6], acc[7])),
    )
}

/// Scalar rung of the blocked penalty fold: full blocks only.
fn penalty_lanes_scalar<const MAX: bool, const ROW: bool>(
    best: &[f64],
    row: &[f64],
    opt: &[f64],
    blocks: usize,
    init: f64,
) -> [f64; LANES] {
    let mut acc = [init; LANES];
    for k in 0..blocks {
        for (l, a) in acc.iter_mut().enumerate() {
            let i = k * LANES + l;
            let m = if ROW { best[i].min(row[i]) } else { best[i] };
            let p = penalty_elem(m, opt[i]);
            *a = if MAX { a.max(p) } else { *a + p };
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `unsafe` lane kernels. Every function here carries its own
    //! `#[target_feature]` so portable builds still contain it, and is
    //! only reachable through the clamped dispatchers in the parent
    //! module — the runtime feature check is the safety contract.
    use super::LANES;
    use std::arch::x86_64::*;

    /// AVX-512 rung of the blocked penalty fold (full blocks only).
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f` on the executing CPU.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn penalty_lanes_avx512<const MAX: bool, const ROW: bool>(
        best: &[f64],
        row: &[f64],
        opt: &[f64],
        blocks: usize,
        init: f64,
    ) -> [f64; LANES] {
        unsafe {
            let mut acc = _mm512_set1_pd(init);
            let zero = _mm512_setzero_pd();
            let one = _mm512_set1_pd(1.0);
            for k in 0..blocks {
                let i = k * LANES;
                let b = _mm512_loadu_pd(best.as_ptr().add(i));
                let m = if ROW {
                    _mm512_min_pd(b, _mm512_loadu_pd(row.as_ptr().add(i)))
                } else {
                    b
                };
                let o = _mm512_loadu_pd(opt.as_ptr().add(i));
                let gt = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(o, zero);
                let p = _mm512_maskz_mov_pd(gt, _mm512_sub_pd(_mm512_div_pd(m, o), one));
                acc = if MAX {
                    _mm512_max_pd(acc, p)
                } else {
                    _mm512_add_pd(acc, p)
                };
            }
            let mut out = [0.0f64; LANES];
            _mm512_storeu_pd(out.as_mut_ptr(), acc);
            out
        }
    }

    /// AVX2 rung: the same eight accumulators as two 4-lane registers.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` on the executing CPU.
    #[target_feature(enable = "avx2")]
    pub unsafe fn penalty_lanes_avx2<const MAX: bool, const ROW: bool>(
        best: &[f64],
        row: &[f64],
        opt: &[f64],
        blocks: usize,
        init: f64,
    ) -> [f64; LANES] {
        unsafe {
            let mut acc_lo = _mm256_set1_pd(init);
            let mut acc_hi = _mm256_set1_pd(init);
            let zero = _mm256_setzero_pd();
            let one = _mm256_set1_pd(1.0);
            for k in 0..blocks {
                for (half, acc) in [&mut acc_lo, &mut acc_hi].into_iter().enumerate() {
                    let i = k * LANES + half * 4;
                    let b = _mm256_loadu_pd(best.as_ptr().add(i));
                    let m = if ROW {
                        _mm256_min_pd(b, _mm256_loadu_pd(row.as_ptr().add(i)))
                    } else {
                        b
                    };
                    let o = _mm256_loadu_pd(opt.as_ptr().add(i));
                    // All-ones where o > 0: AND-masking zeroes the
                    // penalty exactly like the scalar `optimal > 0` gate.
                    let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(o, zero);
                    let p = _mm256_and_pd(gt, _mm256_sub_pd(_mm256_div_pd(m, o), one));
                    *acc = if MAX {
                        _mm256_max_pd(*acc, p)
                    } else {
                        _mm256_add_pd(*acc, p)
                    };
                }
            }
            let mut out = [0.0f64; LANES];
            _mm256_storeu_pd(out.as_mut_ptr(), acc_lo);
            _mm256_storeu_pd(out.as_mut_ptr().add(4), acc_hi);
            out
        }
    }

    /// AVX-512 element-wise `dst = min(dst, src)` over full 8-blocks.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f` on the executing CPU.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn min_blocks_avx512(dst: &mut [f64], src: &[f64], blocks: usize) {
        unsafe {
            for k in 0..blocks {
                let i = k * LANES;
                let d = _mm512_loadu_pd(dst.as_ptr().add(i));
                let s = _mm512_loadu_pd(src.as_ptr().add(i));
                _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_min_pd(d, s));
            }
        }
    }

    /// AVX2 element-wise `dst = min(dst, src)` over full 4-blocks.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` on the executing CPU.
    #[target_feature(enable = "avx2")]
    pub unsafe fn min_blocks_avx2(dst: &mut [f64], src: &[f64], blocks: usize) {
        unsafe {
            for k in 0..blocks {
                let i = k * 4;
                let d = _mm256_loadu_pd(dst.as_ptr().add(i));
                let s = _mm256_loadu_pd(src.as_ptr().add(i));
                _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_min_pd(d, s));
            }
        }
    }

    /// AVX-512 block pre-filter for the first-strict-minimum scan:
    /// `true` if any lane of `vals[i..i + 8]` is `< cur`.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f` on the executing CPU;
    /// `i + 8 <= vals.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn any_lt_avx512(vals: &[f64], i: usize, cur: f64) -> bool {
        unsafe {
            let v = _mm512_loadu_pd(vals.as_ptr().add(i));
            _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, _mm512_set1_pd(cur)) != 0
        }
    }

    /// AVX2 block pre-filter: `true` if any lane of `vals[i..i + 4]` is
    /// `< cur`.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` on the executing CPU;
    /// `i + 4 <= vals.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn any_lt_avx2(vals: &[f64], i: usize, cur: f64) -> bool {
        unsafe {
            let v = _mm256_loadu_pd(vals.as_ptr().add(i));
            let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(v, _mm256_set1_pd(cur));
            _mm256_movemask_pd(lt) != 0
        }
    }

    /// AVX-512 compiled-polynomial row evaluation over full 8-blocks of
    /// instances (see [`super::CompiledPoly::eval_rows`]).
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f` on the executing CPU, and
    /// that every `vars` entry `v` satisfies
    /// `(v + 1) * ni <= lanes.len()` with `out.len() >= blocks * 8` and
    /// `blocks * 8 <= ni`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn poly_rows_avx512(
        coeffs: &[f64],
        offsets: &[u32],
        vars: &[u32],
        lanes: &[f64],
        ni: usize,
        out: &mut [f64],
        blocks: usize,
    ) {
        unsafe {
            let base = lanes.as_ptr();
            for k in 0..blocks {
                let i = k * LANES;
                let mut acc = _mm512_setzero_pd();
                for (t, &c) in coeffs.iter().enumerate() {
                    let mut w = _mm512_set1_pd(c);
                    for &v in &vars[offsets[t] as usize..offsets[t + 1] as usize] {
                        w = _mm512_mul_pd(w, _mm512_loadu_pd(base.add(v as usize * ni + i)));
                    }
                    acc = _mm512_add_pd(acc, w);
                }
                _mm512_storeu_pd(out.as_mut_ptr().add(i), acc);
            }
        }
    }

    /// AVX2 compiled-polynomial row evaluation over full 4-blocks.
    ///
    /// # Safety
    ///
    /// As [`poly_rows_avx512`] with 4-element blocks.
    #[target_feature(enable = "avx2")]
    pub unsafe fn poly_rows_avx2(
        coeffs: &[f64],
        offsets: &[u32],
        vars: &[u32],
        lanes: &[f64],
        ni: usize,
        out: &mut [f64],
        blocks: usize,
    ) {
        unsafe {
            let base = lanes.as_ptr();
            for k in 0..blocks {
                let i = k * 4;
                let mut acc = _mm256_setzero_pd();
                for (t, &c) in coeffs.iter().enumerate() {
                    let mut w = _mm256_set1_pd(c);
                    for &v in &vars[offsets[t] as usize..offsets[t + 1] as usize] {
                        w = _mm256_mul_pd(w, _mm256_loadu_pd(base.add(v as usize * ni + i)));
                    }
                    acc = _mm256_add_pd(acc, w);
                }
                _mm256_storeu_pd(out.as_mut_ptr().add(i), acc);
            }
        }
    }
}

/// Shared driver of the blocked penalty fold: lane kernel for the full
/// blocks, scalar tail into `acc[j]`, canonical tree reduce.
fn penalty_reduce<const MAX: bool>(
    level: SimdLevel,
    best: &[f64],
    row: Option<&[f64]>,
    opt: &[f64],
) -> f64 {
    let n = best.len();
    assert_eq!(opt.len(), n, "one optimum per instance");
    if let Some(r) = row {
        assert_eq!(r.len(), n, "one candidate cost per instance");
    }
    let init = if MAX { f64::NEG_INFINITY } else { 0.0 };
    let blocks = n / LANES;
    let r = row.unwrap_or(&[]);
    let mut acc = match (clamp(level), row.is_some()) {
        #[cfg(target_arch = "x86_64")]
        (SimdLevel::Avx512, true) => unsafe {
            x86::penalty_lanes_avx512::<MAX, true>(best, r, opt, blocks, init)
        },
        #[cfg(target_arch = "x86_64")]
        (SimdLevel::Avx512, false) => unsafe {
            x86::penalty_lanes_avx512::<MAX, false>(best, r, opt, blocks, init)
        },
        #[cfg(target_arch = "x86_64")]
        (SimdLevel::Avx2, true) => unsafe {
            x86::penalty_lanes_avx2::<MAX, true>(best, r, opt, blocks, init)
        },
        #[cfg(target_arch = "x86_64")]
        (SimdLevel::Avx2, false) => unsafe {
            x86::penalty_lanes_avx2::<MAX, false>(best, r, opt, blocks, init)
        },
        (_, true) => penalty_lanes_scalar::<MAX, true>(best, r, opt, blocks, init),
        (_, false) => penalty_lanes_scalar::<MAX, false>(best, r, opt, blocks, init),
    };
    for (l, a) in acc.iter_mut().enumerate().take(n - blocks * LANES) {
        let i = blocks * LANES + l;
        let m = match row {
            Some(r) => best[i].min(r[i]),
            None => best[i],
        };
        let p = penalty_elem(m, opt[i]);
        *a = if MAX { a.max(p) } else { *a + p };
    }
    tree_reduce::<MAX>(acc)
}

/// Canonical blocked **sum** of per-instance penalties.
///
/// With `row = Some(c)` the best-in-set cost of instance `i` is
/// `min(best[i], c[i])` — the incremental candidate score of
/// Algorithm 1; with `None` it is `best[i]` — the objective of the
/// current set. Returns `0.0` for empty inputs (callers decide what an
/// empty sample means).
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[must_use]
pub fn penalty_sum(level: SimdLevel, best: &[f64], row: Option<&[f64]>, optimal: &[f64]) -> f64 {
    penalty_reduce::<false>(level, best, row, optimal)
}

/// Canonical blocked **max** of per-instance penalties (same contract
/// as [`penalty_sum`]; empty input yields `-inf`, matching a fold over
/// nothing seeded with the identity).
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[must_use]
pub fn penalty_max(level: SimdLevel, best: &[f64], row: Option<&[f64]>, optimal: &[f64]) -> f64 {
    penalty_reduce::<true>(level, best, row, optimal)
}

/// Element-wise `dst[i] = min(dst[i], src[i])`: the column-minima fold
/// of the cost matrix and the best-in-set update of Algorithm 1. `min`
/// is exact, so every rung (and any fold order) is bit-identical.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn min_in_place(level: SimdLevel, dst: &mut [f64], src: &[f64]) {
    let n = dst.len();
    assert_eq!(src.len(), n, "min_in_place needs equal lengths");
    let done = match clamp(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => {
            let blocks = n / LANES;
            unsafe { x86::min_blocks_avx512(dst, src, blocks) };
            blocks * LANES
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            let blocks = n / 4;
            unsafe { x86::min_blocks_avx2(dst, src, blocks) };
            blocks * 4
        }
        _ => 0,
    };
    for (d, &s) in dst[done..].iter_mut().zip(&src[done..]) {
        *d = d.min(s);
    }
}

/// The first strict minimum of `values` (index and value): scan in
/// index order, take `values[i]` only when strictly below the current
/// best — the tie-break rule shared by the candidate scan and the DP
/// final-state fold. Vector rungs pre-filter whole blocks with a
/// `< current` lane compare and fall back to the scalar scan inside a
/// hit block, so the result is identical on every rung (NaNs compare
/// false and are skipped, exactly as in the scalar loop). `None` when
/// `values` is empty or all-`INFINITY`/NaN.
#[must_use]
pub fn argmin_first(level: SimdLevel, values: &[f64]) -> Option<(usize, f64)> {
    let mut cur = f64::INFINITY;
    let mut idx: Option<usize> = None;
    fn take(i: usize, v: f64, cur: &mut f64, idx: &mut Option<usize>) {
        if v < *cur {
            *cur = v;
            *idx = Some(i);
        }
    }
    /// Block pre-filter: `true` if any of `width` lanes at `i` is `< cur`.
    type AnyLtFn = fn(&[f64], usize, f64) -> bool;
    let (width, vector): (usize, Option<AnyLtFn>) = match clamp(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => (
            LANES,
            Some(|vals, i, cur| unsafe { x86::any_lt_avx512(vals, i, cur) }),
        ),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => (
            4,
            Some(|vals, i, cur| unsafe { x86::any_lt_avx2(vals, i, cur) }),
        ),
        _ => (1, None),
    };
    match vector {
        Some(any_lt) => {
            let blocks = values.len() / width;
            for k in 0..blocks {
                let i = k * width;
                if any_lt(values, i, cur) {
                    for (l, &v) in values[i..i + width].iter().enumerate() {
                        take(i + l, v, &mut cur, &mut idx);
                    }
                }
            }
            for (i, &v) in values.iter().enumerate().skip(blocks * width) {
                take(i, v, &mut cur, &mut idx);
            }
        }
        None => {
            for (i, &v) in values.iter().enumerate() {
                take(i, v, &mut cur, &mut idx);
            }
        }
    }
    idx.map(|i| (i, cur))
}

/// Instance sizes transposed into symbol-major f64 lanes: `symbol(s)`
/// is the contiguous vector of `q_s` over all instances, which is what
/// [`CompiledPoly::eval_rows`] streams 8 (or 4) instances at a time.
/// Refilled in place, so a session-owned matrix reuses one allocation.
#[derive(Debug, Clone, Default)]
pub struct SizeLanes {
    data: Vec<f64>,
    ni: usize,
}

impl SizeLanes {
    /// Transpose `instances` into the lane buffer (reusing capacity).
    ///
    /// # Panics
    ///
    /// Panics if the instances disagree on the symbol count.
    pub fn fill(&mut self, instances: &[Instance]) {
        self.ni = instances.len();
        let nsym = instances.first().map_or(0, Instance::len);
        self.data.clear();
        self.data.resize(nsym * self.ni, 0.0);
        for (i, q) in instances.iter().enumerate() {
            assert_eq!(q.len(), nsym, "instances must share a symbol count");
            for (s, &v) in q.sizes().iter().enumerate() {
                self.data[s * self.ni + i] = v as f64;
            }
        }
    }

    /// Number of instances (the length of every symbol lane).
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.ni
    }

    /// Number of size symbols.
    #[must_use]
    pub fn num_symbols(&self) -> usize {
        self.data.len().checked_div(self.ni).unwrap_or(0)
    }

    /// The values of symbol `s` over all instances.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds symbol.
    #[must_use]
    pub fn symbol(&self, s: usize) -> &[f64] {
        &self.data[s * self.ni..(s + 1) * self.ni]
    }
}

/// A cost polynomial flattened for streaming evaluation: one f64
/// coefficient per term and each monomial's variables repeated by
/// exponent, so a term evaluates as `((c * q_a) * q_b) * ...` — a fixed
/// multiply chain with **no** `powi` and no B-tree walk.
///
/// This sequential-multiply order is the engine's canonical per-cell
/// order for cost-matrix fills. It supersedes [`Poly::eval`] (which
/// computes `c * (q_a^e * ...)` through `powi`) as the reference for
/// selection: the two can differ in the final ulp, but every engine
/// rung reproduces the compiled order exactly — vectorization is across
/// *instances*, so each cell's operation sequence never changes with
/// the lane width.
#[derive(Debug, Clone)]
pub struct CompiledPoly {
    coeffs: Vec<f64>,
    /// `terms + 1` offsets into `vars` (`offsets[0] == 0`).
    offsets: Vec<u32>,
    /// Variable indices, each repeated by its exponent.
    vars: Vec<u32>,
    /// Highest variable index referenced (for the eval bounds check).
    max_var: usize,
}

impl Default for CompiledPoly {
    fn default() -> Self {
        CompiledPoly::new()
    }
}

impl CompiledPoly {
    /// An empty program (evaluates to 0 everywhere), ready to
    /// [`CompiledPoly::compile`] into.
    #[must_use]
    pub fn new() -> Self {
        CompiledPoly {
            coeffs: Vec::new(),
            offsets: vec![0],
            vars: Vec::new(),
            max_var: 0,
        }
    }

    /// Flatten `poly` (reusing this program's buffers), in the
    /// polynomial's canonical term order.
    pub fn compile(&mut self, poly: &Poly) {
        self.coeffs.clear();
        self.vars.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.max_var = 0;
        for (mono, coeff) in poly.iter() {
            self.coeffs.push(coeff.to_f64());
            for &(v, e) in mono.factors() {
                self.max_var = self.max_var.max(v);
                for _ in 0..e {
                    self.vars
                        .push(u32::try_from(v).expect("symbol index fits u32"));
                }
            }
            self.offsets
                .push(u32::try_from(self.vars.len()).expect("factor count fits u32"));
        }
    }

    /// One cell in the canonical order (shared by the scalar rung and
    /// every vector tail).
    fn eval_cell(&self, lanes: &SizeLanes, i: usize) -> f64 {
        let mut acc = 0.0;
        for (t, &c) in self.coeffs.iter().enumerate() {
            let mut w = c;
            for &v in &self.vars[self.offsets[t] as usize..self.offsets[t + 1] as usize] {
                w *= lanes.symbol(v as usize)[i];
            }
            acc += w;
        }
        acc
    }

    /// Evaluate this polynomial on every instance of `lanes`, writing
    /// one value per instance into `out`. Bit-identical on every rung.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != lanes.num_instances()` or the polynomial
    /// references a symbol the lanes do not carry.
    pub fn eval_rows(&self, level: SimdLevel, lanes: &SizeLanes, out: &mut [f64]) {
        let ni = lanes.num_instances();
        assert_eq!(out.len(), ni, "one output cell per instance");
        assert!(
            self.vars.is_empty() || self.max_var < lanes.num_symbols(),
            "polynomial references symbol {} but lanes carry {}",
            self.max_var,
            lanes.num_symbols()
        );
        let done = match clamp(level) {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => {
                let blocks = ni / LANES;
                unsafe {
                    x86::poly_rows_avx512(
                        &self.coeffs,
                        &self.offsets,
                        &self.vars,
                        &lanes.data,
                        ni,
                        out,
                        blocks,
                    );
                }
                blocks * LANES
            }
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => {
                let blocks = ni / 4;
                unsafe {
                    x86::poly_rows_avx2(
                        &self.coeffs,
                        &self.offsets,
                        &self.vars,
                        &lanes.data,
                        ni,
                        out,
                        blocks,
                    );
                }
                blocks * 4
            }
            _ => 0,
        };
        for (i, o) in out.iter_mut().enumerate().skip(done) {
            *o = self.eval_cell(lanes, i);
        }
    }
}

/// Every ladder rung the executing CPU can run, bottom to top — the
/// iteration set for cross-rung bit-identity tests.
#[must_use]
pub fn available_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Portable];
    if detected_level() >= SimdLevel::Avx2 {
        levels.push(SimdLevel::Avx2);
    }
    if detected_level() >= SimdLevel::Avx512 {
        levels.push(SimdLevel::Avx512);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::Ratio;

    /// The documented canonical order, written out naively.
    fn reference_sum(best: &[f64], row: Option<&[f64]>, opt: &[f64]) -> f64 {
        let mut acc = [0.0f64; LANES];
        for i in 0..best.len() {
            let m = match row {
                Some(r) => best[i].min(r[i]),
                None => best[i],
            };
            acc[i % LANES] += penalty_elem(m, opt[i]);
        }
        tree_reduce::<false>(acc)
    }

    fn wobble(i: usize) -> f64 {
        // Deterministic awkward values: many ulp-sensitive digits.
        1.0 + ((i * 2654435761) % 1000003) as f64 / 9973.0
    }

    #[test]
    fn blocked_sum_matches_documented_order_on_every_rung() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 400] {
            let best: Vec<f64> = (0..n).map(|i| wobble(i) * 3.0).collect();
            let row: Vec<f64> = (0..n).map(|i| wobble(i + 17) * 2.9).collect();
            let opt: Vec<f64> = (0..n)
                .map(|i| if i % 13 == 0 { 0.0 } else { wobble(i + 5) })
                .collect();
            let want = reference_sum(&best, Some(&row), &opt);
            let want_plain = reference_sum(&best, None, &opt);
            for level in available_levels() {
                let got = penalty_sum(level, &best, Some(&row), &opt);
                assert_eq!(got.to_bits(), want.to_bits(), "{level:?} n={n}");
                let got = penalty_sum(level, &best, None, &opt);
                assert_eq!(got.to_bits(), want_plain.to_bits(), "{level:?} n={n}");
            }
        }
    }

    #[test]
    fn blocked_max_is_the_true_max_and_rung_identical() {
        for n in [1usize, 9, 63, 400] {
            let best: Vec<f64> = (0..n).map(|i| wobble(i) * 4.0).collect();
            let opt: Vec<f64> = (0..n).map(|i| wobble(i + 3)).collect();
            let naive = best
                .iter()
                .zip(&opt)
                .map(|(&b, &o)| penalty_elem(b, o))
                .fold(f64::NEG_INFINITY, f64::max);
            for level in available_levels() {
                let got = penalty_max(level, &best, None, &opt);
                // max is associative/commutative on non-NaN input, so
                // the blocked order equals the straight fold exactly.
                assert_eq!(got.to_bits(), naive.to_bits(), "{level:?} n={n}");
            }
        }
        assert_eq!(
            penalty_max(SimdLevel::Portable, &[], None, &[]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn min_in_place_matches_scalar_on_every_rung() {
        for n in [0usize, 1, 7, 8, 9, 63, 400] {
            let src: Vec<f64> = (0..n).map(|i| wobble(i + 7)).collect();
            let mut want: Vec<f64> = (0..n).map(wobble).collect();
            for (d, &s) in want.iter_mut().zip(&src) {
                *d = d.min(s);
            }
            for level in available_levels() {
                let mut dst: Vec<f64> = (0..n).map(wobble).collect();
                min_in_place(level, &mut dst, &src);
                for (a, b) in dst.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{level:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn argmin_first_takes_the_first_strict_minimum() {
        let vals = [5.0, 3.0, 3.0, 7.0, 3.0, 1.0, 1.0, 9.0, 1.0, 2.0];
        for level in available_levels() {
            assert_eq!(argmin_first(level, &vals), Some((5, 1.0)), "{level:?}");
            assert_eq!(argmin_first(level, &[]), None);
            assert_eq!(argmin_first(level, &[f64::INFINITY; 9]), None);
            // Long input with a late winner exercises the block filter.
            let mut long: Vec<f64> = (0..100).map(|i| wobble(i) + 2.0).collect();
            long[97] = 0.5;
            let want = {
                let mut cur = f64::INFINITY;
                let mut idx = None;
                for (i, &v) in long.iter().enumerate() {
                    if v < cur {
                        cur = v;
                        idx = Some(i);
                    }
                }
                idx.map(|i| (i, cur))
            };
            assert_eq!(argmin_first(level, &long), want, "{level:?}");
        }
    }

    #[test]
    fn compiled_poly_streams_the_fixed_multiply_chain() {
        // 2*q0*q1*q2 + 8/3*q1^3 + 5 on a few instances.
        let mut poly = Poly::term(Ratio::from(2), &[(0, 1), (1, 1), (2, 1)]);
        poly += &Poly::term(Ratio::new(8, 3), &[(1, 3)]);
        poly += &Poly::constant(Ratio::from(5));
        let instances: Vec<Instance> = (1..=11)
            .map(|s| Instance::new(vec![s, 2 * s + 1, 3 * s]))
            .collect();
        let mut lanes = SizeLanes::default();
        lanes.fill(&instances);
        let mut cp = CompiledPoly::new();
        cp.compile(&poly);
        let mut reference = vec![0.0; instances.len()];
        cp.eval_rows(SimdLevel::Portable, &lanes, &mut reference);
        // The compiled order is within an ulp-scale distance of
        // Poly::eval and exactly equal where no rounding happens.
        for (q, &got) in instances.iter().zip(&reference) {
            let direct = poly.eval(q.sizes());
            assert!((got - direct).abs() <= 1e-12 * direct.abs().max(1.0));
        }
        for level in available_levels() {
            let mut out = vec![0.0; instances.len()];
            cp.eval_rows(level, &lanes, &mut out);
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "{level:?}");
            }
        }
        // Refilled lanes and recompiled programs reuse buffers.
        lanes.fill(&instances[..5]);
        assert_eq!(lanes.num_instances(), 5);
        cp.compile(&poly);
        let mut out = vec![0.0; 5];
        cp.eval_rows(SimdLevel::Portable, &lanes, &mut out);
        for (o, r) in out.iter().zip(&reference) {
            assert_eq!(o.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn forced_level_is_clamped_and_restored() {
        force_level(Some(SimdLevel::Portable));
        assert_eq!(active_level(), SimdLevel::Portable);
        force_level(Some(SimdLevel::Avx512));
        assert!(active_level() <= detected_level());
        force_level(None);
        assert!(active_level() <= detected_level());
    }
}
