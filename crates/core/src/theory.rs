//! Theory-guided variant selection (Sec. V of the paper).
//!
//! The fanning-out variants `E = {E_0, ..., E_n}` have finite total penalty
//! (Theorem 1), and one representative per size-symbol equivalence class
//! suffices (Theorem 2), giving a base set `E_s` of at most `n + 1`
//! variants whose best member is within a constant factor of optimal on
//! *every* instance.

use crate::builder::{build_variant, BuildError};
use crate::paren::ParenTree;
use crate::simd::{self, CompiledPoly, SizeLanes};
use crate::variant::Variant;
use gmc_ir::{Instance, Shape};
use std::error::Error;
use std::fmt;

/// Errors from base-set selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryError {
    /// Variant construction failed.
    Build(BuildError),
    /// The training set is empty.
    EmptyTraining,
}

impl fmt::Display for TheoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoryError::Build(e) => write!(f, "variant construction failed: {e}"),
            TheoryError::EmptyTraining => write!(f, "training instance set is empty"),
        }
    }
}

impl Error for TheoryError {}

impl From<BuildError> for TheoryError {
    fn from(e: BuildError) -> Self {
        TheoryError::Build(e)
    }
}

/// The penalty of a set on one instance (Eq. 2): the relative cost increase
/// of the best in-set variant over the overall optimum.
///
/// `best_in_set` and `optimal` are costs on the same instance; by
/// convention the penalty of an empty set (`best_in_set = +inf`) is `+inf`.
#[must_use]
pub fn penalty(best_in_set: f64, optimal: f64) -> f64 {
    if optimal <= 0.0 {
        return 0.0;
    }
    best_in_set / optimal - 1.0
}

/// Build all *distinct* fanning-out variants `E_h` for `h in 0..=n`,
/// returning `(h, variant)` pairs (duplicate parenthesizations keep the
/// smallest `h`).
///
/// # Errors
///
/// Propagates [`BuildError`] (unreachable for valid shapes).
pub fn fanning_out_set(shape: &Shape) -> Result<Vec<(usize, Variant)>, BuildError> {
    let n = shape.len();
    let mut seen: Vec<ParenTree> = Vec::new();
    let mut out = Vec::new();
    for h in 0..=n {
        let tree = ParenTree::fanning_out(n, h);
        if seen.contains(&tree) {
            continue;
        }
        seen.push(tree.clone());
        out.push((h, build_variant(shape, &tree)?));
    }
    Ok(out)
}

/// The Theorem-2 base set `E_s`.
#[derive(Debug, Clone)]
pub struct BaseSet {
    /// Chosen representative `h` per equivalence class (ascending).
    pub representatives: Vec<usize>,
    /// The corresponding fanning-out variants.
    pub variants: Vec<Variant>,
}

/// Construct the base set `E_s` of Theorem 2: one fanning-out variant per
/// size-symbol equivalence class, choosing the representative of each class
/// so the *average training penalty* of the whole set is minimized (the
/// tuning used in the paper's experiments, Sec. VII-A).
///
/// `optimal` must hold the optimal cost for each training instance (e.g.
/// from [`crate::dp::optimal_cost`] or an enumeration minimum), and
/// `training` the instances themselves.
///
/// When the number of representative combinations exceeds an internal cap
/// the search falls back to a per-class greedy choice; the Theorem-2
/// guarantee (one representative per class) holds either way.
///
/// # Errors
///
/// Returns [`TheoryError::EmptyTraining`] for an empty training set and
/// propagates build failures.
pub fn select_base_set(
    shape: &Shape,
    training: &[Instance],
    optimal: &[f64],
) -> Result<BaseSet, TheoryError> {
    // FLOP costs go through the vectorized compiled-polynomial engine:
    // transpose the training set into symbol lanes once, then stream
    // each fanning-out variant's cost polynomial across them.
    let mut lanes = SizeLanes::default();
    lanes.fill(training);
    let mut program = CompiledPoly::new();
    let level = simd::active_level();
    select_base_set_rows(shape, training, optimal, &mut |v, row| {
        program.compile(v.cost_poly());
        program.eval_rows(level, &lanes, row);
    })
}

/// [`select_base_set`] with an arbitrary cost function (e.g. a
/// performance-model time estimate) used both for scoring candidate
/// representatives and — through the caller-supplied `optimal` vector —
/// for the penalty denominator.
///
/// # Errors
///
/// Same as [`select_base_set`].
pub fn select_base_set_with<F>(
    shape: &Shape,
    training: &[Instance],
    optimal: &[f64],
    cost: F,
) -> Result<BaseSet, TheoryError>
where
    F: Fn(&Variant, &Instance) -> f64,
{
    select_base_set_with_rows(shape, training, optimal, |v, qs, row| {
        for (c, q) in row.iter_mut().zip(qs) {
            *c = cost(v, q);
        }
    })
}

/// [`select_base_set_with`] with a **batched row** cost function:
/// `fill_row(variant, instances, row)` writes the variant's cost on every
/// training instance at once, letting the cost model hoist per-variant
/// work (kernel-model lookups, axis resolution, polynomial compilation)
/// out of the per-instance loop — the same treatment
/// [`CostMatrix::fill_rows_with`](crate::CostMatrix::fill_rows_with)
/// gives the expansion stage. The per-instance [`select_base_set_with`]
/// wraps its closure into a row fill and routes through here, so both
/// entry points score candidates with the engine's canonical blocked
/// reduction and pick identical representatives.
///
/// # Errors
///
/// Same as [`select_base_set`].
pub fn select_base_set_with_rows<F>(
    shape: &Shape,
    training: &[Instance],
    optimal: &[f64],
    fill_row: F,
) -> Result<BaseSet, TheoryError>
where
    F: Fn(&Variant, &[Instance], &mut [f64]),
{
    select_base_set_rows(shape, training, optimal, &mut |v, row| {
        fill_row(v, training, row)
    })
}

/// Shared base-set search over a batched row cost function
/// (`fill_row(variant, row)` writes the variant's cost on every
/// training instance). Representative sets are scored with the
/// engine's canonical blocked reduction, so the choice is identical on
/// every ladder rung.
fn select_base_set_rows(
    shape: &Shape,
    training: &[Instance],
    optimal: &[f64],
    fill_row: &mut dyn FnMut(&Variant, &mut [f64]),
) -> Result<BaseSet, TheoryError> {
    if training.is_empty() || optimal.len() != training.len() {
        return Err(TheoryError::EmptyTraining);
    }
    let level = simd::active_level();
    let classes = shape.size_classes();
    let class_members = classes.classes();
    let fanning: Vec<(usize, Variant)> = fanning_out_set(shape)?;
    // Cost of each fanning-out variant h on each training instance. For
    // duplicate trees, reuse the representative variant.
    let variant_for_h = |h: usize| -> &Variant {
        let tree = ParenTree::fanning_out(shape.len(), h);
        &fanning
            .iter()
            .find(|(_, v)| *v.paren() == tree)
            .expect("every E_h built")
            .1
    };
    let n_sym = shape.num_sizes();
    let mut cost_by_h: Vec<Vec<f64>> = Vec::with_capacity(n_sym);
    for h in 0..n_sym {
        let mut row = vec![0.0; training.len()];
        fill_row(variant_for_h(h), &mut row);
        cost_by_h.push(row);
    }

    // Best-in-set scratch, reused by every candidate representative set.
    let mut best_scratch = vec![0.0f64; training.len()];
    let mut avg_penalty = |reps: &[usize]| -> f64 {
        best_scratch.clear();
        best_scratch.resize(training.len(), f64::INFINITY);
        for &h in reps {
            simd::min_in_place(level, &mut best_scratch, &cost_by_h[h]);
        }
        simd::penalty_sum(level, &best_scratch, None, optimal) / training.len() as f64
    };

    const MAX_COMBOS: usize = 4096;
    let combos: usize = class_members.iter().map(Vec::len).product();
    let representatives = if combos <= MAX_COMBOS {
        // Exhaustive search over one representative per class.
        let mut best_reps: Vec<usize> = class_members.iter().map(|c| c[0]).collect();
        let mut best_val = avg_penalty(&best_reps);
        let mut idx = vec![0usize; class_members.len()];
        loop {
            // Advance the mixed-radix counter.
            let mut carry = true;
            for (d, class) in idx.iter_mut().zip(&class_members) {
                if !carry {
                    break;
                }
                *d += 1;
                if *d < class.len() {
                    carry = false;
                } else {
                    *d = 0;
                }
            }
            if carry {
                break;
            }
            let reps: Vec<usize> = idx.iter().zip(&class_members).map(|(&d, c)| c[d]).collect();
            let val = avg_penalty(&reps);
            if val < best_val {
                best_val = val;
                best_reps = reps;
            }
        }
        best_reps
    } else {
        // Greedy: per class, pick the representative minimizing the average
        // penalty of the growing set.
        let mut reps: Vec<usize> = Vec::new();
        for class in &class_members {
            let mut best_h = class[0];
            let mut best_val = f64::INFINITY;
            for &h in class {
                let mut trial = reps.clone();
                trial.push(h);
                let val = avg_penalty(&trial);
                if val < best_val {
                    best_val = val;
                    best_h = h;
                }
            }
            reps.push(best_h);
        }
        reps
    };

    let mut reps = representatives;
    reps.sort_unstable();
    // Distinct trees only (two representatives can induce the same tree for
    // short chains).
    let mut variants: Vec<Variant> = Vec::new();
    for &h in &reps {
        let v = variant_for_h(h).clone();
        if !variants.iter().any(|u| u.paren() == v.paren()) {
            variants.push(v);
        }
    }
    Ok(BaseSet {
        representatives: reps,
        variants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_variants;
    use gmc_ir::{Features, InstanceSampler, Operand, Property, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    fn spd_inv() -> Operand {
        Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted()
    }

    #[test]
    fn penalty_basics() {
        assert_eq!(penalty(100.0, 100.0), 0.0);
        assert!((penalty(150.0, 100.0) - 0.5).abs() < 1e-15);
        assert!(penalty(f64::INFINITY, 100.0).is_infinite());
    }

    #[test]
    fn fanning_out_set_size() {
        // n = 5 all-general chain: n + 1 = 6 distinct members.
        let shape = Shape::new(vec![g(); 5]).unwrap();
        assert_eq!(fanning_out_set(&shape).unwrap().len(), 6);
        // n = 3: n - 1 = 2 distinct members.
        let shape = Shape::new(vec![g(); 3]).unwrap();
        assert_eq!(fanning_out_set(&shape).unwrap().len(), 2);
    }

    #[test]
    fn base_set_has_one_variant_per_class() {
        // G P^{-1} G G: classes {q0}, {q1, q2}, {q3}, {q4} -> 4 classes.
        let shape = Shape::new(vec![g(), spd_inv(), g(), g()]).unwrap();
        let classes = shape.size_classes().num_classes();
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = InstanceSampler::new(&shape, 2, 200);
        let training = sampler.sample_many(&mut rng, 200);
        let all = all_variants(&shape).unwrap();
        let optimal: Vec<f64> = training
            .iter()
            .map(|q| all.iter().map(|v| v.flops(q)).fold(f64::INFINITY, f64::min))
            .collect();
        let base = select_base_set(&shape, &training, &optimal).unwrap();
        assert_eq!(base.representatives.len(), classes);
        assert!(base.variants.len() <= classes);
        assert!(!base.variants.is_empty());
    }

    #[test]
    fn base_set_penalty_is_bounded_on_fresh_instances() {
        // Theorem 1/2: best-in-set within a constant factor (<= 16) of
        // optimal on every instance, including ones outside the training set.
        let shapes = vec![
            Shape::new(vec![g(), spd_inv(), g()]).unwrap(),
            Shape::new(vec![g(); 5]).unwrap(),
            Shape::new(vec![
                g(),
                Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular))
                    .inverted(),
                g(),
                spd_inv(),
            ])
            .unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(17);
        for shape in shapes {
            let sampler = InstanceSampler::new(&shape, 2, 500);
            let training = sampler.sample_many(&mut rng, 100);
            let all = all_variants(&shape).unwrap();
            let optimal: Vec<f64> = training
                .iter()
                .map(|q| all.iter().map(|v| v.flops(q)).fold(f64::INFINITY, f64::min))
                .collect();
            let base = select_base_set(&shape, &training, &optimal).unwrap();
            // Fresh validation instances.
            for q in sampler.sample_many(&mut rng, 300) {
                let opt = all
                    .iter()
                    .map(|v| v.flops(&q))
                    .fold(f64::INFINITY, f64::min);
                let best = base
                    .variants
                    .iter()
                    .map(|v| v.flops(&q))
                    .fold(f64::INFINITY, f64::min);
                let p = penalty(best, opt);
                assert!(p <= 15.0, "penalty {p} exceeds rho on {} / {q}", shape);
            }
        }
    }

    #[test]
    fn custom_cost_model_changes_selection_inputs() {
        // select_base_set_with accepts an arbitrary cost; using a model
        // that doubles every cost must leave the (ratio-based) choice
        // identical to FLOPs, while a structurally different model may not.
        let shape = Shape::new(vec![g(), spd_inv(), g()]).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let sampler = InstanceSampler::new(&shape, 2, 300);
        let training = sampler.sample_many(&mut rng, 100);
        let all = all_variants(&shape).unwrap();
        let optimal: Vec<f64> = training
            .iter()
            .map(|q| all.iter().map(|v| v.flops(q)).fold(f64::INFINITY, f64::min))
            .collect();
        let flop_based = select_base_set(&shape, &training, &optimal).unwrap();
        let scaled =
            select_base_set_with(&shape, &training, &optimal, |v, q| 2.0 * v.flops(q)).unwrap();
        assert_eq!(flop_based.representatives, scaled.representatives);
    }

    #[test]
    fn batched_row_selection_is_bit_identical_to_per_instance() {
        // The batched entry point must pick the same representatives
        // AND the same variants as the per-instance closure for any
        // cost model — here a non-linear one so ties break differently
        // from FLOPs and the equality is not vacuous.
        let shape = Shape::new(vec![g(), spd_inv(), g(), g()]).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let sampler = InstanceSampler::new(&shape, 2, 300);
        let training = sampler.sample_many(&mut rng, 100);
        let all = all_variants(&shape).unwrap();
        let optimal: Vec<f64> = training
            .iter()
            .map(|q| all.iter().map(|v| v.flops(q)).fold(f64::INFINITY, f64::min))
            .collect();
        let model = |v: &Variant, q: &Instance| (1.0 + v.flops(q)).ln() * v.steps().len() as f64;
        let cell = select_base_set_with(&shape, &training, &optimal, model).unwrap();
        let rows = select_base_set_with_rows(&shape, &training, &optimal, |v, qs, row| {
            for (c, q) in row.iter_mut().zip(qs) {
                *c = model(v, q);
            }
        })
        .unwrap();
        assert_eq!(cell.representatives, rows.representatives);
        assert_eq!(cell.variants, rows.variants);
    }

    #[test]
    fn empty_training_rejected() {
        let shape = Shape::new(vec![g(), g()]).unwrap();
        assert!(matches!(
            select_base_set(&shape, &[], &[]),
            Err(TheoryError::EmptyTraining)
        ));
    }
}
