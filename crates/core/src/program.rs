//! The compiled chain: selected variants behind a run-time dispatch
//! (Fig. 1 of the paper).
//!
//! [`CompiledChain::compile`] plays the role of the code generator: it
//! selects the Theorem-2 base set (optionally expanded per Algorithm 1) and
//! packages it with a dispatch function. At run time,
//! [`CompiledChain::evaluate`] reads the concrete sizes off the argument
//! matrices, evaluates every variant's cost function, and passes control to
//! the cheapest variant.

use crate::builder::BuildError;
use crate::enumerate::EnumerateError;
use crate::expand::Objective;
use crate::theory::TheoryError;
use crate::variant::{ExecVariantError, Variant};
use gmc_ir::{Instance, Shape};
use gmc_linalg::Matrix;
use std::error::Error;
use std::fmt;

/// A run-time cost model used by the dispatch function.
///
/// The default is [`FlopCost`]; `gmc-perfmodel` provides a measured
/// execution-time model.
pub trait CostModel {
    /// Estimated cost of running `variant` on instance sizes `q`.
    fn variant_cost(&self, variant: &Variant, q: &Instance) -> f64;
}

/// Dispatch on the number of FLOPs (Table-I cost functions).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlopCost;

impl CostModel for FlopCost {
    fn variant_cost(&self, variant: &Variant, q: &Instance) -> f64 {
        variant.flops(q)
    }
}

/// Options controlling [`CompiledChain::compile_with`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Number of random training instances for base-set selection.
    pub training_instances: usize,
    /// Smallest sampled size.
    pub size_lo: u64,
    /// Largest sampled size.
    pub size_hi: u64,
    /// How many variants to add beyond the base set (Algorithm 1 steps).
    pub expand_by: usize,
    /// Objective for the expansion.
    pub objective: Objective,
    /// RNG seed for reproducible selection.
    pub seed: u64,
    /// Candidate-scan stripe size for the parallel expansion: how many
    /// candidates each spawned task scans (`0` = one stripe per thread).
    /// A pure scheduling knob for many-core hosts — the selected set is
    /// bit-identical for every value (see
    /// [`crate::expand::expand_set_striped`]), so it is excluded from
    /// the persistence options fingerprint.
    pub scan_stripe: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            training_instances: 1000,
            size_lo: 2,
            size_hi: 1000,
            expand_by: 0,
            objective: Objective::AvgPenalty,
            seed: 0x5e1ec7,
            scan_stripe: 0,
        }
    }
}

/// Errors from compilation or evaluation.
#[derive(Debug)]
pub enum ProgramError {
    /// Variant construction failed.
    Build(BuildError),
    /// Variant-pool enumeration failed (e.g. over the configured cap).
    Enumerate(EnumerateError),
    /// Base-set selection failed.
    Theory(TheoryError),
    /// Evaluation failed.
    Exec(ExecVariantError),
    /// The argument matrices do not form a consistent instance of the shape.
    InconsistentSizes(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Build(e) => write!(f, "compilation failed: {e}"),
            ProgramError::Enumerate(e) => write!(f, "variant enumeration failed: {e}"),
            ProgramError::Theory(e) => write!(f, "variant selection failed: {e}"),
            ProgramError::Exec(e) => write!(f, "evaluation failed: {e}"),
            ProgramError::InconsistentSizes(msg) => write!(f, "inconsistent matrix sizes: {msg}"),
        }
    }
}

impl Error for ProgramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgramError::Build(e) => Some(e),
            ProgramError::Enumerate(e) => Some(e),
            ProgramError::Theory(e) => Some(e),
            ProgramError::Exec(e) => Some(e),
            ProgramError::InconsistentSizes(_) => None,
        }
    }
}

impl From<BuildError> for ProgramError {
    fn from(e: BuildError) -> Self {
        ProgramError::Build(e)
    }
}

impl From<EnumerateError> for ProgramError {
    fn from(e: EnumerateError) -> Self {
        ProgramError::Enumerate(e)
    }
}

impl From<TheoryError> for ProgramError {
    fn from(e: TheoryError) -> Self {
        ProgramError::Theory(e)
    }
}

impl From<ExecVariantError> for ProgramError {
    fn from(e: ExecVariantError) -> Self {
        ProgramError::Exec(e)
    }
}

/// A chain compiled to a set of multi-versioned variants with run-time
/// dispatch.
#[derive(Debug, Clone)]
pub struct CompiledChain {
    shape: Shape,
    variants: Vec<Variant>,
}

impl CompiledChain {
    /// Compile with default options (Theorem-2 base set, no expansion).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if selection fails (not expected for valid
    /// shapes).
    pub fn compile(shape: Shape) -> Result<Self, ProgramError> {
        Self::compile_with(shape, &CompileOptions::default())
    }

    /// Compile with explicit options.
    ///
    /// For chains short enough to enumerate (`Catalan(n-1)` up to a few
    /// thousand parenthesizations, i.e. `n <= 9`) selection and expansion
    /// work over the full variant pool `A`. Longer chains switch to a
    /// scalable path: the candidate pool is the fanning-out family and the
    /// per-instance optimum comes from the DP solver — the Theorem-2
    /// guarantee is unaffected, only the expansion candidates shrink.
    ///
    /// One-shot convenience: runs a throwaway
    /// [`crate::session::CompileSession`]. Services compiling many
    /// programs should hold a session to reuse its arenas and caches.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if selection fails.
    pub fn compile_with(shape: Shape, options: &CompileOptions) -> Result<Self, ProgramError> {
        crate::session::CompileSession::with_options(options.clone()).compile(&shape)
    }

    /// Build a compiled chain from explicitly chosen variants (used by the
    /// experiment harness to package arbitrary sets).
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    #[must_use]
    pub fn from_variants(shape: Shape, variants: Vec<Variant>) -> Self {
        assert!(!variants.is_empty(), "at least one variant is required");
        CompiledChain { shape, variants }
    }

    /// The chain's shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The selected variants.
    #[must_use]
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// The dispatch function: index and estimated cost of the best variant
    /// for `q` under `model`.
    #[must_use]
    pub fn dispatch_with<M: CostModel>(&self, q: &Instance, model: &M) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, v) in self.variants.iter().enumerate() {
            let c = model.variant_cost(v, q);
            if c < best.1 {
                best = (i, c);
            }
        }
        best
    }

    /// FLOP-cost dispatch.
    #[must_use]
    pub fn dispatch(&self, q: &Instance) -> (usize, f64) {
        self.dispatch_with(q, &FlopCost)
    }

    /// The human-readable variant report printed by `gmcc --report` and
    /// streamed by the compile service: one header line plus one line per
    /// selected variant with its parenthesization and cost polynomial.
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut report = format!(
            "chain {} (n = {}), {} size-symbol class(es), {} variant(s) selected\n",
            self.shape,
            self.shape.len(),
            self.shape.size_classes().num_classes(),
            self.variants.len(),
        );
        for (i, v) in self.variants.iter().enumerate() {
            let _ = writeln!(
                report,
                "  variant {i}: {}  cost = {}",
                v.paren(),
                v.cost_poly()
            );
        }
        report
    }

    /// Render a per-stage timing report for this chain: one header line
    /// identifying the chain, then `profile`'s stage and per-kernel
    /// breakdown (the payload behind `gmcc --timings` and the serving
    /// layer's slow-request log). The profile is typically the
    /// [`crate::session::CompileSession::stage_profile`] delta observed
    /// while compiling/evaluating this chain.
    #[must_use]
    pub fn timing_report(&self, profile: &gmc_obs::StageProfile) -> String {
        profile.render(&format!("chain {} (n = {})", self.shape, self.shape.len()))
    }

    /// A human-readable account of one dispatch decision: every variant's
    /// cost on `q`, with the winner marked. Useful for debugging why a
    /// particular kernel sequence ran.
    #[must_use]
    pub fn explain_dispatch<M: CostModel>(&self, q: &Instance, model: &M) -> String {
        use std::fmt::Write;
        let (winner, _) = self.dispatch_with(q, model);
        let mut out = format!("dispatch for {} on {q}:\n", self.shape);
        for (i, v) in self.variants.iter().enumerate() {
            let marker = if i == winner { "->" } else { "  " };
            let _ = writeln!(
                out,
                "{marker} variant {i}: cost {:>14.6e}  {}",
                model.variant_cost(v, q),
                v.paren()
            );
        }
        out
    }

    /// Read the instance sizes off concrete argument matrices, validating
    /// consistency with the shape (inner dimensions, forced squareness).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::InconsistentSizes`] on arity or dimension
    /// mismatch.
    pub fn instance_of(&self, leaves: &[Matrix]) -> Result<Instance, ProgramError> {
        let n = self.shape.len();
        if leaves.len() != n {
            return Err(ProgramError::InconsistentSizes(format!(
                "expected {n} matrices, got {}",
                leaves.len()
            )));
        }
        let mut q = vec![0u64; n + 1];
        for (i, (op, m)) in self.shape.operands().iter().zip(leaves).enumerate() {
            // op(M_i) is q_i x q_{i+1}; the stored matrix is swapped when
            // transposed.
            let (rows, cols) = if op.transposed {
                (m.cols() as u64, m.rows() as u64)
            } else {
                (m.rows() as u64, m.cols() as u64)
            };
            if q[i] == 0 {
                q[i] = rows;
            } else if q[i] != rows {
                return Err(ProgramError::InconsistentSizes(format!(
                    "matrix {i} has {rows} rows, expected {}",
                    q[i]
                )));
            }
            q[i + 1] = cols;
            if op.forces_square() && rows != cols {
                return Err(ProgramError::InconsistentSizes(format!(
                    "matrix {i} must be square, got {rows}x{cols}"
                )));
            }
        }
        let instance = Instance::new(q);
        if !instance.respects(&self.shape.size_classes()) {
            return Err(ProgramError::InconsistentSizes(
                "sizes violate the chain's squareness constraints".into(),
            ));
        }
        Ok(instance)
    }

    /// Evaluate the chain: dispatch on the concrete sizes and execute the
    /// best variant (FLOP-cost model).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on inconsistent inputs or kernel failure.
    pub fn evaluate(&self, leaves: &[Matrix]) -> Result<Matrix, ProgramError> {
        self.evaluate_with(leaves, &FlopCost)
    }

    /// Evaluate via *run-time search*: run the full DP on the concrete
    /// sizes, lower the winning parenthesization, and execute it.
    ///
    /// This is the alternative to multi-versioning discussed in Sec. I of
    /// the paper (Linnea's fixed-size mode): it always executes the
    /// FLOP-optimal variant but pays the search and lowering latency per
    /// call, making it unsuitable for the low-latency settings that
    /// motivate the code generator (see the `dispatch_vs_runtime_search`
    /// benchmark).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on inconsistent inputs or kernel failure.
    pub fn evaluate_by_runtime_search(&self, leaves: &[Matrix]) -> Result<Matrix, ProgramError> {
        let q = self.instance_of(leaves)?;
        let (variant, _) = crate::dp::optimal_variant(&self.shape, &q)?;
        Ok(variant.execute(leaves)?)
    }

    /// Evaluate with a custom dispatch cost model.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on inconsistent inputs or kernel failure.
    pub fn evaluate_with<M: CostModel>(
        &self,
        leaves: &[Matrix],
        model: &M,
    ) -> Result<Matrix, ProgramError> {
        let q = self.instance_of(leaves)?;
        let (idx, _) = self.dispatch_with(&q, model);
        Ok(self.variants[idx].execute(leaves)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_variants;
    use crate::reference::evaluate_reference;
    use gmc_ir::{Features, Operand, Property, Structure};
    use gmc_linalg::{random_general, random_lower_triangular, random_spd, relative_error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    #[test]
    fn compile_and_evaluate_plain_chain() {
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let compiled = CompiledChain::compile(shape.clone()).unwrap();
        assert!(!compiled.variants().is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_general(&mut rng, 8, 20);
        let b = random_general(&mut rng, 20, 3);
        let c = random_general(&mut rng, 3, 12);
        let got = compiled
            .evaluate(&[a.clone(), b.clone(), c.clone()])
            .unwrap();
        let want = evaluate_reference(&shape, &[a, b, c]).unwrap();
        assert!(relative_error(&got, &want) < 1e-10);
    }

    #[test]
    fn dispatch_picks_cheaper_variant_per_instance() {
        // For G G G, the best parenthesization flips with the aspect ratio.
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let pool = all_variants(&shape).unwrap();
        let compiled = CompiledChain::from_variants(shape, pool);
        let thin = Instance::new(vec![1, 100, 1, 100]);
        let fat = Instance::new(vec![100, 1, 100, 1]);
        let (i_thin, _) = compiled.dispatch(&thin);
        let (i_fat, _) = compiled.dispatch(&fat);
        assert_ne!(i_thin, i_fat);
    }

    #[test]
    fn evaluate_solves_with_structured_matrices() {
        // G L^{-1} P^{-1}: exercises TRSM and PO-class kernels end to end.
        let l =
            Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
        let p = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let shape = Shape::new(vec![g(), l, p]).unwrap();
        let compiled = CompiledChain::compile(shape.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_general(&mut rng, 6, 9);
        let lm = random_lower_triangular(&mut rng, 9, true);
        let pm = random_spd(&mut rng, 9);
        let got = compiled
            .evaluate(&[a.clone(), lm.clone(), pm.clone()])
            .unwrap();
        let want = evaluate_reference(&shape, &[a, lm, pm]).unwrap();
        assert!(relative_error(&got, &want) < 1e-8);
    }

    #[test]
    fn runtime_search_matches_dispatch_result() {
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let chain = CompiledChain::compile(shape.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let a = random_general(&mut rng, 6, 14);
        let b = random_general(&mut rng, 14, 5);
        let c = random_general(&mut rng, 5, 9);
        let via_dispatch = chain.evaluate(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let via_search = chain.evaluate_by_runtime_search(&[a, b, c]).unwrap();
        assert!(relative_error(&via_search, &via_dispatch) < 1e-10);
    }

    #[test]
    fn inconsistent_inputs_rejected() {
        let shape = Shape::new(vec![g(), g()]).unwrap();
        let compiled = CompiledChain::compile(shape).unwrap();
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2); // inner mismatch: 4 vs 5
        assert!(matches!(
            compiled.evaluate(&[a, b]),
            Err(ProgramError::InconsistentSizes(_))
        ));
    }

    #[test]
    fn square_constraint_enforced() {
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let shape = Shape::new(vec![g(), l]).unwrap();
        let compiled = CompiledChain::compile(shape).unwrap();
        let a = Matrix::zeros(3, 4);
        let bad_l = Matrix::zeros(4, 5);
        assert!(matches!(
            compiled.evaluate(&[a, bad_l]),
            Err(ProgramError::InconsistentSizes(_))
        ));
    }

    #[test]
    fn transposed_operand_sizes_read_correctly() {
        // A * B^T with A 3x4, stored B 5x4.
        let shape = Shape::new(vec![g(), g().transposed()]).unwrap();
        let compiled = CompiledChain::compile(shape).unwrap();
        let q = compiled
            .instance_of(&[Matrix::zeros(3, 4), Matrix::zeros(5, 4)])
            .unwrap();
        assert_eq!(q.sizes(), &[3, 4, 5]);
    }

    #[test]
    fn explain_dispatch_marks_the_winner() {
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let pool = all_variants(&shape).unwrap();
        let chain = CompiledChain::from_variants(shape, pool);
        let q = Instance::new(vec![1, 100, 1, 100]);
        let (winner, _) = chain.dispatch(&q);
        let text = chain.explain_dispatch(&q, &FlopCost);
        assert!(text.contains(&format!("-> variant {winner}:")));
        assert_eq!(text.matches("->").count(), 1);
        assert_eq!(text.matches("variant").count(), chain.variants().len());
    }

    #[test]
    fn long_chains_compile_via_dp_path() {
        // n = 12 has Catalan(11) = 58786 parenthesizations — far over the
        // enumeration cap; compilation must still finish and stay bounded.
        let shape = Shape::new(vec![g(); 12]).unwrap();
        let opts = CompileOptions {
            training_instances: 60,
            size_hi: 200,
            ..CompileOptions::default()
        };
        let chain = CompiledChain::compile_with(shape.clone(), &opts).unwrap();
        assert!(!chain.variants().is_empty());
        assert!(chain.variants().len() <= 13);
        // The compiled chain evaluates correctly.
        let mut rng = StdRng::seed_from_u64(4);
        let q: Vec<u64> = (0..13).map(|i| 2 + (i % 4) as u64 * 3).collect();
        let mats: Vec<Matrix> = (0..12)
            .map(|i| random_general(&mut rng, q[i] as usize, q[i + 1] as usize))
            .collect();
        let got = chain.evaluate(&mats).unwrap();
        let want = crate::reference::evaluate_reference(&shape, &mats).unwrap();
        assert!(relative_error(&got, &want) < 1e-8);
    }

    #[test]
    fn expansion_option_grows_set() {
        let shape = Shape::new(vec![g(), g(), g(), g(), g()]).unwrap();
        let base = CompiledChain::compile(shape.clone()).unwrap();
        let opts = CompileOptions {
            expand_by: 2,
            training_instances: 300,
            ..CompileOptions::default()
        };
        let grown = CompiledChain::compile_with(shape, &opts).unwrap();
        assert!(grown.variants().len() >= base.variants().len());
        assert!(grown.variants().len() <= base.variants().len() + 2);
    }
}
