//! Empirical expansion of a variant set (Sec. VI, Algorithm 1), on top
//! of the vectorized selection engine ([`crate::simd`]).
//!
//! Given the full variant pool `A`, a sampled instance set `Q`, an
//! objective `F` over per-instance penalties, and a cardinality budget `K`,
//! the greedy procedure repeatedly adds the variant that improves `F` the
//! most, stopping early when no candidate improves it.
//!
//! The cost matrix is stored flat (one `variants x instances` buffer) and
//! can be refilled in place ([`CostMatrix::fill_with`]), so a long-lived
//! [`crate::session::CompileSession`] reuses one buffer across compiles.
//! FLOP fills ([`CostMatrix::fill_flops`]) compile each variant's cost
//! polynomial into a flat multiply chain ([`crate::simd::CompiledPoly`])
//! and stream it over transposed instance lanes
//! ([`crate::simd::SizeLanes`]), 8 instances per iteration on AVX-512.
//! The greedy loop itself maintains the per-instance best-in-set cost
//! incrementally: evaluating a candidate is `O(instances)` instead of
//! `O(set x instances)`, and — because `min` is exact — every objective
//! value is bit-identical to the textbook re-evaluation. Candidate
//! scores and objective seeds are reduced in the engine's **canonical
//! blocked order** (see [`crate::simd`]), so the scalar, AVX2, and
//! AVX-512 rungs select identical sets bit for bit; with the `parallel`
//! feature the candidate scan additionally splits across threads,
//! again without changing a single bit of the outcome (candidates are
//! scored independently and the tie-break scan order is preserved).

use crate::simd::{self, CompiledPoly, SimdLevel, SizeLanes};
use crate::variant::Variant;
use gmc_ir::Instance;

/// Sampled objective functions over per-instance penalties (Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// `F_max`: the largest penalty over the sample.
    MaxPenalty,
    /// `F_avg`: the mean penalty over the sample.
    AvgPenalty,
}

impl Objective {
    /// Straight left-to-right fold over an arbitrary penalty iterator —
    /// a convenience for external callers. The selection engine itself
    /// reduces slices in the canonical blocked order
    /// ([`Objective::over`] via [`crate::simd`]), which supersedes this
    /// fold as the reference for selection decisions; the two can
    /// differ in the final ulp for `AvgPenalty`.
    pub fn evaluate(self, penalties: impl Iterator<Item = f64>) -> f64 {
        match self {
            Objective::MaxPenalty => penalties.fold(f64::NEG_INFINITY, f64::max),
            Objective::AvgPenalty => {
                let (mut sum, mut count) = (0.0, 0usize);
                for p in penalties {
                    sum += p;
                    count += 1;
                }
                if count == 0 {
                    f64::INFINITY
                } else {
                    sum / count as f64
                }
            }
        }
    }

    /// The objective of the best-in-set vector `best` (optionally
    /// `min`-ed with a candidate row), reduced in the canonical blocked
    /// order on the given engine rung.
    fn over(self, level: SimdLevel, best: &[f64], row: Option<&[f64]>, optimal: &[f64]) -> f64 {
        match self {
            Objective::MaxPenalty => simd::penalty_max(level, best, row, optimal),
            Objective::AvgPenalty => {
                if best.is_empty() {
                    f64::INFINITY
                } else {
                    simd::penalty_sum(level, best, row, optimal) / best.len() as f64
                }
            }
        }
    }
}

/// Precomputed per-variant, per-instance costs plus per-instance optima.
///
/// Storage is one flat row-major buffer: row `v` holds the cost of variant
/// `v` on every instance; `optimal[i]` is the minimum over the *full* pool
/// on instance `i`. The buffer can be refilled in place so sessions reuse
/// one allocation across compiles.
#[derive(Debug, Clone, Default)]
pub struct CostMatrix {
    costs: Vec<f64>,
    num_variants: usize,
    num_instances: usize,
    optimal: Vec<f64>,
    /// Transposed instance sizes for the compiled-polynomial fill.
    lanes: SizeLanes,
}

impl CostMatrix {
    /// An empty matrix, ready to be [`CostMatrix::fill_with`]ed.
    #[must_use]
    pub fn new() -> Self {
        CostMatrix::default()
    }

    /// Compute a cost matrix using FLOP costs (through the vectorized
    /// compiled-polynomial fill; see [`CostMatrix::fill_flops`]).
    #[must_use]
    pub fn flops(pool: &[Variant], instances: &[Instance]) -> Self {
        let mut m = CostMatrix::new();
        m.fill_flops(pool, instances, 1);
        m
    }

    /// Compute a cost matrix over a *partial* pool with externally supplied
    /// per-instance optima (e.g. from the DP solver when the full pool is
    /// too large to enumerate).
    ///
    /// # Panics
    ///
    /// Panics if `optimal.len() != instances.len()`.
    #[must_use]
    pub fn flops_with_optimal(pool: &[Variant], instances: &[Instance], optimal: Vec<f64>) -> Self {
        let mut m = CostMatrix::new();
        m.fill_flops_with_optimal(pool, instances, optimal, 1);
        m
    }

    /// Compute a cost matrix with a custom cost function (e.g. a
    /// performance-model time estimate).
    #[must_use]
    pub fn with<F: Fn(&Variant, &Instance) -> f64 + Sync>(
        pool: &[Variant],
        instances: &[Instance],
        cost: F,
    ) -> Self {
        let mut m = CostMatrix::new();
        m.fill_with(pool, instances, cost, 1);
        m
    }

    /// Refill the matrix in place (reusing its buffers) with a custom
    /// per-cell cost function, splitting the row fill across up to
    /// `jobs` threads when the `parallel` feature is enabled. Every row
    /// is computed independently, so the contents are identical for
    /// every `jobs` value; the per-instance optima are folded
    /// element-wise in pool order (exact `min` — identical on every
    /// engine rung).
    pub fn fill_with<F: Fn(&Variant, &Instance) -> f64 + Sync>(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        cost: F,
        jobs: usize,
    ) {
        self.fill_rows_with(
            pool,
            instances,
            |v, qs, row| {
                for (c, q) in row.iter_mut().zip(qs) {
                    *c = cost(v, q);
                }
            },
            jobs,
        );
    }

    /// Refill the matrix in place with a **batched row** cost function:
    /// `fill_row(variant, instances, row)` writes the variant's cost on
    /// every instance at once, letting the cost model hoist per-variant
    /// work (kernel-model lookups, axis resolution, polynomial
    /// compilation) out of the per-instance loop — see
    /// `gmc_perfmodel::PerfModels::fill_cost_matrix`. Rows are
    /// independent, so the parallel split never changes the contents.
    pub fn fill_rows_with<F: Fn(&Variant, &[Instance], &mut [f64]) + Sync>(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        fill_row: F,
        jobs: usize,
    ) {
        self.fill_rows(pool, instances, &fill_row, jobs);
        self.fold_optimal(simd::active_level());
    }

    /// Refill in place with FLOP costs through the vectorized
    /// compiled-polynomial engine, on the active ladder rung.
    pub fn fill_flops(&mut self, pool: &[Variant], instances: &[Instance], jobs: usize) {
        self.fill_flops_level(pool, instances, jobs, simd::active_level());
    }

    /// [`CostMatrix::fill_flops`] on an explicit engine rung (requests
    /// above the CPU's capability are clamped). The contents are
    /// bit-identical for every rung *and* every `jobs` value — pinned
    /// by `tests/simd_paths.rs`.
    pub fn fill_flops_level(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        jobs: usize,
        level: SimdLevel,
    ) {
        self.fill_flops_rows(pool, instances, jobs, level);
        self.fold_optimal(level);
    }

    /// Refill in place with FLOP costs and externally supplied optima.
    ///
    /// # Panics
    ///
    /// Panics if `optimal.len() != instances.len()`.
    pub fn fill_flops_with_optimal(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        optimal: Vec<f64>,
        jobs: usize,
    ) {
        assert_eq!(optimal.len(), instances.len(), "one optimum per instance");
        self.fill_flops_rows(pool, instances, jobs, simd::active_level());
        self.optimal = optimal;
    }

    /// Column minima over the filled rows, folded element-wise in pool
    /// order (same order as a fresh per-column fold over rows; `min` is
    /// exact, so the lane width cannot change a bit).
    fn fold_optimal(&mut self, level: SimdLevel) {
        self.optimal.clear();
        self.optimal.resize(self.num_instances, f64::INFINITY);
        for row in self.costs.chunks_exact(self.num_instances.max(1)) {
            simd::min_in_place(level, &mut self.optimal, row);
        }
    }

    /// Resize the flat buffer for a `pool x instances` fill, returning
    /// the row length used for chunking.
    fn reset_rows(&mut self, pool: &[Variant], instances: &[Instance]) -> usize {
        self.num_variants = pool.len();
        self.num_instances = instances.len();
        self.costs.clear();
        self.costs.resize(pool.len() * instances.len(), 0.0);
        instances.len().max(1)
    }

    fn fill_rows<F: Fn(&Variant, &[Instance], &mut [f64]) + Sync>(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        fill_row: &F,
        jobs: usize,
    ) {
        let ni = self.reset_rows(pool, instances);

        #[cfg(feature = "parallel")]
        if jobs > 1 && pool.len() * instances.len() >= PAR_MIN_CELLS {
            let jobs = jobs.min(pool.len()).max(1);
            let rows_per = pool.len().div_ceil(jobs);
            rayon::scope(|s| {
                for (vchunk, cchunk) in pool
                    .chunks(rows_per)
                    .zip(self.costs.chunks_mut(rows_per * ni))
                {
                    s.spawn(move |_| {
                        for (v, row) in vchunk.iter().zip(cchunk.chunks_mut(ni)) {
                            fill_row(v, instances, row);
                        }
                    });
                }
            });
            return;
        }
        let _ = jobs;
        for (v, row) in pool.iter().zip(self.costs.chunks_mut(ni)) {
            fill_row(v, instances, row);
        }
    }

    /// The FLOP row fill: transpose the instances into symbol lanes
    /// once, then compile each variant's cost polynomial and stream it
    /// across the lanes on the requested rung.
    fn fill_flops_rows(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        jobs: usize,
        level: SimdLevel,
    ) {
        let ni = self.reset_rows(pool, instances);
        self.lanes.fill(instances);
        let CostMatrix { costs, lanes, .. } = self;
        let lanes: &SizeLanes = lanes;

        #[cfg(feature = "parallel")]
        if jobs > 1 && pool.len() * instances.len() >= PAR_MIN_CELLS {
            let jobs = jobs.min(pool.len()).max(1);
            let rows_per = pool.len().div_ceil(jobs);
            rayon::scope(|s| {
                for (vchunk, cchunk) in pool.chunks(rows_per).zip(costs.chunks_mut(rows_per * ni)) {
                    s.spawn(move |_| {
                        let mut program = CompiledPoly::new();
                        for (v, row) in vchunk.iter().zip(cchunk.chunks_mut(ni)) {
                            program.compile(v.cost_poly());
                            program.eval_rows(level, lanes, row);
                        }
                    });
                }
            });
            return;
        }
        let _ = jobs;
        let mut program = CompiledPoly::new();
        for (v, row) in pool.iter().zip(costs.chunks_mut(ni)) {
            program.compile(v.cost_poly());
            program.eval_rows(level, lanes, row);
        }
    }

    /// Number of variants in the pool.
    #[must_use]
    pub fn num_variants(&self) -> usize {
        self.num_variants
    }

    /// Number of sampled instances.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.num_instances
    }

    /// Per-instance optimal costs over the full pool.
    #[must_use]
    pub fn optimal(&self) -> &[f64] {
        &self.optimal
    }

    /// The costs of variant `v` on every instance.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds index.
    #[must_use]
    pub fn row(&self, v: usize) -> &[f64] {
        &self.costs[v * self.num_instances..(v + 1) * self.num_instances]
    }

    /// The cost of variant `v` on instance `i`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[must_use]
    pub fn cost(&self, v: usize, i: usize) -> f64 {
        assert!(i < self.num_instances, "instance index out of bounds");
        self.costs[v * self.num_instances + i]
    }

    /// Evaluate the objective of a set of variant indices (canonical
    /// blocked reduction; bit-identical to [`candidate_value`] scoring).
    #[must_use]
    pub fn objective(&self, set: &[usize], objective: Objective) -> f64 {
        let level = simd::active_level();
        let mut best = vec![f64::INFINITY; self.num_instances];
        for &v in set {
            simd::min_in_place(level, &mut best, self.row(v));
        }
        objective.over(level, &best, None, &self.optimal)
    }
}

/// Below this many matrix cells the parallel fill/scan is not worth the
/// per-call OS-thread spawns of the vendored rayon shim.
#[cfg(feature = "parallel")]
const PAR_MIN_CELLS: usize = 1 << 14;

/// Reusable buffers for [`expand_set_with`]: the per-instance best-in-set
/// cost vector — the lane buffer the engine's 8-wide candidate scoring
/// streams (and nothing else). A session keeps one across compiles so
/// steady-state expansion allocates only the returned index set.
#[derive(Debug, Clone, Default)]
pub struct ExpandScratch {
    best: Vec<f64>,
}

/// Algorithm 1 (`ExpandSet`): greedily grow `initial` (indices into the
/// pool behind `matrix`) to at most `k` variants, minimizing `objective`.
///
/// Returns the expanded index set. Stops early when no candidate improves
/// the objective, exactly as the paper's algorithm does.
#[must_use]
pub fn expand_set(
    matrix: &CostMatrix,
    initial: &[usize],
    k: usize,
    objective: Objective,
) -> Vec<usize> {
    expand_set_with(
        matrix,
        initial,
        k,
        objective,
        &mut ExpandScratch::default(),
        1,
    )
}

/// [`expand_set`] with caller-owned scratch and a thread budget for the
/// candidate scan (effective only with the `parallel` feature).
///
/// The result is bit-identical for every `jobs` value: candidate scores
/// are computed independently and the winner is the first strict minimum
/// in candidate order, exactly as in the serial scan.
#[must_use]
pub fn expand_set_with(
    matrix: &CostMatrix,
    initial: &[usize],
    k: usize,
    objective: Objective,
    scratch: &mut ExpandScratch,
    jobs: usize,
) -> Vec<usize> {
    expand_set_striped(matrix, initial, k, objective, scratch, jobs, 0)
}

/// [`expand_set_with`] with an explicit candidate-scan stripe size: the
/// number of candidates each spawned task scans. `0` means one stripe
/// per thread (`num_variants / jobs`, the default); smaller stripes give
/// the vendored rayon shim more, finer tasks, which many-core hosts can
/// tune through [`crate::CompileOptions::scan_stripe`] without
/// rebuilding. Purely a scheduling knob: stripes are reduced in index
/// order with the same strict-minimum rule, so the selected set is
/// bit-identical for every stripe (and jobs) value.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn expand_set_striped(
    matrix: &CostMatrix,
    initial: &[usize],
    k: usize,
    objective: Objective,
    scratch: &mut ExpandScratch,
    jobs: usize,
    stripe: usize,
) -> Vec<usize> {
    expand_set_striped_level(
        matrix,
        initial,
        k,
        objective,
        scratch,
        jobs,
        stripe,
        simd::active_level(),
    )
}

/// [`expand_set_striped`] on an explicit engine rung (requests above the
/// CPU's capability are clamped). The selected set is bit-identical for
/// every rung — the cross-rung property `tests/simd_paths.rs` pins.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn expand_set_striped_level(
    matrix: &CostMatrix,
    initial: &[usize],
    k: usize,
    objective: Objective,
    scratch: &mut ExpandScratch,
    jobs: usize,
    stripe: usize,
    level: SimdLevel,
) -> Vec<usize> {
    let ni = matrix.num_instances();
    let mut set: Vec<usize> = initial.to_vec();
    scratch.best.clear();
    scratch.best.resize(ni, f64::INFINITY);
    for &v in &set {
        simd::min_in_place(level, &mut scratch.best, matrix.row(v));
    }
    let mut v_min = if set.is_empty() {
        f64::INFINITY
    } else {
        objective.over(level, &scratch.best, None, matrix.optimal())
    };
    while set.len() < k {
        let (best_candidate, v_star) =
            scan_candidates(matrix, &set, &scratch.best, objective, jobs, stripe, level);
        match best_candidate {
            Some(d) if v_star < v_min => {
                simd::min_in_place(level, &mut scratch.best, matrix.row(d));
                set.push(d);
                v_min = v_star;
            }
            _ => return set,
        }
    }
    set
}

/// Score of adding candidate `d` to the set summarized by `best`: the
/// engine's 8-wide incremental evaluation.
///
/// `min` is exact, so `min(best[i], cost(d, i))` equals the fold over
/// `set + {d}` in any order — the value matches the textbook trial-set
/// re-evaluation (through [`CostMatrix::objective`]) bit for bit, on
/// every rung.
#[must_use]
pub fn candidate_value(
    matrix: &CostMatrix,
    best: &[f64],
    d: usize,
    objective: Objective,
    level: SimdLevel,
) -> f64 {
    objective.over(level, best, Some(matrix.row(d)), matrix.optimal())
}

/// Scan `range` for the first strict minimum among candidates not in
/// `set`, seeded with `v_star = +inf`, consuming 8-wide f64 lanes per
/// candidate row.
fn scan_range(
    matrix: &CostMatrix,
    set: &[usize],
    best: &[f64],
    objective: Objective,
    range: std::ops::Range<usize>,
    level: SimdLevel,
) -> (Option<usize>, f64) {
    let mut best_candidate: Option<usize> = None;
    let mut v_star = f64::INFINITY;
    for d in range {
        if set.contains(&d) {
            continue;
        }
        let val = candidate_value(matrix, best, d, objective, level);
        if val < v_star {
            v_star = val;
            best_candidate = Some(d);
        }
    }
    (best_candidate, v_star)
}

#[allow(clippy::too_many_arguments)]
fn scan_candidates(
    matrix: &CostMatrix,
    set: &[usize],
    best: &[f64],
    objective: Objective,
    jobs: usize,
    stripe: usize,
    level: SimdLevel,
) -> (Option<usize>, f64) {
    let nv = matrix.num_variants();
    #[cfg(feature = "parallel")]
    if jobs > 1 && nv * matrix.num_instances() >= PAR_MIN_CELLS {
        let per = if stripe == 0 {
            nv.div_ceil(jobs.min(nv).max(1))
        } else {
            stripe
        }
        .max(1);
        let tasks = nv.div_ceil(per);
        let mut partial: Vec<(Option<usize>, f64)> = vec![(None, f64::INFINITY); tasks];
        rayon::scope(|s| {
            for (c, out) in partial.iter_mut().enumerate() {
                let lo = c * per;
                let hi = ((c + 1) * per).min(nv);
                s.spawn(move |_| {
                    *out = scan_range(matrix, set, best, objective, lo..hi, level);
                });
            }
        });
        // Combine stripes in index order with the same strict-< rule, so
        // the winner is the global first minimum, as in the serial scan.
        let mut best_candidate: Option<usize> = None;
        let mut v_star = f64::INFINITY;
        for (cand, val) in partial {
            if cand.is_some() && val < v_star {
                v_star = val;
                best_candidate = cand;
            }
        }
        return (best_candidate, v_star);
    }
    let _ = (jobs, stripe);
    scan_range(matrix, set, best, objective, 0..nv, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_variants;
    use crate::theory::select_base_set;
    use gmc_ir::{Features, InstanceSampler, Operand, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_instances() -> (Vec<Variant>, Vec<Instance>, Shape) {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 5]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = InstanceSampler::new(&shape, 2, 300);
        let instances = sampler.sample_many(&mut rng, 250);
        let pool = all_variants(&shape).unwrap();
        (pool, instances, shape)
    }

    #[test]
    fn expansion_never_worsens_objective() {
        let (pool, instances, shape) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let base = select_base_set(&shape, &instances, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let before = matrix.objective(&initial, Objective::AvgPenalty);
        let expanded = expand_set(&matrix, &initial, initial.len() + 2, Objective::AvgPenalty);
        let after = matrix.objective(&expanded, Objective::AvgPenalty);
        assert!(after <= before + 1e-12);
        assert!(expanded.len() <= initial.len() + 2);
        assert!(expanded.starts_with(&initial), "expansion only adds");
    }

    #[test]
    fn full_pool_has_zero_penalty() {
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let all: Vec<usize> = (0..pool.len()).collect();
        assert!(matrix.objective(&all, Objective::MaxPenalty).abs() < 1e-12);
        assert!(matrix.objective(&all, Objective::AvgPenalty).abs() < 1e-12);
    }

    #[test]
    fn expand_from_empty_picks_something() {
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let set = expand_set(&matrix, &[], 1, Objective::AvgPenalty);
        assert_eq!(set.len(), 1);
        // The chosen singleton must be the pool-wide argmin of the objective.
        let chosen = matrix.objective(&set, Objective::AvgPenalty);
        for v in 0..matrix.num_variants() {
            assert!(chosen <= matrix.objective(&[v], Objective::AvgPenalty) + 1e-12);
        }
    }

    #[test]
    fn early_stop_when_no_improvement() {
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        // Start from the full pool: nothing can improve.
        let all: Vec<usize> = (0..pool.len()).collect();
        let set = expand_set(&matrix, &all, all.len() + 5, Objective::AvgPenalty);
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn incremental_scan_matches_textbook_reevaluation() {
        // The incremental best-cost scan must score candidates exactly as
        // the textbook "clone the set, re-evaluate" loop does — on every
        // rung of the engine ladder.
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let set = vec![0usize, 3];
        let mut best = vec![f64::INFINITY; matrix.num_instances()];
        for &v in &set {
            simd::min_in_place(simd::active_level(), &mut best, matrix.row(v));
        }
        for d in 0..matrix.num_variants() {
            if set.contains(&d) {
                continue;
            }
            let mut trial = set.clone();
            trial.push(d);
            let textbook = matrix.objective(&trial, Objective::AvgPenalty);
            for level in simd::available_levels() {
                let incremental = candidate_value(&matrix, &best, d, Objective::AvgPenalty, level);
                assert_eq!(
                    incremental.to_bits(),
                    textbook.to_bits(),
                    "candidate {d} on {level:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_identical() {
        let (pool, instances, shape) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let base = select_base_set(&shape, &instances, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let mut scratch = ExpandScratch::default();
        for k_extra in 0..3 {
            let fresh = expand_set(
                &matrix,
                &initial,
                initial.len() + k_extra,
                Objective::AvgPenalty,
            );
            let reused = expand_set_with(
                &matrix,
                &initial,
                initial.len() + k_extra,
                Objective::AvgPenalty,
                &mut scratch,
                1,
            );
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn refill_reuses_buffers_and_matches_fresh() {
        let (pool, instances, _) = pool_and_instances();
        let fresh = CostMatrix::flops(&pool, &instances);
        let mut reused = CostMatrix::new();
        reused.fill_flops(&pool, &instances, 1);
        let cap_before = reused.costs.capacity();
        reused.fill_flops(&pool, &instances, 1);
        assert_eq!(reused.costs.capacity(), cap_before, "no regrowth on refill");
        assert_eq!(fresh.num_variants(), reused.num_variants());
        for v in 0..fresh.num_variants() {
            for i in 0..fresh.num_instances() {
                assert_eq!(fresh.cost(v, i).to_bits(), reused.cost(v, i).to_bits());
            }
        }
        for (a, b) in fresh.optimal().iter().zip(reused.optimal()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn compiled_fill_stays_close_to_poly_eval() {
        // The compiled multiply-chain order supersedes Poly::eval as the
        // reference, but each cell must stay within ulp-scale distance of
        // the direct evaluation — the polynomials are identical.
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        for (v, variant) in pool.iter().enumerate() {
            for (i, q) in instances.iter().enumerate() {
                let direct = variant.flops(q);
                let cell = matrix.cost(v, i);
                assert!(
                    (cell - direct).abs() <= 1e-12 * direct.abs().max(1.0),
                    "variant {v} instance {i}: {cell} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn stripe_size_never_changes_the_selection() {
        // The stripe knob tunes task granularity only; with the parallel
        // feature the jobs=4 runs actually thread the scan, and without
        // it the knob must be a no-op either way.
        let (pool, instances, shape) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let base = select_base_set(&shape, &instances, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let k = initial.len() + 3;
        let reference = expand_set(&matrix, &initial, k, Objective::AvgPenalty);
        for stripe in [0usize, 1, 3, 7, 1000] {
            let mut scratch = ExpandScratch::default();
            let got = expand_set_striped(
                &matrix,
                &initial,
                k,
                Objective::AvgPenalty,
                &mut scratch,
                4,
                stripe,
            );
            assert_eq!(reference, got, "stripe = {stripe}");
        }
    }

    #[test]
    fn objectives_differ() {
        let (pool, instances, shape) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let base = select_base_set(&shape, &instances, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        // Both objectives run; results may or may not coincide, but both
        // must be supersets of the initial set with bounded size.
        for obj in [Objective::MaxPenalty, Objective::AvgPenalty] {
            let s = expand_set(&matrix, &initial, initial.len() + 1, obj);
            assert!(s.len() <= initial.len() + 1);
        }
    }
}
