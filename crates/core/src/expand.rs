//! Empirical expansion of a variant set (Sec. VI, Algorithm 1).
//!
//! Given the full variant pool `A`, a sampled instance set `Q`, an
//! objective `F` over per-instance penalties, and a cardinality budget `K`,
//! the greedy procedure repeatedly adds the variant that improves `F` the
//! most, stopping early when no candidate improves it.

use crate::theory::penalty;
use crate::variant::Variant;
use gmc_ir::Instance;

/// Sampled objective functions over per-instance penalties (Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// `F_max`: the largest penalty over the sample.
    MaxPenalty,
    /// `F_avg`: the mean penalty over the sample.
    AvgPenalty,
}

impl Objective {
    fn evaluate(self, penalties: impl Iterator<Item = f64>) -> f64 {
        match self {
            Objective::MaxPenalty => penalties.fold(f64::NEG_INFINITY, f64::max),
            Objective::AvgPenalty => {
                let (mut sum, mut count) = (0.0, 0usize);
                for p in penalties {
                    sum += p;
                    count += 1;
                }
                if count == 0 {
                    f64::INFINITY
                } else {
                    sum / count as f64
                }
            }
        }
    }
}

/// Precomputed per-variant, per-instance costs plus per-instance optima.
///
/// Row `v` of `costs` holds the cost of variant `v` on every instance;
/// `optimal[i]` is the minimum over the *full* pool on instance `i`.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    costs: Vec<Vec<f64>>,
    optimal: Vec<f64>,
}

impl CostMatrix {
    /// Compute a cost matrix using FLOP costs.
    #[must_use]
    pub fn flops(pool: &[Variant], instances: &[Instance]) -> Self {
        Self::with(pool, instances, |v, q| v.flops(q))
    }

    /// Compute a cost matrix over a *partial* pool with externally supplied
    /// per-instance optima (e.g. from the DP solver when the full pool is
    /// too large to enumerate).
    ///
    /// # Panics
    ///
    /// Panics if `optimal.len() != instances.len()`.
    #[must_use]
    pub fn flops_with_optimal(pool: &[Variant], instances: &[Instance], optimal: Vec<f64>) -> Self {
        assert_eq!(optimal.len(), instances.len(), "one optimum per instance");
        let costs: Vec<Vec<f64>> = pool
            .iter()
            .map(|v| instances.iter().map(|q| v.flops(q)).collect())
            .collect();
        CostMatrix { costs, optimal }
    }

    /// Compute a cost matrix with a custom cost function (e.g. a
    /// performance-model time estimate).
    #[must_use]
    pub fn with<F: Fn(&Variant, &Instance) -> f64>(
        pool: &[Variant],
        instances: &[Instance],
        cost: F,
    ) -> Self {
        let costs: Vec<Vec<f64>> = pool
            .iter()
            .map(|v| instances.iter().map(|q| cost(v, q)).collect())
            .collect();
        let optimal = (0..instances.len())
            .map(|i| costs.iter().map(|row| row[i]).fold(f64::INFINITY, f64::min))
            .collect();
        CostMatrix { costs, optimal }
    }

    /// Number of variants in the pool.
    #[must_use]
    pub fn num_variants(&self) -> usize {
        self.costs.len()
    }

    /// Number of sampled instances.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.optimal.len()
    }

    /// Per-instance optimal costs over the full pool.
    #[must_use]
    pub fn optimal(&self) -> &[f64] {
        &self.optimal
    }

    /// The cost of variant `v` on instance `i`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[must_use]
    pub fn cost(&self, v: usize, i: usize) -> f64 {
        self.costs[v][i]
    }

    /// Evaluate the objective of a set of variant indices.
    #[must_use]
    pub fn objective(&self, set: &[usize], objective: Objective) -> f64 {
        objective.evaluate((0..self.num_instances()).map(|i| {
            let best = set
                .iter()
                .map(|&v| self.costs[v][i])
                .fold(f64::INFINITY, f64::min);
            penalty(best, self.optimal[i])
        }))
    }
}

/// Algorithm 1 (`ExpandSet`): greedily grow `initial` (indices into the
/// pool behind `matrix`) to at most `k` variants, minimizing `objective`.
///
/// Returns the expanded index set. Stops early when no candidate improves
/// the objective, exactly as the paper's algorithm does.
#[must_use]
pub fn expand_set(
    matrix: &CostMatrix,
    initial: &[usize],
    k: usize,
    objective: Objective,
) -> Vec<usize> {
    let mut set: Vec<usize> = initial.to_vec();
    let mut v_min = if set.is_empty() {
        f64::INFINITY
    } else {
        matrix.objective(&set, objective)
    };
    while set.len() < k {
        let mut best_candidate: Option<usize> = None;
        let mut v_star = f64::INFINITY;
        for d in 0..matrix.num_variants() {
            if set.contains(&d) {
                continue;
            }
            let mut trial = set.clone();
            trial.push(d);
            let val = matrix.objective(&trial, objective);
            if val < v_star {
                v_star = val;
                best_candidate = Some(d);
            }
        }
        match best_candidate {
            Some(d) if v_star < v_min => {
                set.push(d);
                v_min = v_star;
            }
            _ => return set,
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_variants;
    use crate::theory::select_base_set;
    use gmc_ir::{Features, InstanceSampler, Operand, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_instances() -> (Vec<Variant>, Vec<Instance>, Shape) {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g; 5]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = InstanceSampler::new(&shape, 2, 300);
        let instances = sampler.sample_many(&mut rng, 250);
        let pool = all_variants(&shape).unwrap();
        (pool, instances, shape)
    }

    #[test]
    fn expansion_never_worsens_objective() {
        let (pool, instances, shape) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let base = select_base_set(&shape, &instances, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        let before = matrix.objective(&initial, Objective::AvgPenalty);
        let expanded = expand_set(&matrix, &initial, initial.len() + 2, Objective::AvgPenalty);
        let after = matrix.objective(&expanded, Objective::AvgPenalty);
        assert!(after <= before + 1e-12);
        assert!(expanded.len() <= initial.len() + 2);
        assert!(expanded.starts_with(&initial), "expansion only adds");
    }

    #[test]
    fn full_pool_has_zero_penalty() {
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let all: Vec<usize> = (0..pool.len()).collect();
        assert!(matrix.objective(&all, Objective::MaxPenalty).abs() < 1e-12);
        assert!(matrix.objective(&all, Objective::AvgPenalty).abs() < 1e-12);
    }

    #[test]
    fn expand_from_empty_picks_something() {
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let set = expand_set(&matrix, &[], 1, Objective::AvgPenalty);
        assert_eq!(set.len(), 1);
        // The chosen singleton must be the pool-wide argmin of the objective.
        let chosen = matrix.objective(&set, Objective::AvgPenalty);
        for v in 0..matrix.num_variants() {
            assert!(chosen <= matrix.objective(&[v], Objective::AvgPenalty) + 1e-12);
        }
    }

    #[test]
    fn early_stop_when_no_improvement() {
        let (pool, instances, _) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        // Start from the full pool: nothing can improve.
        let all: Vec<usize> = (0..pool.len()).collect();
        let set = expand_set(&matrix, &all, all.len() + 5, Objective::AvgPenalty);
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn objectives_differ() {
        let (pool, instances, shape) = pool_and_instances();
        let matrix = CostMatrix::flops(&pool, &instances);
        let base = select_base_set(&shape, &instances, matrix.optimal()).unwrap();
        let initial: Vec<usize> = base
            .variants
            .iter()
            .map(|v| pool.iter().position(|p| p.paren() == v.paren()).unwrap())
            .collect();
        // Both objectives run; results may or may not coincide, but both
        // must be supersets of the initial set with bounded size.
        for obj in [Objective::MaxPenalty, Objective::AvgPenalty] {
            let s = expand_set(&matrix, &initial, initial.len() + 1, obj);
            assert!(s.len() <= initial.len() + 1);
        }
    }
}
