//! Naive reference evaluation of a chain, used as a numeric oracle in
//! tests: materialize every `op(M_i)` explicitly (explicit inverses and
//! transposes) and multiply left-to-right with plain GEMM.

use crate::variant::ExecVariantError;
use gmc_ir::{Property, Shape, Structure};
use gmc_kernels::ExecError;
use gmc_linalg::{inverse_general, inverse_spd, matmul, Matrix, Transpose};

/// Evaluate the chain by brute force.
///
/// # Errors
///
/// Returns [`ExecVariantError`] on arity mismatch or a singular explicit
/// inverse.
pub fn evaluate_reference(shape: &Shape, leaves: &[Matrix]) -> Result<Matrix, ExecVariantError> {
    if leaves.len() != shape.len() {
        return Err(ExecVariantError::WrongArity {
            expected: shape.len(),
            got: leaves.len(),
        });
    }
    let mut acc: Option<Matrix> = None;
    for (op, stored) in shape.operands().iter().zip(leaves) {
        let mut m = stored.clone();
        if op.inverted {
            m = match (op.features.structure, op.features.property) {
                (Structure::Symmetric, Property::Spd) => {
                    inverse_spd(&m).map_err(|e| ExecVariantError::Kernel(ExecError::Linalg(e)))?
                }
                _ => inverse_general(&m)
                    .map_err(|e| ExecVariantError::Kernel(ExecError::Linalg(e)))?,
            };
        }
        if op.transposed {
            m = m.transposed();
        }
        acc = Some(match acc {
            None => m,
            Some(prev) => matmul(&prev, Transpose::No, &m, Transpose::No),
        });
    }
    Ok(acc.expect("shape is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Operand};
    use gmc_linalg::{random_general, relative_error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plain_product() {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_general(&mut rng, 3, 4);
        let b = random_general(&mut rng, 4, 2);
        let got = evaluate_reference(&shape, &[a.clone(), b.clone()]).unwrap();
        let want = matmul(&a, Transpose::No, &b, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-14);
    }

    #[test]
    fn arity_checked() {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g]).unwrap();
        assert!(matches!(
            evaluate_reference(&shape, &[Matrix::zeros(2, 2)]),
            Err(ExecVariantError::WrongArity { .. })
        ));
    }
}
