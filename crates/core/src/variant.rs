//! Code variants: sequences of kernel calls that evaluate a chain.
//!
//! A variant is the paper's `{(K_i, (a_i, b_i, c_i))}_{i=1}^{n-1}`
//! representation (Sec. III-B), enriched with everything needed to execute
//! the calls numerically (sides, transposition flags, stored triangles) and
//! with optional *finalizer* steps for the rare cases where an inversion or
//! transposition propagates all the way to the end result (Sec. IV).

use crate::paren::ParenTree;
use gmc_ir::{Instance, Poly, Property, Structure};
use gmc_kernels::{
    execute_assoc, execute_assoc_with, execute_finalize, AssocExec, ExecError, FinalizeKernel,
    Kernel,
};
use gmc_linalg::{GemmWorkspace, Matrix, Side, Triangle};
use std::error::Error;
use std::fmt;

/// Reference to a value during variant execution: either an input matrix or
/// the result of an earlier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValRef {
    /// The `i`-th input matrix of the chain (zero-based).
    Leaf(usize),
    /// The result of step `i` of the variant.
    Temp(usize),
}

/// One association step: a kernel call combining two values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Left operand of the association.
    pub left: ValRef,
    /// Right operand of the association.
    pub right: ValRef,
    /// The assigned kernel.
    pub kernel: Kernel,
    /// Side of the structured/coefficient operand.
    pub side: Side,
    /// Implicit transposition of the left operand.
    pub left_trans: bool,
    /// Implicit transposition of the right operand.
    pub right_trans: bool,
    /// Stored triangle of the left operand, if triangular.
    pub left_tri: Option<Triangle>,
    /// Stored triangle of the right operand, if triangular.
    pub right_tri: Option<Triangle>,
    /// Selects the cheaper branch of two-case cost functions (Table I).
    pub cheap: bool,
    /// Size-symbol triplet `(a, b, c)` in canonical (class-representative)
    /// form: the call multiplies/solves `q_a × q_b` against `q_b × q_c`.
    pub triplet: (usize, usize, usize),
}

/// A finalizer applied to the end result (explicit inverse or transpose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finalize {
    /// The finalizer kernel.
    pub kernel: FinalizeKernel,
    /// Stored triangle, required by [`FinalizeKernel::Trtri`].
    pub tri: Option<Triangle>,
    /// Canonical size symbol of the (square) result for costing.
    pub size_sym: usize,
}

/// Descriptor of the variant's final result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultDesc {
    /// Structure of the delivered result.
    pub structure: Structure,
    /// Property of the delivered result.
    pub property: Property,
    /// Canonical row-size symbol.
    pub rows_sym: usize,
    /// Canonical column-size symbol.
    pub cols_sym: usize,
}

/// Errors from executing a variant on concrete matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecVariantError {
    /// Wrong number of input matrices.
    WrongArity {
        /// Number of matrices the chain expects.
        expected: usize,
        /// Number of matrices supplied.
        got: usize,
    },
    /// Input matrix `index` has dimensions inconsistent with its neighbours.
    DimensionMismatch {
        /// Zero-based input index.
        index: usize,
    },
    /// A kernel call failed.
    Kernel(ExecError),
}

impl fmt::Display for ExecVariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecVariantError::WrongArity { expected, got } => {
                write!(f, "chain expects {expected} matrices, got {got}")
            }
            ExecVariantError::DimensionMismatch { index } => {
                write!(f, "input matrix {index} has inconsistent dimensions")
            }
            ExecVariantError::Kernel(e) => write!(f, "kernel failure: {e}"),
        }
    }
}

impl Error for ExecVariantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecVariantError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for ExecVariantError {
    fn from(e: ExecError) -> Self {
        ExecVariantError::Kernel(e)
    }
}

/// A compiled code variant for one parenthesization of a chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    pub(crate) steps: Vec<Step>,
    pub(crate) finalizes: Vec<Finalize>,
    pub(crate) cost: Poly,
    pub(crate) paren: ParenTree,
    pub(crate) result: ResultDesc,
    pub(crate) num_leaves: usize,
}

impl Variant {
    /// The association steps in execution order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Finalizer steps applied to the end result (usually empty).
    #[must_use]
    pub fn finalizes(&self) -> &[Finalize] {
        &self.finalizes
    }

    /// The symbolic FLOP cost function over canonical size symbols.
    #[must_use]
    pub fn cost_poly(&self) -> &Poly {
        &self.cost
    }

    /// Evaluate the FLOP cost on a concrete instance.
    #[must_use]
    pub fn flops(&self, instance: &Instance) -> f64 {
        self.cost.eval(instance.sizes())
    }

    /// The parenthesization this variant was lowered from.
    #[must_use]
    pub fn paren(&self) -> &ParenTree {
        &self.paren
    }

    /// Descriptor of the delivered result.
    #[must_use]
    pub fn result(&self) -> ResultDesc {
        self.result
    }

    /// Number of chain matrices.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The distinct kernels this variant invokes, in call order.
    #[must_use]
    pub fn kernels_used(&self) -> Vec<Kernel> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.kernel) {
                seen.push(s.kernel);
            }
        }
        seen
    }

    /// Execute the variant on concrete input matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ExecVariantError`] if the inputs have the wrong arity or a
    /// kernel fails (e.g. a numerically singular coefficient).
    pub fn execute(&self, leaves: &[Matrix]) -> Result<Matrix, ExecVariantError> {
        self.execute_steps(leaves, execute_assoc)
    }

    /// [`Variant::execute`] with a caller-provided GEMM packing workspace:
    /// every `GEMM` step packs into `ws` instead of thread-local buffers,
    /// so a session amortizes the packing allocation across evaluations.
    ///
    /// # Errors
    ///
    /// Same as [`Variant::execute`].
    pub fn execute_with(
        &self,
        ws: &mut GemmWorkspace,
        leaves: &[Matrix],
    ) -> Result<Matrix, ExecVariantError> {
        self.execute_steps(leaves, |call, l, r| execute_assoc_with(ws, call, l, r))
    }

    /// [`Variant::execute_with`], additionally reporting each
    /// association step's kernel and measured wall-clock duration to
    /// `on_kernel` — the pipeline tracer's per-kernel hook (finalizer
    /// steps are not timed; they are rare and cheap).
    ///
    /// # Errors
    ///
    /// Same as [`Variant::execute`].
    pub fn execute_observed<F>(
        &self,
        ws: &mut GemmWorkspace,
        leaves: &[Matrix],
        mut on_kernel: F,
    ) -> Result<Matrix, ExecVariantError>
    where
        F: FnMut(Kernel, std::time::Duration),
    {
        self.execute_steps(leaves, |call, l, r| {
            let t = std::time::Instant::now();
            let out = execute_assoc_with(ws, call, l, r);
            on_kernel(call.kernel, t.elapsed());
            out
        })
    }

    fn execute_steps<F>(&self, leaves: &[Matrix], mut exec: F) -> Result<Matrix, ExecVariantError>
    where
        F: FnMut(&AssocExec, &Matrix, &Matrix) -> Result<Matrix, ExecError>,
    {
        if leaves.len() != self.num_leaves {
            return Err(ExecVariantError::WrongArity {
                expected: self.num_leaves,
                got: leaves.len(),
            });
        }
        let mut temps: Vec<Matrix> = Vec::with_capacity(self.steps.len());
        let resolve = |r: ValRef, temps: &[Matrix]| -> Matrix {
            match r {
                ValRef::Leaf(i) => leaves[i].clone(),
                ValRef::Temp(i) => temps[i].clone(),
            }
        };
        for step in &self.steps {
            let left = resolve(step.left, &temps);
            let right = resolve(step.right, &temps);
            let call = AssocExec {
                kernel: step.kernel,
                side: step.side,
                left_trans: step.left_trans,
                right_trans: step.right_trans,
                left_tri: step.left_tri,
                right_tri: step.right_tri,
            };
            temps.push(exec(&call, &left, &right)?);
        }
        let mut result = match temps.pop() {
            Some(m) => m,
            // Single-matrix chain: the "result" is the lone input.
            None => leaves[0].clone(),
        };
        for fin in &self.finalizes {
            result = execute_finalize(fin.kernel, fin.tri, &result)?;
        }
        Ok(result)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "variant for {}:", self.paren)?;
        for (i, s) in self.steps.iter().enumerate() {
            let opnd = |r: ValRef| match r {
                ValRef::Leaf(i) => format!("M{}", i + 1),
                ValRef::Temp(i) => format!("X{}", i + 1),
            };
            writeln!(
                f,
                "  X{} := {}({}{}, {}{})   (a,b,c)=({},{},{})",
                i + 1,
                s.kernel,
                opnd(s.left),
                if s.left_trans { "^T" } else { "" },
                opnd(s.right),
                if s.right_trans { "^T" } else { "" },
                s.triplet.0,
                s.triplet.1,
                s.triplet.2,
            )?;
        }
        for fin in &self.finalizes {
            writeln!(f, "  finalize: {}", fin.kernel)?;
        }
        write!(f, "  cost = {}", self.cost)
    }
}
