//! Enumeration of the full variant set `A` for a shape.
//!
//! The pool grows as `Catalan(n - 1)` — 132 variants for `n = 7`, 58 786
//! for `n = 12`, ~2.7 million for `n = 15` — so enumeration is guarded by
//! an explicit variant cap ([`DEFAULT_VARIANT_CAP`], configurable via
//! [`all_variants_capped`] or
//! [`crate::session::CompileSession::set_variant_cap`]). Chains past the
//! cap get a typed [`EnumerateError::PoolTooLarge`] instead of an
//! unbounded allocation blowup; use [`crate::dp::optimal_cost`] for the
//! per-instance optimum without materializing `A`.
//!
//! # Enumeration modes
//!
//! Two interchangeable engines build the pool, selected by
//! [`EnumMode`]:
//!
//! * [`EnumMode::Memoized`] (the default): the span-DAG engine
//!   ([`crate::pool::PoolBuilder`]) lowers each distinct sub-span
//!   parenthesization once and assembles variants by fragment splicing —
//!   per-fragment instead of per-tree work.
//! * [`EnumMode::Naive`]: one [`crate::builder::build_variant`] call per
//!   tree, the cross-checked reference.
//!
//! Both produce **bit-identical pools** (same order, same steps and
//! `ValRef`s, same exact cost polynomials), pinned by
//! `crates/core/tests/pool_memo.rs`. The `GMC_ENUM` environment variable
//! (`naive` / `memo`, read once, mirroring `GMC_SIMD`) pins the default
//! used by sessions and free functions, so the reference rung stays
//! exercisable on any host and in benches; [`force_enum_mode`] overrides
//! both for diagnostics, and [`build_pool_with_mode`] takes the mode
//! explicitly (no global state) for tests and benchmarks.

use crate::builder::{build_variant, BuildError};
use crate::paren::ParenTree;
use crate::pool::PoolBuilder;
use crate::variant::Variant;
use gmc_ir::Shape;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Default cap on the number of variants [`all_variants`] will build.
///
/// Catalan(12) = 208 012 exceeds it; every chain of the paper's
/// experiments (`n <= 10`) fits comfortably.
pub const DEFAULT_VARIANT_CAP: u64 = 1 << 16;

/// Errors from enumerating the variant pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumerateError {
    /// Variant construction failed.
    Build(BuildError),
    /// The chain's `Catalan(n - 1)` pool exceeds the configured cap.
    PoolTooLarge {
        /// Number of parenthesizations the chain admits.
        variants: u128,
        /// The cap that was exceeded.
        cap: u64,
    },
}

impl fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumerateError::Build(e) => write!(f, "variant construction failed: {e}"),
            EnumerateError::PoolTooLarge { variants, cap } => write!(
                f,
                "variant pool has {variants} parenthesizations, over the cap of {cap}; \
                 use the DP solver for long chains"
            ),
        }
    }
}

impl Error for EnumerateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnumerateError::Build(e) => Some(e),
            EnumerateError::PoolTooLarge { .. } => None,
        }
    }
}

impl From<BuildError> for EnumerateError {
    fn from(e: BuildError) -> Self {
        EnumerateError::Build(e)
    }
}

/// Which engine builds the variant pool (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumMode {
    /// Span-DAG fragment memoization: lower each distinct sub-span once,
    /// assemble variants by splice + renumber (the default).
    Memoized,
    /// One `build_variant` call per tree: the reference lowering.
    Naive,
}

impl EnumMode {
    /// Stable lower-case name (`memo` / `naive`), as accepted by the
    /// `GMC_ENUM` environment variable.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnumMode::Memoized => "memo",
            EnumMode::Naive => "naive",
        }
    }
}

/// Process-global override set by [`force_enum_mode`]: 0 = none, 1 =
/// memoized, 2 = naive.
static FORCED_ENUM: AtomicU8 = AtomicU8::new(0);

/// Force every pool build onto one engine (`None` restores the
/// `GMC_ENUM` / default resolution). For benchmarks and diagnostics —
/// the override is process-global, like [`crate::simd::force_level`];
/// callers that need a *specific* engine without global state should use
/// [`build_pool_with_mode`].
pub fn force_enum_mode(mode: Option<EnumMode>) {
    FORCED_ENUM.store(
        match mode {
            None => 0,
            Some(EnumMode::Memoized) => 1,
            Some(EnumMode::Naive) => 2,
        },
        Ordering::Relaxed,
    );
}

/// Mode requested by the `GMC_ENUM` environment variable, read once.
/// Unrecognized values are reported on stderr and ignored — a typo must
/// not silently disable (or pretend to apply) the pin.
fn env_enum_mode() -> EnumMode {
    static MODE: OnceLock<EnumMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("GMC_ENUM").as_deref() {
        Ok("naive" | "reference") => EnumMode::Naive,
        Ok("memo" | "memoized") | Err(_) => EnumMode::Memoized,
        Ok(other) => {
            eprintln!(
                "gmc-core: ignoring unrecognized GMC_ENUM=`{other}` \
                 (expected naive|memo)"
            );
            EnumMode::Memoized
        }
    })
}

/// The engine pool builds run on: [`force_enum_mode`] if set, else the
/// `GMC_ENUM` environment variable, else [`EnumMode::Memoized`].
#[must_use]
pub fn active_enum_mode() -> EnumMode {
    match FORCED_ENUM.load(Ordering::Relaxed) {
        1 => EnumMode::Memoized,
        2 => EnumMode::Naive,
        _ => env_enum_mode(),
    }
}

/// Build the deterministic variant for *every* parenthesization of the
/// chain — the set `A` of Sec. V, one variant per parenthesization —
/// refusing pools larger than [`DEFAULT_VARIANT_CAP`].
///
/// # Errors
///
/// Returns [`EnumerateError::PoolTooLarge`] past the cap and propagates
/// [`BuildError`] (unreachable for valid shapes).
pub fn all_variants(shape: &Shape) -> Result<Vec<Variant>, EnumerateError> {
    all_variants_capped(shape, DEFAULT_VARIANT_CAP)
}

/// [`all_variants`] with an explicit variant cap.
///
/// # Errors
///
/// Same as [`all_variants`], against the supplied `cap`.
pub fn all_variants_capped(shape: &Shape, cap: u64) -> Result<Vec<Variant>, EnumerateError> {
    let count = ParenTree::count(shape.len());
    if count > u128::from(cap) {
        return Err(EnumerateError::PoolTooLarge {
            variants: count,
            cap,
        });
    }
    match active_enum_mode() {
        EnumMode::Memoized => PoolBuilder::full_pool(shape, 1),
        EnumMode::Naive => {
            let trees = ParenTree::enumerate(0, shape.len() - 1);
            build_pool_naive(shape, &trees, 1)
        }
    }
    .map_err(EnumerateError::Build)
}

/// Lower a list of parenthesizations into variants with an explicit
/// [`EnumMode`] (no global state — for tests and benchmarks comparing
/// the engines), splitting the work across up to `jobs` threads. The
/// output is bit-identical for every mode and `jobs` value.
///
/// # Errors
///
/// Propagates [`BuildError`] for the first failing tree (unreachable
/// for valid shapes and well-formed trees).
pub fn build_pool_with_mode(
    shape: &Shape,
    trees: &[ParenTree],
    jobs: usize,
    mode: EnumMode,
) -> Result<Vec<Variant>, BuildError> {
    match mode {
        EnumMode::Memoized => PoolBuilder::new().build_for_trees(None, shape, trees, jobs),
        EnumMode::Naive => build_pool_naive(shape, trees, jobs),
    }
}

/// The reference pool build: one [`build_variant`] per tree, results
/// written back in tree order (identical output for every `jobs`
/// value).
pub(crate) fn build_pool_naive(
    shape: &Shape,
    trees: &[ParenTree],
    jobs: usize,
) -> Result<Vec<Variant>, BuildError> {
    map_collect(trees, jobs, |t| build_variant(shape, t))
}

/// Map `f` over `items` into a `Vec`, fanning the work out across up to
/// `jobs` threads when the `parallel` feature is on and the slice is
/// large enough to amortize thread spawns. Results come back in item
/// order (per-chunk `Vec`s, flattened — no per-element `Option`
/// bookkeeping), and the first `Err` in item order wins, so output is
/// identical for every `jobs` value. Shared by the naive per-tree pool
/// build and the memoized engine's variant assembly.
pub(crate) fn map_collect<T, V, E, F>(items: &[T], jobs: usize, f: F) -> Result<Vec<V>, E>
where
    T: Sync,
    V: Send,
    E: Send,
    F: Fn(&T) -> Result<V, E> + Sync,
{
    #[cfg(feature = "parallel")]
    if jobs > 1 && items.len() >= 2 * PAR_MIN_TREES_PER_JOB {
        let jobs = jobs.min(items.len() / PAR_MIN_TREES_PER_JOB).max(1);
        let chunk = items.len().div_ceil(jobs);
        let mut chunks: Vec<Vec<Result<V, E>>> = items
            .chunks(chunk)
            .map(|c| Vec::with_capacity(c.len()))
            .collect();
        rayon::scope(|s| {
            for (ichunk, out) in items.chunks(chunk).zip(chunks.iter_mut()) {
                let f = &f;
                s.spawn(move |_| out.extend(ichunk.iter().map(f)));
            }
        });
        return chunks.into_iter().flatten().collect();
    }
    let _ = jobs;
    items.iter().map(&f).collect()
}

/// Below this many trees per worker, thread spawn overhead dominates
/// (the vendored rayon shim spawns OS threads, not pool tasks).
#[cfg(feature = "parallel")]
const PAR_MIN_TREES_PER_JOB: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Instance, Operand};

    #[test]
    fn counts_match_catalan() {
        let g = Operand::plain(Features::general());
        for n in 1..=6 {
            let shape = Shape::new(vec![g; n]).unwrap();
            let vs = all_variants(&shape).unwrap();
            assert_eq!(vs.len() as u128, ParenTree::count(n));
        }
    }

    #[test]
    fn pool_cap_yields_typed_error() {
        let g = Operand::plain(Features::general());
        // n = 12: Catalan(11) = 58786 exceeds a cap of 1000.
        let shape = Shape::new(vec![g; 12]).unwrap();
        match all_variants_capped(&shape, 1000) {
            Err(EnumerateError::PoolTooLarge { variants, cap }) => {
                assert_eq!(variants, 58_786);
                assert_eq!(cap, 1000);
            }
            other => panic!("expected PoolTooLarge, got {other:?}"),
        }
        // The default cap admits n = 7 (Catalan 132) without complaint.
        let shape = Shape::new(vec![g; 7]).unwrap();
        assert_eq!(all_variants(&shape).unwrap().len(), 132);
        // And refuses n = 15 (~2.7M) before allocating anything.
        let shape = Shape::new(vec![g; 15]).unwrap();
        assert!(matches!(
            all_variants(&shape),
            Err(EnumerateError::PoolTooLarge { .. })
        ));
    }

    #[test]
    fn modes_build_identical_pools_serial_and_parallel() {
        let g = Operand::plain(Features::general());
        let l = Operand::plain(Features::new(
            gmc_ir::Structure::LowerTri,
            gmc_ir::Property::NonSingular,
        ));
        // n = 7: 132 trees, enough to engage the parallel chunking.
        let shape = Shape::new(vec![g, l.inverted(), g, g.transposed(), l, g, g]).unwrap();
        let trees = ParenTree::enumerate(0, 6);
        let naive = build_pool_with_mode(&shape, &trees, 1, EnumMode::Naive).unwrap();
        let memo = build_pool_with_mode(&shape, &trees, 1, EnumMode::Memoized).unwrap();
        assert_eq!(naive, memo, "exact pool equality across engines");
        for jobs in [2, 4] {
            assert_eq!(
                build_pool_with_mode(&shape, &trees, jobs, EnumMode::Naive).unwrap(),
                naive,
                "naive jobs={jobs}"
            );
            assert_eq!(
                build_pool_with_mode(&shape, &trees, jobs, EnumMode::Memoized).unwrap(),
                memo,
                "memo jobs={jobs}"
            );
        }
    }

    #[test]
    fn classic_mcp_motivating_example() {
        // Column vectors x, y, z in R^m: x^T (y z^T) performs m times more
        // multiplications than (x^T y) z^T (Sec. I of the paper).
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g.transposed(), g, g.transposed()]).unwrap();
        // q = (1, m, 1, m): x^T is 1 x m, y is m x 1, z^T is 1 x m.
        let m = 100;
        let inst = Instance::new(vec![1, m, 1, m]);
        let vs = all_variants(&shape).unwrap();
        assert_eq!(vs.len(), 2);
        let costs: Vec<f64> = vs.iter().map(|v| v.flops(&inst)).collect();
        let (lo, hi) = (
            costs.iter().cloned().fold(f64::INFINITY, f64::min),
            costs.iter().cloned().fold(0.0, f64::max),
        );
        // Ratio m: 2*m*1*m + 2*1*m*m vs 2*1*m*1 + 2*1*1*m.
        assert!(
            (hi / lo - m as f64 / 1.0).abs() < 1.0,
            "ratio = {}",
            hi / lo
        );
    }

    #[test]
    fn sec_v_cost_ratio_example() {
        // For G1 G2 G3 with q = (1, s, 1, s), the ratio of the right-to-left
        // to the left-to-right cost q1 q3 (q0+q2) / (q0 q2 (q1+q3)) = s^2
        // ... grows without bound as s grows.
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g, g]).unwrap();
        for s in [10u64, 100, 1000] {
            let inst = Instance::new(vec![1, s, 1, s]);
            let vs = all_variants(&shape).unwrap();
            let costs: Vec<f64> = vs.iter().map(|v| v.flops(&inst)).collect();
            let ratio = costs.iter().cloned().fold(0.0, f64::max)
                / costs.iter().cloned().fold(f64::INFINITY, f64::min);
            let expect = (s * s) as f64 * (1.0 + 1.0) / (s as f64 * 2.0); // q1 q3 (q0+q2) / (q0 q2 (q1+q3))
            assert!((ratio - expect).abs() / expect < 1e-9, "s = {s}");
        }
    }
}
