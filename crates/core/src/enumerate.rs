//! Enumeration of the full variant set `A` for a shape.

use crate::builder::{build_variant, BuildError};
use crate::paren::ParenTree;
use crate::variant::Variant;
use gmc_ir::Shape;

/// Build the deterministic variant for *every* parenthesization of the
/// chain — the set `A` of Sec. V, one variant per parenthesization.
///
/// The number of variants is `Catalan(n - 1)` (132 for `n = 7`); this is
/// intended for the chain lengths of the paper's experiments. For long
/// chains prefer [`crate::dp::optimal_cost`] to obtain the per-instance
/// optimum without materializing `A`.
///
/// # Errors
///
/// Propagates [`BuildError`] (unreachable for valid shapes).
pub fn all_variants(shape: &Shape) -> Result<Vec<Variant>, BuildError> {
    ParenTree::enumerate(0, shape.len() - 1)
        .iter()
        .map(|t| build_variant(shape, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Instance, Operand};

    #[test]
    fn counts_match_catalan() {
        let g = Operand::plain(Features::general());
        for n in 1..=6 {
            let shape = Shape::new(vec![g; n]).unwrap();
            let vs = all_variants(&shape).unwrap();
            assert_eq!(vs.len() as u128, ParenTree::count(n));
        }
    }

    #[test]
    fn classic_mcp_motivating_example() {
        // Column vectors x, y, z in R^m: x^T (y z^T) performs m times more
        // multiplications than (x^T y) z^T (Sec. I of the paper).
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g.transposed(), g, g.transposed()]).unwrap();
        // q = (1, m, 1, m): x^T is 1 x m, y is m x 1, z^T is 1 x m.
        let m = 100;
        let inst = Instance::new(vec![1, m, 1, m]);
        let vs = all_variants(&shape).unwrap();
        assert_eq!(vs.len(), 2);
        let costs: Vec<f64> = vs.iter().map(|v| v.flops(&inst)).collect();
        let (lo, hi) = (
            costs.iter().cloned().fold(f64::INFINITY, f64::min),
            costs.iter().cloned().fold(0.0, f64::max),
        );
        // Ratio m: 2*m*1*m + 2*1*m*m vs 2*1*m*1 + 2*1*1*m.
        assert!(
            (hi / lo - m as f64 / 1.0).abs() < 1.0,
            "ratio = {}",
            hi / lo
        );
    }

    #[test]
    fn sec_v_cost_ratio_example() {
        // For G1 G2 G3 with q = (1, s, 1, s), the ratio of the right-to-left
        // to the left-to-right cost q1 q3 (q0+q2) / (q0 q2 (q1+q3)) = s^2
        // ... grows without bound as s grows.
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g, g]).unwrap();
        for s in [10u64, 100, 1000] {
            let inst = Instance::new(vec![1, s, 1, s]);
            let vs = all_variants(&shape).unwrap();
            let costs: Vec<f64> = vs.iter().map(|v| v.flops(&inst)).collect();
            let ratio = costs.iter().cloned().fold(0.0, f64::max)
                / costs.iter().cloned().fold(f64::INFINITY, f64::min);
            let expect = (s * s) as f64 * (1.0 + 1.0) / (s as f64 * 2.0); // q1 q3 (q0+q2) / (q0 q2 (q1+q3))
            assert!((ratio - expect).abs() / expect < 1e-9, "s = {s}");
        }
    }
}
