//! Enumeration of the full variant set `A` for a shape.
//!
//! The pool grows as `Catalan(n - 1)` — 132 variants for `n = 7`, 58 786
//! for `n = 12`, ~2.7 million for `n = 15` — so enumeration is guarded by
//! an explicit variant cap ([`DEFAULT_VARIANT_CAP`], configurable via
//! [`all_variants_capped`] or
//! [`crate::session::CompileSession::set_variant_cap`]). Chains past the
//! cap get a typed [`EnumerateError::PoolTooLarge`] instead of an
//! unbounded allocation blowup; use [`crate::dp::optimal_cost`] for the
//! per-instance optimum without materializing `A`.

use crate::builder::{build_variant, BuildError};
use crate::paren::ParenTree;
use crate::variant::Variant;
use gmc_ir::Shape;
use std::error::Error;
use std::fmt;

/// Default cap on the number of variants [`all_variants`] will build.
///
/// Catalan(12) = 208 012 exceeds it; every chain of the paper's
/// experiments (`n <= 10`) fits comfortably.
pub const DEFAULT_VARIANT_CAP: u64 = 1 << 16;

/// Errors from enumerating the variant pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumerateError {
    /// Variant construction failed.
    Build(BuildError),
    /// The chain's `Catalan(n - 1)` pool exceeds the configured cap.
    PoolTooLarge {
        /// Number of parenthesizations the chain admits.
        variants: u128,
        /// The cap that was exceeded.
        cap: u64,
    },
}

impl fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumerateError::Build(e) => write!(f, "variant construction failed: {e}"),
            EnumerateError::PoolTooLarge { variants, cap } => write!(
                f,
                "variant pool has {variants} parenthesizations, over the cap of {cap}; \
                 use the DP solver for long chains"
            ),
        }
    }
}

impl Error for EnumerateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnumerateError::Build(e) => Some(e),
            EnumerateError::PoolTooLarge { .. } => None,
        }
    }
}

impl From<BuildError> for EnumerateError {
    fn from(e: BuildError) -> Self {
        EnumerateError::Build(e)
    }
}

/// Build the deterministic variant for *every* parenthesization of the
/// chain — the set `A` of Sec. V, one variant per parenthesization —
/// refusing pools larger than [`DEFAULT_VARIANT_CAP`].
///
/// # Errors
///
/// Returns [`EnumerateError::PoolTooLarge`] past the cap and propagates
/// [`BuildError`] (unreachable for valid shapes).
pub fn all_variants(shape: &Shape) -> Result<Vec<Variant>, EnumerateError> {
    all_variants_capped(shape, DEFAULT_VARIANT_CAP)
}

/// [`all_variants`] with an explicit variant cap.
///
/// # Errors
///
/// Same as [`all_variants`], against the supplied `cap`.
pub fn all_variants_capped(shape: &Shape, cap: u64) -> Result<Vec<Variant>, EnumerateError> {
    let count = ParenTree::count(shape.len());
    if count > u128::from(cap) {
        return Err(EnumerateError::PoolTooLarge {
            variants: count,
            cap,
        });
    }
    let trees = ParenTree::enumerate(0, shape.len() - 1);
    build_pool(shape, &trees, 1).map_err(EnumerateError::Build)
}

/// Lower a list of parenthesizations into variants, splitting the work
/// across up to `jobs` threads. The output order (and every variant in
/// it) is identical for every `jobs` value: lowering is per-tree
/// deterministic and results are written back in tree order.
pub(crate) fn build_pool(
    shape: &Shape,
    trees: &[ParenTree],
    jobs: usize,
) -> Result<Vec<Variant>, BuildError> {
    #[cfg(feature = "parallel")]
    if jobs > 1 && trees.len() >= 2 * PAR_MIN_TREES_PER_JOB {
        let jobs = jobs.min(trees.len() / PAR_MIN_TREES_PER_JOB).max(1);
        let chunk = trees.len().div_ceil(jobs);
        let mut out: Vec<Option<Result<Variant, BuildError>>> =
            (0..trees.len()).map(|_| None).collect();
        rayon::scope(|s| {
            for (tchunk, ochunk) in trees.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (t, o) in tchunk.iter().zip(ochunk.iter_mut()) {
                        *o = Some(build_variant(shape, t));
                    }
                });
            }
        });
        return out
            .into_iter()
            .map(|r| r.expect("every tree lowered"))
            .collect();
    }
    let _ = jobs;
    trees.iter().map(|t| build_variant(shape, t)).collect()
}

/// Below this many trees per worker, thread spawn overhead dominates
/// (the vendored rayon shim spawns OS threads, not pool tasks).
#[cfg(feature = "parallel")]
const PAR_MIN_TREES_PER_JOB: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Instance, Operand};

    #[test]
    fn counts_match_catalan() {
        let g = Operand::plain(Features::general());
        for n in 1..=6 {
            let shape = Shape::new(vec![g; n]).unwrap();
            let vs = all_variants(&shape).unwrap();
            assert_eq!(vs.len() as u128, ParenTree::count(n));
        }
    }

    #[test]
    fn pool_cap_yields_typed_error() {
        let g = Operand::plain(Features::general());
        // n = 12: Catalan(11) = 58786 exceeds a cap of 1000.
        let shape = Shape::new(vec![g; 12]).unwrap();
        match all_variants_capped(&shape, 1000) {
            Err(EnumerateError::PoolTooLarge { variants, cap }) => {
                assert_eq!(variants, 58_786);
                assert_eq!(cap, 1000);
            }
            other => panic!("expected PoolTooLarge, got {other:?}"),
        }
        // The default cap admits n = 7 (Catalan 132) without complaint.
        let shape = Shape::new(vec![g; 7]).unwrap();
        assert_eq!(all_variants(&shape).unwrap().len(), 132);
        // And refuses n = 15 (~2.7M) before allocating anything.
        let shape = Shape::new(vec![g; 15]).unwrap();
        assert!(matches!(
            all_variants(&shape),
            Err(EnumerateError::PoolTooLarge { .. })
        ));
    }

    #[test]
    fn classic_mcp_motivating_example() {
        // Column vectors x, y, z in R^m: x^T (y z^T) performs m times more
        // multiplications than (x^T y) z^T (Sec. I of the paper).
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g.transposed(), g, g.transposed()]).unwrap();
        // q = (1, m, 1, m): x^T is 1 x m, y is m x 1, z^T is 1 x m.
        let m = 100;
        let inst = Instance::new(vec![1, m, 1, m]);
        let vs = all_variants(&shape).unwrap();
        assert_eq!(vs.len(), 2);
        let costs: Vec<f64> = vs.iter().map(|v| v.flops(&inst)).collect();
        let (lo, hi) = (
            costs.iter().cloned().fold(f64::INFINITY, f64::min),
            costs.iter().cloned().fold(0.0, f64::max),
        );
        // Ratio m: 2*m*1*m + 2*1*m*m vs 2*1*m*1 + 2*1*1*m.
        assert!(
            (hi / lo - m as f64 / 1.0).abs() < 1.0,
            "ratio = {}",
            hi / lo
        );
    }

    #[test]
    fn sec_v_cost_ratio_example() {
        // For G1 G2 G3 with q = (1, s, 1, s), the ratio of the right-to-left
        // to the left-to-right cost q1 q3 (q0+q2) / (q0 q2 (q1+q3)) = s^2
        // ... grows without bound as s grows.
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g, g]).unwrap();
        for s in [10u64, 100, 1000] {
            let inst = Instance::new(vec![1, s, 1, s]);
            let vs = all_variants(&shape).unwrap();
            let costs: Vec<f64> = vs.iter().map(|v| v.flops(&inst)).collect();
            let ratio = costs.iter().cloned().fold(0.0, f64::max)
                / costs.iter().cloned().fold(f64::INFINITY, f64::min);
            let expect = (s * s) as f64 * (1.0 + 1.0) / (s as f64 * 2.0); // q1 q3 (q0+q2) / (q0 q2 (q1+q3))
            assert!((ratio - expect).abs() / expect < 1e-9, "s = {s}");
        }
    }
}
