//! A registry of compiled chains.
//!
//! Fig. 1 of the paper notes that "an application can contain multiple
//! sets of generated code: one for each type of generalized matrix chain
//! used by the application". [`ChainLibrary`] is that container: named
//! compiled chains behind one lookup-and-evaluate interface.

use crate::program::{CompileOptions, CompiledChain, CostModel, ProgramError};
use gmc_ir::Shape;
use gmc_linalg::Matrix;
use std::collections::BTreeMap;

/// A named collection of compiled chains.
#[derive(Debug, Clone, Default)]
pub struct ChainLibrary {
    chains: BTreeMap<String, CompiledChain>,
}

impl ChainLibrary {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        ChainLibrary::default()
    }

    /// Compile `shape` with default options and register it under `name`,
    /// replacing any previous entry with that name.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn compile(&mut self, name: &str, shape: Shape) -> Result<&CompiledChain, ProgramError> {
        let chain = CompiledChain::compile(shape)?;
        self.chains.insert(name.to_string(), chain);
        Ok(&self.chains[name])
    }

    /// Compile with explicit options and register.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn compile_with(
        &mut self,
        name: &str,
        shape: Shape,
        options: &CompileOptions,
    ) -> Result<&CompiledChain, ProgramError> {
        let chain = CompiledChain::compile_with(shape, options)?;
        self.chains.insert(name.to_string(), chain);
        Ok(&self.chains[name])
    }

    /// Register an already-compiled chain.
    pub fn insert(&mut self, name: &str, chain: CompiledChain) {
        self.chains.insert(name.to_string(), chain);
    }

    /// Look up a chain.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&CompiledChain> {
        self.chains.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.chains.keys().map(String::as_str)
    }

    /// Number of registered chains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// `true` if no chains are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Evaluate a registered chain on concrete matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::InconsistentSizes`] if `name` is unknown,
    /// and propagates evaluation errors.
    pub fn evaluate(&self, name: &str, leaves: &[Matrix]) -> Result<Matrix, ProgramError> {
        match self.get(name) {
            Some(chain) => chain.evaluate(leaves),
            None => Err(ProgramError::InconsistentSizes(format!(
                "no chain registered under `{name}`"
            ))),
        }
    }

    /// Evaluate with a custom dispatch cost model.
    ///
    /// # Errors
    ///
    /// Same as [`ChainLibrary::evaluate`].
    pub fn evaluate_with<M: CostModel>(
        &self,
        name: &str,
        leaves: &[Matrix],
        model: &M,
    ) -> Result<Matrix, ProgramError> {
        match self.get(name) {
            Some(chain) => chain.evaluate_with(leaves, model),
            None => Err(ProgramError::InconsistentSizes(format!(
                "no chain registered under `{name}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Operand, Property, Structure};
    use gmc_linalg::{random_general, random_spd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn register_and_evaluate_multiple_chains() {
        let g = Operand::plain(Features::general());
        let p = Operand::plain(Features::new(Structure::Symmetric, Property::Spd)).inverted();
        let mut lib = ChainLibrary::new();
        lib.compile("product", Shape::new(vec![g, g]).unwrap())
            .unwrap();
        lib.compile("solve", Shape::new(vec![p, g]).unwrap())
            .unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.names().collect::<Vec<_>>(), vec!["product", "solve"]);

        let mut rng = StdRng::seed_from_u64(1);
        let a = random_general(&mut rng, 3, 5);
        let b = random_general(&mut rng, 5, 2);
        let x = lib.evaluate("product", &[a, b]).unwrap();
        assert_eq!((x.rows(), x.cols()), (3, 2));

        let pm = random_spd(&mut rng, 4);
        let c = random_general(&mut rng, 4, 3);
        let y = lib.evaluate("solve", &[pm, c]).unwrap();
        assert_eq!((y.rows(), y.cols()), (4, 3));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let lib = ChainLibrary::new();
        assert!(lib.evaluate("missing", &[]).is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn reregistration_replaces() {
        let g = Operand::plain(Features::general());
        let mut lib = ChainLibrary::new();
        lib.compile("c", Shape::new(vec![g, g]).unwrap()).unwrap();
        lib.compile("c", Shape::new(vec![g, g, g]).unwrap())
            .unwrap();
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get("c").unwrap().shape().len(), 3);
    }
}
