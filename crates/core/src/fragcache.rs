//! Cross-shape fragment store keyed by span-local descriptor runs.
//!
//! [`PoolBuilder`](crate::PoolBuilder)'s span-DAG memo (PR 5) lowers each
//! distinct sub-tree of *one* shape exactly once, but the memo is keyed by a
//! single `ShapeId` and dropped on every shape change. A lowered fragment,
//! however, depends only on three inputs:
//!
//! 1. the [`BuildOptions`] in effect,
//! 2. the span's run of leaf descriptors (structure, property, transpose /
//!    inverse flags, and the *local* size-symbol pattern), and
//! 3. the span-local parenthesization (two trees over the same run lower to
//!    different steps and costs).
//!
//! Crucially, `Shape::size_classes` merges only **adjacent** size symbols, so
//! the size-equivalence partition restricted to a span's positions is fully
//! determined by the span's own operands — two spans with identical descriptor
//! runs are interchangeable no matter which shapes they came from. That makes
//! a cross-shape store sound: [`FragmentCache`] maps
//! `(options, descriptor run, tree)` — all renumbered to a span-local frame —
//! to the lowered [`Fragment`] (or the [`BuildError`] the lowering produced,
//! so failures are also exact-once).
//!
//! # Frames and relocation
//!
//! Entries remember the *frame* (chain offset + global size symbols) they were
//! lowered in. A lookup from the same frame — the common case when related
//! shapes share a prefix — returns the cached `Arc<Fragment>` with no work at
//! all. A lookup from a different frame relocates the fragment once: leaf
//! indices are shifted and size symbols renamed through
//! [`Poly::rename_vars`](gmc_ir::Poly::rename_vars). Both paths are exact
//! (rational coefficients, structural renames), so pools assembled from the
//! store are bit-identical to pools built with the store disabled.
//!
//! # Bounding and observability
//!
//! The store is LRU-bounded (default
//! [`DEFAULT_FRAG_CACHE_CAPACITY`](crate::DEFAULT_FRAG_CACHE_CAPACITY)
//! entries) and keeps [`FragCacheStats`] counters — hits, misses, insertions,
//! evictions, and snapshot-restored entries — mirroring the chain cache's
//! [`CacheStats`](crate::CacheStats) treatment. `GMC_FRAG=off|on` (or
//! [`force_frag_mode`] from code) disables or re-enables store consultation in
//! [`CompileSession`](crate::CompileSession), mirroring `GMC_SIMD`/`GMC_ENUM`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use crate::builder::{BuildError, BuildOptions, Fragment, NodeDesc};
use crate::variant::ValRef;

/// Multiply-rotate hasher (the classic `fxhash` recipe) for the hot-path
/// maps: store keys carry a precomputed SipHash-quality content hash, and
/// the span-DAG interner hashes small id pairs, so both want mixing that
/// costs a couple of cycles instead of a full SipHash permutation.
#[derive(Default)]
pub(crate) struct FxHasher64(u64);

impl FxHasher64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the high bits down: hashbrown derives both its control
        // byte and its bucket index from opposite ends of the word.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
#[derive(Default, Clone)]
pub(crate) struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher64;

    #[inline]
    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::default()
    }
}

/// Whether [`CompileSession`](crate::CompileSession) consults the fragment
/// store during enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragMode {
    /// Consult and populate the cross-shape fragment store (default).
    On,
    /// Bypass the store entirely; every node is lowered from scratch.
    Off,
}

impl FragMode {
    /// Stable lowercase name, as accepted by `GMC_FRAG`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FragMode::On => "on",
            FragMode::Off => "off",
        }
    }
}

/// Process-wide override: 0 = none, 1 = on, 2 = off.
static FORCED_FRAG: AtomicU8 = AtomicU8::new(0);

/// Force a fragment-store mode for the current process, overriding the
/// `GMC_FRAG` environment variable. `None` restores env-driven selection.
///
/// Used by benches to measure the store-off control without re-spawning.
pub fn force_frag_mode(mode: Option<FragMode>) {
    let v = match mode {
        None => 0,
        Some(FragMode::On) => 1,
        Some(FragMode::Off) => 2,
    };
    FORCED_FRAG.store(v, Ordering::Relaxed);
}

/// Read `GMC_FRAG` once; unrecognized values warn and fall back to `on`.
fn env_frag_mode() -> FragMode {
    static MODE: OnceLock<FragMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("GMC_FRAG").as_deref() {
        Ok("off") => FragMode::Off,
        Ok("on") | Err(_) => FragMode::On,
        Ok(other) => {
            eprintln!("gmc: unrecognized GMC_FRAG={other:?}; expected \"off\" or \"on\"");
            FragMode::On
        }
    })
}

/// The fragment-store mode in effect: a [`force_frag_mode`] override if one
/// is set, otherwise the `GMC_FRAG` environment variable, otherwise `On`.
#[must_use]
pub fn active_frag_mode() -> FragMode {
    match FORCED_FRAG.load(Ordering::Relaxed) {
        1 => FragMode::On,
        2 => FragMode::Off,
        _ => env_frag_mode(),
    }
}

/// Hit/miss/insert/eviction counters for a [`FragmentCache`].
///
/// `restored` counts entries imported from a session snapshot; all counters
/// are cumulative over the cache's lifetime (capacity changes and evictions
/// do not reset them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragCacheStats {
    /// Lookups served from the store (same-frame and relocated alike).
    pub hits: u64,
    /// Lookups that found no entry and fell through to a fresh lowering.
    pub misses: u64,
    /// Fragments (or cached failures) inserted after a miss.
    pub inserts: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries imported from a session snapshot.
    pub restored: u64,
}

impl FragCacheStats {
    /// Fraction of lookups served from the store; 0.0 when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate `other` into `self` (used when merging shard stats).
    pub fn absorb(&mut self, other: &FragCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.restored += other.restored;
    }
}

/// Span-local identity of a lowered fragment.
///
/// `run` holds the span's leaf descriptors with size symbols renumbered to
/// first-occurrence order over the span's positions and sources rebased to
/// `Leaf(0..)`; `tree` is the span-local parenthesization encoded as a
/// preorder bit string (1 = internal node, 0 = leaf), which fits in a `u128`
/// for spans up to 64 leaves. Wider spans bypass the store.
///
/// The run is shared (`Arc`) and its hash precomputed: every tree over the
/// same span reuses one run allocation and one content hash, so keying a
/// node costs O(1) on top of the store's `HashMap` probe — the overhead a
/// cold store pays per miss.
#[derive(Debug, Clone)]
pub(crate) struct FragKey {
    pub(crate) options: BuildOptions,
    pub(crate) tree: u128,
    pub(crate) run: Arc<[NodeDesc]>,
    run_hash: u64,
}

impl FragKey {
    /// Key a span-local tree over a descriptor run (hashing the run once;
    /// callers sharing a span pass clones of one `Arc`).
    pub(crate) fn new(options: BuildOptions, tree: u128, run: Arc<[NodeDesc]>) -> Self {
        let run_hash = Self::hash_run(&run);
        FragKey {
            options,
            tree,
            run,
            run_hash,
        }
    }

    /// Content hash of a descriptor run, computed once per span and shared
    /// by every key over that span (see [`FragKey::from_hashed`]).
    pub(crate) fn hash_run(run: &[NodeDesc]) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        run.hash(&mut h);
        h.finish()
    }

    /// Key a tree over a run whose content hash is already known. The
    /// caller must pass `run_hash == FragKey::hash_run(&run)`; the pool
    /// builder memoizes it per span so keying a node is allocation- and
    /// hash-free.
    pub(crate) fn from_hashed(
        options: BuildOptions,
        tree: u128,
        run: Arc<[NodeDesc]>,
        run_hash: u64,
    ) -> Self {
        debug_assert_eq!(run_hash, Self::hash_run(&run));
        FragKey {
            options,
            tree,
            run,
            run_hash,
        }
    }

    /// Number of local size symbols the run references (max index + 1).
    pub(crate) fn num_syms(&self) -> usize {
        let mut n = 0;
        for d in self.run.iter() {
            n = n.max(d.rows + 1).max(d.cols + 1);
        }
        n
    }
}

impl PartialEq for FragKey {
    fn eq(&self, other: &Self) -> bool {
        // run_hash first: a cheap reject for the common bucket collision.
        self.options == other.options
            && self.tree == other.tree
            && self.run_hash == other.run_hash
            && self.run == other.run
    }
}

impl Eq for FragKey {}

impl std::hash::Hash for FragKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.options.hash(state);
        self.tree.hash(state);
        // The run's content hash stands in for the run: equal runs hash
        // equal by construction, and the O(len) work happened once in
        // `FragKey::new`.
        self.run_hash.hash(state);
    }
}

/// The frame a fragment was lowered in: the span's chain offset plus the
/// global size symbol backing each local symbol slot (first-occurrence
/// order). Lookups from an identical frame reuse the `Arc` directly; any
/// other frame triggers a one-shot relocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Frame {
    pub(crate) lo: usize,
    /// Shared (`Arc`) so the pool builder can stamp one frame onto every
    /// node of a span without a per-node allocation.
    pub(crate) syms: Arc<[usize]>,
}

impl Frame {
    /// The canonical span-local frame for `n` symbols (used by snapshots).
    pub(crate) fn local(n: usize) -> Frame {
        Frame {
            lo: 0,
            syms: (0..n).collect::<Vec<_>>().into(),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: Result<Arc<Fragment>, BuildError>,
    frame: Frame,
    last_used: u64,
}

/// Rewrite `frag` from frame `from` into frame `to`.
///
/// Renames every size symbol through the slot correspondence
/// `from.syms[k] -> to.syms[k]` and shifts leaf references by
/// `to.lo - from.lo`. All transforms are structural and exact, so
/// relocate(relocate(f, a, b), b, a) == f.
fn relocate(frag: &Fragment, from: &Frame, to: &Frame) -> Fragment {
    debug_assert_eq!(from.syms.len(), to.syms.len());
    let max_var = from.syms.iter().copied().max().unwrap_or(0);
    let mut map: Vec<usize> = (0..=max_var).collect();
    for (k, &g) in from.syms.iter().enumerate() {
        map[g] = to.syms[k];
    }
    let sym = |s: usize| map.get(s).copied().unwrap_or(s);
    let val = |v: ValRef| match v {
        ValRef::Leaf(i) => ValRef::Leaf(i - from.lo + to.lo),
        ValRef::Temp(t) => ValRef::Temp(t),
    };
    let mut result = frag.result;
    result.rows = sym(result.rows);
    result.cols = sym(result.cols);
    result.source = val(result.source);
    let step = frag.step.map(|mut s| {
        s.left = val(s.left);
        s.right = val(s.right);
        s.triplet = (sym(s.triplet.0), sym(s.triplet.1), sym(s.triplet.2));
        s
    });
    Fragment {
        step,
        cost: frag.cost.rename_vars(&map),
        result,
    }
}

/// Defensive check that a fragment only references symbols and leaves its
/// frame can relocate; snapshot-restored entries are validated with this
/// before insertion so a corrupt section cannot panic a later lookup.
fn fragment_fits_frame(frag: &Fragment, nsyms: usize, nleaves: usize) -> bool {
    let sym_ok = |s: usize| s < nsyms;
    let val_ok = |v: ValRef| match v {
        ValRef::Leaf(i) => i < nleaves,
        ValRef::Temp(t) => t < nleaves,
    };
    let poly_ok = frag
        .cost
        .iter()
        .all(|(m, _)| m.factors().iter().all(|&(v, _)| sym_ok(v)));
    let result_ok =
        sym_ok(frag.result.rows) && sym_ok(frag.result.cols) && val_ok(frag.result.source);
    let step_ok = frag.step.is_none_or(|s| {
        val_ok(s.left)
            && val_ok(s.right)
            && sym_ok(s.triplet.0)
            && sym_ok(s.triplet.1)
            && sym_ok(s.triplet.2)
    });
    poly_ok && result_ok && step_ok
}

/// Cross-shape, LRU-bounded store of lowered fragments.
///
/// Owned by [`CompileSession`](crate::CompileSession) (one per session, and
/// in `gmc_serve` one per shard, warmed by merged snapshots — see the serve
/// crate docs for the sharing model). Keys are span-local
/// (options, descriptor run, tree) triples; values are the lowered fragment
/// *or* the error the lowering produced, so failed lowerings short-circuit
/// on repeat encounters exactly like successes.
#[derive(Debug)]
pub struct FragmentCache {
    map: HashMap<FragKey, Entry, FxBuildHasher>,
    capacity: usize,
    tick: u64,
    stats: FragCacheStats,
}

impl FragmentCache {
    /// Create an empty store bounded to `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FragmentCache {
            map: HashMap::default(),
            capacity,
            tick: 0,
            stats: FragCacheStats::default(),
        }
    }

    /// Maximum number of entries retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the bound, evicting least-recently-used entries if the store
    /// is over the new capacity. Capacity 0 disables retention entirely.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_down_to(capacity);
    }

    /// Number of entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> FragCacheStats {
        self.stats
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_down_to(&mut self, bound: usize) {
        while self.map.len() > bound {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    /// Look up the fragment for `key`, relocated into `frame`.
    ///
    /// Counts a hit or a miss; a hit refreshes the entry's recency. Cached
    /// failures come back as `Some(Err(..))` so the caller can skip the
    /// lowering altogether.
    pub(crate) fn lookup(
        &mut self,
        key: &FragKey,
        frame: &Frame,
    ) -> Option<Result<Arc<Fragment>, BuildError>> {
        let tick = self.next_tick();
        let Some(entry) = self.map.get_mut(key) else {
            self.stats.misses += 1;
            return None;
        };
        if let Ok(frag) = &entry.value {
            if entry.frame.syms.len() != frame.syms.len() {
                // Impossible for honestly-constructed keys (the run fixes the
                // symbol count); treat as a miss rather than mis-relocate.
                self.stats.misses += 1;
                return None;
            }
            entry.last_used = tick;
            self.stats.hits += 1;
            if entry.frame == *frame {
                return Some(Ok(Arc::clone(frag)));
            }
            return Some(Ok(Arc::new(relocate(frag, &entry.frame, frame))));
        }
        entry.last_used = tick;
        self.stats.hits += 1;
        Some(entry.value.clone())
    }

    /// Insert the outcome of a fresh lowering under `key`, remembered in the
    /// frame it was lowered in. No-op when the capacity is 0.
    pub(crate) fn insert(
        &mut self,
        key: FragKey,
        value: Result<&Arc<Fragment>, &BuildError>,
        frame: &Frame,
    ) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        let value = match value {
            Ok(frag) => Ok(Arc::clone(frag)),
            Err(e) => Err(e.clone()),
        };
        self.map.insert(
            key,
            Entry {
                value,
                frame: frame.clone(),
                last_used: tick,
            },
        );
        self.stats.inserts += 1;
        self.evict_down_to(self.capacity);
    }

    /// Export resident successful fragments for snapshotting, oldest first.
    ///
    /// Fragments are rewritten into the canonical span-local frame so the
    /// snapshot is position-independent; cached failures are skipped (they
    /// are cheap to re-derive and not worth persisting).
    pub(crate) fn export(&self) -> Vec<(FragKey, Fragment)> {
        let mut entries: Vec<(&FragKey, &Entry)> =
            self.map.iter().filter(|(_, e)| e.value.is_ok()).collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(k, e)| {
                let frag = e.value.as_ref().expect("filtered to Ok entries");
                let local = Frame::local(e.frame.syms.len());
                (k.clone(), relocate(frag, &e.frame, &local))
            })
            .collect()
    }

    /// Import a snapshot entry (already in the canonical span-local frame).
    ///
    /// Existing entries win over restored ones; entries that reference
    /// symbols or leaves outside their own frame (possible only with a
    /// hand-corrupted snapshot) are ignored rather than trusted.
    pub(crate) fn insert_restored(&mut self, key: FragKey, frag: Fragment) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        let nsyms = key.num_syms();
        let nleaves = key.run.len();
        if !fragment_fits_frame(&frag, nsyms, nleaves) {
            return;
        }
        let tick = self.next_tick();
        self.map.insert(
            key,
            Entry {
                value: Ok(Arc::new(frag)),
                frame: Frame::local(nsyms),
                last_used: tick,
            },
        );
        self.stats.restored += 1;
        self.evict_down_to(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{leaf_descs, lower_node};
    use gmc_ir::Shape;

    fn lowered_pair() -> (Fragment, Frame, FragKey) {
        // Lower the span (0,1) of a 3-operand chain by hand.
        let g = gmc_ir::Operand::plain(gmc_ir::Features::general());
        let shape = Shape::new(vec![g, g, g]).unwrap();
        let classes = shape.size_classes();
        let leaves = leaf_descs(&shape, &classes);
        let options = BuildOptions::default();
        let left = Fragment::leaf(leaves[0]);
        let right = Fragment::leaf(leaves[1]);
        let frag = lower_node(&left, 1, &right, 1, &classes, options).unwrap();
        let frame = Frame {
            lo: 0,
            syms: vec![0, 1, 2].into(),
        };
        let key = FragKey::new(options, 0b100, leaves[..2].to_vec().into());
        (frag, frame, key)
    }

    #[test]
    fn same_frame_hits_share_the_arc_and_cross_frame_hits_relocate() {
        let (frag, frame, key) = lowered_pair();
        let mut cache = FragmentCache::new(16);
        assert!(cache.lookup(&key, &frame).is_none());
        let arc = Arc::new(frag);
        cache.insert(key.clone(), Ok(&arc), &frame);

        let hit = cache.lookup(&key, &frame).unwrap().unwrap();
        assert!(Arc::ptr_eq(&hit, &arc));

        // Same run two positions later, backed by different global symbols.
        let shifted = Frame {
            lo: 2,
            syms: vec![4, 5, 6].into(),
        };
        let moved = cache.lookup(&key, &shifted).unwrap().unwrap();
        let step = moved.step.unwrap();
        assert_eq!(step.left, ValRef::Leaf(2));
        assert_eq!(step.right, ValRef::Leaf(3));
        assert_eq!(step.triplet, (4, 5, 6));
        // Relocation round-trips exactly.
        let back = relocate(&moved, &shifted, &frame);
        assert_eq!(back, *arc);

        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts),
            (2, 1, 1),
            "one miss before insert, two hits after"
        );
    }

    #[test]
    fn lru_eviction_respects_capacity_and_counts() {
        let (frag, frame, key) = lowered_pair();
        let arc = Arc::new(frag);
        let mut cache = FragmentCache::new(1);
        cache.insert(key.clone(), Ok(&arc), &frame);
        // A second, distinct key evicts the first.
        let mut key2 = key.clone();
        key2.tree = 0b10100;
        cache.insert(key2.clone(), Ok(&arc), &frame);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&key, &frame).is_none());
        assert!(cache.lookup(&key2, &frame).is_some());

        cache.set_capacity(0);
        assert!(cache.is_empty());
        cache.insert(key, Ok(&arc), &frame);
        assert!(cache.is_empty(), "capacity 0 disables retention");
    }

    #[test]
    fn restored_entries_yield_hits_but_never_clobber_live_ones() {
        let (frag, frame, key) = lowered_pair();
        let mut cache = FragmentCache::new(16);
        let local = relocate(&frag, &frame, &Frame::local(frame.syms.len()));
        cache.insert_restored(key.clone(), local);
        assert_eq!(cache.stats().restored, 1);

        let hit = cache.lookup(&key, &frame).unwrap().unwrap();
        assert_eq!(*hit, frag, "restore + relocate round-trips exactly");

        // A live insert is not displaced by a later restore of the same key.
        let arc = Arc::new(frag.clone());
        cache.insert(key.clone(), Ok(&arc), &frame);
        cache.insert_restored(key.clone(), Fragment::leaf(key.run[0]));
        let again = cache.lookup(&key, &frame).unwrap().unwrap();
        assert!(Arc::ptr_eq(&again, &arc));
        assert_eq!(cache.stats().restored, 1);
    }

    #[test]
    fn forced_mode_overrides_and_restores_env_selection() {
        force_frag_mode(Some(FragMode::Off));
        assert_eq!(active_frag_mode(), FragMode::Off);
        force_frag_mode(Some(FragMode::On));
        assert_eq!(active_frag_mode(), FragMode::On);
        force_frag_mode(None);
        // Unset env (the default test environment) selects On.
        if std::env::var("GMC_FRAG").is_err() {
            assert_eq!(active_frag_mode(), FragMode::On);
        }
    }
}
