//! Compiler core for Generalized Matrix Chains with symbolic sizes.
//!
//! This crate implements the paper's primary contribution: a
//! multi-versioning code generator. Given the [`gmc_ir::Shape`] of a chain
//! (features and unary operators, sizes unknown):
//!
//! 1. [`builder`] lowers any parenthesization to a deterministic code
//!    *variant* — a sequence of kernel calls with a symbolic cost function
//!    (Sec. IV: inversion propagation, kernel assignment, transposition
//!    propagation, feature/size inference).
//! 2. [`theory`] selects the base set `E_s` of at most `n + 1` fanning-out
//!    variants whose best-in-set cost is within a constant factor of optimal
//!    on *every* instance (Theorems 1 and 2).
//! 3. [`expand`] grows the set greedily on sampled instances to tighten the
//!    gap (Algorithm 1).
//! 4. [`program`] packages the selected variants behind a run-time dispatch
//!    that picks the cheapest variant for the concrete sizes at hand and
//!    executes it on real matrices.
//!
//! For one-off compiles the free functions below suffice. A service that
//! compiles many programs or dispatches over many size vectors should
//! hold a [`session::CompileSession`], which owns and reuses every
//! stage's state (shape interner, per-shape DP solvers, cost-matrix and
//! expansion scratch, GEMM workspace) and — behind the `parallel`
//! feature — threads enumeration, the cost-matrix fill, and the
//! Algorithm-1 candidate scan with bit-identical results.
//!
//! Stages 2–3 run on the **vectorized selection engine** ([`simd`]): a
//! runtime-dispatch ladder (AVX-512 > AVX2 > portable, the same pattern
//! as `gmc_linalg::gemm`) whose cost-matrix fill streams compiled cost
//! polynomials over transposed instance lanes and whose penalty
//! reductions follow one *canonical blocked order* — eight partial
//! accumulators plus a deterministic tree reduce — on every rung, so
//! scalar and SIMD selection are bit-identical and results never depend
//! on the host CPU (see the [`simd`] module docs).
//!
//! Stage 1 runs on the **memoized enumeration engine** ([`pool`]): the
//! parenthesizations of a chain form a span DAG ([`paren::SpanDag`],
//! each distinct sub-tree interned once per `(i, j)` span), every DAG
//! node is lowered exactly once into a step *fragment* with span-local
//! `ValRef`s, and full variants are assembled by splicing fragments in
//! the builder's total order with a constant `Temp` renumber — turning
//! `build_pool` from per-tree into per-fragment work (~4x for `n = 7`)
//! while staying **bit-identical** to per-tree [`build_variant`]
//! lowering, which remains the cross-checked reference. `GMC_ENUM=naive`
//! pins the reference engine at runtime (mirroring `GMC_SIMD`); see the
//! [`enumerate`] module docs.
//!
//! Above the per-shape memo sits the **cross-shape fragment store**
//! ([`fragcache`]): fragments are keyed by the hash of their span's
//! leaf-descriptor run (renumbered to a span-local frame) plus the
//! [`BuildOptions`] fingerprint, so shapes that differ outside a span
//! assemble that span by splice instead of re-lowering it. The store is
//! LRU-bounded, owned by the session (capacity/stats knobs next to the
//! chain cache's), serialized as a versioned section of the
//! `gmc-session-snapshot` format so restarted daemons warm-start from
//! persisted fragments, and disabled via `GMC_FRAG=off` (mirroring
//! `GMC_SIMD`/`GMC_ENUM`); see the [`fragcache`] module docs.
//!
//! The whole pipeline is **traced** through the `gmc-obs` substrate:
//! every session owns a [`gmc_obs::Recorder`] that accounts each stage
//! (parse → enumerate → DP → select → expand → emit → execute) and
//! each executed kernel into a [`gmc_obs::StageProfile`]
//! ([`session::CompileSession::stage_profile`],
//! [`program::CompiledChain::timing_report`]). Tracing is
//! observability only — it never changes selection decisions or
//! emitted artifacts — and is toggled per session
//! ([`session::CompileSession::set_tracing`]) or process-wide with
//! `GMC_TRACE=off` (mirroring `GMC_SIMD`/`GMC_ENUM`/`GMC_FRAG`); when
//! off, each instrumented site pays a single branch.
//!
//! ```
//! use gmc_core::CompiledChain;
//! use gmc_ir::grammar::parse_program;
//! use gmc_linalg::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "Matrix A <General, Singular>;
//!      Matrix B <General, Singular>;
//!      Matrix C <General, Singular>;
//!      X := A * B * C;",
//! )?;
//! let compiled = CompiledChain::compile(program.shape().clone())?;
//! let (a, b, c) = (Matrix::zeros(4, 30), Matrix::zeros(30, 2), Matrix::zeros(2, 50));
//! let x = compiled.evaluate(&[a, b, c])?;
//! assert_eq!((x.rows(), x.cols()), (4, 50));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod alpha;
pub mod builder;
pub mod dp;
pub mod enumerate;
pub mod expand;
pub mod fragcache;
pub mod library;
pub mod paren;
pub mod persist;
pub mod pool;
pub mod program;
pub mod reference;
pub mod session;
pub mod simd;
pub mod theory;
pub mod variant;

pub use alpha::{alpha_hat, catalogue_alpha_hat, shape_penalty_bound, TermKind};
pub use builder::{build_variant, build_variant_with, BuildError, BuildOptions};
pub use dp::{optimal_cost, optimal_variant, DpSolver};
pub use enumerate::{
    active_enum_mode, all_variants, all_variants_capped, build_pool_with_mode, force_enum_mode,
    EnumMode, EnumerateError, DEFAULT_VARIANT_CAP,
};
pub use expand::{
    expand_set, expand_set_striped, expand_set_striped_level, expand_set_with, CostMatrix,
    ExpandScratch, Objective,
};
pub use fragcache::{active_frag_mode, force_frag_mode, FragCacheStats, FragMode, FragmentCache};
pub use gmc_obs::{active_trace_mode, force_trace_mode, Recorder, Stage, StageProfile, TraceMode};
pub use library::ChainLibrary;
pub use paren::{NodeId, ParenTree, SpanDag};
pub use persist::{PersistError, SessionSnapshot};
pub use pool::{PoolBuilder, PoolStats};
pub use program::{CompileOptions, CompiledChain, CostModel, FlopCost, ProgramError};
pub use session::{
    CacheStats, CompileSession, DEFAULT_CHAIN_CACHE_CAPACITY, DEFAULT_FRAG_CACHE_CAPACITY,
};
pub use simd::SimdLevel;
pub use theory::{
    fanning_out_set, penalty, select_base_set, select_base_set_with, select_base_set_with_rows,
    TheoryError,
};
pub use variant::{ExecVariantError, Finalize, Step, ValRef, Variant};
