//! A long-lived, reusable compilation pipeline (the tentpole of the
//! production-scaling work): parse → enumerate → select → expand →
//! dispatch/execute, with every stage's scratch state owned by one
//! [`CompileSession`] and reused across calls.
//!
//! The free functions ([`crate::all_variants`], [`crate::optimal_cost`],
//! [`crate::expand_set`], [`CompiledChain::compile`]) remain as one-shot
//! conveniences — each allocates its own state per call. A service that
//! compiles many programs, or dispatches one chain over many size
//! vectors, should hold a session instead:
//!
//! * **Shape interning** ([`gmc_ir::ShapeInterner`]): every distinct
//!   chain shape gets a dense [`ShapeId`]; repeated programs hit the
//!   compiled-chain cache instead of re-running selection. The cache is
//!   **bounded** (LRU eviction at
//!   [`DEFAULT_CHAIN_CACHE_CAPACITY`], tunable via
//!   [`CompileSession::set_chain_cache_capacity`]) and instrumented
//!   ([`CompileSession::cache_stats`]), and its contents can be
//!   persisted and restored bit-identically for warm service restarts
//!   ([`CompileSession::snapshot`] / [`CompileSession::restore`]; see
//!   [`crate::persist`]).
//! * **Cross-shape fragment store** ([`crate::fragcache::FragmentCache`]):
//!   the memoized enumeration engine consults a descriptor-run–keyed LRU
//!   store before lowering each span-DAG node, so related shapes (and
//!   snapshot-restored sessions) splice shared sub-spans instead of
//!   re-lowering them. Bounded at
//!   [`DEFAULT_FRAG_CACHE_CAPACITY`], tunable via
//!   [`CompileSession::set_fragment_cache_capacity`], instrumented via
//!   [`CompileSession::fragment_cache_stats`], and disabled with
//!   `GMC_FRAG=off`.
//! * **DP solver reuse** ([`crate::dp::DpSolver`]): one solver per shape
//!   keeps its descriptor interner, association memo, and state arena
//!   warm, so per-instance optimal costs in dispatch loops are
//!   allocation-free after the first call.
//! * **Selection scratch** ([`CostMatrix`], [`ExpandScratch`]): the
//!   variant × instance cost matrix and the greedy expansion's
//!   best-in-set vector live in session buffers that are refilled in
//!   place.
//! * **Execution scratch** ([`GemmWorkspace`]): numeric evaluation packs
//!   GEMM panels into the session workspace instead of thread-local
//!   buffers.
//!
//! # Determinism
//!
//! Every session method is bit-identical to its one-shot counterpart:
//! warm caches change *where* intermediate state lives, never the
//! relaxation, summation, or tie-break order. This also holds for the
//! thread count — see [`CompileSession::set_jobs`] — which is what makes
//! the `parallel` feature safe to enable in production: a property test
//! pins `parallel == serial` selection bit for bit.
//!
//! # Variant-pool growth
//!
//! The full pool `A` grows as `Catalan(n - 1)` in the chain length `n`:
//! 132 variants at `n = 7`, 58 786 at `n = 12`, ~2.7 million at
//! `n = 15`. [`CompileSession::all_variants`] therefore refuses chains
//! past a configurable cap ([`CompileSession::set_variant_cap`]) with a
//! typed [`EnumerateError::PoolTooLarge`], and
//! [`CompileSession::compile`] automatically switches long chains to the
//! DP-backed fanning-out path, which never materializes `A`.
//!
//! # Example
//!
//! ```
//! use gmc_core::session::CompileSession;
//! use gmc_linalg::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = CompileSession::new();
//! let (program, _id) = session.parse(
//!     "Matrix A <General, Singular>;
//!      Matrix B <General, Singular>;
//!      X := A * B;",
//! )?;
//! let chain = session.compile(program.shape())?;
//! // Second compile of the same shape is a cache hit.
//! let again = session.compile(program.shape())?;
//! assert_eq!(chain.variants().len(), again.variants().len());
//! let x = session.evaluate(&chain, &[Matrix::zeros(3, 4), Matrix::zeros(4, 5)])?;
//! assert_eq!((x.rows(), x.cols()), (3, 5));
//! # Ok(())
//! # }
//! ```

use crate::builder::BuildError;
use crate::dp::DpSolver;
use crate::enumerate::{
    active_enum_mode, build_pool_naive, EnumMode, EnumerateError, DEFAULT_VARIANT_CAP,
};
use crate::expand::{expand_set_striped, CostMatrix, ExpandScratch};
use crate::fragcache::{active_frag_mode, FragCacheStats, FragMode, FragmentCache};
use crate::paren::ParenTree;
use crate::persist::{options_key, PersistError, SessionSnapshot};
use crate::pool::PoolBuilder;
use crate::program::{CompileOptions, CompiledChain, CostModel, ProgramError};
use crate::theory::{fanning_out_set, select_base_set};
use crate::variant::Variant;
use gmc_ir::grammar::{parse_program, ParseError, Program};
use gmc_ir::{Instance, InstanceSampler, Shape, ShapeId, ShapeInterner};
use gmc_linalg::{GemmWorkspace, Matrix};
use gmc_obs::{Recorder, Stage, StageProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Chains whose `Catalan(n - 1)` pool exceeds this are compiled through
/// the scalable DP-backed path instead of full enumeration (`n <= 9`
/// enumerates; see [`CompiledChain::compile_with`]).
pub(crate) const ENUMERATION_CAP: u128 = 4096;

/// Default capacity of the compiled-chain cache. Each cached chain is a
/// handful of variants (kernel sequences + cost polynomials), so a few
/// hundred distinct shapes is cheap; services tune this per shard via
/// [`CompileSession::set_chain_cache_capacity`].
pub const DEFAULT_CHAIN_CACHE_CAPACITY: usize = 256;

/// Default capacity of the cross-shape fragment store
/// ([`crate::fragcache::FragmentCache`]). Fragments are a single step
/// plus a cost polynomial, far smaller than compiled chains, so the
/// store affords a much larger bound than the chain cache; services tune
/// it per shard via [`CompileSession::set_fragment_cache_capacity`].
pub const DEFAULT_FRAG_CACHE_CAPACITY: usize = 4096;

/// Observability counters for the compiled-chain cache (cumulative for
/// the session's lifetime; survive cache invalidations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compiles served from the cache.
    pub hits: u64,
    /// Compiles that had to run the full selection pipeline.
    pub misses: u64,
    /// Chains evicted by the LRU policy (capacity pressure only — not
    /// invalidations from option changes).
    pub evictions: u64,
    /// Chains inserted by snapshot restore ([`CompileSession::restore`] /
    /// [`CompileSession::restore_filtered`]) rather than compiled.
    /// Restores count as neither hits nor misses; a restored chain's
    /// first *compile* is a hit.
    pub restored: u64,
}

impl CacheStats {
    /// Fraction of compiles served from the cache (`0.0` before any
    /// compile).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold `other`'s counters into this one. Supervised services use
    /// this to carry a shard's cumulative counters across session
    /// restarts (a replaced session starts back at zero).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.restored += other.restored;
    }
}

/// A cached chain plus its LRU clock reading.
struct CachedChain {
    chain: CompiledChain,
    last_used: u64,
}

/// A long-lived compiler pipeline: owns the descriptor interner, DP state
/// arenas, cost-matrix scratch, and GEMM workspace, and reuses all of
/// them across compiles and evaluations (see the [module docs](self)).
pub struct CompileSession {
    options: CompileOptions,
    jobs: usize,
    variant_cap: u64,
    shapes: ShapeInterner,
    solvers: HashMap<ShapeId, DpSolver>,
    compiled: HashMap<ShapeId, CachedChain>,
    cache_capacity: usize,
    cache_tick: u64,
    cache_stats: CacheStats,
    pool: PoolBuilder,
    frags: FragmentCache,
    matrix: CostMatrix,
    expand: ExpandScratch,
    gemm_ws: GemmWorkspace,
    recorder: Recorder,
}

impl Default for CompileSession {
    fn default() -> Self {
        CompileSession::new()
    }
}

impl CompileSession {
    /// A session with default [`CompileOptions`].
    #[must_use]
    pub fn new() -> Self {
        CompileSession::with_options(CompileOptions::default())
    }

    /// A session with explicit compile options.
    #[must_use]
    pub fn with_options(options: CompileOptions) -> Self {
        CompileSession {
            options,
            jobs: default_jobs(),
            variant_cap: DEFAULT_VARIANT_CAP,
            shapes: ShapeInterner::new(),
            solvers: HashMap::new(),
            compiled: HashMap::new(),
            cache_capacity: DEFAULT_CHAIN_CACHE_CAPACITY,
            cache_tick: 0,
            cache_stats: CacheStats::default(),
            pool: PoolBuilder::new(),
            frags: FragmentCache::new(DEFAULT_FRAG_CACHE_CAPACITY),
            matrix: CostMatrix::new(),
            expand: ExpandScratch::default(),
            gemm_ws: GemmWorkspace::new(),
            recorder: Recorder::new(),
        }
    }

    /// The session's compile options.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Replace the compile options. Invalidates the compiled-chain cache
    /// (selection depends on the options); solver and scratch state stays.
    pub fn set_options(&mut self, options: CompileOptions) {
        self.options = options;
        self.compiled.clear();
    }

    /// The thread budget for the parallel stages.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Set the thread budget for variant enumeration, cost-matrix fill,
    /// and the expansion candidate scan. Effective only with the
    /// `parallel` feature; results are bit-identical for every value
    /// (work is split by index range and reduced in scan order). `0` is
    /// treated as `1`.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Cap on the number of variants [`CompileSession::all_variants`]
    /// will materialize (default [`DEFAULT_VARIANT_CAP`]). The pool grows
    /// as `Catalan(n - 1)`; see the [module docs](self). Invalidates the
    /// compiled-chain cache: the cap also decides
    /// [`CompileSession::compile`]'s enumerate-vs-DP path, so cached
    /// chains must not outlive a cap change.
    pub fn set_variant_cap(&mut self, cap: u64) {
        if cap != self.variant_cap {
            self.compiled.clear();
        }
        self.variant_cap = cap;
    }

    /// The configured variant cap.
    #[must_use]
    pub fn variant_cap(&self) -> u64 {
        self.variant_cap
    }

    /// Parse a `.gmc` program and intern its shape.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseError`].
    pub fn parse(&mut self, source: &str) -> Result<(Program, ShapeId), ParseError> {
        let span = self.recorder.start();
        let program = parse_program(source);
        self.recorder.stop(Stage::Parse, span);
        let program = program?;
        let id = self.shapes.intern(program.shape());
        Ok((program, id))
    }

    /// Intern a shape, returning its dense session-local id.
    pub fn intern(&mut self, shape: &Shape) -> ShapeId {
        self.shapes.intern(shape)
    }

    /// The shape behind a [`ShapeId`] from this session.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different session.
    #[must_use]
    pub fn shape(&self, id: ShapeId) -> &Shape {
        self.shapes.get(id)
    }

    /// Build the full variant pool `A` for `shape` (see
    /// [`crate::all_variants`]), parallelized over parenthesizations
    /// across the session's thread budget.
    ///
    /// # Errors
    ///
    /// Returns [`EnumerateError::PoolTooLarge`] past the session's
    /// variant cap; build errors are unreachable for valid shapes.
    pub fn all_variants(&mut self, shape: &Shape) -> Result<Vec<Variant>, EnumerateError> {
        let count = ParenTree::count(shape.len());
        if count > u128::from(self.variant_cap) {
            return Err(EnumerateError::PoolTooLarge {
                variants: count,
                cap: self.variant_cap,
            });
        }
        let id = self.shapes.intern(shape);
        let span = self.recorder.start();
        let pool = self.full_pool(id).map_err(EnumerateError::Build);
        self.recorder.stop(Stage::Enumerate, span);
        pool
    }

    /// The full variant pool for an interned shape, through the engine
    /// [`active_enum_mode`] selects. The memoized engine reuses the
    /// session's [`PoolBuilder`] scratch, invalidated whenever the
    /// interned shape (the memo key) changes.
    fn full_pool(&mut self, id: ShapeId) -> Result<Vec<Variant>, BuildError> {
        let CompileSession {
            shapes,
            pool,
            frags,
            jobs,
            ..
        } = self;
        let shape = shapes.get(id);
        match active_enum_mode() {
            EnumMode::Memoized => {
                let cache = (active_frag_mode() == FragMode::On).then_some(&mut *frags);
                pool.build_full_cached(Some(id), shape, *jobs, cache)
            }
            EnumMode::Naive => {
                let trees = ParenTree::enumerate(0, shape.len() - 1);
                build_pool_naive(shape, &trees, *jobs)
            }
        }
    }

    /// Lower an explicit list of parenthesizations for an interned shape
    /// (the restore path), sharing sub-span fragments across trees in
    /// the memoized mode.
    fn pool_for_trees(
        &mut self,
        id: ShapeId,
        trees: &[ParenTree],
    ) -> Result<Vec<Variant>, BuildError> {
        let CompileSession {
            shapes,
            pool,
            frags,
            jobs,
            ..
        } = self;
        let shape = shapes.get(id);
        match active_enum_mode() {
            EnumMode::Memoized => {
                let cache = (active_frag_mode() == FragMode::On).then_some(&mut *frags);
                pool.build_for_trees_cached(Some(id), shape, trees, *jobs, cache)
            }
            EnumMode::Naive => build_pool_naive(shape, trees, *jobs),
        }
    }

    /// The per-instance optimal cost for `shape`, through the session's
    /// per-shape [`DpSolver`] — allocation-free after the first call for
    /// a given shape.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] (unreachable for valid shapes).
    ///
    /// # Panics
    ///
    /// Panics if `instance` has the wrong number of sizes for `shape`.
    pub fn optimal_cost(&mut self, shape: &Shape, instance: &Instance) -> Result<f64, BuildError> {
        let id = self.shapes.intern(shape);
        let span = self.recorder.start();
        let cost = self.solver_for(id).optimal_cost(instance);
        self.recorder.stop(Stage::Dp, span);
        cost
    }

    /// The optimal variant and cost for `shape` on `instance`, through
    /// the session solver (see [`crate::dp::optimal_variant`]).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] (unreachable for valid shapes).
    ///
    /// # Panics
    ///
    /// Panics if `instance` has the wrong number of sizes for `shape`.
    pub fn optimal_variant(
        &mut self,
        shape: &Shape,
        instance: &Instance,
    ) -> Result<(Variant, f64), BuildError> {
        let id = self.shapes.intern(shape);
        let span = self.recorder.start();
        let variant = self.solver_for(id).optimal_variant(instance);
        self.recorder.stop(Stage::Dp, span);
        variant
    }

    /// The session's solver for `shape`, creating (and caching) it on
    /// first use.
    pub fn solver(&mut self, shape: &Shape) -> &mut DpSolver {
        let id = self.shapes.intern(shape);
        self.solver_for(id)
    }

    fn solver_for(&mut self, id: ShapeId) -> &mut DpSolver {
        let CompileSession {
            solvers, shapes, ..
        } = self;
        solvers
            .entry(id)
            .or_insert_with(|| DpSolver::new(shapes.get(id)))
    }

    /// Fill the session cost matrix with FLOP costs for `pool` ×
    /// `instances` through the vectorized selection engine (compiled
    /// cost polynomials streamed over instance lanes; parallel row fill
    /// under the thread budget) and return it.
    pub fn cost_matrix(&mut self, pool: &[Variant], instances: &[Instance]) -> &CostMatrix {
        let span = self.recorder.start();
        self.matrix.fill_flops(pool, instances, self.jobs);
        self.recorder.stop(Stage::Select, span);
        &self.matrix
    }

    /// [`CompileSession::cost_matrix`] with a custom cost function (e.g. a
    /// measured performance model).
    pub fn cost_matrix_with<F: Fn(&Variant, &Instance) -> f64 + Sync>(
        &mut self,
        pool: &[Variant],
        instances: &[Instance],
        cost: F,
    ) -> &CostMatrix {
        let span = self.recorder.start();
        self.matrix.fill_with(pool, instances, cost, self.jobs);
        self.recorder.stop(Stage::Select, span);
        &self.matrix
    }

    /// Algorithm-1 expansion over the session's current cost matrix (the
    /// one filled by the latest `cost_matrix*` / `compile` call), reusing
    /// the session's expansion scratch and thread budget.
    #[must_use]
    pub fn expand_set(
        &mut self,
        initial: &[usize],
        k: usize,
        objective: crate::expand::Objective,
    ) -> Vec<usize> {
        let span = self.recorder.start();
        let set = expand_set_striped(
            &self.matrix,
            initial,
            k,
            objective,
            &mut self.expand,
            self.jobs,
            self.options.scan_stripe,
        );
        self.recorder.stop(Stage::Expand, span);
        set
    }

    /// Compile `shape` into a multi-versioned chain with the session's
    /// options, caching the result per distinct shape.
    ///
    /// Semantics (and selected variants, bit for bit) match
    /// [`CompiledChain::compile_with`]; the session reuses its scratch
    /// and caches instead of allocating per call.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if selection fails.
    pub fn compile(&mut self, shape: &Shape) -> Result<CompiledChain, ProgramError> {
        let id = self.shapes.intern(shape);
        self.cache_tick += 1;
        let tick = self.cache_tick;
        if let Some(entry) = self.compiled.get_mut(&id) {
            entry.last_used = tick;
            self.cache_stats.hits += 1;
            return Ok(entry.chain.clone());
        }
        self.cache_stats.misses += 1;
        let chain = self.compile_uncached(id)?;
        self.insert_cached(id, chain.clone());
        Ok(chain)
    }

    /// Insert a freshly compiled (or restored) chain, evicting
    /// least-recently-used entries down to capacity first.
    fn insert_cached(&mut self, id: ShapeId, chain: CompiledChain) {
        if self.cache_capacity == 0 {
            return;
        }
        self.evict_down_to(self.cache_capacity - 1);
        self.compiled.insert(
            id,
            CachedChain {
                chain,
                last_used: self.cache_tick,
            },
        );
    }

    fn evict_down_to(&mut self, capacity: usize) {
        while self.compiled.len() > capacity {
            // Ticks are unique, so the LRU victim is unambiguous; the
            // O(len) scan is fine at the capacities a shard runs with.
            let victim = self
                .compiled
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id)
                .expect("cache is non-empty");
            self.compiled.remove(&victim);
            self.cache_stats.evictions += 1;
        }
    }

    /// Compile every shape in order, sharing the session caches (repeat
    /// shapes are compiled once).
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn compile_batch(&mut self, shapes: &[Shape]) -> Result<Vec<CompiledChain>, ProgramError> {
        shapes.iter().map(|s| self.compile(s)).collect()
    }

    fn compile_uncached(&mut self, id: ShapeId) -> Result<CompiledChain, ProgramError> {
        let shape = self.shapes.get(id).clone();
        let options = self.options.clone();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let sampler = InstanceSampler::new(&shape, options.size_lo, options.size_hi);
        let training = sampler.sample_many(&mut rng, options.training_instances.max(1));

        let enumerable =
            ParenTree::count(shape.len()) <= ENUMERATION_CAP.min(u128::from(self.variant_cap));
        let span = self.recorder.start();
        let pool: Vec<Variant> = if enumerable {
            self.full_pool(id)?
        } else {
            fanning_out_set(&shape)?
                .into_iter()
                .map(|(_, v)| v)
                .collect()
        };
        self.recorder.stop(Stage::Enumerate, span);
        if enumerable {
            let span = self.recorder.start();
            self.matrix.fill_flops(&pool, &training, self.jobs);
            self.recorder.stop(Stage::Select, span);
        } else {
            let span = self.recorder.start();
            let solver = self.solver_for(id);
            let optimal: Vec<f64> = training
                .iter()
                .map(|q| solver.optimal_cost(q))
                .collect::<Result<_, _>>()?;
            self.recorder.stop(Stage::Dp, span);
            let span = self.recorder.start();
            self.matrix
                .fill_flops_with_optimal(&pool, &training, optimal, self.jobs);
            self.recorder.stop(Stage::Select, span);
        }

        let span = self.recorder.start();
        let base = select_base_set(&shape, &training, self.matrix.optimal())?;
        let mut indices: Vec<usize> = base
            .variants
            .iter()
            .map(|v| {
                pool.iter()
                    .position(|p| p.paren() == v.paren())
                    .expect("base variants come from the pool")
            })
            .collect();
        self.recorder.stop(Stage::Select, span);
        if options.expand_by > 0 {
            let span = self.recorder.start();
            indices = expand_set_striped(
                &self.matrix,
                &indices,
                indices.len() + options.expand_by,
                options.objective,
                &mut self.expand,
                self.jobs,
                options.scan_stripe,
            );
            self.recorder.stop(Stage::Expand, span);
        }
        let variants = indices.into_iter().map(|i| pool[i].clone()).collect();
        Ok(CompiledChain::from_variants(shape, variants))
    }

    /// Evaluate a compiled chain on concrete matrices (FLOP-cost
    /// dispatch), packing GEMM panels into the session workspace instead
    /// of thread-local buffers.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on inconsistent inputs or kernel failure.
    pub fn evaluate(
        &mut self,
        chain: &CompiledChain,
        leaves: &[Matrix],
    ) -> Result<Matrix, ProgramError> {
        self.evaluate_with(chain, leaves, &crate::program::FlopCost)
    }

    /// [`CompileSession::evaluate`] with a custom dispatch cost model.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on inconsistent inputs or kernel failure.
    pub fn evaluate_with<M: CostModel>(
        &mut self,
        chain: &CompiledChain,
        leaves: &[Matrix],
        model: &M,
    ) -> Result<Matrix, ProgramError> {
        let q = chain.instance_of(leaves)?;
        let (idx, _) = chain.dispatch_with(&q, model);
        let span = self.recorder.start();
        let CompileSession {
            gemm_ws, recorder, ..
        } = self;
        let result = if recorder.enabled() {
            chain.variants()[idx].execute_observed(gemm_ws, leaves, |kernel, d| {
                recorder.record_kernel(kernel.name(), d);
            })
        } else {
            chain.variants()[idx].execute_with(gemm_ws, leaves)
        };
        self.recorder.stop(Stage::Execute, span);
        Ok(result?)
    }

    /// The session's GEMM packing workspace (e.g. to pre-reserve or
    /// inspect capacity).
    pub fn workspace(&mut self) -> &mut GemmWorkspace {
        &mut self.gemm_ws
    }

    /// Whether this session records pipeline stage spans (resolved from
    /// [`gmc_obs::active_trace_mode`] at construction; see
    /// [`CompileSession::set_tracing`]).
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Override the session-level tracing toggle. Tracing never changes
    /// selection decisions or emitted artifacts (it is excluded from
    /// the persistence options fingerprint, like
    /// [`CompileOptions::scan_stripe`]); disabled tracing costs one
    /// branch per instrumented site.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.recorder.set_enabled(enabled);
    }

    /// The accumulated per-stage/per-kernel profile (see
    /// [`gmc_obs::StageProfile`]). Cumulative for the session's
    /// lifetime; diff two clones (or use
    /// [`CompileSession::take_stage_profile`]) for per-request
    /// breakdowns.
    #[must_use]
    pub fn stage_profile(&self) -> &StageProfile {
        self.recorder.profile()
    }

    /// Take the accumulated stage profile, leaving an empty one.
    pub fn take_stage_profile(&mut self) -> StageProfile {
        self.recorder.take()
    }

    /// The session's span recorder, for instrumenting pipeline stages
    /// that run outside the session (the emit renderers live in
    /// `gmc-codegen`; drivers wrap them in
    /// [`gmc_obs::Stage::Emit`] spans).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access to the span recorder (closing externally timed
    /// spans).
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Number of distinct shapes this session has seen.
    #[must_use]
    pub fn num_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// Number of compiled chains currently cached.
    #[must_use]
    pub fn num_cached_chains(&self) -> usize {
        self.compiled.len()
    }

    /// The compiled-chain cache capacity
    /// (default [`DEFAULT_CHAIN_CACHE_CAPACITY`]).
    #[must_use]
    pub fn chain_cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// Bound the compiled-chain cache: at most `capacity` chains stay
    /// resident, evicted least-recently-used (a compile — hit or miss —
    /// counts as a use). Shrinking below the current occupancy evicts
    /// immediately; `0` disables caching entirely (every compile
    /// re-selects). Eviction never changes results — an evicted shape is
    /// simply re-selected on its next compile, bit-identically.
    pub fn set_chain_cache_capacity(&mut self, capacity: usize) {
        self.cache_capacity = capacity;
        self.evict_down_to(capacity);
    }

    /// Cumulative hit/miss/eviction counters for the compiled-chain
    /// cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// The cross-shape fragment store's capacity
    /// (default [`DEFAULT_FRAG_CACHE_CAPACITY`]).
    #[must_use]
    pub fn fragment_cache_capacity(&self) -> usize {
        self.frags.capacity()
    }

    /// Bound the cross-shape fragment store: at most `capacity` lowered
    /// fragments stay resident, evicted least-recently-used. `0` disables
    /// the store (equivalent to `GMC_FRAG=off` for this session). Like
    /// the chain cache, eviction never changes results — an evicted
    /// fragment is re-lowered bit-identically on its next encounter.
    pub fn set_fragment_cache_capacity(&mut self, capacity: usize) {
        self.frags.set_capacity(capacity);
    }

    /// Cumulative hit/miss/insert/eviction/restore counters for the
    /// cross-shape fragment store.
    #[must_use]
    pub fn fragment_cache_stats(&self) -> FragCacheStats {
        self.frags.stats()
    }

    /// Number of fragments currently resident in the cross-shape store.
    #[must_use]
    pub fn num_cached_fragments(&self) -> usize {
        self.frags.len()
    }

    /// Snapshot the compiled-chain cache for warm-restart persistence:
    /// shape descriptors plus selected parenthesizations, in dense
    /// [`ShapeId`] order (see [`crate::persist`] for the format). The
    /// snapshot records decisions, not emitted code, so it stays small
    /// and restores bit-identically.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut entries = Vec::with_capacity(self.compiled.len());
        for (id, shape) in self.shapes.iter() {
            if let Some(entry) = self.compiled.get(&id) {
                let parens: Vec<ParenTree> = entry
                    .chain
                    .variants()
                    .iter()
                    .map(|v| v.paren().clone())
                    .collect();
                entries.push((shape.clone(), parens));
            }
        }
        SessionSnapshot::from_parts(
            options_key(&self.options, self.variant_cap),
            entries,
            self.frags.export(),
        )
    }

    /// Restore every chain recorded in `snapshot` into the cache,
    /// re-lowering each recorded parenthesization with the deterministic
    /// variant builder — no enumeration, DP, or expansion runs, and the
    /// restored chains are bit-identical to what [`CompileSession::compile`]
    /// would produce. Returns the number of chains restored (shapes
    /// already cached are skipped; restores count as neither hits nor
    /// misses).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::OptionsMismatch`] unless the snapshot was
    /// taken under this session's selection options *and* variant cap
    /// (the cap decides the enumerate-vs-DP compile path, so recorded
    /// decisions are only valid under the same cap), and
    /// [`PersistError::Rebuild`] if a recorded tree fails to lower. On
    /// any error the cache is left untouched — a failed restore is a
    /// cold start, never a half-warm one.
    pub fn restore(&mut self, snapshot: &SessionSnapshot) -> Result<usize, PersistError> {
        self.restore_filtered(snapshot, |_| true)
    }

    /// [`CompileSession::restore`] for the shapes `keep` accepts — a
    /// sharded service restores into each shard only the shapes that
    /// route to it.
    ///
    /// # Errors
    ///
    /// Same as [`CompileSession::restore`].
    pub fn restore_filtered(
        &mut self,
        snapshot: &SessionSnapshot,
        keep: impl Fn(&Shape) -> bool,
    ) -> Result<usize, PersistError> {
        let expected = options_key(&self.options, self.variant_cap);
        if snapshot.options_fingerprint() != expected {
            return Err(PersistError::OptionsMismatch {
                expected,
                found: snapshot.options_fingerprint().to_string(),
            });
        }
        // Warm the fragment store *before* re-lowering the recorded
        // chains, so the very first rebuild of each shape splices
        // snapshot-carried fragments instead of lowering from scratch
        // (fragment warmth is correctness-neutral: hits are exact).
        if active_frag_mode() == FragMode::On {
            for (key, frag) in snapshot.frag_entries() {
                self.frags.insert_restored(key.clone(), frag.clone());
            }
        }
        // Rebuild everything first, insert only if the whole snapshot
        // lowers: a corrupt entry must not leave the cache half-warm.
        let mut pending: Vec<(ShapeId, Shape, Vec<Variant>)> = Vec::new();
        for (shape, parens) in snapshot.entries() {
            if !keep(shape) {
                continue;
            }
            let id = self.shapes.intern(shape);
            if self.compiled.contains_key(&id) || pending.iter().any(|(pid, ..)| *pid == id) {
                continue;
            }
            let variants = self
                .pool_for_trees(id, parens)
                .map_err(|e| PersistError::Rebuild(e.to_string()))?;
            pending.push((id, shape.clone(), variants));
        }
        let restored = pending.len();
        for (id, shape, variants) in pending {
            self.cache_tick += 1;
            self.insert_cached(id, CompiledChain::from_variants(shape, variants));
        }
        self.cache_stats.restored += restored as u64;
        Ok(restored)
    }
}

fn default_jobs() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Operand, Property, Structure};

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    #[test]
    fn session_compile_matches_one_shot() {
        let shape = Shape::new(vec![g(); 5]).unwrap();
        let opts = CompileOptions {
            training_instances: 200,
            expand_by: 2,
            ..CompileOptions::default()
        };
        let mut session = CompileSession::with_options(opts.clone());
        let from_session = session.compile(&shape).unwrap();
        let one_shot = CompiledChain::compile_with(shape, &opts).unwrap();
        assert_eq!(from_session.variants().len(), one_shot.variants().len());
        for (a, b) in from_session.variants().iter().zip(one_shot.variants()) {
            assert_eq!(a.paren(), b.paren());
            assert_eq!(a.cost_poly(), b.cost_poly());
        }
    }

    #[test]
    fn compile_cache_hits_on_equal_shapes() {
        let mut session = CompileSession::new();
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let first = session.compile(&shape).unwrap();
        assert_eq!(session.num_cached_chains(), 1);
        let second = session
            .compile(&Shape::new(vec![g(), g(), g()]).unwrap())
            .unwrap();
        assert_eq!(session.num_cached_chains(), 1, "equal shape is a cache hit");
        assert_eq!(first.variants().len(), second.variants().len());
        // Changing options invalidates the cache.
        session.set_options(CompileOptions {
            expand_by: 1,
            ..CompileOptions::default()
        });
        assert_eq!(session.num_cached_chains(), 0);
    }

    #[test]
    fn session_optimal_cost_matches_free_function() {
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let shape = Shape::new(vec![g(), l, g(), g()]).unwrap();
        let mut session = CompileSession::new();
        for trial in 0..6u64 {
            let inst = Instance::new(vec![3 + trial, 7 + trial, 7 + trial, 2 + trial, 9 + trial]);
            let warm = session.optimal_cost(&shape, &inst).unwrap();
            let cold = crate::dp::optimal_cost(&shape, &inst).unwrap();
            assert_eq!(warm.to_bits(), cold.to_bits());
        }
        assert_eq!(session.num_shapes(), 1);
    }

    #[test]
    fn session_variant_cap_is_configurable() {
        let mut session = CompileSession::new();
        session.set_variant_cap(10);
        let shape = Shape::new(vec![g(); 7]).unwrap();
        assert!(matches!(
            session.all_variants(&shape),
            Err(EnumerateError::PoolTooLarge {
                variants: 132,
                cap: 10
            })
        ));
        session.set_variant_cap(DEFAULT_VARIANT_CAP);
        assert_eq!(session.all_variants(&shape).unwrap().len(), 132);
    }

    #[test]
    fn session_evaluate_uses_owned_workspace() {
        let mut session = CompileSession::new();
        let shape = Shape::new(vec![g(), g()]).unwrap();
        let chain = session.compile(&shape).unwrap();
        // Large enough to force the blocked GEMM path (m*n*k >= 32^3).
        let a = Matrix::from_fn(40, 40, |i, j| (i + 2 * j) as f64 * 0.25);
        let b = Matrix::from_fn(40, 40, |i, j| (i as f64) - (j as f64) * 0.5);
        let x = session.evaluate(&chain, &[a.clone(), b.clone()]).unwrap();
        assert_eq!((x.rows(), x.cols()), (40, 40));
        assert!(session.workspace().capacity_bytes() > 0, "session packed");
        // Repeat evaluation reuses the buffers without regrowth.
        let bytes = session.workspace().capacity_bytes();
        let _ = session.evaluate(&chain, &[a, b]).unwrap();
        assert_eq!(session.workspace().capacity_bytes(), bytes);
    }

    #[test]
    fn lru_eviction_respects_recency_and_counts() {
        let mut session = CompileSession::new();
        session.set_chain_cache_capacity(2);
        let shapes: Vec<Shape> = (2..=4).map(|n| Shape::new(vec![g(); n]).unwrap()).collect();
        session.compile(&shapes[0]).unwrap(); // miss: {0}
        session.compile(&shapes[1]).unwrap(); // miss: {0, 1}
        session.compile(&shapes[0]).unwrap(); // hit, refreshes 0
        session.compile(&shapes[2]).unwrap(); // miss, evicts 1 (LRU): {0, 2}
        assert_eq!(session.num_cached_chains(), 2);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
        session.compile(&shapes[0]).unwrap(); // still cached: hit
        session.compile(&shapes[1]).unwrap(); // evicted above: miss again
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 4, 2));
        assert!((stats.hit_rate() - 2.0 / 6.0).abs() < 1e-12);
        // Shrinking the capacity evicts immediately; 0 disables caching.
        session.set_chain_cache_capacity(1);
        assert_eq!(session.num_cached_chains(), 1);
        session.set_chain_cache_capacity(0);
        assert_eq!(session.num_cached_chains(), 0);
        session.compile(&shapes[0]).unwrap();
        assert_eq!(session.num_cached_chains(), 0, "capacity 0 caches nothing");
    }

    #[test]
    fn snapshot_restore_rebuilds_identical_chains() {
        let opts = CompileOptions {
            training_instances: 120,
            expand_by: 1,
            ..CompileOptions::default()
        };
        let mut original = CompileSession::with_options(opts.clone());
        let l =
            Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
        let shapes = [
            Shape::new(vec![g(); 4]).unwrap(),
            Shape::new(vec![g(), l, g()]).unwrap(),
        ];
        let chains: Vec<_> = shapes
            .iter()
            .map(|s| original.compile(s).unwrap())
            .collect();

        let snap = original.snapshot();
        assert_eq!(snap.len(), 2);
        let text = snap.encode();
        drop(original);

        let mut restored = CompileSession::with_options(opts.clone());
        let decoded = crate::persist::SessionSnapshot::decode(&text).unwrap();
        assert_eq!(restored.restore(&decoded).unwrap(), 2);
        assert_eq!(restored.num_cached_chains(), 2);
        let before = restored.cache_stats();
        assert_eq!((before.hits, before.misses), (0, 0), "restore is neither");
        for (shape, want) in shapes.iter().zip(&chains) {
            let got = restored.compile(shape).unwrap();
            for (a, b) in got.variants().iter().zip(want.variants()) {
                assert_eq!(a.paren(), b.paren());
                assert_eq!(a.cost_poly(), b.cost_poly());
            }
        }
        assert_eq!(restored.cache_stats().hits, 2, "restored chains are hits");

        // Restoring under different options is refused.
        let mut other = CompileSession::new();
        assert!(matches!(
            other.restore(&decoded),
            Err(PersistError::OptionsMismatch { .. })
        ));
        // So is a different variant cap: it changes the enumerate-vs-DP
        // compile path, i.e. the decisions themselves.
        let mut capped = CompileSession::with_options(opts.clone());
        capped.set_variant_cap(10);
        assert!(matches!(
            capped.restore(&decoded),
            Err(PersistError::OptionsMismatch { .. })
        ));
        assert_eq!(capped.num_cached_chains(), 0, "failed restore stays cold");
        // Filtered restore keeps only the accepted shapes.
        let mut half = CompileSession::with_options(opts);
        assert_eq!(
            half.restore_filtered(&decoded, |s| s.len() == 3).unwrap(),
            1
        );
        assert_eq!(half.num_cached_chains(), 1);
    }

    #[test]
    fn stage_profile_accounts_pipeline_spans() {
        let mut session = CompileSession::new();
        session.set_tracing(true);
        let shape = Shape::new(vec![g(), g(), g()]).unwrap();
        let chain = session.compile(&shape).unwrap();
        let p = session.stage_profile();
        assert!(p.stage_calls(Stage::Enumerate) >= 1, "enumerate span");
        assert!(p.stage_calls(Stage::Select) >= 1, "select span");
        let a = Matrix::from_fn(4, 6, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(6, 3, |i, j| (i * j) as f64);
        let c = Matrix::from_fn(3, 5, |i, j| (i + 2 * j) as f64);
        session.evaluate(&chain, &[a, b, c]).unwrap();
        let p = session.stage_profile();
        assert_eq!(p.stage_calls(Stage::Execute), 1, "execute span");
        assert!(!p.kernels().is_empty(), "per-kernel timings recorded");
        // The chain-level report renders the recorded stages.
        let report = chain.timing_report(session.stage_profile());
        assert!(report.contains("enumerate"));
        assert!(report.contains("execute"));
        // Cache hits record no new enumerate span.
        let before = session.stage_profile().clone();
        let _ = session.compile(&shape).unwrap();
        let delta = session.stage_profile().since(&before);
        assert_eq!(delta.stage_calls(Stage::Enumerate), 0);
    }

    #[test]
    fn disabled_tracing_records_nothing_and_changes_nothing() {
        let shape = Shape::new(vec![g(); 5]).unwrap();
        let mut traced = CompileSession::new();
        traced.set_tracing(true);
        let with = traced.compile(&shape).unwrap();
        let mut silent = CompileSession::new();
        silent.set_tracing(false);
        let without = silent.compile(&shape).unwrap();
        assert!(silent.stage_profile().is_empty(), "no spans when off");
        assert!(!traced.stage_profile().is_empty(), "spans when on");
        // Tracing is observability only: selected variants are identical.
        assert_eq!(with.variants().len(), without.variants().len());
        for (a, b) in with.variants().iter().zip(without.variants()) {
            assert_eq!(a.paren(), b.paren());
            assert_eq!(a.cost_poly(), b.cost_poly());
        }
        assert_eq!(
            silent.take_stage_profile(),
            StageProfile::new(),
            "taking an empty profile yields the empty profile"
        );
    }

    #[test]
    fn long_chain_compiles_through_session_dp_path() {
        let shape = Shape::new(vec![g(); 12]).unwrap();
        let opts = CompileOptions {
            training_instances: 40,
            size_hi: 150,
            ..CompileOptions::default()
        };
        let mut session = CompileSession::with_options(opts);
        let chain = session.compile(&shape).unwrap();
        assert!(!chain.variants().is_empty());
        assert!(chain.variants().len() <= 13);
    }
}
