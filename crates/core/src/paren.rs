//! Parenthesizations of a chain, represented as binary expression trees.

use std::fmt;

/// A parenthesization of (a contiguous span of) a matrix chain.
///
/// Leaves are matrix indices (zero-based); internal nodes are associations.
/// A chain with `n` matrices admits `Catalan(n - 1)` distinct trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParenTree {
    /// The matrix `M_i` (zero-based index `i`).
    Leaf(usize),
    /// The association of two sub-chains.
    Node(Box<ParenTree>, Box<ParenTree>),
}

impl ParenTree {
    /// Combine two trees into an association node.
    #[must_use]
    pub fn node(left: ParenTree, right: ParenTree) -> ParenTree {
        ParenTree::Node(Box::new(left), Box::new(right))
    }

    /// The inclusive span `(first leaf, last leaf)` covered by this tree.
    #[must_use]
    pub fn span(&self) -> (usize, usize) {
        match self {
            ParenTree::Leaf(i) => (*i, *i),
            ParenTree::Node(l, r) => (l.span().0, r.span().1),
        }
    }

    /// Number of leaves.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        let (lo, hi) = self.span();
        hi - lo + 1
    }

    /// Enumerate all parenthesizations of the leaf range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn enumerate(lo: usize, hi: usize) -> Vec<ParenTree> {
        assert!(lo <= hi, "empty span");
        if lo == hi {
            return vec![ParenTree::Leaf(lo)];
        }
        let mut out = Vec::new();
        for split in lo..hi {
            let lefts = ParenTree::enumerate(lo, split);
            let rights = ParenTree::enumerate(split + 1, hi);
            for l in &lefts {
                for r in &rights {
                    out.push(ParenTree::node(l.clone(), r.clone()));
                }
            }
        }
        out
    }

    /// Left-to-right evaluation of leaves `lo..=hi`:
    /// `(((M_lo M_{lo+1}) M_{lo+2}) ...)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn left_to_right(lo: usize, hi: usize) -> ParenTree {
        assert!(lo <= hi, "empty span");
        let mut tree = ParenTree::Leaf(lo);
        for i in lo + 1..=hi {
            tree = ParenTree::node(tree, ParenTree::Leaf(i));
        }
        tree
    }

    /// Right-to-left evaluation of leaves `lo..=hi`:
    /// `(... (M_{hi-2} (M_{hi-1} M_hi)))`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn right_to_left(lo: usize, hi: usize) -> ParenTree {
        assert!(lo <= hi, "empty span");
        let mut tree = ParenTree::Leaf(hi);
        for i in (lo..hi).rev() {
            tree = ParenTree::node(ParenTree::Leaf(i), tree);
        }
        tree
    }

    /// The fanning-out parenthesization `E_h` for a chain of `n` matrices
    /// (Eq. 4 of the paper): the prefix `M_1 .. M_h` is computed
    /// right-to-left, the suffix `M_{h+1} .. M_n` left-to-right, and the two
    /// partial results are associated last.
    ///
    /// `h` ranges over `0..=n` (size-symbol positions). For `h = 0` the
    /// whole chain is the suffix (pure left-to-right); for `h = n` it is the
    /// prefix (pure right-to-left).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `h > n`.
    #[must_use]
    pub fn fanning_out(n: usize, h: usize) -> ParenTree {
        assert!(n > 0, "empty chain");
        assert!(h <= n, "h out of range");
        if h == 0 {
            return ParenTree::left_to_right(0, n - 1);
        }
        if h == n {
            return ParenTree::right_to_left(0, n - 1);
        }
        let prefix = ParenTree::right_to_left(0, h - 1);
        let suffix = ParenTree::left_to_right(h, n - 1);
        ParenTree::node(prefix, suffix)
    }

    /// The number of distinct parenthesizations of an `n`-matrix chain
    /// (`Catalan(n - 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn count(n: usize) -> u128 {
        assert!(n > 0, "empty chain");
        // C_k = (2k)! / (k! (k+1)!) computed iteratively.
        let k = (n - 1) as u128;
        let mut c: u128 = 1;
        for i in 0..k {
            c = c * 2 * (2 * i + 1) / (i + 2);
        }
        c
    }
}

impl fmt::Display for ParenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParenTree::Leaf(i) => write!(f, "M{}", i + 1),
            ParenTree::Node(l, r) => write!(f, "({l} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumeration_counts_are_catalan() {
        for n in 1..=8 {
            let trees = ParenTree::enumerate(0, n - 1);
            assert_eq!(trees.len() as u128, ParenTree::count(n), "n = {n}");
            // All distinct.
            let set: HashSet<_> = trees.iter().collect();
            assert_eq!(set.len(), trees.len());
        }
    }

    #[test]
    fn catalan_values() {
        assert_eq!(ParenTree::count(1), 1);
        assert_eq!(ParenTree::count(2), 1);
        assert_eq!(ParenTree::count(3), 2);
        assert_eq!(ParenTree::count(4), 5);
        assert_eq!(ParenTree::count(5), 14);
        assert_eq!(ParenTree::count(7), 132);
        assert_eq!(ParenTree::count(15), 2_674_440);
    }

    #[test]
    fn spans_are_contiguous() {
        for tree in ParenTree::enumerate(0, 4) {
            assert_eq!(tree.span(), (0, 4));
            assert_eq!(tree.num_leaves(), 5);
        }
    }

    #[test]
    fn left_to_right_shape() {
        let t = ParenTree::left_to_right(0, 3);
        assert_eq!(t.to_string(), "(((M1 M2) M3) M4)");
    }

    #[test]
    fn right_to_left_shape() {
        let t = ParenTree::right_to_left(0, 3);
        assert_eq!(t.to_string(), "(M1 (M2 (M3 M4)))");
    }

    #[test]
    fn fanning_out_matches_eq4() {
        // n = 5, h = 2: ((M1 (M2)) ...) -> prefix (M1 M2) r-to-l, suffix
        // ((M3 M4) M5) l-to-r.
        let t = ParenTree::fanning_out(5, 2);
        assert_eq!(t.to_string(), "((M1 M2) ((M3 M4) M5))");
        let t = ParenTree::fanning_out(5, 0);
        assert_eq!(t.to_string(), "((((M1 M2) M3) M4) M5)");
        let t = ParenTree::fanning_out(5, 5);
        assert_eq!(t.to_string(), "(M1 (M2 (M3 (M4 M5))))");
        let t = ParenTree::fanning_out(5, 3);
        assert_eq!(t.to_string(), "((M1 (M2 M3)) (M4 M5))");
    }

    #[test]
    fn fanning_out_family_size() {
        // n + 1 distinct members for n >= 4, n - 1 for n <= 3 (paper, Sec. V).
        for n in 1..=8usize {
            let set: HashSet<ParenTree> = (0..=n).map(|h| ParenTree::fanning_out(n, h)).collect();
            let expect = if n <= 3 { (n - 1).max(1) } else { n + 1 };
            assert_eq!(set.len(), expect, "n = {n}");
        }
    }

    #[test]
    fn fanning_out_members_are_valid_parenthesizations() {
        let all: HashSet<ParenTree> = ParenTree::enumerate(0, 5).into_iter().collect();
        for h in 0..=6 {
            assert!(all.contains(&ParenTree::fanning_out(6, h)));
        }
    }
}
