//! Parenthesizations of a chain, represented as binary expression trees —
//! and, for the memoized enumeration engine, as a **span DAG** that shares
//! each distinct sub-tree across every full tree containing it.

use std::collections::HashMap;
use std::fmt;

/// A parenthesization of (a contiguous span of) a matrix chain.
///
/// Leaves are matrix indices (zero-based); internal nodes are associations.
/// A chain with `n` matrices admits `Catalan(n - 1)` distinct trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParenTree {
    /// The matrix `M_i` (zero-based index `i`).
    Leaf(usize),
    /// The association of two sub-chains.
    Node(Box<ParenTree>, Box<ParenTree>),
}

impl ParenTree {
    /// Combine two trees into an association node.
    #[must_use]
    pub fn node(left: ParenTree, right: ParenTree) -> ParenTree {
        ParenTree::Node(Box::new(left), Box::new(right))
    }

    /// The inclusive span `(first leaf, last leaf)` covered by this tree.
    #[must_use]
    pub fn span(&self) -> (usize, usize) {
        match self {
            ParenTree::Leaf(i) => (*i, *i),
            ParenTree::Node(l, r) => (l.span().0, r.span().1),
        }
    }

    /// Number of leaves.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        let (lo, hi) = self.span();
        hi - lo + 1
    }

    /// Enumerate all parenthesizations of the leaf range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn enumerate(lo: usize, hi: usize) -> Vec<ParenTree> {
        assert!(lo <= hi, "empty span");
        if lo == hi {
            return vec![ParenTree::Leaf(lo)];
        }
        let mut out = Vec::new();
        for split in lo..hi {
            let lefts = ParenTree::enumerate(lo, split);
            let rights = ParenTree::enumerate(split + 1, hi);
            for l in &lefts {
                for r in &rights {
                    out.push(ParenTree::node(l.clone(), r.clone()));
                }
            }
        }
        out
    }

    /// Left-to-right evaluation of leaves `lo..=hi`:
    /// `(((M_lo M_{lo+1}) M_{lo+2}) ...)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn left_to_right(lo: usize, hi: usize) -> ParenTree {
        assert!(lo <= hi, "empty span");
        let mut tree = ParenTree::Leaf(lo);
        for i in lo + 1..=hi {
            tree = ParenTree::node(tree, ParenTree::Leaf(i));
        }
        tree
    }

    /// Right-to-left evaluation of leaves `lo..=hi`:
    /// `(... (M_{hi-2} (M_{hi-1} M_hi)))`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn right_to_left(lo: usize, hi: usize) -> ParenTree {
        assert!(lo <= hi, "empty span");
        let mut tree = ParenTree::Leaf(hi);
        for i in (lo..hi).rev() {
            tree = ParenTree::node(ParenTree::Leaf(i), tree);
        }
        tree
    }

    /// The fanning-out parenthesization `E_h` for a chain of `n` matrices
    /// (Eq. 4 of the paper): the prefix `M_1 .. M_h` is computed
    /// right-to-left, the suffix `M_{h+1} .. M_n` left-to-right, and the two
    /// partial results are associated last.
    ///
    /// `h` ranges over `0..=n` (size-symbol positions). For `h = 0` the
    /// whole chain is the suffix (pure left-to-right); for `h = n` it is the
    /// prefix (pure right-to-left).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `h > n`.
    #[must_use]
    pub fn fanning_out(n: usize, h: usize) -> ParenTree {
        assert!(n > 0, "empty chain");
        assert!(h <= n, "h out of range");
        if h == 0 {
            return ParenTree::left_to_right(0, n - 1);
        }
        if h == n {
            return ParenTree::right_to_left(0, n - 1);
        }
        let prefix = ParenTree::right_to_left(0, h - 1);
        let suffix = ParenTree::left_to_right(h, n - 1);
        ParenTree::node(prefix, suffix)
    }

    /// The number of distinct parenthesizations of an `n`-matrix chain
    /// (`Catalan(n - 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn count(n: usize) -> u128 {
        assert!(n > 0, "empty chain");
        // C_k = (2k)! / (k! (k+1)!) computed iteratively.
        let k = (n - 1) as u128;
        let mut c: u128 = 1;
        for i in 0..k {
            c = c * 2 * (2 * i + 1) / (i + 2);
        }
        c
    }
}

impl fmt::Display for ParenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParenTree::Leaf(i) => write!(f, "M{}", i + 1),
            ParenTree::Node(l, r) => write!(f, "({l} {r})"),
        }
    }
}

/// Index of a node in a [`SpanDag`] arena.
pub type NodeId = usize;

/// Arena entry of one interned sub-tree.
#[derive(Debug, Clone, Copy)]
struct SpanNode {
    /// First leaf of the node's span.
    lo: usize,
    /// Last leaf of the node's span (inclusive).
    hi: usize,
    /// Children for association nodes, `None` for leaves.
    children: Option<(NodeId, NodeId)>,
}

/// The parenthesizations of a chain as a directed acyclic graph of
/// **interned sub-trees**: every distinct parenthesization of a sub-span
/// `(i, j)` exists exactly once, shared by every full tree that contains
/// it.
///
/// The sum of distinct sub-trees over all spans grows far slower than
/// `Catalan(n - 1) × n` — 301 nodes versus 792 per-tree associations for
/// `n = 7` — which is what lets the memoized enumeration engine
/// ([`crate::pool::PoolBuilder`]) lower each sub-span once instead of
/// once per containing tree.
///
/// Node ids are assigned in creation order, so **children always precede
/// their parents**: ascending id order is a topological order of the DAG.
/// Leaves occupy ids `0..n`.
#[derive(Debug)]
pub struct SpanDag {
    n: usize,
    nodes: Vec<SpanNode>,
    /// Sentinel-less preorder bit string per node (`1` per association,
    /// `0` per leaf; a node of `w` leaves occupies `2w - 1` bits),
    /// composed incrementally from the children's codes so no tree walk
    /// is ever needed. Nodes wider than 64 leaves store `0` (their code
    /// is never requested — the cross-shape fragment store skips them).
    codes: Vec<u128>,
    /// Association nodes interned by their children (the children ids
    /// uniquely determine the sub-tree).
    interned: HashMap<(NodeId, NodeId), NodeId, crate::fragcache::FxBuildHasher>,
    /// Per-span enumeration lists in the canonical
    /// [`ParenTree::enumerate`] order, indexed `lo * n + hi` and filled
    /// by [`SpanDag::enumerate_roots`].
    span_lists: Vec<Option<Vec<NodeId>>>,
}

impl SpanDag {
    /// An empty DAG over a chain of `n` matrices; leaves `0..n` are
    /// pre-created with `NodeId == leaf index`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty chain");
        let nodes = (0..n)
            .map(|i| SpanNode {
                lo: i,
                hi: i,
                children: None,
            })
            .collect();
        SpanDag {
            n,
            nodes,
            codes: vec![0; n],
            interned: HashMap::default(),
            span_lists: vec![None; n * n],
        }
    }

    /// Slot of span `(lo, hi)` in [`SpanDag::span_lists`].
    fn slot(&self, lo: usize, hi: usize) -> usize {
        lo * self.n + hi
    }

    /// Chain length this DAG spans.
    #[must_use]
    pub fn chain_len(&self) -> usize {
        self.n
    }

    /// Total number of interned nodes (leaves included).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The inclusive leaf span of a node.
    #[must_use]
    pub fn span(&self, id: NodeId) -> (usize, usize) {
        let node = &self.nodes[id];
        (node.lo, node.hi)
    }

    /// Number of leaves under a node.
    #[must_use]
    pub fn num_leaves(&self, id: NodeId) -> usize {
        let node = &self.nodes[id];
        node.hi - node.lo + 1
    }

    /// The children of an association node, `None` for leaves.
    #[must_use]
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[id].children
    }

    /// Materialize the [`ParenTree`] of a node from the arena. Built on
    /// demand — the DAG itself keeps only spans, children, and bit
    /// codes, so enumeration never pays for deep tree clones.
    #[must_use]
    pub fn tree(&self, id: NodeId) -> ParenTree {
        match self.nodes[id].children {
            None => ParenTree::Leaf(self.nodes[id].lo),
            Some((l, r)) => ParenTree::node(self.tree(l), self.tree(r)),
        }
    }

    /// Preorder bit code of a node: `1` per association node, `0` per
    /// leaf, behind a sentinel `1` so the code is length-unambiguous.
    /// Composed incrementally at interning time; fits spans of up to 64
    /// leaves.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the node spans more than 64 leaves.
    #[must_use]
    pub fn code(&self, id: NodeId) -> u128 {
        let w = self.num_leaves(id);
        debug_assert!(w <= 64, "code requested for a span wider than 64 leaves");
        (1 << (2 * w - 1)) | self.codes[id]
    }

    /// Intern the association of two already-interned nodes. The spans
    /// must be adjacent (`left.hi + 1 == right.lo`).
    pub fn node(&mut self, left: NodeId, right: NodeId) -> NodeId {
        debug_assert_eq!(
            self.nodes[left].hi + 1,
            self.nodes[right].lo,
            "associated spans must be adjacent"
        );
        if let Some(&id) = self.interned.get(&(left, right)) {
            return id;
        }
        let id = self.nodes.len();
        let (wl, wr) = (self.num_leaves(left), self.num_leaves(right));
        // bits(node) = '1' ++ bits(left) ++ bits(right); a child of w
        // leaves contributes 2w - 1 bits. Spans wider than 64 leaves
        // overflow the u128 and store 0 (their code is never read).
        let code = if wl + wr <= 64 {
            let (nl, nr) = (2 * wl as u32 - 1, 2 * wr as u32 - 1);
            (1 << (nl + nr)) | (self.codes[left] << nr) | self.codes[right]
        } else {
            0
        };
        self.nodes.push(SpanNode {
            lo: self.nodes[left].lo,
            hi: self.nodes[right].hi,
            children: Some((left, right)),
        });
        self.codes.push(code);
        self.interned.insert((left, right), id);
        id
    }

    /// Intern an explicit [`ParenTree`], sharing every sub-tree already
    /// in the DAG. Returns `None` if the tree is not a well-formed
    /// parenthesization over this chain (leaf out of range, or sibling
    /// spans not adjacent).
    pub fn intern_tree(&mut self, tree: &ParenTree) -> Option<NodeId> {
        match tree {
            ParenTree::Leaf(i) => (*i < self.n).then_some(*i),
            ParenTree::Node(l, r) => {
                let left = self.intern_tree(l)?;
                let right = self.intern_tree(r)?;
                (self.nodes[left].hi + 1 == self.nodes[right].lo).then(|| self.node(left, right))
            }
        }
    }

    /// All parenthesizations of the full chain, as root node ids in
    /// exactly the [`ParenTree::enumerate`] order (split position
    /// ascending, then left sub-trees outer, right sub-trees inner,
    /// recursively). Spans are enumerated bottom-up and memoized, so a
    /// second call is a lookup.
    pub fn enumerate_roots(&mut self) -> Vec<NodeId> {
        for lo in 0..self.n {
            let slot = self.slot(lo, lo);
            if self.span_lists[slot].is_none() {
                self.span_lists[slot] = Some(vec![lo]);
            }
        }
        // Scratch for the (left, right) pairs of one span, collected
        // first so `self.node` can borrow the arena mutably afterwards
        // without cloning the child lists.
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for len in 2..=self.n {
            for lo in 0..=self.n - len {
                let hi = lo + len - 1;
                if self.span_lists[self.slot(lo, hi)].is_some() {
                    continue;
                }
                pairs.clear();
                for split in lo..hi {
                    let lefts = self.span_lists[self.slot(lo, split)]
                        .as_ref()
                        .expect("shorter spans precede longer ones");
                    let rights = self.span_lists[self.slot(split + 1, hi)]
                        .as_ref()
                        .expect("shorter spans precede longer ones");
                    for &l in lefts {
                        for &r in rights {
                            pairs.push((l, r));
                        }
                    }
                }
                let list: Vec<NodeId> = pairs.iter().map(|&(l, r)| self.node(l, r)).collect();
                let slot = self.slot(lo, hi);
                self.span_lists[slot] = Some(list);
            }
        }
        self.span_lists[self.slot(0, self.n - 1)]
            .clone()
            .expect("filled above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumeration_counts_are_catalan() {
        for n in 1..=8 {
            let trees = ParenTree::enumerate(0, n - 1);
            assert_eq!(trees.len() as u128, ParenTree::count(n), "n = {n}");
            // All distinct.
            let set: HashSet<_> = trees.iter().collect();
            assert_eq!(set.len(), trees.len());
        }
    }

    #[test]
    fn catalan_values() {
        assert_eq!(ParenTree::count(1), 1);
        assert_eq!(ParenTree::count(2), 1);
        assert_eq!(ParenTree::count(3), 2);
        assert_eq!(ParenTree::count(4), 5);
        assert_eq!(ParenTree::count(5), 14);
        assert_eq!(ParenTree::count(7), 132);
        assert_eq!(ParenTree::count(15), 2_674_440);
    }

    #[test]
    fn spans_are_contiguous() {
        for tree in ParenTree::enumerate(0, 4) {
            assert_eq!(tree.span(), (0, 4));
            assert_eq!(tree.num_leaves(), 5);
        }
    }

    #[test]
    fn left_to_right_shape() {
        let t = ParenTree::left_to_right(0, 3);
        assert_eq!(t.to_string(), "(((M1 M2) M3) M4)");
    }

    #[test]
    fn right_to_left_shape() {
        let t = ParenTree::right_to_left(0, 3);
        assert_eq!(t.to_string(), "(M1 (M2 (M3 M4)))");
    }

    #[test]
    fn fanning_out_matches_eq4() {
        // n = 5, h = 2: ((M1 (M2)) ...) -> prefix (M1 M2) r-to-l, suffix
        // ((M3 M4) M5) l-to-r.
        let t = ParenTree::fanning_out(5, 2);
        assert_eq!(t.to_string(), "((M1 M2) ((M3 M4) M5))");
        let t = ParenTree::fanning_out(5, 0);
        assert_eq!(t.to_string(), "((((M1 M2) M3) M4) M5)");
        let t = ParenTree::fanning_out(5, 5);
        assert_eq!(t.to_string(), "(M1 (M2 (M3 (M4 M5))))");
        let t = ParenTree::fanning_out(5, 3);
        assert_eq!(t.to_string(), "((M1 (M2 M3)) (M4 M5))");
    }

    #[test]
    fn fanning_out_family_size() {
        // n + 1 distinct members for n >= 4, n - 1 for n <= 3 (paper, Sec. V).
        for n in 1..=8usize {
            let set: HashSet<ParenTree> = (0..=n).map(|h| ParenTree::fanning_out(n, h)).collect();
            let expect = if n <= 3 { (n - 1).max(1) } else { n + 1 };
            assert_eq!(set.len(), expect, "n = {n}");
        }
    }

    #[test]
    fn fanning_out_members_are_valid_parenthesizations() {
        let all: HashSet<ParenTree> = ParenTree::enumerate(0, 5).into_iter().collect();
        for h in 0..=6 {
            assert!(all.contains(&ParenTree::fanning_out(6, h)));
        }
    }

    #[test]
    fn dag_roots_match_enumeration_order_exactly() {
        for n in 1..=7 {
            let mut dag = SpanDag::new(n);
            let roots = dag.enumerate_roots();
            let trees = ParenTree::enumerate(0, n - 1);
            assert_eq!(roots.len(), trees.len(), "n = {n}");
            for (id, tree) in roots.iter().zip(&trees) {
                assert_eq!(&dag.tree(*id), tree, "n = {n}");
            }
            // Idempotent: a second enumeration interns nothing new.
            let nodes = dag.num_nodes();
            assert_eq!(dag.enumerate_roots(), roots);
            assert_eq!(dag.num_nodes(), nodes);
        }
    }

    #[test]
    fn dag_shares_subtrees_across_full_trees() {
        // Distinct sub-trees over all spans of n = 7: sum over span
        // lengths L of (n - L + 1) * Catalan(L - 1) = 301, versus
        // 132 trees x 6 associations = 792 without sharing.
        let mut dag = SpanDag::new(7);
        let roots = dag.enumerate_roots();
        assert_eq!(roots.len(), 132);
        assert_eq!(dag.num_nodes(), 301);
        // Children always precede parents (ids are topologically sorted).
        for id in 0..dag.num_nodes() {
            if let Some((l, r)) = dag.children(id) {
                assert!(l < id && r < id);
                let (llo, lhi) = dag.span(l);
                let (rlo, rhi) = dag.span(r);
                assert_eq!(lhi + 1, rlo);
                assert_eq!(dag.span(id), (llo, rhi));
            }
        }
    }

    #[test]
    fn dag_interning_dedupes_explicit_trees() {
        let mut dag = SpanDag::new(5);
        let roots = dag.enumerate_roots();
        let nodes = dag.num_nodes();
        // Every enumerated tree interns back to its existing node.
        for (id, tree) in roots.iter().zip(ParenTree::enumerate(0, 4)) {
            assert_eq!(dag.intern_tree(&tree), Some(*id));
        }
        assert_eq!(dag.num_nodes(), nodes, "no duplicates created");
        // Interning into a fresh DAG builds only the needed sub-trees.
        let mut sparse = SpanDag::new(5);
        let t = ParenTree::left_to_right(0, 4);
        let id = sparse.intern_tree(&t).unwrap();
        assert_eq!(sparse.tree(id), t);
        assert_eq!(sparse.num_nodes(), 5 + 4, "leaves + one spine");
    }

    #[test]
    fn dag_codes_match_preorder_reference_encoding() {
        // Reference: walk the materialized tree in preorder, shifting in
        // a `1` per node and a `0` per leaf behind a sentinel `1`.
        fn reference(t: &ParenTree, acc: &mut u128) {
            match t {
                ParenTree::Leaf(_) => *acc <<= 1,
                ParenTree::Node(l, r) => {
                    *acc = (*acc << 1) | 1;
                    reference(l, acc);
                    reference(r, acc);
                }
            }
        }
        for n in 1..=7 {
            let mut dag = SpanDag::new(n);
            dag.enumerate_roots();
            for id in 0..dag.num_nodes() {
                let mut acc = 1;
                reference(&dag.tree(id), &mut acc);
                assert_eq!(dag.code(id), acc, "node {id}, n = {n}");
            }
        }
        // The smallest association: ((M1 M2)) encodes as 0b1100.
        let mut dag = SpanDag::new(2);
        let root = dag.enumerate_roots()[0];
        assert_eq!(dag.code(root), 0xc);
    }

    #[test]
    fn dag_rejects_malformed_trees() {
        let mut dag = SpanDag::new(3);
        // Leaf out of range.
        assert_eq!(dag.intern_tree(&ParenTree::Leaf(3)), None);
        // Sibling spans not adjacent (leaf repeated / gap).
        let twin = ParenTree::node(ParenTree::Leaf(0), ParenTree::Leaf(0));
        assert_eq!(dag.intern_tree(&twin), None);
        let gap = ParenTree::node(ParenTree::Leaf(0), ParenTree::Leaf(2));
        assert_eq!(dag.intern_tree(&gap), None);
        // A valid tree still interns after the rejections.
        assert!(dag.intern_tree(&ParenTree::left_to_right(0, 2)).is_some());
    }
}
