//! Warm-restart persistence for [`CompileSession`](crate::CompileSession):
//! a compact text snapshot of the compiled-chain cache.
//!
//! A snapshot stores **decisions, not code**: for every cached chain it
//! records the shape descriptor (via [`Shape::compact`]) once, keyed by
//! the session's dense [`gmc_ir::ShapeInterner`] id, plus the selected
//! variants as parenthesization trees. Loading re-lowers each tree with
//! the deterministic variant builder, so a restored session produces
//! **bit-identical** compiled chains — same variants, cost polynomials,
//! and emitted C++/Rust — without re-running enumeration, DP, or the
//! Algorithm-1 expansion. That turns a service restart from a cold
//! recompile of every hot shape into a file read.
//!
//! # Format (`gmc-session-snapshot v1`)
//!
//! ```text
//! gmc-session-snapshot v1
//! options train=1000 lo=2 hi=1000 expand=0 obj=avg seed=6176455
//! shape 0 Gs Lni Gs
//! chain 0 ((0,1),2) (0,(1,2))
//! shape 1 ...
//! chain 1 ...
//! ```
//!
//! Shapes are numbered densely in snapshot order; `chain k` lists the
//! selected parenthesizations of `shape k` (leaves are operand indices,
//! nodes `(left,right)`). The `options` line fingerprints every
//! [`CompileOptions`] field that influences selection — snapshots only
//! restore into sessions with matching options, because the recorded
//! decisions would otherwise silently misrepresent what the session
//! would have selected. Scheduling-only knobs (`scan_stripe`, thread
//! counts) are deliberately excluded: they never change selection.

use crate::expand::Objective;
use crate::paren::ParenTree;
use crate::program::CompileOptions;
use gmc_ir::Shape;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// First line of every snapshot file.
pub const SNAPSHOT_HEADER: &str = "gmc-session-snapshot v1";

/// Errors from encoding, decoding, or restoring a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The snapshot text is malformed (payload: 1-based line and cause).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The snapshot was taken under different compile options.
    OptionsMismatch {
        /// The restoring session's options fingerprint.
        expected: String,
        /// The snapshot's options fingerprint.
        found: String,
    },
    /// Re-lowering a recorded parenthesization failed.
    Rebuild(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::Parse { line, msg } => {
                write!(f, "snapshot parse error on line {line}: {msg}")
            }
            PersistError::OptionsMismatch { expected, found } => write!(
                f,
                "snapshot was taken under different compile options \
                 (session: {expected}; snapshot: {found})"
            ),
            PersistError::Rebuild(msg) => write!(f, "snapshot variant rebuild failed: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Fingerprint of everything that influences variant selection: the
/// [`CompileOptions`] fields plus the session's variant cap (the cap
/// decides the enumerate-vs-DP compile path, which changes the
/// candidate pool and therefore the recorded decisions).
pub(crate) fn options_key(o: &CompileOptions, variant_cap: u64) -> String {
    let obj = match o.objective {
        Objective::AvgPenalty => "avg",
        Objective::MaxPenalty => "max",
    };
    format!(
        "train={} lo={} hi={} expand={} obj={obj} seed={} vcap={variant_cap}",
        o.training_instances, o.size_lo, o.size_hi, o.expand_by, o.seed
    )
}

/// A decoded (or to-be-encoded) session snapshot: the selection decisions
/// of a set of compiled chains, one entry per distinct shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    options_key: String,
    entries: Vec<(Shape, Vec<ParenTree>)>,
}

impl SessionSnapshot {
    pub(crate) fn from_parts(options_key: String, entries: Vec<(Shape, Vec<ParenTree>)>) -> Self {
        SessionSnapshot {
            options_key,
            entries,
        }
    }

    /// Number of chains recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no chains are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The snapshot's options fingerprint line (without the `options `
    /// prefix).
    #[must_use]
    pub fn options_fingerprint(&self) -> &str {
        &self.options_key
    }

    /// `true` if this snapshot may be restored into a session running
    /// with `options` and the default variant cap (selection-relevant
    /// fields match). A session with a custom
    /// [`crate::CompileSession::set_variant_cap`] is checked precisely
    /// by [`crate::CompileSession::restore`] instead.
    #[must_use]
    pub fn compatible_with(&self, options: &CompileOptions) -> bool {
        self.options_key == options_key(options, crate::enumerate::DEFAULT_VARIANT_CAP)
    }

    /// The recorded shapes, in snapshot order.
    pub fn shapes(&self) -> impl Iterator<Item = &Shape> {
        self.entries.iter().map(|(s, _)| s)
    }

    pub(crate) fn entries(&self) -> &[(Shape, Vec<ParenTree>)] {
        &self.entries
    }

    /// Fold `other`'s entries into this snapshot, skipping shapes already
    /// present. Returns the number of chains added.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::OptionsMismatch`] if the two snapshots
    /// were taken under different options.
    pub fn merge(&mut self, other: SessionSnapshot) -> Result<usize, PersistError> {
        if self.options_key != other.options_key {
            return Err(PersistError::OptionsMismatch {
                expected: self.options_key.clone(),
                found: other.options_key,
            });
        }
        let mut added = 0;
        for (shape, parens) in other.entries {
            if !self.entries.iter().any(|(s, _)| *s == shape) {
                self.entries.push((shape, parens));
                added += 1;
            }
        }
        Ok(added)
    }

    /// Serialize to the `gmc-session-snapshot v1` text format.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{SNAPSHOT_HEADER}");
        let _ = writeln!(out, "options {}", self.options_key);
        for (id, (shape, parens)) in self.entries.iter().enumerate() {
            let _ = writeln!(out, "shape {id} {}", shape.compact());
            let _ = write!(out, "chain {id}");
            for p in parens {
                out.push(' ');
                encode_paren(p, &mut out);
            }
            out.push('\n');
        }
        out
    }

    /// Parse the `gmc-session-snapshot v1` text format.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Parse`] with the offending line on any
    /// malformed input, including parenthesizations that do not cover
    /// their shape's operands exactly.
    pub fn decode(text: &str) -> Result<Self, PersistError> {
        let err = |line: usize, msg: String| PersistError::Parse { line, msg };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| err(1, "empty snapshot".into()))?;
        if header.trim() != SNAPSHOT_HEADER {
            return Err(err(1, format!("bad header `{header}`")));
        }
        let (_, options_line) = lines
            .next()
            .ok_or_else(|| err(2, "missing options line".into()))?;
        let options_key = options_line
            .strip_prefix("options ")
            .ok_or_else(|| err(2, format!("expected `options ...`, got `{options_line}`")))?
            .to_string();

        let mut entries: Vec<(Shape, Vec<ParenTree>)> = Vec::new();
        while let Some((i, line)) = lines.next() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("shape ")
                .ok_or_else(|| err(lineno, format!("expected `shape ...`, got `{line}`")))?;
            let (id_str, code) = rest
                .split_once(' ')
                .ok_or_else(|| err(lineno, "shape line needs an id and a code".into()))?;
            let id: usize = id_str
                .parse()
                .map_err(|_| err(lineno, format!("bad shape id `{id_str}`")))?;
            if id != entries.len() {
                return Err(err(
                    lineno,
                    format!(
                        "shape ids must be dense: expected {}, got {id}",
                        entries.len()
                    ),
                ));
            }
            let shape = Shape::from_compact(code).map_err(|e| err(lineno, e))?;

            let (j, chain_line) = lines
                .next()
                .ok_or_else(|| err(lineno, format!("shape {id} has no chain line")))?;
            let chainno = j + 1;
            let rest = chain_line
                .strip_prefix("chain ")
                .ok_or_else(|| err(chainno, format!("expected `chain ...`, got `{chain_line}`")))?;
            let mut tokens = rest.split_whitespace();
            let cid = tokens.next().unwrap_or("");
            if cid != id_str {
                return Err(err(
                    chainno,
                    format!("chain id `{cid}` != shape id `{id_str}`"),
                ));
            }
            let mut parens = Vec::new();
            for tok in tokens {
                let tree = decode_paren(tok).map_err(|e| err(chainno, e))?;
                if !covers_chain(&tree, shape.len()) {
                    return Err(err(
                        chainno,
                        format!(
                            "parenthesization `{tok}` does not cover operands 0..{}",
                            shape.len()
                        ),
                    ));
                }
                parens.push(tree);
            }
            if parens.is_empty() {
                return Err(err(chainno, format!("chain {id} has no variants")));
            }
            entries.push((shape, parens));
        }
        Ok(SessionSnapshot {
            options_key,
            entries,
        })
    }

    /// Write the encoded snapshot to `path` **atomically**: the bytes go
    /// to a `<path>.tmp` sibling in the same directory first and are
    /// renamed into place, so a crash mid-write can never leave a
    /// truncated snapshot at `path` — readers see either the old file or
    /// the new one, whole.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temp file is cleaned up on a failed
    /// rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, self.encode())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Read and decode a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`PersistError::Parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        SessionSnapshot::decode(&std::fs::read_to_string(path)?)
    }
}

/// Serialize a parenthesization: leaves are operand indices, nodes
/// `(left,right)` — e.g. `((0,1),2)`.
fn encode_paren(tree: &ParenTree, out: &mut String) {
    match tree {
        ParenTree::Leaf(i) => {
            let _ = write!(out, "{i}");
        }
        ParenTree::Node(l, r) => {
            out.push('(');
            encode_paren(l, out);
            out.push(',');
            encode_paren(r, out);
            out.push(')');
        }
    }
}

/// Parse the [`encode_paren`] format.
fn decode_paren(s: &str) -> Result<ParenTree, String> {
    fn node(b: &[u8], i: &mut usize) -> Result<ParenTree, String> {
        match b.get(*i) {
            Some(b'(') => {
                *i += 1;
                let left = node(b, i)?;
                if b.get(*i) != Some(&b',') {
                    return Err("expected `,` in parenthesization".into());
                }
                *i += 1;
                let right = node(b, i)?;
                if b.get(*i) != Some(&b')') {
                    return Err("expected `)` in parenthesization".into());
                }
                *i += 1;
                Ok(ParenTree::node(left, right))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *i;
                while b.get(*i).is_some_and(u8::is_ascii_digit) {
                    *i += 1;
                }
                let text = std::str::from_utf8(&b[start..*i]).expect("digits are utf8");
                text.parse()
                    .map(ParenTree::Leaf)
                    .map_err(|_| format!("bad leaf index `{text}`"))
            }
            other => Err(format!("unexpected byte {other:?} in parenthesization")),
        }
    }
    let b = s.as_bytes();
    let mut i = 0;
    let tree = node(b, &mut i)?;
    if i != b.len() {
        return Err(format!("trailing garbage in parenthesization `{s}`"));
    }
    Ok(tree)
}

/// `true` if the tree's in-order leaves are exactly `0..n` — i.e. it is a
/// valid parenthesization of an `n`-operand chain (not just a tree with a
/// plausible span).
fn covers_chain(tree: &ParenTree, n: usize) -> bool {
    fn walk(t: &ParenTree, next: &mut usize) -> bool {
        match t {
            ParenTree::Leaf(i) => {
                if *i == *next {
                    *next += 1;
                    true
                } else {
                    false
                }
            }
            ParenTree::Node(l, r) => walk(l, next) && walk(r, next),
        }
    }
    let mut next = 0;
    walk(tree, &mut next) && next == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Operand, Property, Structure};

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    fn sample() -> SessionSnapshot {
        let shape3 = Shape::new(vec![g(); 3]).unwrap();
        let l =
            Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
        let shape2 = Shape::new(vec![g(), l]).unwrap();
        SessionSnapshot::from_parts(
            options_key(&CompileOptions::default(), 1 << 16),
            vec![
                (
                    shape3,
                    vec![
                        ParenTree::left_to_right(0, 2),
                        ParenTree::right_to_left(0, 2),
                    ],
                ),
                (shape2, vec![ParenTree::left_to_right(0, 1)]),
            ],
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let text = snap.encode();
        assert!(text.starts_with(SNAPSHOT_HEADER));
        assert!(text.contains("shape 0 Gs Gs Gs"));
        assert!(text.contains("chain 0 ((0,1),2) (0,(1,2))"));
        assert!(text.contains("shape 1 Gs Lni"));
        let back = SessionSnapshot::decode(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_line_numbers() {
        let cases: &[(&str, usize)] = &[
            ("", 1),
            ("not-a-header\noptions x", 1),
            (SNAPSHOT_HEADER, 2),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nchain 0 0"), 3),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nshape 1 Gs"), 3),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Qs"), 3),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs"), 3),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0"),
                4,
            ),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0 (0,(1,2))"),
                4,
            ),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0 (0,0)"),
                4,
            ),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0 (0,1)x"),
                4,
            ),
        ];
        for (text, line) in cases {
            match SessionSnapshot::decode(text) {
                Err(PersistError::Parse { line: got, .. }) => {
                    assert_eq!(got, *line, "wrong line for {text:?}");
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn merge_dedups_and_checks_options() {
        let mut a = sample();
        let b = sample();
        assert_eq!(a.merge(b).unwrap(), 0, "identical snapshots add nothing");
        let extra = SessionSnapshot::from_parts(
            a.options_fingerprint().to_string(),
            vec![(
                Shape::new(vec![g(); 4]).unwrap(),
                vec![ParenTree::left_to_right(0, 3)],
            )],
        );
        assert_eq!(a.merge(extra).unwrap(), 1);
        assert_eq!(a.len(), 3);
        let alien = SessionSnapshot::from_parts("other".into(), vec![]);
        assert!(matches!(
            a.merge(alien),
            Err(PersistError::OptionsMismatch { .. })
        ));
    }

    #[test]
    fn options_key_tracks_selection_inputs_only() {
        let base = CompileOptions::default();
        let mut stripe = base.clone();
        stripe.scan_stripe = 64;
        assert_eq!(
            options_key(&base, 100),
            options_key(&stripe, 100),
            "scheduling knob"
        );
        let mut seeded = base.clone();
        seeded.seed += 1;
        assert_ne!(options_key(&base, 100), options_key(&seeded, 100));
        let mut obj = base.clone();
        obj.objective = Objective::MaxPenalty;
        assert_ne!(options_key(&base, 100), options_key(&obj, 100));
        assert_ne!(
            options_key(&base, 100),
            options_key(&base, 200),
            "variant cap"
        );
    }
}
