//! Warm-restart persistence for [`CompileSession`](crate::CompileSession):
//! a compact text snapshot of the compiled-chain cache.
//!
//! A snapshot stores **decisions, not code**: for every cached chain it
//! records the shape descriptor (via [`Shape::compact`]) once, keyed by
//! the session's dense [`gmc_ir::ShapeInterner`] id, plus the selected
//! variants as parenthesization trees. Loading re-lowers each tree with
//! the deterministic variant builder, so a restored session produces
//! **bit-identical** compiled chains — same variants, cost polynomials,
//! and emitted C++/Rust — without re-running enumeration, DP, or the
//! Algorithm-1 expansion. That turns a service restart from a cold
//! recompile of every hot shape into a file read.
//!
//! # Format (`gmc-session-snapshot v1`)
//!
//! ```text
//! gmc-session-snapshot v1
//! options train=1000 lo=2 hi=1000 expand=0 obj=avg seed=6176455
//! shape 0 Gs Lni Gs
//! chain 0 ((0,1),2) (0,(1,2))
//! shape 1 ...
//! chain 1 ...
//! frags v1 2
//! frag 11 c Gn..:0:1:l0,Gn..:1:2:l1 l0~l1~GEMM~L~..~nn~.~0~1~2 Gs..:0:2:t0 2/1:0^1.1^1.2^1
//! frag ...
//! ```
//!
//! Shapes are numbered densely in snapshot order; `chain k` lists the
//! selected parenthesizations of `shape k` (leaves are operand indices,
//! nodes `(left,right)`). The `options` line fingerprints every
//! [`CompileOptions`] field that influences selection — snapshots only
//! restore into sessions with matching options, because the recorded
//! decisions would otherwise silently misrepresent what the session
//! would have selected. Scheduling-only knobs (`scan_stripe`, thread
//! counts) are deliberately excluded: they never change selection.
//!
//! The optional trailing **fragment section** (since PR 7) persists the
//! hot entries of the session's cross-shape fragment store
//! ([`crate::fragcache`]): `frags v1 <count>` followed by exactly
//! `<count>` `frag` lines, each one store entry in the canonical
//! span-local frame — build options, the span tree's preorder bit code
//! (hex), the localized leaf-descriptor run, the association step, the
//! result descriptor, and the exact rational cost polynomial. The
//! declared count makes torn writes detectable: a truncated section
//! fails decoding (and the serving layer quarantines the file) instead
//! of silently warm-starting from half a store. Snapshots without the
//! section — every pre-PR-7 snapshot — still decode; snapshots with an
//! empty store encode without it, byte-identical to the old format.

use crate::builder::{BuildOptions, Fragment, NodeDesc};
use crate::expand::Objective;
use crate::fragcache::FragKey;
use crate::paren::ParenTree;
use crate::program::CompileOptions;
use crate::variant::{Step, ValRef};
use gmc_ir::poly::Monomial;
use gmc_ir::{Poly, Property, Ratio, Shape, Structure};
use gmc_kernels::Kernel;
use gmc_linalg::{Side, Triangle};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// First line of every snapshot file.
pub const SNAPSHOT_HEADER: &str = "gmc-session-snapshot v1";

/// Errors from encoding, decoding, or restoring a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The snapshot text is malformed (payload: 1-based line and cause).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The snapshot was taken under different compile options.
    OptionsMismatch {
        /// The restoring session's options fingerprint.
        expected: String,
        /// The snapshot's options fingerprint.
        found: String,
    },
    /// Re-lowering a recorded parenthesization failed.
    Rebuild(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::Parse { line, msg } => {
                write!(f, "snapshot parse error on line {line}: {msg}")
            }
            PersistError::OptionsMismatch { expected, found } => write!(
                f,
                "snapshot was taken under different compile options \
                 (session: {expected}; snapshot: {found})"
            ),
            PersistError::Rebuild(msg) => write!(f, "snapshot variant rebuild failed: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Fingerprint of everything that influences variant selection: the
/// [`CompileOptions`] fields plus the session's variant cap (the cap
/// decides the enumerate-vs-DP compile path, which changes the
/// candidate pool and therefore the recorded decisions).
pub(crate) fn options_key(o: &CompileOptions, variant_cap: u64) -> String {
    let obj = match o.objective {
        Objective::AvgPenalty => "avg",
        Objective::MaxPenalty => "max",
    };
    format!(
        "train={} lo={} hi={} expand={} obj={obj} seed={} vcap={variant_cap}",
        o.training_instances, o.size_lo, o.size_hi, o.expand_by, o.seed
    )
}

/// A decoded (or to-be-encoded) session snapshot: the selection decisions
/// of a set of compiled chains, one entry per distinct shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    options_key: String,
    entries: Vec<(Shape, Vec<ParenTree>)>,
    /// Hot cross-shape fragments in the canonical span-local frame (see
    /// [`crate::fragcache`]), oldest first. Empty for pre-PR-7 snapshots.
    frags: Vec<(FragKey, Fragment)>,
}

impl SessionSnapshot {
    pub(crate) fn from_parts(
        options_key: String,
        entries: Vec<(Shape, Vec<ParenTree>)>,
        frags: Vec<(FragKey, Fragment)>,
    ) -> Self {
        SessionSnapshot {
            options_key,
            entries,
            frags,
        }
    }

    /// Number of chains recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no chains are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The snapshot's options fingerprint line (without the `options `
    /// prefix).
    #[must_use]
    pub fn options_fingerprint(&self) -> &str {
        &self.options_key
    }

    /// `true` if this snapshot may be restored into a session running
    /// with `options` and the default variant cap (selection-relevant
    /// fields match). A session with a custom
    /// [`crate::CompileSession::set_variant_cap`] is checked precisely
    /// by [`crate::CompileSession::restore`] instead.
    #[must_use]
    pub fn compatible_with(&self, options: &CompileOptions) -> bool {
        self.options_key == options_key(options, crate::enumerate::DEFAULT_VARIANT_CAP)
    }

    /// The recorded shapes, in snapshot order.
    pub fn shapes(&self) -> impl Iterator<Item = &Shape> {
        self.entries.iter().map(|(s, _)| s)
    }

    pub(crate) fn entries(&self) -> &[(Shape, Vec<ParenTree>)] {
        &self.entries
    }

    pub(crate) fn frag_entries(&self) -> &[(FragKey, Fragment)] {
        &self.frags
    }

    /// Number of cross-shape fragments recorded.
    #[must_use]
    pub fn num_fragments(&self) -> usize {
        self.frags.len()
    }

    /// Fold `other`'s entries into this snapshot, skipping shapes already
    /// present. Returns the number of chains added.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::OptionsMismatch`] if the two snapshots
    /// were taken under different options.
    pub fn merge(&mut self, other: SessionSnapshot) -> Result<usize, PersistError> {
        if self.options_key != other.options_key {
            return Err(PersistError::OptionsMismatch {
                expected: self.options_key.clone(),
                found: other.options_key,
            });
        }
        let mut added = 0;
        for (shape, parens) in other.entries {
            if !self.entries.iter().any(|(s, _)| *s == shape) {
                self.entries.push((shape, parens));
                added += 1;
            }
        }
        // Fragments merge too (deduped by key) so per-shard snapshots
        // pool their stores into one service-wide warming set.
        for (key, frag) in other.frags {
            if !self.frags.iter().any(|(k, _)| *k == key) {
                self.frags.push((key, frag));
            }
        }
        Ok(added)
    }

    /// Serialize to the `gmc-session-snapshot v1` text format.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{SNAPSHOT_HEADER}");
        let _ = writeln!(out, "options {}", self.options_key);
        for (id, (shape, parens)) in self.entries.iter().enumerate() {
            let _ = writeln!(out, "shape {id} {}", shape.compact());
            let _ = write!(out, "chain {id}");
            for p in parens {
                out.push(' ');
                encode_paren(p, &mut out);
            }
            out.push('\n');
        }
        if !self.frags.is_empty() {
            let _ = writeln!(out, "frags v1 {}", self.frags.len());
            for (key, frag) in &self.frags {
                encode_frag(key, frag, &mut out);
                out.push('\n');
            }
        }
        out
    }

    /// Parse the `gmc-session-snapshot v1` text format.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Parse`] with the offending line on any
    /// malformed input, including parenthesizations that do not cover
    /// their shape's operands exactly.
    pub fn decode(text: &str) -> Result<Self, PersistError> {
        let err = |line: usize, msg: String| PersistError::Parse { line, msg };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| err(1, "empty snapshot".into()))?;
        if header.trim() != SNAPSHOT_HEADER {
            return Err(err(1, format!("bad header `{header}`")));
        }
        let (_, options_line) = lines
            .next()
            .ok_or_else(|| err(2, "missing options line".into()))?;
        let options_key = options_line
            .strip_prefix("options ")
            .ok_or_else(|| err(2, format!("expected `options ...`, got `{options_line}`")))?
            .to_string();

        let mut entries: Vec<(Shape, Vec<ParenTree>)> = Vec::new();
        let mut frags: Vec<(FragKey, Fragment)> = Vec::new();
        while let Some((i, line)) = lines.next() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("frags ") {
                // Versioned trailing fragment section: `frags v1 <count>`
                // then exactly <count> `frag` lines and nothing else. The
                // declared count is what makes torn writes detectable.
                let count = rest
                    .strip_prefix("v1 ")
                    .and_then(|c| c.parse::<usize>().ok())
                    .ok_or_else(|| err(lineno, format!("bad fragment section header `{line}`")))?;
                let mut last = lineno;
                for _ in 0..count {
                    let (j, frag_line) = lines.next().ok_or_else(|| {
                        err(
                            last,
                            format!("fragment section truncated: expected {count} entries"),
                        )
                    })?;
                    last = j + 1;
                    let body = frag_line.strip_prefix("frag ").ok_or_else(|| {
                        err(last, format!("expected `frag ...`, got `{frag_line}`"))
                    })?;
                    frags.push(decode_frag(body).map_err(|e| err(last, e))?);
                }
                if let Some((j, extra)) = lines.find(|(_, l)| !l.trim().is_empty()) {
                    return Err(err(
                        j + 1,
                        format!("fragment section must end the snapshot, got `{extra}`"),
                    ));
                }
                break;
            }
            let rest = line
                .strip_prefix("shape ")
                .ok_or_else(|| err(lineno, format!("expected `shape ...`, got `{line}`")))?;
            let (id_str, code) = rest
                .split_once(' ')
                .ok_or_else(|| err(lineno, "shape line needs an id and a code".into()))?;
            let id: usize = id_str
                .parse()
                .map_err(|_| err(lineno, format!("bad shape id `{id_str}`")))?;
            if id != entries.len() {
                return Err(err(
                    lineno,
                    format!(
                        "shape ids must be dense: expected {}, got {id}",
                        entries.len()
                    ),
                ));
            }
            let shape = Shape::from_compact(code).map_err(|e| err(lineno, e))?;

            let (j, chain_line) = lines
                .next()
                .ok_or_else(|| err(lineno, format!("shape {id} has no chain line")))?;
            let chainno = j + 1;
            let rest = chain_line
                .strip_prefix("chain ")
                .ok_or_else(|| err(chainno, format!("expected `chain ...`, got `{chain_line}`")))?;
            let mut tokens = rest.split_whitespace();
            let cid = tokens.next().unwrap_or("");
            if cid != id_str {
                return Err(err(
                    chainno,
                    format!("chain id `{cid}` != shape id `{id_str}`"),
                ));
            }
            let mut parens = Vec::new();
            for tok in tokens {
                let tree = decode_paren(tok).map_err(|e| err(chainno, e))?;
                if !covers_chain(&tree, shape.len()) {
                    return Err(err(
                        chainno,
                        format!(
                            "parenthesization `{tok}` does not cover operands 0..{}",
                            shape.len()
                        ),
                    ));
                }
                parens.push(tree);
            }
            if parens.is_empty() {
                return Err(err(chainno, format!("chain {id} has no variants")));
            }
            entries.push((shape, parens));
        }
        Ok(SessionSnapshot {
            options_key,
            entries,
            frags,
        })
    }

    /// Write the encoded snapshot to `path` **atomically**: the bytes go
    /// to a `<path>.tmp` sibling in the same directory first and are
    /// renamed into place, so a crash mid-write can never leave a
    /// truncated snapshot at `path` — readers see either the old file or
    /// the new one, whole.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temp file is cleaned up on a failed
    /// rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, self.encode())?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Read and decode a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`PersistError::Parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        SessionSnapshot::decode(&std::fs::read_to_string(path)?)
    }

    /// Path of rotation `generation` of `path`: generation 0 is `path`
    /// itself (the newest), older generations are `<path>.1`,
    /// `<path>.2`, ... as produced by [`SessionSnapshot::save_rotated`].
    #[must_use]
    pub fn rotation_path(path: impl AsRef<Path>, generation: usize) -> std::path::PathBuf {
        let path = path.as_ref();
        if generation == 0 {
            return path.to_path_buf();
        }
        let mut name = path.as_os_str().to_owned();
        name.push(format!(".{generation}"));
        std::path::PathBuf::from(name)
    }

    /// [`SessionSnapshot::save`] with rotation for long-lived daemons:
    /// keep the last `keep` snapshot generations on disk. Existing
    /// generations are shifted by an atomic rename chain oldest-first
    /// (`<path>.{K-2}` → `<path>.{K-1}`, ..., `<path>` → `<path>.1` —
    /// each rename either lands whole or leaves the old file) before the
    /// new snapshot is written atomically to `path`. `keep <= 1`
    /// degrades to a plain [`SessionSnapshot::save`].
    ///
    /// A crash between the shift and the final write leaves `path`
    /// missing but `<path>.1` intact — readers that scan generations
    /// newest-first (the serving layer's startup) still warm from the
    /// previous state.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the renames or the final save.
    pub fn save_rotated(&self, path: impl AsRef<Path>, keep: usize) -> Result<(), PersistError> {
        let path = path.as_ref();
        SessionSnapshot::rotate_generations(path, keep)?;
        self.save(path)
    }

    /// The rename-chain half of [`SessionSnapshot::save_rotated`]: shift
    /// the existing generations of `path` one slot older, leaving `path`
    /// itself free for a new write. Exposed so crash-simulation paths
    /// (the serving layer's torn-write faults) can rotate exactly like a
    /// real save before dying mid-write.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the renames.
    pub fn rotate_generations(path: impl AsRef<Path>, keep: usize) -> Result<(), PersistError> {
        let path = path.as_ref();
        let keep = keep.max(1);
        for generation in (0..keep - 1).rev() {
            let from = SessionSnapshot::rotation_path(path, generation);
            if from.exists() {
                std::fs::rename(&from, SessionSnapshot::rotation_path(path, generation + 1))?;
            }
        }
        Ok(())
    }
}

/// Serialize a parenthesization: leaves are operand indices, nodes
/// `(left,right)` — e.g. `((0,1),2)`.
fn encode_paren(tree: &ParenTree, out: &mut String) {
    match tree {
        ParenTree::Leaf(i) => {
            let _ = write!(out, "{i}");
        }
        ParenTree::Node(l, r) => {
            out.push('(');
            encode_paren(l, out);
            out.push(',');
            encode_paren(r, out);
            out.push(')');
        }
    }
}

/// Parse the [`encode_paren`] format.
fn decode_paren(s: &str) -> Result<ParenTree, String> {
    fn node(b: &[u8], i: &mut usize) -> Result<ParenTree, String> {
        match b.get(*i) {
            Some(b'(') => {
                *i += 1;
                let left = node(b, i)?;
                if b.get(*i) != Some(&b',') {
                    return Err("expected `,` in parenthesization".into());
                }
                *i += 1;
                let right = node(b, i)?;
                if b.get(*i) != Some(&b')') {
                    return Err("expected `)` in parenthesization".into());
                }
                *i += 1;
                Ok(ParenTree::node(left, right))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *i;
                while b.get(*i).is_some_and(u8::is_ascii_digit) {
                    *i += 1;
                }
                let text = std::str::from_utf8(&b[start..*i]).expect("digits are utf8");
                text.parse()
                    .map(ParenTree::Leaf)
                    .map_err(|_| format!("bad leaf index `{text}`"))
            }
            other => Err(format!("unexpected byte {other:?} in parenthesization")),
        }
    }
    let b = s.as_bytes();
    let mut i = 0;
    let tree = node(b, &mut i)?;
    if i != b.len() {
        return Err(format!("trailing garbage in parenthesization `{s}`"));
    }
    Ok(tree)
}

// --- fragment section codecs -------------------------------------------
//
// One store entry per `frag` line, six space-separated fields:
//
//   frag <opts> <tree> <run> <step> <result> <cost>
//
// * opts   — `propagate_single_inversion` and `infer_structures` as
//            `1`/`0` chars;
// * tree   — the span tree's preorder bit code, lowercase hex;
// * run    — comma-joined localized leaf descriptors;
// * desc   — `<structure><property><T|.><I|.>:<rows>:<cols>:<source>`
//            with structure in `GYLU`, property in `snpo`, and sources
//            `l<i>` (leaf) / `t<i>` (temp);
// * step   — ten `~`-joined fields: operands, kernel name, side,
//            transposition flags, stored triangles (`l`/`u`/`n`), the
//            cheap-cost flag, and the size-symbol triplet;
// * cost   — `;`-joined exact-rational terms `num/den[:v^e.v^e...]`,
//            or `_` for the zero polynomial.

fn structure_char(s: Structure) -> char {
    match s {
        Structure::General => 'G',
        Structure::Symmetric => 'Y',
        Structure::LowerTri => 'L',
        Structure::UpperTri => 'U',
    }
}

fn structure_from(c: char) -> Result<Structure, String> {
    match c {
        'G' => Ok(Structure::General),
        'Y' => Ok(Structure::Symmetric),
        'L' => Ok(Structure::LowerTri),
        'U' => Ok(Structure::UpperTri),
        other => Err(format!("bad structure `{other}`")),
    }
}

fn property_char(p: Property) -> char {
    match p {
        Property::Singular => 's',
        Property::NonSingular => 'n',
        Property::Spd => 'p',
        Property::Orthogonal => 'o',
    }
}

fn property_from(c: char) -> Result<Property, String> {
    match c {
        's' => Ok(Property::Singular),
        'n' => Ok(Property::NonSingular),
        'p' => Ok(Property::Spd),
        'o' => Ok(Property::Orthogonal),
        other => Err(format!("bad property `{other}`")),
    }
}

fn flag_char(on: bool, c: char) -> char {
    if on {
        c
    } else {
        '.'
    }
}

fn tri_char(t: Option<Triangle>) -> char {
    match t {
        Some(Triangle::Lower) => 'l',
        Some(Triangle::Upper) => 'u',
        None => 'n',
    }
}

fn tri_from(c: char) -> Result<Option<Triangle>, String> {
    match c {
        'l' => Ok(Some(Triangle::Lower)),
        'u' => Ok(Some(Triangle::Upper)),
        'n' => Ok(None),
        other => Err(format!("bad triangle `{other}`")),
    }
}

fn encode_valref(v: ValRef, out: &mut String) {
    match v {
        ValRef::Leaf(i) => {
            let _ = write!(out, "l{i}");
        }
        ValRef::Temp(t) => {
            let _ = write!(out, "t{t}");
        }
    }
}

fn decode_valref(s: &str) -> Result<ValRef, String> {
    let idx = |t: &str| {
        t.parse::<usize>()
            .map_err(|_| format!("bad value index `{s}`"))
    };
    match s.split_at_checked(1) {
        Some(("l", rest)) => Ok(ValRef::Leaf(idx(rest)?)),
        Some(("t", rest)) => Ok(ValRef::Temp(idx(rest)?)),
        _ => Err(format!("bad value reference `{s}`")),
    }
}

fn encode_desc(d: &NodeDesc, out: &mut String) {
    out.push(structure_char(d.structure));
    out.push(property_char(d.property));
    out.push(flag_char(d.transposed, 'T'));
    out.push(flag_char(d.inverted, 'I'));
    let _ = write!(out, ":{}:{}:", d.rows, d.cols);
    encode_valref(d.source, out);
}

fn decode_desc(s: &str) -> Result<NodeDesc, String> {
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let (rows, cols, src) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(r), Some(c), Some(v), None) => (r, c, v),
        _ => return Err(format!("bad descriptor `{s}`")),
    };
    let chars: Vec<char> = head.chars().collect();
    let [st, pr, tr, inv] = chars.as_slice() else {
        return Err(format!("bad descriptor head `{head}`"));
    };
    let sym = |t: &str| {
        t.parse::<usize>()
            .map_err(|_| format!("bad size symbol `{t}`"))
    };
    Ok(NodeDesc {
        structure: structure_from(*st)?,
        property: property_from(*pr)?,
        transposed: match tr {
            'T' => true,
            '.' => false,
            other => return Err(format!("bad transpose flag `{other}`")),
        },
        inverted: match inv {
            'I' => true,
            '.' => false,
            other => return Err(format!("bad inverse flag `{other}`")),
        },
        rows: sym(rows)?,
        cols: sym(cols)?,
        source: decode_valref(src)?,
    })
}

fn encode_step(s: &Step, out: &mut String) {
    encode_valref(s.left, out);
    out.push('~');
    encode_valref(s.right, out);
    let _ = write!(out, "~{}~", s.kernel.name());
    out.push(match s.side {
        Side::Left => 'L',
        Side::Right => 'R',
    });
    out.push('~');
    out.push(flag_char(s.left_trans, 'T'));
    out.push(flag_char(s.right_trans, 'T'));
    out.push('~');
    out.push(tri_char(s.left_tri));
    out.push(tri_char(s.right_tri));
    out.push('~');
    out.push(flag_char(s.cheap, 'c'));
    let _ = write!(out, "~{}~{}~{}", s.triplet.0, s.triplet.1, s.triplet.2);
}

fn decode_step(s: &str) -> Result<Step, String> {
    let parts: Vec<&str> = s.split('~').collect();
    let [left, right, kernel, side, trans, tris, cheap, a, b, c] = parts.as_slice() else {
        return Err(format!("bad step `{s}`"));
    };
    let kernel = *Kernel::ALL
        .iter()
        .find(|k| k.name() == *kernel)
        .ok_or_else(|| format!("unknown kernel `{kernel}`"))?;
    let side = match *side {
        "L" => Side::Left,
        "R" => Side::Right,
        other => return Err(format!("bad side `{other}`")),
    };
    let flags = |t: &str| -> Result<(bool, bool), String> {
        let chars: Vec<char> = t.chars().collect();
        let on = |c: char| c != '.';
        match chars.as_slice() {
            [l, r] => Ok((on(*l), on(*r))),
            _ => Err(format!("bad flag pair `{t}`")),
        }
    };
    let (left_trans, right_trans) = flags(trans)?;
    let tri_chars: Vec<char> = tris.chars().collect();
    let [lt, rt] = tri_chars.as_slice() else {
        return Err(format!("bad triangle pair `{tris}`"));
    };
    let sym = |t: &str| {
        t.parse::<usize>()
            .map_err(|_| format!("bad size symbol `{t}`"))
    };
    Ok(Step {
        left: decode_valref(left)?,
        right: decode_valref(right)?,
        kernel,
        side,
        left_trans,
        right_trans,
        left_tri: tri_from(*lt)?,
        right_tri: tri_from(*rt)?,
        cheap: *cheap == "c",
        triplet: (sym(a)?, sym(b)?, sym(c)?),
    })
}

fn encode_poly(p: &Poly, out: &mut String) {
    if p.num_terms() == 0 {
        out.push('_');
        return;
    }
    for (i, (mono, coeff)) in p.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let _ = write!(out, "{}/{}", coeff.numer(), coeff.denom());
        for (j, &(var, exp)) in mono.factors().iter().enumerate() {
            out.push(if j == 0 { ':' } else { '.' });
            let _ = write!(out, "{var}^{exp}");
        }
    }
}

fn decode_poly(s: &str) -> Result<Poly, String> {
    let mut p = Poly::zero();
    if s == "_" {
        return Ok(p);
    }
    for term in s.split(';') {
        let (ratio, factors) = match term.split_once(':') {
            Some((r, f)) => (r, Some(f)),
            None => (term, None),
        };
        let (num, den) = ratio
            .split_once('/')
            .ok_or_else(|| format!("bad coefficient `{ratio}`"))?;
        let num: i128 = num.parse().map_err(|_| format!("bad numerator `{num}`"))?;
        let den: i128 = den
            .parse()
            .map_err(|_| format!("bad denominator `{den}`"))?;
        if den <= 0 {
            return Err(format!("non-positive denominator `{den}`"));
        }
        let mut factor_list: Vec<(usize, u32)> = Vec::new();
        if let Some(factors) = factors {
            for f in factors.split('.') {
                let (v, e) = f
                    .split_once('^')
                    .ok_or_else(|| format!("bad factor `{f}`"))?;
                let v: usize = v.parse().map_err(|_| format!("bad variable `{v}`"))?;
                let e: u32 = e.parse().map_err(|_| format!("bad exponent `{e}`"))?;
                factor_list.push((v, e));
            }
        }
        p.add_term(Ratio::new(num, den), Monomial::from_factors(&factor_list));
    }
    Ok(p)
}

fn encode_frag(key: &FragKey, frag: &Fragment, out: &mut String) {
    let _ = write!(
        out,
        "frag {}{} {:x} ",
        u8::from(key.options.propagate_single_inversion),
        u8::from(key.options.infer_structures),
        key.tree
    );
    for (i, d) in key.run.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_desc(d, out);
    }
    out.push(' ');
    let step = frag
        .step
        .as_ref()
        .expect("only association fragments are exported");
    encode_step(step, out);
    out.push(' ');
    encode_desc(&frag.result, out);
    out.push(' ');
    encode_poly(&frag.cost, out);
}

fn decode_frag(body: &str) -> Result<(FragKey, Fragment), String> {
    let parts: Vec<&str> = body.split_whitespace().collect();
    let [opts, tree, run, step, result, cost] = parts.as_slice() else {
        return Err(format!("fragment line needs 6 fields, got {}", parts.len()));
    };
    let opt_chars: Vec<char> = opts.chars().collect();
    let [psi, is] = opt_chars.as_slice() else {
        return Err(format!("bad options `{opts}`"));
    };
    let bit = |c: char| match c {
        '1' => Ok(true),
        '0' => Ok(false),
        other => Err(format!("bad option bit `{other}`")),
    };
    let options = BuildOptions {
        propagate_single_inversion: bit(*psi)?,
        infer_structures: bit(*is)?,
    };
    let tree = u128::from_str_radix(tree, 16).map_err(|_| format!("bad tree code `{tree}`"))?;
    let run: Vec<NodeDesc> = run.split(',').map(decode_desc).collect::<Result<_, _>>()?;
    if run.len() < 2 {
        return Err("fragment runs span at least two leaves".into());
    }
    let frag = Fragment {
        step: Some(decode_step(step)?),
        cost: decode_poly(cost)?,
        result: decode_desc(result)?,
    };
    Ok((FragKey::new(options, tree, run.into()), frag))
}

/// `true` if the tree's in-order leaves are exactly `0..n` — i.e. it is a
/// valid parenthesization of an `n`-operand chain (not just a tree with a
/// plausible span).
fn covers_chain(tree: &ParenTree, n: usize) -> bool {
    fn walk(t: &ParenTree, next: &mut usize) -> bool {
        match t {
            ParenTree::Leaf(i) => {
                if *i == *next {
                    *next += 1;
                    true
                } else {
                    false
                }
            }
            ParenTree::Node(l, r) => walk(l, next) && walk(r, next),
        }
    }
    let mut next = 0;
    walk(tree, &mut next) && next == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_ir::{Features, Operand, Property, Structure};

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    fn sample() -> SessionSnapshot {
        let shape3 = Shape::new(vec![g(); 3]).unwrap();
        let l =
            Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
        let shape2 = Shape::new(vec![g(), l]).unwrap();
        SessionSnapshot::from_parts(
            options_key(&CompileOptions::default(), 1 << 16),
            vec![
                (
                    shape3,
                    vec![
                        ParenTree::left_to_right(0, 2),
                        ParenTree::right_to_left(0, 2),
                    ],
                ),
                (shape2, vec![ParenTree::left_to_right(0, 1)]),
            ],
            vec![],
        )
    }

    /// A snapshot carrying one real fragment-store entry, exported from a
    /// lowered 3-chain.
    fn sample_with_frags() -> SessionSnapshot {
        let shape = Shape::new(vec![g(); 3]).unwrap();
        let mut cache = crate::fragcache::FragmentCache::new(16);
        let mut pool = crate::pool::PoolBuilder::new();
        pool.build_full_cached(None, &shape, 1, Some(&mut cache))
            .unwrap();
        let frags = cache.export();
        assert!(!frags.is_empty(), "3-chain must export fragments");
        let mut snap = sample();
        snap.frags = frags;
        snap
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let text = snap.encode();
        assert!(text.starts_with(SNAPSHOT_HEADER));
        assert!(text.contains("shape 0 Gs Gs Gs"));
        assert!(text.contains("chain 0 ((0,1),2) (0,(1,2))"));
        assert!(text.contains("shape 1 Gs Lni"));
        let back = SessionSnapshot::decode(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn fragment_section_round_trips_and_is_omitted_when_empty() {
        let empty = sample();
        assert!(
            !empty.encode().contains("frags "),
            "empty stores add no section"
        );

        let snap = sample_with_frags();
        let text = snap.encode();
        assert!(text.contains(&format!("frags v1 {}", snap.num_fragments())));
        let back = SessionSnapshot::decode(&text).unwrap();
        assert_eq!(snap, back, "fragment entries must survive a round trip");
        assert_eq!(text, back.encode(), "re-encoding is byte-identical");
    }

    #[test]
    fn fragment_section_merge_dedups_by_key() {
        let mut a = sample_with_frags();
        let n = a.num_fragments();
        let b = sample_with_frags();
        assert_eq!(a.merge(b).unwrap(), 0);
        assert_eq!(a.num_fragments(), n, "identical fragments add nothing");
    }

    #[test]
    fn torn_or_trailing_fragment_sections_are_rejected() {
        let good = sample_with_frags().encode();
        // Tearing the write anywhere inside the fragment section leaves
        // fewer lines than the declared count — the restart must see a
        // parse error (and quarantine), never a silently smaller store.
        let torn: String = good
            .lines()
            .take(good.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            SessionSnapshot::decode(&torn),
            Err(PersistError::Parse { .. })
        ));

        let trailing = format!("{} \nchain 0 (0,(1,2))", good.trim_end());
        assert!(matches!(
            SessionSnapshot::decode(&trailing),
            Err(PersistError::Parse { .. })
        ));

        let cases: &[&str] = &[
            &format!("{SNAPSHOT_HEADER}\noptions k\nfrags v2 0"),
            &format!("{SNAPSHOT_HEADER}\noptions k\nfrags v1 x"),
            &format!("{SNAPSHOT_HEADER}\noptions k\nfrags v1 1"),
            &format!("{SNAPSHOT_HEADER}\noptions k\nfrags v1 1\nfrag bogus"),
            &format!(
                "{SNAPSHOT_HEADER}\noptions k\nfrags v1 1\nfrag 10 c G..:0:1:l0 x G..:0:2:t0 _"
            ),
        ];
        for text in cases {
            assert!(
                matches!(
                    SessionSnapshot::decode(text),
                    Err(PersistError::Parse { .. })
                ),
                "expected parse error for {text:?}"
            );
        }
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_line_numbers() {
        let cases: &[(&str, usize)] = &[
            ("", 1),
            ("not-a-header\noptions x", 1),
            (SNAPSHOT_HEADER, 2),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nchain 0 0"), 3),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nshape 1 Gs"), 3),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Qs"), 3),
            (&format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs"), 3),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0"),
                4,
            ),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0 (0,(1,2))"),
                4,
            ),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0 (0,0)"),
                4,
            ),
            (
                &format!("{SNAPSHOT_HEADER}\noptions k\nshape 0 Gs Gs\nchain 0 (0,1)x"),
                4,
            ),
        ];
        for (text, line) in cases {
            match SessionSnapshot::decode(text) {
                Err(PersistError::Parse { line: got, .. }) => {
                    assert_eq!(got, *line, "wrong line for {text:?}");
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn merge_dedups_and_checks_options() {
        let mut a = sample();
        let b = sample();
        assert_eq!(a.merge(b).unwrap(), 0, "identical snapshots add nothing");
        let extra = SessionSnapshot::from_parts(
            a.options_fingerprint().to_string(),
            vec![(
                Shape::new(vec![g(); 4]).unwrap(),
                vec![ParenTree::left_to_right(0, 3)],
            )],
            vec![],
        );
        assert_eq!(a.merge(extra).unwrap(), 1);
        assert_eq!(a.len(), 3);
        let alien = SessionSnapshot::from_parts("other".into(), vec![], vec![]);
        assert!(matches!(
            a.merge(alien),
            Err(PersistError::OptionsMismatch { .. })
        ));
    }

    #[test]
    fn options_key_tracks_selection_inputs_only() {
        let base = CompileOptions::default();
        let mut stripe = base.clone();
        stripe.scan_stripe = 64;
        assert_eq!(
            options_key(&base, 100),
            options_key(&stripe, 100),
            "scheduling knob"
        );
        let mut seeded = base.clone();
        seeded.seed += 1;
        assert_ne!(options_key(&base, 100), options_key(&seeded, 100));
        let mut obj = base.clone();
        obj.objective = Objective::MaxPenalty;
        assert_ne!(options_key(&base, 100), options_key(&obj, 100));
        assert_ne!(
            options_key(&base, 100),
            options_key(&base, 200),
            "variant cap"
        );
    }
}
