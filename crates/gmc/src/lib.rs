//! # symgmc — compilation of generalized matrix chains with symbolic sizes
//!
//! A Rust reproduction of the CGO 2026 paper *"Compilation of Generalized
//! Matrix Chains with Symbolic Sizes"* (López, Karlsson, Bientinesi).
//!
//! A Generalized Matrix Chain (GMC) is a product
//! `op(M_1) op(M_2) ... op(M_n)` where each matrix carries features
//! (general, symmetric, triangular, SPD, orthogonal, ...) and may be
//! transposed and/or inverted. When matrix sizes are unknown at compile
//! time, no single sequence of BLAS/LAPACK kernel calls is optimal for all
//! sizes; this crate compiles a chain into a small set of *variants* with
//! provably bounded worst-case penalty (at most `n + 1`, usually 2–3) and
//! dispatches to the cheapest one at run time.
//!
//! ## Quick start
//!
//! ```
//! use gmc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe the chain in the paper's input grammar (Fig. 2).
//! let program = parse_program(
//!     "Matrix H <General, Singular>;
//!      Matrix P <Symmetric, SPD>;
//!      Matrix G <General, Singular>;
//!      X := H * P^-1 * G;",
//! )?;
//!
//! // Compile: select the Theorem-2 base set behind a dispatcher.
//! let chain = CompiledChain::compile(program.shape().clone())?;
//!
//! // Run time: sizes become known, the dispatcher picks the best variant.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let h = random_general(&mut rng, 4, 50);
//! let p = random_spd(&mut rng, 50);
//! let g = random_general(&mut rng, 50, 3);
//! let x = chain.evaluate(&[h, p, g])?;
//! assert_eq!((x.rows(), x.cols()), (4, 3));
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ir`] | features, shapes, the input grammar, symbolic cost polynomials |
//! | [`linalg`] | dense matrix substrate (GEMM, TRSM, LU, Cholesky, QR, ...) |
//! | [`kernels`] | the Table-I kernel catalogue: costs, mapping, inference, execution |
//! | [`core`] | variant construction, theory-guided selection, expansion, dispatch |
//! | [`codegen`] | C++ / Rust source emission (Fig. 1) |
//! | [`perfmodel`] | measured per-kernel performance models (Sec. VII-B) |

#![warn(missing_docs)]
pub mod driver;

pub use gmc_codegen as codegen;
pub use gmc_core as core;
pub use gmc_ir as ir;
pub use gmc_kernels as kernels;
pub use gmc_linalg as linalg;
pub use gmc_perfmodel as perfmodel;

/// One-stop imports for applications.
pub mod prelude {
    pub use gmc_codegen::{emit_cpp, emit_rust};
    pub use gmc_core::{
        all_variants, build_variant, expand_set, fanning_out_set, optimal_cost, select_base_set,
        CompileSession, CompiledChain, CostModel, DpSolver, FlopCost, Objective, ParenTree,
        Variant,
    };
    pub use gmc_ir::grammar::parse_program;
    pub use gmc_ir::{
        Features, Instance, InstanceSampler, Operand, Poly, Property, Ratio, Shape, Structure,
    };
    pub use gmc_kernels::{FinalizeKernel, Kernel};
    pub use gmc_linalg::{
        random_general, random_lower_triangular, random_nonsingular, random_orthogonal, random_spd,
        random_symmetric, random_upper_triangular, Matrix,
    };
    pub use gmc_perfmodel::{measure_models, MeasureOptions, PerfModels};
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g]).unwrap();
        let chain = CompiledChain::compile(shape).unwrap();
        assert!(!chain.variants().is_empty());
    }
}
