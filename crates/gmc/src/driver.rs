//! The `gmcc` compiler driver: the command-line face of the code
//! generator in Fig. 1. Parses `.gmc` programs, selects variants through
//! a [`CompileSession`], and emits C++ and/or Rust sources plus the
//! runtime header.
//!
//! The driver is batch-first: it accepts any number of input programs in
//! one invocation, compiles them all through shared session state
//! (repeated shapes hit the session cache), and with `--jobs N` splits
//! the batch across `N` worker threads, each with its own session. The
//! emitted artifacts are identical for every jobs value.

use gmc_codegen::{emit_cpp_into, emit_runtime_header, emit_rust_into};
use gmc_core::{CompileOptions, CompileSession, Objective, Stage};
use gmc_ir::grammar::parse_program;
use gmc_ir::Shape;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// What to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitKind {
    /// C++ translation unit + runtime header.
    Cpp,
    /// Rust module.
    Rust,
    /// Both back-ends.
    Both,
}

impl EmitKind {
    /// Parse an `--emit` value.
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError`] for unknown values.
    pub fn parse(s: &str) -> Result<Self, DriverError> {
        match s {
            "cpp" => Ok(EmitKind::Cpp),
            "rust" => Ok(EmitKind::Rust),
            "both" => Ok(EmitKind::Both),
            other => Err(DriverError::Usage(format!(
                "unknown --emit value `{other}` (expected cpp, rust, or both)"
            ))),
        }
    }
}

/// Driver configuration, filled from command-line arguments.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Input `.gmc` files (one compiled chain each).
    pub inputs: Vec<PathBuf>,
    /// Output directory for emitted sources.
    pub out_dir: PathBuf,
    /// Base name of emitted functions/files (defaults to each program's
    /// left-hand-side identifier; only honored for a single input).
    pub name: Option<String>,
    /// Back-end(s) to emit.
    pub emit: EmitKind,
    /// Algorithm-1 expansion steps beyond the Theorem-2 base set.
    pub expand: usize,
    /// Training-instance count for selection.
    pub train: usize,
    /// Worker threads for batch compilation (each owns a session); in
    /// serve mode, the shard count.
    pub jobs: usize,
    /// Print a human-readable variant report to stdout.
    pub report: bool,
    /// Serve mode: read JSONL compile requests from this path (`-` for
    /// stdin) and stream JSONL responses to stdout instead of compiling
    /// `inputs`.
    pub serve: Option<String>,
    /// Socket serve mode: accept JSONL connections on this address
    /// (`unix:<path>`, `tcp:<host:port>`, or a bare path/socket
    /// address) instead of reading stdin. Implies serve mode.
    pub listen: Option<String>,
    /// Client mode: connect to a listening daemon at this address,
    /// pipeline the request lines from the input file (or stdin), and
    /// print one response line each to stdout.
    pub connect: Option<String>,
    /// Shard-selection policy (serve mode): power-of-two-choices over
    /// live queue depths (default) or plain `hash % shards`.
    pub routing: gmc_serve::RoutingMode,
    /// Snapshot generations kept by `--persist` rotation (serve mode):
    /// each save shifts `path` → `path.1` → … before writing, and
    /// startup warms from the newest decodable generation.
    pub persist_keep: usize,
    /// Per-shard compiled-chain cache capacity (serve mode).
    pub cache_cap: usize,
    /// Warm-restart snapshot file (serve mode): loaded on start if it
    /// exists, written on shutdown.
    pub persist: Option<PathBuf>,
    /// Default per-request deadline in milliseconds (serve mode);
    /// requests may override it with their own `deadline_ms` field.
    pub deadline_ms: Option<u64>,
    /// Admission control (serve mode): max queued + in-flight requests
    /// per shard before submissions are shed with `overloaded`.
    pub queue_cap: usize,
    /// Longest accepted JSONL request line in bytes (serve mode);
    /// oversized lines are answered with an in-band `bad_request` error.
    pub max_line_bytes: usize,
    /// Honor in-band `{"op":"fault"}` requests (serve mode). The
    /// `GMC_FAULT` environment variable is read regardless.
    pub enable_faults: bool,
    /// Print a per-stage timing breakdown for each input (batch mode):
    /// enables session tracing and appends the stage profile to each
    /// program's report.
    pub timings: bool,
    /// Dump service metrics as Prometheus text exposition to this file
    /// (serve mode): written on drain and refreshed on every in-band
    /// `{"op":"metrics"}` request.
    pub metrics_file: Option<PathBuf>,
    /// Log any request slower than this many milliseconds end-to-end to
    /// stderr, with a per-stage breakdown when tracing is on (serve
    /// mode).
    pub slow_ms: Option<u64>,
    /// Per-connection in-flight cap (socket serve mode): a connection
    /// with this many unanswered compile requests has further requests
    /// shed in band with a retryable `overloaded` error. 0 disables.
    pub conn_in_flight_cap: usize,
    /// Max concurrently open connections (socket serve mode): beyond
    /// this the daemon accepts, answers one typed `overloaded` line,
    /// and closes. 0 disables.
    pub max_conns: usize,
    /// Idle-connection timeout in milliseconds (socket serve mode):
    /// connections with zero in-flight requests and no traffic for this
    /// long are closed.
    pub idle_timeout_ms: Option<u64>,
    /// Client mode: resend a request up to this many times when the
    /// daemon answers with a retryable failure (`overloaded`,
    /// `deadline_exceeded`, `shard_panic`, `shard_down`), with jittered
    /// capped exponential backoff. 0 disables; only requests carrying
    /// an explicit `id` are retried.
    pub retry: u32,
}

/// Default bound on a JSONL request line in serve mode (1 MiB).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Errors from the driver.
#[derive(Debug)]
pub enum DriverError {
    /// Bad command line.
    Usage(String),
    /// I/O failure (payload: path and cause).
    Io(PathBuf, std::io::Error),
    /// Parse or compilation failure.
    Compile(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Usage(msg) => write!(f, "usage error: {msg}"),
            DriverError::Io(path, e) => write!(f, "io error on {}: {e}", path.display()),
            DriverError::Compile(msg) => write!(f, "compile error: {msg}"),
        }
    }
}

impl Error for DriverError {}

/// Parse the `gmcc` command line (without the leading program name).
///
/// # Errors
///
/// Returns [`DriverError::Usage`] on malformed arguments.
pub fn parse_args(args: &[String]) -> Result<DriverConfig, DriverError> {
    let mut config = DriverConfig {
        inputs: Vec::new(),
        out_dir: PathBuf::from("."),
        name: None,
        emit: EmitKind::Cpp,
        expand: 0,
        train: 1000,
        jobs: 1,
        report: false,
        serve: None,
        listen: None,
        connect: None,
        routing: gmc_serve::RoutingMode::default(),
        persist_keep: 1,
        cache_cap: gmc_core::DEFAULT_CHAIN_CACHE_CAPACITY,
        persist: None,
        deadline_ms: None,
        queue_cap: gmc_serve::DEFAULT_QUEUE_CAP,
        max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        enable_faults: false,
        timings: false,
        metrics_file: None,
        slow_ms: None,
        conn_in_flight_cap: 64,
        max_conns: 0,
        idle_timeout_ms: None,
        retry: 3,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serve" => {
                config.serve = Some(
                    it.next()
                        .ok_or_else(|| {
                            DriverError::Usage("--serve needs a path or `-` for stdin".into())
                        })?
                        .clone(),
                );
            }
            "--listen" => {
                config.listen = Some(
                    it.next()
                        .ok_or_else(|| {
                            DriverError::Usage(
                                "--listen needs an address (unix:<path> or tcp:<host:port>)".into(),
                            )
                        })?
                        .clone(),
                );
            }
            "--connect" => {
                config.connect = Some(
                    it.next()
                        .ok_or_else(|| {
                            DriverError::Usage(
                                "--connect needs an address (unix:<path> or tcp:<host:port>)"
                                    .into(),
                            )
                        })?
                        .clone(),
                );
            }
            "--routing" => {
                let v = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--routing needs a value".into()))?;
                config.routing = gmc_serve::RoutingMode::parse(v).map_err(DriverError::Usage)?;
            }
            "--persist-keep" => {
                config.persist_keep = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k: &usize| k >= 1)
                    .ok_or_else(|| {
                        DriverError::Usage("--persist-keep needs a positive integer".into())
                    })?;
            }
            "--cache-cap" => {
                config.cache_cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--cache-cap needs an integer".into()))?;
            }
            "--persist" => {
                config.persist = Some(
                    it.next()
                        .ok_or_else(|| DriverError::Usage("--persist needs a file path".into()))?
                        .into(),
                );
            }
            "--deadline-ms" => {
                config.deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms >= 1)
                        .ok_or_else(|| {
                            DriverError::Usage("--deadline-ms needs a positive integer".into())
                        })?,
                );
            }
            "--queue-cap" => {
                config.queue_cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&c: &usize| c >= 1)
                    .ok_or_else(|| {
                        DriverError::Usage("--queue-cap needs a positive integer".into())
                    })?;
            }
            "--max-line-bytes" => {
                config.max_line_bytes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 2)
                    .ok_or_else(|| {
                        DriverError::Usage("--max-line-bytes needs an integer >= 2".into())
                    })?;
            }
            "--conn-in-flight-cap" => {
                config.conn_in_flight_cap =
                    it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                        DriverError::Usage("--conn-in-flight-cap needs an integer (0 = off)".into())
                    })?;
            }
            "--max-conns" => {
                config.max_conns = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    DriverError::Usage("--max-conns needs an integer (0 = off)".into())
                })?;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms >= 1)
                        .ok_or_else(|| {
                            DriverError::Usage("--idle-timeout-ms needs a positive integer".into())
                        })?,
                );
            }
            "--retry" => {
                config.retry = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    DriverError::Usage("--retry needs an integer (0 = off)".into())
                })?;
            }
            "--enable-faults" => config.enable_faults = true,
            "--timings" => config.timings = true,
            "--metrics-file" => {
                config.metrics_file = Some(
                    it.next()
                        .ok_or_else(|| {
                            DriverError::Usage("--metrics-file needs a file path".into())
                        })?
                        .into(),
                );
            }
            "--slow-ms" => {
                config.slow_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms >= 1)
                        .ok_or_else(|| {
                            DriverError::Usage("--slow-ms needs a positive integer".into())
                        })?,
                );
            }
            "--out" => {
                config.out_dir = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--out needs a directory".into()))?
                    .into();
            }
            "--name" => {
                config.name = Some(
                    it.next()
                        .ok_or_else(|| DriverError::Usage("--name needs a value".into()))?
                        .clone(),
                );
            }
            "--emit" => {
                let v = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--emit needs a value".into()))?;
                config.emit = EmitKind::parse(v)?;
            }
            "--expand" => {
                config.expand = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--expand needs an integer".into()))?;
            }
            "--train" => {
                config.train = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--train needs an integer".into()))?;
            }
            "--jobs" => {
                config.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j: &usize| j >= 1)
                    .ok_or_else(|| DriverError::Usage("--jobs needs a positive integer".into()))?;
            }
            "--report" => config.report = true,
            other if other.starts_with("--") => {
                return Err(DriverError::Usage(format!("unknown flag `{other}`")));
            }
            path => config.inputs.push(PathBuf::from(path)),
        }
    }
    if config.serve.is_some() && config.listen.is_some() {
        return Err(DriverError::Usage(
            "--serve and --listen are mutually exclusive (one daemon, one transport)".into(),
        ));
    }
    if config.connect.is_some() && (config.serve.is_some() || config.listen.is_some()) {
        return Err(DriverError::Usage(
            "--connect is a client mode; it cannot be combined with --serve/--listen".into(),
        ));
    }
    if config.inputs.is_empty()
        && config.serve.is_none()
        && config.listen.is_none()
        && config.connect.is_none()
    {
        return Err(DriverError::Usage("missing input .gmc file".into()));
    }
    Ok(config)
}

/// One compiled program's artifacts: emitted `(file name, contents)`
/// pairs and the human-readable variant report.
pub type CompiledArtifacts = (Vec<(String, String)>, String);

fn compile_options(config: &DriverConfig) -> CompileOptions {
    CompileOptions {
        training_instances: config.train,
        expand_by: config.expand,
        objective: Objective::AvgPenalty,
        ..CompileOptions::default()
    }
}

/// Compile one named shape through `session` and emit its artifacts,
/// building into `buf` (reused across calls by batch workers). With
/// `--timings`, the session's stage-profile delta for this program
/// (compile + emit) is rendered and appended to the report.
fn compile_one(
    session: &mut CompileSession,
    buf: &mut String,
    shape: &Shape,
    name: &str,
    config: &DriverConfig,
) -> Result<CompiledArtifacts, DriverError> {
    let before = config.timings.then(|| session.stage_profile().clone());
    let chain = session
        .compile(shape)
        .map_err(|e| DriverError::Compile(format!("{name}: {e}")))?;

    let mut files = Vec::new();
    let span = session.recorder().start();
    if matches!(config.emit, EmitKind::Cpp | EmitKind::Both) {
        buf.clear();
        emit_cpp_into(buf, &chain, name);
        files.push((format!("{name}.cpp"), buf.clone()));
        files.push(("gmc_runtime.hpp".to_string(), emit_runtime_header()));
    }
    if matches!(config.emit, EmitKind::Rust | EmitKind::Both) {
        buf.clear();
        emit_rust_into(buf, &chain, name);
        files.push((format!("{name}.rs"), buf.clone()));
    }
    session.recorder_mut().stop(Stage::Emit, span);

    let mut report = chain.describe();
    if let Some(before) = &before {
        report.push_str(&chain.timing_report(&session.stage_profile().since(before)));
    }
    Ok((files, report))
}

/// Compile a batch of `.gmc` sources, in input order, through shared
/// session state — or, with `config.jobs > 1`, across that many worker
/// threads, each owning its own [`CompileSession`]. Output artifacts are
/// identical for every jobs value (compilation is per-program
/// deterministic); only wall-clock changes.
///
/// Function/file names default to each program's left-hand side
/// (lowercased); `config.name` overrides it for a single-source batch,
/// and repeated names get `_2`, `_3`, ... suffixes so artifacts never
/// collide. The C++ runtime header is attached to the first C++-emitting
/// program only.
///
/// # Errors
///
/// Returns the first parse or compilation failure, tagged with the
/// program's name.
pub fn compile_batch(
    sources: &[String],
    config: &DriverConfig,
) -> Result<Vec<CompiledArtifacts>, DriverError> {
    let (results, parse_failures) = compile_batch_inner(sources, config);
    // Parse errors win over compile errors regardless of worker
    // scheduling; otherwise the first failure in input order wins.
    let first_err = parse_failures
        .first()
        .copied()
        .or_else(|| results.iter().position(Result::is_err));
    match first_err {
        Some(i) => Err(results
            .into_iter()
            .nth(i)
            .expect("index is in range")
            .expect_err("position pointed at an error")),
        None => Ok(results
            .into_iter()
            .map(|r| r.expect("no failures remain"))
            .collect()),
    }
}

/// [`compile_batch`] without the fail-fast contract: every input gets its
/// own `Result`, so one broken program in a batch neither hides the
/// diagnostics of the others nor suppresses their artifacts. Used by
/// [`run`], which emits the successes and reports each failure.
pub fn compile_batch_results(
    sources: &[String],
    config: &DriverConfig,
) -> Vec<Result<CompiledArtifacts, DriverError>> {
    compile_batch_inner(sources, config).0
}

/// Shared batch core. Returns per-input results plus the indices that
/// failed at *parse* (as opposed to selection), which `compile_batch`
/// needs for its error-priority contract.
fn compile_batch_inner(
    sources: &[String],
    config: &DriverConfig,
) -> (Vec<Result<CompiledArtifacts, DriverError>>, Vec<usize>) {
    // Parse everything first: names must be fixed (and deduplicated)
    // before emission. Only successfully parsed programs claim names.
    let mut work: Vec<(usize, Shape, String)> = Vec::with_capacity(sources.len());
    let mut parse_failures: Vec<usize> = Vec::new();
    let mut results: Vec<Option<Result<CompiledArtifacts, DriverError>>> =
        (0..sources.len()).map(|_| None).collect();
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (index, source) in sources.iter().enumerate() {
        let program = match parse_program(source) {
            Ok(p) => p,
            Err(e) => {
                results[index] = Some(Err(DriverError::Compile(e.to_string())));
                parse_failures.push(index);
                continue;
            }
        };
        let base = match (&config.name, sources.len()) {
            (Some(name), 1) => name.clone(),
            _ => program.lhs().to_lowercase(),
        };
        // Probe suffixes until free, against *final* names: `x, x_2` must
        // not collide with a literal `x_2` from another program.
        let mut name = base.clone();
        let mut k = 1usize;
        while !used.insert(name.clone()) {
            k += 1;
            name = format!("{base}_{k}");
        }
        work.push((index, program.shape().clone(), name));
    }

    let jobs = config.jobs.min(work.len()).max(1);
    let options = compile_options(config);
    let mut compiled: Vec<Option<Result<CompiledArtifacts, DriverError>>> =
        (0..work.len()).map(|_| None).collect();
    if jobs > 1 {
        let chunk = work.len().div_ceil(jobs);
        let options = &options;
        let config_ref = config;
        std::thread::scope(|s| {
            for (wchunk, rchunk) in work.chunks(chunk).zip(compiled.chunks_mut(chunk)) {
                s.spawn(move || {
                    let mut session = CompileSession::with_options(options.clone());
                    session.set_tracing(session.tracing_enabled() || config_ref.timings);
                    let mut buf = String::new();
                    for ((_, shape, name), slot) in wchunk.iter().zip(rchunk.iter_mut()) {
                        *slot = Some(compile_one(&mut session, &mut buf, shape, name, config_ref));
                    }
                });
            }
        });
    } else {
        let mut session = CompileSession::with_options(options);
        session.set_tracing(session.tracing_enabled() || config.timings);
        let mut buf = String::new();
        for ((_, shape, name), slot) in work.iter().zip(compiled.iter_mut()) {
            *slot = Some(compile_one(&mut session, &mut buf, shape, name, config));
        }
    }
    for ((index, _, _), result) in work.iter().zip(compiled) {
        results[*index] = Some(result.expect("every parsed program compiled"));
    }

    let mut results: Vec<Result<CompiledArtifacts, DriverError>> = results
        .into_iter()
        .map(|r| r.expect("every input produced a result"))
        .collect();
    // The runtime header is a constant: keep only the first copy.
    let mut header_seen = false;
    for files in results.iter_mut().filter_map(|r| r.as_mut().ok()) {
        files.0.retain(|(fname, _)| {
            if fname == "gmc_runtime.hpp" {
                if header_seen {
                    return false;
                }
                header_seen = true;
            }
            true
        });
    }
    (results, parse_failures)
}

/// Compile one `.gmc` source string and return the emitted artifacts as
/// `(file name, contents)` pairs plus the human-readable report.
///
/// # Errors
///
/// Returns [`DriverError::Compile`] on parse or selection failure.
pub fn compile_source(
    source: &str,
    config: &DriverConfig,
) -> Result<CompiledArtifacts, DriverError> {
    let mut items = compile_batch(std::slice::from_ref(&source.to_string()), config)?;
    Ok(items.remove(0))
}

/// What one `gmcc` invocation accomplished: the artifacts written, plus
/// the inputs that failed (each with its own diagnostic). The binary
/// exits nonzero when `failures` is non-empty, but every healthy input
/// still gets its artifacts — one broken file never takes down a batch.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Paths of all artifacts written.
    pub written: Vec<PathBuf>,
    /// `(input path, error)` for every input that failed to read, parse,
    /// or compile.
    pub failures: Vec<(PathBuf, DriverError)>,
}

/// Run the driver end to end: read the inputs, compile the batch, write
/// the artifacts of every input that succeeded, and report the rest in
/// [`RunOutcome::failures`].
///
/// # Errors
///
/// Only batch-fatal failures (e.g. an unwritable output directory) are
/// returned as `Err`; per-input problems land in the outcome.
pub fn run(config: &DriverConfig) -> Result<RunOutcome, DriverError> {
    let mut outcome = RunOutcome::default();
    // Read what we can; unreadable inputs become per-file failures.
    let mut readable: Vec<usize> = Vec::with_capacity(config.inputs.len());
    let mut sources: Vec<String> = Vec::with_capacity(config.inputs.len());
    for (i, path) in config.inputs.iter().enumerate() {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                readable.push(i);
                sources.push(text);
            }
            Err(e) => outcome
                .failures
                .push((path.clone(), DriverError::Io(path.clone(), e))),
        }
    }
    // `--name` is only honored for a single *requested* input; if read
    // failures shrink a multi-file batch to one source, the override
    // must not silently transfer to a different program.
    let mut batch_config = config.clone();
    if config.inputs.len() > 1 {
        batch_config.name = None;
    }
    let results = compile_batch_results(&sources, &batch_config);
    std::fs::create_dir_all(&config.out_dir)
        .map_err(|e| DriverError::Io(config.out_dir.clone(), e))?;
    for (input_idx, result) in readable.into_iter().zip(results) {
        match result {
            Ok((files, report)) => {
                for (fname, contents) in files {
                    let path: PathBuf = Path::new(&config.out_dir).join(fname);
                    std::fs::write(&path, contents)
                        .map_err(|e| DriverError::Io(path.clone(), e))?;
                    outcome.written.push(path);
                }
                if config.report || config.timings {
                    print!("{report}");
                }
            }
            Err(e) => outcome.failures.push((config.inputs[input_idx].clone(), e)),
        }
    }
    // Keep diagnostics in input order even when reads and compiles fail
    // for different files.
    outcome
        .failures
        .sort_by_key(|(path, _)| config.inputs.iter().position(|p| p == path));
    Ok(outcome)
}

/// Interrupt flag shared with the signal handlers: SIGTERM/SIGINT set
/// it, the serve loop polls it and switches to the graceful drain
/// sequence (stop accepting → drain → final snapshot → exit).
static SHUTDOWN_SIGNAL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only an atomic store: the handler must stay async-signal-safe.
    SHUTDOWN_SIGNAL.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT to [`SHUTDOWN_SIGNAL`]. Declared directly
/// against libc (which std already links) so the build stays
/// dependency-free; on non-unix targets this is a no-op and only stdin
/// EOF triggers the drain.
fn install_shutdown_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_shutdown_signal as *const () as usize);
            signal(SIGTERM, on_shutdown_signal as *const () as usize);
        }
    }
}

/// One request line read under the serve loop's line-length bound.
enum BoundedLine {
    /// A complete line within the bound (trailing `\r` stripped).
    Line(String),
    /// The line exceeded the bound; it was consumed but not buffered.
    Oversized,
    /// The line fit but was not valid UTF-8.
    BadUtf8,
    /// End of input.
    Eof,
}

/// Read one `\n`-terminated line without ever buffering more than `max`
/// bytes of it: an oversized line is *consumed* (so the stream stays
/// in sync) but reported instead of returned, which is what keeps a
/// hostile or buggy client from growing the daemon's memory without
/// bound.
fn read_bounded_line(
    reader: &mut dyn std::io::BufRead,
    max: usize,
) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() && !oversized {
                return Ok(BoundedLine::Eof);
            }
            break; // final line without trailing newline
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized && buf.len() + pos <= max {
                    buf.extend_from_slice(&chunk[..pos]);
                } else {
                    oversized = true;
                }
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if !oversized && buf.len() + len <= max {
                    buf.extend_from_slice(chunk);
                } else {
                    oversized = true;
                    buf.clear();
                }
                reader.consume(len);
            }
        }
    }
    if oversized {
        return Ok(BoundedLine::Oversized);
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(BoundedLine::Line(s)),
        Err(_) => Ok(BoundedLine::BadUtf8),
    }
}

/// What the reader thread feeds the serve loop.
enum InMsg {
    Item(BoundedLine),
    Io(std::io::Error),
}

/// Serve mode (`gmcc --serve <path|->`): front a
/// [`gmc_serve::CompileService`] with JSONL requests from a file or
/// stdin, streaming one JSONL response line per request to stdout (see
/// [`gmc_serve::jsonl`] for the wire format). `--jobs` sets the shard
/// count, `--cache-cap` bounds each shard's compiled-chain cache, and
/// `--persist FILE` makes restarts warm: the snapshot is loaded on start
/// (if present; a corrupt file is quarantined to `<path>.bad`) and
/// rewritten atomically on shutdown. `--deadline-ms` and `--queue-cap`
/// set the admission-control defaults; `--max-line-bytes` bounds input
/// lines; `--enable-faults` honors in-band `{"op":"fault"}` requests
/// (the `GMC_FAULT` environment variable is read regardless, and a
/// malformed spec refuses to start). The C++ runtime header is attached
/// to the first response that carries a `.cpp` artifact.
///
/// Observability: `{"op":"metrics"}` returns per-shard latency
/// histograms and counters in-band; `--metrics-file FILE` dumps the
/// same snapshot as Prometheus text exposition on drain and on every
/// metrics request; `--slow-ms MS` logs requests slower than `MS`
/// milliseconds end-to-end to stderr with a per-stage breakdown (when
/// tracing is on).
///
/// Input ends on EOF or on SIGTERM/SIGINT; both run the same graceful
/// drain: stop accepting, answer everything in flight, write the final
/// snapshot, exit.
///
/// Returns `(requests, failed requests)`; request failures are reported
/// in-band as `"ok":false` response lines with a typed `kind`, so the
/// daemon itself exits zero unless the transport or snapshot is broken.
///
/// # Errors
///
/// Returns [`DriverError`] for transport-level problems: unreadable
/// request source, an incompatible snapshot, a malformed `GMC_FAULT`
/// spec, or a broken stdout pipe.
pub fn run_serve(config: &DriverConfig) -> Result<(u64, u64), DriverError> {
    use gmc_serve::fault::FaultPlan;
    use gmc_serve::{jsonl, CompileRequest, CompileService, Emit, FailureKind, ServeConfig};
    use std::io::{BufRead, Write};

    let default_emit = match config.emit {
        EmitKind::Cpp => Emit::Cpp,
        EmitKind::Rust => Emit::Rust,
        EmitKind::Both => Emit::Both,
    };
    let faults = FaultPlan::from_env().map_err(DriverError::Usage)?;
    if faults.is_armed() {
        eprintln!(
            "gmcc --serve: fault injection armed from {}",
            gmc_serve::fault::FAULT_ENV
        );
    }
    install_shutdown_handlers();
    let mut service = CompileService::start(ServeConfig {
        shards: config.jobs,
        options: compile_options(config),
        cache_capacity: config.cache_cap,
        frag_cache_capacity: gmc_core::DEFAULT_FRAG_CACHE_CAPACITY,
        snapshot_path: config.persist.clone(),
        snapshot_keep: config.persist_keep,
        queue_cap: config.queue_cap,
        default_deadline: config.deadline_ms.map(std::time::Duration::from_millis),
        restart: gmc_serve::RestartPolicy::default(),
        routing: config.routing,
        faults: faults.clone(),
        slow_request: config.slow_ms.map(std::time::Duration::from_millis),
    })
    .map_err(|e| DriverError::Compile(e.to_string()))?;

    // `--listen` fronts the same service with the multiplexed socket
    // transport instead of the stdin/file line loop.
    if config.listen.is_some() {
        return run_serve_socket(config, service, default_emit, &faults);
    }

    let source = config.serve.as_deref().unwrap_or("-");
    let mut reader: Box<dyn BufRead + Send> = if source == "-" {
        Box::new(std::io::BufReader::new(std::io::stdin()))
    } else {
        let path = PathBuf::from(source);
        let file = std::fs::File::open(&path).map_err(|e| DriverError::Io(path, e))?;
        Box::new(std::io::BufReader::new(file))
    };

    // Input is read on its own thread so the serve loop can keep
    // streaming responses and polling the shutdown flag while the
    // reader blocks on a quiet stdin.
    let (line_tx, line_rx) = std::sync::mpsc::channel::<InMsg>();
    let max_line = config.max_line_bytes;
    std::thread::spawn(move || loop {
        match read_bounded_line(reader.as_mut(), max_line) {
            Ok(BoundedLine::Eof) => {
                let _ = line_tx.send(InMsg::Item(BoundedLine::Eof));
                break;
            }
            Ok(item) => {
                if line_tx.send(InMsg::Item(item)).is_err() {
                    break; // serve loop is gone (drain path)
                }
            }
            Err(e) => {
                let _ = line_tx.send(InMsg::Io(e));
                break;
            }
        }
    });

    /// Streams response lines, attaching the C++ runtime header to the
    /// first `.cpp`-carrying response and counting in-band failures.
    struct LineWriter<W: Write> {
        out: W,
        header_sent: bool,
        failures: u64,
    }

    impl<W: Write> LineWriter<W> {
        fn raw(&mut self, line: &str) -> Result<(), DriverError> {
            writeln!(self.out, "{line}").map_err(|e| DriverError::Io(PathBuf::from("<stdout>"), e))
        }

        fn emit(&mut self, mut response: gmc_serve::CompileResponse) -> Result<(), DriverError> {
            if let Ok(artifacts) = &mut response.result {
                if !self.header_sent && artifacts.files.iter().any(|(n, _)| n.ends_with(".cpp")) {
                    artifacts.files.insert(
                        0,
                        (
                            "gmc_runtime.hpp".to_string(),
                            gmc_serve::emit_runtime_header(),
                        ),
                    );
                    self.header_sent = true;
                }
            } else {
                self.failures += 1;
            }
            self.raw(&jsonl::response_line(&response))
        }
    }

    let stdout = std::io::stdout();
    let mut writer = LineWriter {
        out: stdout.lock(),
        header_sent: false,
        failures: 0,
    };
    let bad_request = |id: u64, msg: String| {
        gmc_serve::CompileResponse::failure(id, FailureKind::BadRequest, msg)
    };

    let mut requests: u64 = 0;
    'accept: loop {
        if SHUTDOWN_SIGNAL.load(std::sync::atomic::Ordering::SeqCst) {
            eprintln!("gmcc --serve: shutdown signal received; draining");
            break 'accept;
        }
        let msg = match line_rx.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(msg) => msg,
            // Idle beat: stream finished work, then poll the flag again.
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                while let Some(response) = service.try_recv() {
                    writer.emit(response)?;
                }
                continue 'accept;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break 'accept,
        };
        let line = match msg {
            InMsg::Io(e) => return Err(DriverError::Io(PathBuf::from(source), e)),
            InMsg::Item(BoundedLine::Eof) => break 'accept,
            InMsg::Item(BoundedLine::Oversized) => {
                requests += 1;
                writer.emit(bad_request(
                    requests,
                    format!("request line exceeds {max_line} bytes"),
                ))?;
                continue 'accept;
            }
            InMsg::Item(BoundedLine::BadUtf8) => {
                requests += 1;
                writer.emit(bad_request(
                    requests,
                    "request line is not valid UTF-8".into(),
                ))?;
                continue 'accept;
            }
            InMsg::Item(BoundedLine::Line(line)) => line,
        };
        if line.trim().is_empty() {
            continue 'accept;
        }
        requests += 1;
        // Requests without an explicit id (and malformed lines) are
        // assigned their 1-based position in the stream, as documented
        // in `gmc_serve::jsonl`; explicit ids are the client's own
        // namespace and pass through untouched.
        let stream_id = requests;
        match jsonl::parse_request(&line) {
            Ok(raw) => {
                let id = raw.id.unwrap_or(stream_id);
                match raw.op.as_deref() {
                    // In-band service queries: answered synchronously
                    // (stats rides the work queues and observes every
                    // compile submitted before this line; health reads
                    // atomics and answers even when shards are wedged).
                    Some("stats") => writer.raw(&jsonl::stats_line(id, &service.stats()))?,
                    Some("health") => writer.raw(&jsonl::health_line(id, &service.health()))?,
                    Some("metrics") => {
                        let metrics = service.metrics();
                        // A metrics query also refreshes the Prometheus
                        // dump, so scrapers watching the file see the
                        // same snapshot the client got in-band.
                        if let Some(path) = &config.metrics_file {
                            std::fs::write(path, metrics.to_prometheus())
                                .map_err(|e| DriverError::Io(path.clone(), e))?;
                        }
                        writer.raw(&jsonl::metrics_line(id, &metrics))?;
                    }
                    Some("fault") if !config.enable_faults => {
                        writer.emit(bad_request(
                            id,
                            "fault injection is disabled (run with --enable-faults)".into(),
                        ))?;
                    }
                    Some("fault") => match raw.spec.as_deref() {
                        Some(spec) => match faults.arm(spec) {
                            Ok(()) => writer.raw(&jsonl::ack_line(id, "fault"))?,
                            Err(e) => {
                                writer.emit(bad_request(id, format!("bad fault spec: {e}")))?;
                            }
                        },
                        None => {
                            writer.emit(bad_request(id, "fault op needs a `spec` field".into()))?;
                        }
                    },
                    Some(other) => {
                        writer.emit(bad_request(id, format!("unknown op `{other}`")))?;
                    }
                    None => {
                        let deadline = raw.deadline_ms.map(std::time::Duration::from_millis);
                        match raw.emit.as_deref().map(Emit::parse) {
                            None => service.submit(CompileRequest {
                                id,
                                name: raw.name,
                                source: raw.source,
                                emit: default_emit,
                                deadline,
                            }),
                            Some(Ok(emit)) => service.submit(CompileRequest {
                                id,
                                name: raw.name,
                                source: raw.source,
                                emit,
                                deadline,
                            }),
                            Some(Err(msg)) => writer.emit(bad_request(id, msg))?,
                        }
                    }
                }
            }
            Err(msg) => writer.emit(bad_request(stream_id, format!("bad request line: {msg}")))?,
        }
        // Stream whatever has already finished before blocking on more
        // input.
        while let Some(response) = service.try_recv() {
            writer.emit(response)?;
        }
    }
    // Graceful drain: accepting has stopped (EOF or signal); answer
    // everything in flight, then persist the final snapshot atomically
    // so the next start is warm.
    while let Some(response) = service.recv() {
        writer.emit(response)?;
    }
    let failures = writer.failures;
    if let Some(path) = &config.persist {
        service
            .save_snapshot(path)
            .map_err(|e| DriverError::Compile(e.to_string()))?;
    }
    // Final Prometheus dump: everything the service recorded, including
    // the drained tail, lands in the metrics file before exit.
    if let Some(path) = &config.metrics_file {
        std::fs::write(path, service.metrics().to_prometheus())
            .map_err(|e| DriverError::Io(path.clone(), e))?;
    }
    let stats = service.shutdown();
    eprintln!(
        "gmcc --serve: {requests} request(s), {failures} failed, {} shard(s), \
         {} cache hit(s), {} restored from snapshot, {} panic(s) caught, {} restart(s)",
        stats.shards.len(),
        stats.cache_hits(),
        stats.restored(),
        stats.panics(),
        stats.restarts(),
    );
    Ok((requests, failures))
}

/// Socket serve mode (`gmcc --serve --listen <addr>`): front the shared
/// [`gmc_serve::CompileService`] with the multiplexed socket transport
/// instead of the stdin/file line loop — many concurrent JSONL
/// connections, pipelined request ids, out-of-order responses matched
/// by id on the submitting connection. Admission control, deadlines,
/// routing, and persistence flags mean exactly what they mean on the
/// stdin daemon; `{"op":"health"}`/`{"op":"metrics"}` responses
/// additionally carry a `"transport"` object and the Prometheus dump
/// gains connection gauges. SIGTERM/SIGINT runs the same graceful
/// drain: stop accepting, answer everything in flight on its
/// connection, write the final snapshot, exit.
fn run_serve_socket(
    config: &DriverConfig,
    service: gmc_serve::CompileService,
    default_emit: gmc_serve::Emit,
    faults: &gmc_serve::fault::FaultPlan,
) -> Result<(u64, u64), DriverError> {
    use gmc_serve::transport::{self, ListenAddr, SocketListener, TransportOptions};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    let addr = ListenAddr::parse(
        config
            .listen
            .as_deref()
            .expect("socket mode requires --listen"),
    );
    let addr_path = PathBuf::from(addr.to_string());
    let listener =
        SocketListener::bind(&addr).map_err(|e| DriverError::Io(addr_path.clone(), e))?;
    eprintln!("gmcc --serve: listening on {}", listener.local_addr());
    let options = TransportOptions {
        default_emit,
        enable_faults: config.enable_faults,
        faults: faults.clone(),
        max_line_bytes: config.max_line_bytes,
        metrics_file: config.metrics_file.clone(),
        attach_runtime_header: true,
        conn_in_flight_cap: config.conn_in_flight_cap,
        max_conns: config.max_conns,
        idle_timeout: config.idle_timeout_ms.map(std::time::Duration::from_millis),
        ..TransportOptions::default()
    };
    // The signal handler stores into the process-wide flag; the
    // transport polls an `Arc`, so a bridge thread forwards the edge
    // (and exits once either side is set).
    let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                if SHUTDOWN_SIGNAL.load(Ordering::SeqCst) {
                    eprintln!("gmcc --serve: shutdown signal received; draining connections");
                    flag.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
    }
    let (service, report) = transport::serve(listener, service, options, Arc::clone(&shutdown))
        .map_err(|e| DriverError::Io(addr_path, e))?;
    shutdown.store(true, Ordering::SeqCst);
    if let Some(path) = &config.persist {
        service
            .save_snapshot(path)
            .map_err(|e| DriverError::Compile(e.to_string()))?;
    }
    // Final Prometheus dump, transport counters included.
    if let Some(path) = &config.metrics_file {
        let mut text = service.metrics().to_prometheus();
        report.snapshot.write_prometheus(&mut text);
        std::fs::write(path, text).map_err(|e| DriverError::Io(path.clone(), e))?;
    }
    let stats = service.shutdown();
    eprintln!(
        "gmcc --serve: {} request(s) over {} connection(s), {} failed, {} shard(s), \
         {} cache hit(s), {} restored from snapshot, {} panic(s) caught, {} restart(s)",
        report.requests,
        report.accepted,
        report.failures,
        stats.shards.len(),
        stats.cache_hits(),
        stats.restored(),
        stats.panics(),
        stats.restarts(),
    );
    Ok((report.requests, report.failures))
}

/// The explicit `"id":N` field of a JSONL request or response line, if
/// it has one.
fn jsonl_id(line: &str) -> Option<u64> {
    let rest = line[line.find("\"id\":")? + 5..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Whether a `"ok":false` response line carries a retryable failure
/// kind (shedding, deadline, panic, down shard — transient daemon
/// states an identical resend can outlive).
fn retryable_response(line: &str) -> bool {
    let kind = line
        .split("\"kind\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next());
    matches!(
        kind,
        Some("overloaded" | "deadline_exceeded" | "shard_panic" | "shard_down")
    )
}

/// Jittered capped exponential backoff before resending request `id`
/// for the `attempt`-th time (1-based): base 10 ms doubling to a 200 ms
/// cap, with the actual sleep drawn deterministically from
/// `[cap/2, cap]` by hashing `(id, attempt)` — concurrent clients
/// retrying the same shed burst decorrelate without a shared RNG.
fn retry_backoff(id: u64, attempt: u32) -> std::time::Duration {
    let cap = (10u64 << attempt.min(5)).min(200);
    let hash = id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03));
    std::time::Duration::from_millis(cap / 2 + hash % (cap / 2 + 1))
}

/// Client mode (`gmcc --connect <addr> [requests.jsonl|-]`): connect to
/// a listening daemon, pipeline every request line from the input file
/// (or stdin) without waiting for responses, and print each response
/// line to stdout as it arrives (completion order — match them to
/// requests by `id`). Responses with a retryable failure kind
/// (`overloaded` from admission control, `deadline_exceeded`,
/// `shard_panic`, `shard_down`) are resent up to `--retry` times with
/// jittered capped backoff instead of being printed, so shed traffic
/// converges; only requests carrying an explicit `id` participate
/// (positional ids shift on resend). Once every request has a final
/// response the socket is half-closed. Returns `(responses, failures)`
/// counting final responses only.
///
/// # Errors
///
/// Returns [`DriverError`] for connect/transport failures; request
/// failures come back in-band as `"ok":false` lines.
pub fn run_connect(config: &DriverConfig) -> Result<(u64, u64), DriverError> {
    use gmc_serve::transport::{ListenAddr, SocketStream};
    use std::io::{BufRead, BufReader, Write};

    let addr = ListenAddr::parse(
        config
            .connect
            .as_deref()
            .expect("client mode requires --connect"),
    );
    let addr_path = PathBuf::from(addr.to_string());
    let stream = SocketStream::connect(&addr).map_err(|e| DriverError::Io(addr_path.clone(), e))?;
    let mut write_half = stream
        .try_clone()
        .map_err(|e| DriverError::Io(addr_path.clone(), e))?;
    // Responses arrive on their own thread so a deep pipeline can't
    // deadlock on a full socket buffer; the main thread owns stdout,
    // the retry bookkeeping, and the write half.
    let (lines_tx, lines_rx) = std::sync::mpsc::channel::<String>();
    let reader_thread = std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if lines_tx.send(std::mem::take(&mut line)).is_err() {
                        break;
                    }
                }
            }
        }
    });
    let input: Box<dyn BufRead> = match config.inputs.first() {
        Some(path) if path != Path::new("-") => {
            let file = std::fs::File::open(path).map_err(|e| DriverError::Io(path.clone(), e))?;
            Box::new(BufReader::new(file))
        }
        _ => Box::new(BufReader::new(std::io::stdin())),
    };
    // Requests with an explicit id are kept around for resending.
    let mut sent: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    let mut outstanding = 0u64;
    for line in input.lines() {
        let line = line.map_err(|e| DriverError::Io(PathBuf::from("<requests>"), e))?;
        if line.trim().is_empty() {
            continue;
        }
        write_half
            .write_all(line.as_bytes())
            .and_then(|()| write_half.write_all(b"\n"))
            .map_err(|e| DriverError::Io(addr_path.clone(), e))?;
        outstanding += 1;
        if config.retry > 0 {
            if let Some(id) = jsonl_id(&line) {
                sent.insert(id, line);
            }
        }
    }
    write_half
        .flush()
        .map_err(|e| DriverError::Io(addr_path.clone(), e))?;

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut attempts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let (mut responses, mut failures, mut retried) = (0u64, 0u64, 0u64);
    while outstanding > 0 {
        let Ok(line) = lines_rx.recv() else {
            break; // connection closed with responses still outstanding
        };
        let id = jsonl_id(&line);
        if line.contains("\"ok\":false") && retryable_response(&line) {
            if let Some(request) = id.filter(|i| sent.contains_key(i)).map(|i| &sent[&i]) {
                let attempt = attempts.entry(id.unwrap_or(0)).or_insert(0);
                if *attempt < config.retry {
                    *attempt += 1;
                    std::thread::sleep(retry_backoff(id.unwrap_or(0), *attempt));
                    let resent = write_half
                        .write_all(request.as_bytes())
                        .and_then(|()| write_half.write_all(b"\n"))
                        .and_then(|()| write_half.flush());
                    if resent.is_ok() {
                        retried += 1;
                        continue; // withhold the failure; await the retry's response
                    }
                    // The daemon hung up: fall through and report the
                    // failure we were about to swallow.
                }
            }
        }
        responses += 1;
        if line.contains("\"ok\":false") {
            failures += 1;
        }
        out.write_all(line.as_bytes())
            .map_err(|e| DriverError::Io(PathBuf::from("<stdout>"), e))?;
        outstanding -= 1;
    }
    out.flush()
        .map_err(|e| DriverError::Io(PathBuf::from("<stdout>"), e))?;
    // Every request has a final response (or the daemon hung up):
    // half-close so the daemon drains the connection.
    let _ = write_half.shutdown_write();
    drop(lines_rx);
    reader_thread.join().expect("reader thread panicked");
    if retried > 0 {
        eprintln!("gmcc --connect: {retried} retryable failure(s) resent with backoff");
    }
    Ok((responses, failures))
}

/// Usage text for `gmcc --help`.
#[must_use]
pub fn usage() -> &'static str {
    "gmcc — code generator for generalized matrix chains with symbolic sizes

USAGE:
    gmcc <input.gmc>... [--out DIR] [--name IDENT] [--emit cpp|rust|both]
         [--expand K] [--train N] [--jobs N] [--report] [--timings]
    gmcc --serve <requests.jsonl|-> [--jobs SHARDS] [--cache-cap N]
         [--persist FILE] [--persist-keep K] [--deadline-ms MS]
         [--queue-cap N] [--max-line-bytes N] [--enable-faults]
         [--metrics-file FILE] [--slow-ms MS] [--emit cpp|rust|both]
         [--expand K] [--train N] [--routing two-choices|hash-mod]
    gmcc --listen <unix:PATH|tcp:HOST:PORT> [same flags as --serve]
         [--conn-in-flight-cap N] [--max-conns N] [--idle-timeout-ms MS]
    gmcc --connect <unix:PATH|tcp:HOST:PORT> [requests.jsonl|-] [--retry N]

Multiple inputs compile as one batch ( --jobs N splits it across N
worker threads; artifacts are identical for every N). A failing input
is reported per file and exits nonzero, but the rest of the batch still
emits. Each input file uses the grammar of Fig. 2 of the paper:

    Matrix A <General, Singular>;
    Matrix L <LowerTri, NonSingular>;
    X := A * L^-1;

With --serve, gmcc becomes a sharded compile service: each line of the
request source is a JSON object like
    {\"id\": 1, \"name\": \"x\", \"emit\": \"both\", \"source\": \"...\"}
and each response is streamed back as one JSON line. --jobs sets the
shard count. Requests route by power-of-two-choices over live queue
depths: each shape has a stable cache-warm home shard and routes there
unless its queue is markedly deeper than the shape's alternate
(--routing hash-mod pins the plain modulo policy instead). --persist
FILE snapshots the compiled-chain caches on shutdown and restores them
on the next start; --persist-keep K rotates the last K snapshot
generations (FILE, FILE.1, ...) and startup warms from the newest one
that decodes, quarantining corrupt generations to FILE.bad. Shards are
supervised: a
panicking shard restarts warm from the latest snapshot, with a circuit
breaker after repeated failures. --queue-cap bounds each shard's queue
(overflow is shed with an in-band `overloaded` error), --deadline-ms
sets the default per-request deadline (requests may override it with a
`deadline_ms` field), and --max-line-bytes bounds request lines.
SIGTERM/SIGINT or EOF drain gracefully: in-flight requests are
answered and the final snapshot is written before exit. A line of
{\"op\": \"stats\"} returns per-shard cache counters, {\"op\":
\"health\"} per-shard liveness, latency p99s, and robustness
counters, {\"op\": \"metrics\"} full per-shard latency histograms and
counters; {\"op\": \"fault\", \"spec\": \"panic:0:3\"} arms fault
injection when the daemon runs with --enable-faults (the GMC_FAULT
environment variable arms the same faults at startup).

With --listen, the same daemon serves a Unix-domain or TCP socket
instead of stdin: many clients connect concurrently, each may pipeline
requests without waiting, and responses come back on the submitting
connection in completion order, matched by id (ids are per-connection;
requests without one get their 1-based position in that connection's
stream). {\"op\": \"health\"} and {\"op\": \"metrics\"} responses
additionally carry a `transport` object (open/accepted/closed
connections, per-connection in-flight), and the Prometheus dump gains
a gmc_connections gauge. The socket daemon applies end-to-end
backpressure: --conn-in-flight-cap N (default 64, 0 = off) sheds a
connection's requests over N outstanding with a retryable `overloaded`
error; each connection's outbound queue is bounded, and a client that
stops reading past a grace window is closed with its in-flight work
written off (late shard replies are dropped and counted); --max-conns
N refuses connections beyond N with one typed line; --idle-timeout-ms
MS reaps connections with zero in-flight. gmcc --connect ADDR [FILE|-]
is the matching client: it pipelines FILE's request lines over one
connection and prints each response line to stdout; retryable
failures (overloaded, deadline_exceeded, shard_panic, shard_down) are
resent up to --retry N times (default 3, 0 = off) with jittered
capped backoff before the failure is surfaced, so shed traffic
converges instead of failing.

Observability: --timings prints a per-stage timing breakdown (parse,
enumerate, dp, select, expand, emit) for each input after its variant
report. In serve mode, --metrics-file FILE dumps service metrics as
Prometheus text exposition on drain and on every {\"op\":
\"metrics\"} request, and --slow-ms MS logs requests slower than MS
milliseconds end-to-end to stderr with their stage breakdown. Session
tracing defaults on; GMC_TRACE=off disables the stage spans (request
histograms stay live).
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(extra: &[&str]) -> DriverConfig {
        let mut args: Vec<String> = vec!["in.gmc".into()];
        args.extend(extra.iter().map(|s| s.to_string()));
        parse_args(&args).unwrap()
    }

    const SRC: &str = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        Matrix B <General, Singular>;
        X := A * L^-1 * B;
    ";

    const SRC2: &str = "
        Matrix H <General, Singular>;
        Matrix P <Symmetric, SPD>;
        Y := H * P^-1;
    ";

    #[test]
    fn arg_parsing() {
        let c = cfg(&[
            "--emit",
            "both",
            "--expand",
            "2",
            "--name",
            "foo",
            "--report",
            "--jobs",
            "3",
            "--timings",
        ]);
        assert_eq!(c.emit, EmitKind::Both);
        assert_eq!(c.expand, 2);
        assert_eq!(c.name.as_deref(), Some("foo"));
        assert_eq!(c.jobs, 3);
        assert!(c.report);
        assert!(c.timings);
        assert_eq!(c.inputs, vec![PathBuf::from("in.gmc")]);
    }

    #[test]
    fn multiple_inputs_accepted() {
        let c = parse_args(&["a.gmc".into(), "b.gmc".into(), "c.gmc".into()]).unwrap();
        assert_eq!(c.inputs.len(), 3);
    }

    #[test]
    fn missing_input_is_usage_error() {
        assert!(matches!(
            parse_args(&["--report".to_string()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn bad_jobs_rejected() {
        assert!(matches!(
            parse_args(&["in.gmc".into(), "--jobs".into(), "0".into()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(matches!(
            parse_args(&["in.gmc".into(), "--frobnicate".into()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn compiles_to_cpp_and_rust() {
        let c = cfg(&["--emit", "both", "--train", "100"]);
        let (files, report) = compile_source(SRC, &c).unwrap();
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x.cpp", "gmc_runtime.hpp", "x.rs"]);
        assert!(report.contains("variant 0"));
        assert!(files[0].1.contains("void x("));
        assert!(files[2].1.contains("pub fn x("));
    }

    #[test]
    fn timings_append_stage_breakdown_to_report() {
        let c = cfg(&["--emit", "both", "--train", "60", "--timings"]);
        let (_, report) = compile_source(SRC, &c).unwrap();
        assert!(report.contains("variant 0"), "variant report still leads");
        assert!(
            report.contains("timings chain"),
            "stage breakdown appended: {report}"
        );
        for stage in ["enumerate", "select", "emit"] {
            assert!(report.contains(stage), "stage `{stage}` missing: {report}");
        }
        // Without the flag, no breakdown rides along.
        let c = cfg(&["--emit", "both", "--train", "60"]);
        let (_, report) = compile_source(SRC, &c).unwrap();
        assert!(!report.contains("timings chain"));
    }

    #[test]
    fn parse_errors_are_reported() {
        let c = cfg(&[]);
        let err = compile_source("Matrix A <General, Singular>; X := B;", &c).unwrap_err();
        assert!(err.to_string().contains("undefined matrix"));
    }

    #[test]
    fn batch_compiles_multiple_programs() {
        let c = cfg(&["--emit", "cpp", "--train", "50"]);
        let sources = vec![SRC.to_string(), SRC2.to_string()];
        let items = compile_batch(&sources, &c).unwrap();
        assert_eq!(items.len(), 2);
        let names0: Vec<&str> = items[0].0.iter().map(|(n, _)| n.as_str()).collect();
        let names1: Vec<&str> = items[1].0.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names0, vec!["x.cpp", "gmc_runtime.hpp"]);
        assert_eq!(names1, vec!["y.cpp"], "runtime header emitted once");
    }

    #[test]
    fn batch_jobs_produce_identical_artifacts() {
        let serial = cfg(&["--emit", "both", "--train", "60"]);
        let mut parallel = serial.clone();
        parallel.jobs = 3;
        let sources = vec![
            SRC.to_string(),
            SRC2.to_string(),
            SRC.to_string(), // repeat: name must uniquify to x_2
        ];
        let a = compile_batch(&sources, &serial).unwrap();
        let b = compile_batch(&sources, &parallel).unwrap();
        assert_eq!(a.len(), b.len());
        for ((fa, ra), (fb, rb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(ra, rb);
        }
        let last: Vec<&str> = a[2].0.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(last, vec!["x_2.cpp", "x_2.rs"]);
    }

    #[test]
    fn name_uniquification_avoids_literal_suffix_collisions() {
        // Two programs named X plus one literally named X_2: the second X
        // must skip past the taken x_2 to x_3.
        let src_x2 = "
            Matrix H <General, Singular>;
            Matrix P <Symmetric, SPD>;
            X_2 := H * P^-1;
        ";
        let c = cfg(&["--emit", "rust", "--train", "40"]);
        let sources = vec![SRC.to_string(), src_x2.to_string(), SRC.to_string()];
        let items = compile_batch(&sources, &c).unwrap();
        let names: Vec<&str> = items
            .iter()
            .flat_map(|(files, _)| files.iter().map(|(n, _)| n.as_str()))
            .collect();
        assert_eq!(names, vec!["x.rs", "x_2.rs", "x_3.rs"]);
    }

    #[test]
    fn end_to_end_writes_files() {
        let dir = std::env::temp_dir().join("gmcc_test_out");
        let _ = std::fs::remove_dir_all(&dir);
        let input = dir.join("chain.gmc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&input, SRC).unwrap();
        let config = parse_args(&[
            input.to_string_lossy().into_owned(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--emit".into(),
            "cpp".into(),
            "--train".into(),
            "50".into(),
        ])
        .unwrap();
        let outcome = run(&config).unwrap();
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.written.len(), 2);
        assert!(outcome.written.iter().all(|p| p.exists()));
    }

    #[test]
    fn end_to_end_batch_with_jobs() {
        let dir = std::env::temp_dir().join("gmcc_test_out_batch");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let in1 = dir.join("one.gmc");
        let in2 = dir.join("two.gmc");
        std::fs::write(&in1, SRC).unwrap();
        std::fs::write(&in2, SRC2).unwrap();
        let config = parse_args(&[
            in1.to_string_lossy().into_owned(),
            in2.to_string_lossy().into_owned(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--emit".into(),
            "both".into(),
            "--train".into(),
            "50".into(),
            "--jobs".into(),
            "2".into(),
        ])
        .unwrap();
        let outcome = run(&config).unwrap();
        assert!(outcome.failures.is_empty());
        // x.cpp, gmc_runtime.hpp, x.rs, y.cpp, y.rs
        assert_eq!(outcome.written.len(), 5);
        assert!(outcome.written.iter().all(|p| p.exists()));
    }

    #[test]
    fn batch_results_report_each_failure_without_stopping() {
        let c = cfg(&["--emit", "cpp", "--train", "40"]);
        let sources = vec![
            SRC.to_string(),
            "Matrix A <General, Singular>; X := B;".to_string(), // undefined B
            SRC2.to_string(),
        ];
        let results = compile_batch_results(&sources, &c);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "healthy input before the failure");
        assert!(results[1]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("undefined matrix"));
        let after: Vec<&str> = results[2]
            .as_ref()
            .unwrap()
            .0
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(after, vec!["y.cpp"], "input after the failure still emits");
        // The fail-fast wrapper keeps its contract: first (parse) error.
        assert!(compile_batch(&sources, &c).is_err());
    }

    #[test]
    fn end_to_end_batch_emits_successes_and_exits_dirty() {
        let dir = std::env::temp_dir().join("gmcc_test_out_hardened");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.gmc");
        let bad = dir.join("bad.gmc");
        let missing = dir.join("missing.gmc");
        std::fs::write(&good, SRC).unwrap();
        std::fs::write(&bad, "Matrix A <General, Singular>; X := B;").unwrap();
        let config = parse_args(&[
            good.to_string_lossy().into_owned(),
            bad.to_string_lossy().into_owned(),
            missing.to_string_lossy().into_owned(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--emit".into(),
            "cpp".into(),
            "--train".into(),
            "40".into(),
        ])
        .unwrap();
        let outcome = run(&config).unwrap();
        // The good program's artifacts exist despite two sick siblings.
        assert_eq!(outcome.written.len(), 2, "x.cpp + runtime header");
        assert!(outcome.written.iter().all(|p| p.exists()));
        // Each failure is tagged with its own input path, in input order.
        assert_eq!(outcome.failures.len(), 2);
        assert_eq!(outcome.failures[0].0, bad);
        assert!(outcome.failures[0]
            .1
            .to_string()
            .contains("undefined matrix"));
        assert_eq!(outcome.failures[1].0, missing);
        assert!(matches!(outcome.failures[1].1, DriverError::Io(..)));
    }

    #[test]
    fn serve_flags_parse() {
        let c = parse_args(&[
            "--serve".into(),
            "-".into(),
            "--jobs".into(),
            "3".into(),
            "--cache-cap".into(),
            "17".into(),
            "--persist".into(),
            "snap.txt".into(),
            "--deadline-ms".into(),
            "250".into(),
            "--queue-cap".into(),
            "8".into(),
            "--max-line-bytes".into(),
            "4096".into(),
            "--enable-faults".into(),
            "--metrics-file".into(),
            "metrics.prom".into(),
            "--slow-ms".into(),
            "75".into(),
        ])
        .unwrap();
        assert_eq!(c.serve.as_deref(), Some("-"));
        assert_eq!(c.jobs, 3);
        assert_eq!(c.cache_cap, 17);
        assert_eq!(c.persist, Some(PathBuf::from("snap.txt")));
        assert_eq!(c.deadline_ms, Some(250));
        assert_eq!(c.queue_cap, 8);
        assert_eq!(c.max_line_bytes, 4096);
        assert!(c.enable_faults);
        assert_eq!(c.metrics_file, Some(PathBuf::from("metrics.prom")));
        assert_eq!(c.slow_ms, Some(75));
        assert!(c.inputs.is_empty(), "serve mode needs no inputs");
        // A zero slow threshold would log every request; rejected.
        assert!(matches!(
            parse_args(&["--serve".into(), "-".into(), "--slow-ms".into(), "0".into()]),
            Err(DriverError::Usage(_))
        ));
        // Zero deadlines/queues make no sense and are rejected.
        assert!(matches!(
            parse_args(&[
                "--serve".into(),
                "-".into(),
                "--queue-cap".into(),
                "0".into()
            ]),
            Err(DriverError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&[
                "--serve".into(),
                "-".into(),
                "--deadline-ms".into(),
                "0".into()
            ]),
            Err(DriverError::Usage(_))
        ));
        // Without --serve, missing inputs stay an error.
        assert!(matches!(
            parse_args(&["--cache-cap".into(), "9".into()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn serve_end_to_end_streams_jsonl_and_persists() {
        let dir = std::env::temp_dir().join("gmcc_serve_e2e");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let requests = dir.join("requests.jsonl");
        let snapshot = dir.join("cache.snap");
        let src = SRC.replace('\n', " ");
        std::fs::write(
            &requests,
            format!(
                "{{\"id\": 1, \"emit\": \"both\", \"source\": \"{src}\"}}\n\
                 {{\"id\": 2, \"source\": \"not a program\"}}\n\
                 {{\"id\": 3, \"source\": \"{src}\"}}\n"
            ),
        )
        .unwrap();
        let config = parse_args(&[
            "--serve".into(),
            requests.to_string_lossy().into_owned(),
            "--jobs".into(),
            "2".into(),
            "--train".into(),
            "40".into(),
            "--persist".into(),
            snapshot.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let (requests_seen, failures) = run_serve(&config).unwrap();
        assert_eq!((requests_seen, failures), (3, 1));
        // The snapshot persisted the one distinct shape for warm restarts.
        let text = std::fs::read_to_string(&snapshot).unwrap();
        assert!(text.starts_with("gmc-session-snapshot v1"));
        assert_eq!(text.matches("\nshape ").count(), 1);
        let (_, failures_again) = run_serve(&config).unwrap();
        assert_eq!(failures_again, 1, "restart serves the same stream");
    }

    #[test]
    fn serve_answers_stats_op_in_band() {
        let dir = std::env::temp_dir().join("gmcc_serve_stats_op");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let requests = dir.join("requests.jsonl");
        let src = SRC.replace('\n', " ");
        // Two compiles of the same shape, then a stats query, then an
        // unknown op: 4 request lines, 1 in-band failure.
        std::fs::write(
            &requests,
            format!(
                "{{\"id\": 1, \"source\": \"{src}\"}}\n\
                 {{\"id\": 2, \"source\": \"{src}\"}}\n\
                 {{\"id\": 3, \"op\": \"stats\"}}\n\
                 {{\"id\": 4, \"op\": \"frobnicate\"}}\n"
            ),
        )
        .unwrap();
        let config = parse_args(&[
            "--serve".into(),
            requests.to_string_lossy().into_owned(),
            "--jobs".into(),
            "2".into(),
            "--train".into(),
            "40".into(),
        ])
        .unwrap();
        let (requests_seen, failures) = run_serve(&config).unwrap();
        assert_eq!(
            (requests_seen, failures),
            (4, 1),
            "unknown op fails in-band"
        );
    }

    #[test]
    fn serve_bounds_line_length_and_answers_health_in_band() {
        let dir = std::env::temp_dir().join("gmcc_serve_bounded_lines");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let requests = dir.join("requests.jsonl");
        let src = SRC.replace('\n', " ");
        // An oversized line, a non-UTF-8 line, a health query, and a
        // healthy compile: 4 requests, 2 in-band failures, and the
        // stream stays in sync past both bad lines.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(
            format!("{{\"id\": 1, \"source\": \"{:65000}\"}}\n", "x").as_bytes(),
        );
        bytes.extend_from_slice(b"{\"id\": 2, \"source\": \"\xff\xfe bad\"}\n");
        bytes.extend_from_slice(b"{\"id\": 3, \"op\": \"health\"}\n");
        bytes.extend_from_slice(format!("{{\"id\": 4, \"source\": \"{src}\"}}\n").as_bytes());
        std::fs::write(&requests, bytes).unwrap();
        let config = parse_args(&[
            "--serve".into(),
            requests.to_string_lossy().into_owned(),
            "--train".into(),
            "40".into(),
            "--max-line-bytes".into(),
            "4096".into(),
        ])
        .unwrap();
        let (requests_seen, failures) = run_serve(&config).unwrap();
        assert_eq!((requests_seen, failures), (4, 2));
    }

    #[test]
    fn serve_metrics_op_answers_in_band_and_dumps_prometheus() {
        let dir = std::env::temp_dir().join("gmcc_serve_metrics_op");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let requests = dir.join("requests.jsonl");
        let prom = dir.join("metrics.prom");
        let src = SRC.replace('\n', " ");
        std::fs::write(
            &requests,
            format!(
                "{{\"id\": 1, \"source\": \"{src}\"}}\n\
                 {{\"id\": 2, \"source\": \"{src}\"}}\n\
                 {{\"id\": 3, \"op\": \"metrics\"}}\n"
            ),
        )
        .unwrap();
        let config = parse_args(&[
            "--serve".into(),
            requests.to_string_lossy().into_owned(),
            "--jobs".into(),
            "2".into(),
            "--train".into(),
            "40".into(),
            "--metrics-file".into(),
            prom.to_string_lossy().into_owned(),
            "--slow-ms".into(),
            "60000".into(), // threshold no test compile reaches
        ])
        .unwrap();
        let (requests_seen, failures) = run_serve(&config).unwrap();
        assert_eq!((requests_seen, failures), (3, 0), "metrics op succeeds");
        // The drain rewrote the dump with every recorded request.
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE gmc_requests_total counter"), "{text}");
        let total: u64 = (0..2)
            .map(|s| {
                text.lines()
                    .find_map(|l| l.strip_prefix(&format!("gmc_requests_total{{shard=\"{s}\"}} ")))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, 2, "both compiles recorded across shards: {text}");
        assert!(
            text.contains("# TYPE gmc_request_seconds histogram"),
            "{text}"
        );
        assert!(text.contains("gmc_request_seconds_bucket{"), "{text}");
    }

    #[test]
    fn serve_fault_op_is_gated_behind_enable_faults() {
        let dir = std::env::temp_dir().join("gmcc_serve_fault_gate");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let requests = dir.join("requests.jsonl");
        std::fs::write(
            &requests,
            "{\"id\": 1, \"op\": \"fault\", \"spec\": \"delay:1\"}\n",
        )
        .unwrap();
        let base = vec![
            "--serve".to_string(),
            requests.to_string_lossy().into_owned(),
            "--train".to_string(),
            "40".to_string(),
        ];
        // Gated off: the op is refused in-band.
        let config = parse_args(&base).unwrap();
        assert_eq!(run_serve(&config).unwrap(), (1, 1));
        // Gated on: acknowledged, no failures.
        let mut enabled = base;
        enabled.push("--enable-faults".into());
        let config = parse_args(&enabled).unwrap();
        assert_eq!(run_serve(&config).unwrap(), (1, 0));
    }

    #[test]
    fn backpressure_and_client_flags_parse() {
        let c = parse_args(&[
            "--listen".into(),
            "unix:/tmp/gmc.sock".into(),
            "--conn-in-flight-cap".into(),
            "8".into(),
            "--max-conns".into(),
            "2".into(),
            "--idle-timeout-ms".into(),
            "500".into(),
        ])
        .unwrap();
        assert_eq!(c.conn_in_flight_cap, 8);
        assert_eq!(c.max_conns, 2);
        assert_eq!(c.idle_timeout_ms, Some(500));
        // Defaults: cap on at 64, no conn limit, no idle reaping, 3 retries.
        let d = parse_args(&["--listen".into(), "unix:/tmp/gmc.sock".into()]).unwrap();
        assert_eq!(d.conn_in_flight_cap, 64);
        assert_eq!(d.max_conns, 0);
        assert_eq!(d.idle_timeout_ms, None);
        assert_eq!(d.retry, 3);
        // 0 disables the cap and retries explicitly; a zero idle
        // timeout would reap every connection and is rejected.
        let z = parse_args(&[
            "--listen".into(),
            "unix:/tmp/gmc.sock".into(),
            "--conn-in-flight-cap".into(),
            "0".into(),
        ])
        .unwrap();
        assert_eq!(z.conn_in_flight_cap, 0);
        let r = parse_args(&[
            "--connect".into(),
            "unix:/tmp/gmc.sock".into(),
            "--retry".into(),
            "0".into(),
        ])
        .unwrap();
        assert_eq!(r.retry, 0);
        assert!(matches!(
            parse_args(&[
                "--listen".into(),
                "unix:/tmp/gmc.sock".into(),
                "--idle-timeout-ms".into(),
                "0".into()
            ]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn retry_helpers_classify_and_bound() {
        assert_eq!(jsonl_id("{\"id\":42,\"ok\":true}"), Some(42));
        assert_eq!(jsonl_id("{\"id\": 7, \"source\": \"...\"}"), Some(7));
        assert_eq!(jsonl_id("{\"ok\":true}"), None);
        assert!(retryable_response(
            "{\"id\":1,\"ok\":false,\"kind\":\"overloaded\",\"error\":\"x\"}"
        ));
        assert!(retryable_response(
            "{\"id\":1,\"ok\":false,\"kind\":\"shard_panic\",\"error\":\"x\"}"
        ));
        assert!(!retryable_response(
            "{\"id\":1,\"ok\":false,\"kind\":\"parse\",\"error\":\"x\"}"
        ));
        assert!(!retryable_response("{\"id\":1,\"ok\":false}"));
        for id in 0..20u64 {
            for attempt in 1..=8u32 {
                let d = retry_backoff(id, attempt).as_millis() as u64;
                let cap = (10u64 << attempt.min(5)).min(200);
                assert!(d >= cap / 2 && d <= cap, "backoff in [cap/2, cap]");
            }
        }
        // Jitter actually varies across ids (decorrelated retries).
        let spread: std::collections::HashSet<u128> = (0..50u64)
            .map(|id| retry_backoff(id, 3).as_millis())
            .collect();
        assert!(spread.len() > 10, "ids decorrelate: {spread:?}");
    }

    /// End to end: a daemon with a per-connection in-flight cap of 1
    /// sheds the pipelined burst, and the client's retry/backoff loop
    /// converges it to zero final failures.
    #[test]
    fn connect_retries_shed_requests_until_they_converge() {
        use gmc_serve::transport::{self, ListenAddr, SocketListener, TransportOptions};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join("gmcc_connect_retry_e2e");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("gmc.sock");
        let requests = dir.join("requests.jsonl");
        let src = SRC.replace('\n', " ");
        std::fs::write(
            &requests,
            format!(
                "{{\"id\": 1, \"source\": \"{src}\"}}\n\
                 {{\"id\": 2, \"source\": \"{src}\"}}\n\
                 {{\"id\": 3, \"source\": \"{src}\"}}\n"
            ),
        )
        .unwrap();

        let faults = gmc_serve::fault::FaultPlan::parse("delay:10").unwrap();
        let service = gmc_serve::CompileService::start(gmc_serve::ServeConfig {
            options: gmc_core::CompileOptions {
                training_instances: 40,
                ..gmc_core::CompileOptions::default()
            },
            faults: faults.clone(),
            ..gmc_serve::ServeConfig::default()
        })
        .unwrap();
        let listener = SocketListener::bind(&ListenAddr::Unix(sock.clone())).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let serve_shutdown = Arc::clone(&shutdown);
        let options = TransportOptions {
            conn_in_flight_cap: 1,
            faults,
            ..TransportOptions::default()
        };
        let daemon = std::thread::spawn(move || {
            transport::serve(listener, service, options, serve_shutdown)
        });

        let config = parse_args(&[
            "--connect".into(),
            format!("unix:{}", sock.display()),
            requests.to_string_lossy().into_owned(),
            "--retry".into(),
            "5".into(),
        ])
        .unwrap();
        let (responses, failures) = run_connect(&config).unwrap();
        assert_eq!(responses, 3, "every request gets one final response");
        assert_eq!(failures, 0, "the shed burst converged through retries");

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = daemon.join().unwrap().unwrap();
        assert!(
            report.snapshot.conn_shed >= 1,
            "the cap actually shed at least one pipelined request"
        );
        let _ = service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
