//! The `gmcc` compiler driver: the command-line face of the code
//! generator in Fig. 1. Parses a `.gmc` program, selects variants, and
//! emits C++ and/or Rust sources plus the runtime header.

use gmc_codegen::{emit_cpp, emit_runtime_header, emit_rust};
use gmc_core::{CompileOptions, CompiledChain, Objective};
use gmc_ir::grammar::parse_program;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// What to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitKind {
    /// C++ translation unit + runtime header.
    Cpp,
    /// Rust module.
    Rust,
    /// Both back-ends.
    Both,
}

impl EmitKind {
    /// Parse an `--emit` value.
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError`] for unknown values.
    pub fn parse(s: &str) -> Result<Self, DriverError> {
        match s {
            "cpp" => Ok(EmitKind::Cpp),
            "rust" => Ok(EmitKind::Rust),
            "both" => Ok(EmitKind::Both),
            other => Err(DriverError::Usage(format!(
                "unknown --emit value `{other}` (expected cpp, rust, or both)"
            ))),
        }
    }
}

/// Driver configuration, filled from command-line arguments.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Input `.gmc` file.
    pub input: PathBuf,
    /// Output directory for emitted sources.
    pub out_dir: PathBuf,
    /// Base name of emitted functions/files (defaults to the program's
    /// left-hand-side identifier).
    pub name: Option<String>,
    /// Back-end(s) to emit.
    pub emit: EmitKind,
    /// Algorithm-1 expansion steps beyond the Theorem-2 base set.
    pub expand: usize,
    /// Training-instance count for selection.
    pub train: usize,
    /// Print a human-readable variant report to stdout.
    pub report: bool,
}

/// Errors from the driver.
#[derive(Debug)]
pub enum DriverError {
    /// Bad command line.
    Usage(String),
    /// I/O failure (payload: path and cause).
    Io(PathBuf, std::io::Error),
    /// Parse or compilation failure.
    Compile(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Usage(msg) => write!(f, "usage error: {msg}"),
            DriverError::Io(path, e) => write!(f, "io error on {}: {e}", path.display()),
            DriverError::Compile(msg) => write!(f, "compile error: {msg}"),
        }
    }
}

impl Error for DriverError {}

/// Parse the `gmcc` command line (without the leading program name).
///
/// # Errors
///
/// Returns [`DriverError::Usage`] on malformed arguments.
pub fn parse_args(args: &[String]) -> Result<DriverConfig, DriverError> {
    let mut input: Option<PathBuf> = None;
    let mut config = DriverConfig {
        input: PathBuf::new(),
        out_dir: PathBuf::from("."),
        name: None,
        emit: EmitKind::Cpp,
        expand: 0,
        train: 1000,
        report: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                config.out_dir = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--out needs a directory".into()))?
                    .into();
            }
            "--name" => {
                config.name = Some(
                    it.next()
                        .ok_or_else(|| DriverError::Usage("--name needs a value".into()))?
                        .clone(),
                );
            }
            "--emit" => {
                let v = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--emit needs a value".into()))?;
                config.emit = EmitKind::parse(v)?;
            }
            "--expand" => {
                config.expand = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--expand needs an integer".into()))?;
            }
            "--train" => {
                config.train = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--train needs an integer".into()))?;
            }
            "--report" => config.report = true,
            other if other.starts_with("--") => {
                return Err(DriverError::Usage(format!("unknown flag `{other}`")));
            }
            path => {
                if input.replace(PathBuf::from(path)).is_some() {
                    return Err(DriverError::Usage("more than one input file".into()));
                }
            }
        }
    }
    config.input = input.ok_or_else(|| DriverError::Usage("missing input .gmc file".into()))?;
    Ok(config)
}

/// Compile one `.gmc` source string and return the emitted artifacts as
/// `(file name, contents)` pairs plus the human-readable report.
///
/// # Errors
///
/// Returns [`DriverError::Compile`] on parse or selection failure.
pub fn compile_source(
    source: &str,
    config: &DriverConfig,
) -> Result<(Vec<(String, String)>, String), DriverError> {
    let program = parse_program(source).map_err(|e| DriverError::Compile(e.to_string()))?;
    let name = config
        .name
        .clone()
        .unwrap_or_else(|| program.lhs().to_lowercase());
    let options = CompileOptions {
        training_instances: config.train,
        expand_by: config.expand,
        objective: Objective::AvgPenalty,
        ..CompileOptions::default()
    };
    let chain = CompiledChain::compile_with(program.shape().clone(), &options)
        .map_err(|e| DriverError::Compile(e.to_string()))?;

    let mut files = Vec::new();
    if matches!(config.emit, EmitKind::Cpp | EmitKind::Both) {
        files.push((format!("{name}.cpp"), emit_cpp(&chain, &name)));
        files.push(("gmc_runtime.hpp".to_string(), emit_runtime_header()));
    }
    if matches!(config.emit, EmitKind::Rust | EmitKind::Both) {
        files.push((format!("{name}.rs"), emit_rust(&chain, &name)));
    }

    let mut report = format!(
        "chain {} (n = {}), {} size-symbol class(es), {} variant(s) selected\n",
        chain.shape(),
        chain.shape().len(),
        chain.shape().size_classes().num_classes(),
        chain.variants().len(),
    );
    for (i, v) in chain.variants().iter().enumerate() {
        report.push_str(&format!(
            "  variant {i}: {}  cost = {}\n",
            v.paren(),
            v.cost_poly()
        ));
    }
    Ok((files, report))
}

/// Run the driver end to end: read the input, compile, write artifacts.
///
/// # Errors
///
/// Propagates I/O and compilation failures.
pub fn run(config: &DriverConfig) -> Result<Vec<PathBuf>, DriverError> {
    let source = std::fs::read_to_string(&config.input)
        .map_err(|e| DriverError::Io(config.input.clone(), e))?;
    let (files, report) = compile_source(&source, config)?;
    std::fs::create_dir_all(&config.out_dir)
        .map_err(|e| DriverError::Io(config.out_dir.clone(), e))?;
    let mut written = Vec::new();
    for (fname, contents) in files {
        let path: PathBuf = Path::new(&config.out_dir).join(fname);
        std::fs::write(&path, contents).map_err(|e| DriverError::Io(path.clone(), e))?;
        written.push(path);
    }
    if config.report {
        print!("{report}");
    }
    Ok(written)
}

/// Usage text for `gmcc --help`.
#[must_use]
pub fn usage() -> &'static str {
    "gmcc — code generator for generalized matrix chains with symbolic sizes

USAGE:
    gmcc <input.gmc> [--out DIR] [--name IDENT] [--emit cpp|rust|both]
         [--expand K] [--train N] [--report]

The input file uses the grammar of Fig. 2 of the paper:

    Matrix A <General, Singular>;
    Matrix L <LowerTri, NonSingular>;
    X := A * L^-1;
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(extra: &[&str]) -> DriverConfig {
        let mut args: Vec<String> = vec!["in.gmc".into()];
        args.extend(extra.iter().map(|s| s.to_string()));
        parse_args(&args).unwrap()
    }

    const SRC: &str = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        Matrix B <General, Singular>;
        X := A * L^-1 * B;
    ";

    #[test]
    fn arg_parsing() {
        let c = cfg(&[
            "--emit", "both", "--expand", "2", "--name", "foo", "--report",
        ]);
        assert_eq!(c.emit, EmitKind::Both);
        assert_eq!(c.expand, 2);
        assert_eq!(c.name.as_deref(), Some("foo"));
        assert!(c.report);
        assert_eq!(c.input, PathBuf::from("in.gmc"));
    }

    #[test]
    fn missing_input_is_usage_error() {
        assert!(matches!(
            parse_args(&["--report".to_string()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(matches!(
            parse_args(&["in.gmc".into(), "--frobnicate".into()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn compiles_to_cpp_and_rust() {
        let c = cfg(&["--emit", "both", "--train", "100"]);
        let (files, report) = compile_source(SRC, &c).unwrap();
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x.cpp", "gmc_runtime.hpp", "x.rs"]);
        assert!(report.contains("variant 0"));
        assert!(files[0].1.contains("void x("));
        assert!(files[2].1.contains("pub fn x("));
    }

    #[test]
    fn parse_errors_are_reported() {
        let c = cfg(&[]);
        let err = compile_source("Matrix A <General, Singular>; X := B;", &c).unwrap_err();
        assert!(err.to_string().contains("undefined matrix"));
    }

    #[test]
    fn end_to_end_writes_files() {
        let dir = std::env::temp_dir().join("gmcc_test_out");
        let _ = std::fs::remove_dir_all(&dir);
        let input = dir.join("chain.gmc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&input, SRC).unwrap();
        let config = parse_args(&[
            input.to_string_lossy().into_owned(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--emit".into(),
            "cpp".into(),
            "--train".into(),
            "50".into(),
        ])
        .unwrap();
        let written = run(&config).unwrap();
        assert_eq!(written.len(), 2);
        assert!(written.iter().all(|p| p.exists()));
    }
}
