//! The `gmcc` compiler driver: the command-line face of the code
//! generator in Fig. 1. Parses `.gmc` programs, selects variants through
//! a [`CompileSession`], and emits C++ and/or Rust sources plus the
//! runtime header.
//!
//! The driver is batch-first: it accepts any number of input programs in
//! one invocation, compiles them all through shared session state
//! (repeated shapes hit the session cache), and with `--jobs N` splits
//! the batch across `N` worker threads, each with its own session. The
//! emitted artifacts are identical for every jobs value.

use gmc_codegen::{emit_cpp_into, emit_runtime_header, emit_rust_into};
use gmc_core::{CompileOptions, CompileSession, Objective};
use gmc_ir::grammar::parse_program;
use gmc_ir::Shape;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// What to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitKind {
    /// C++ translation unit + runtime header.
    Cpp,
    /// Rust module.
    Rust,
    /// Both back-ends.
    Both,
}

impl EmitKind {
    /// Parse an `--emit` value.
    ///
    /// # Errors
    ///
    /// Returns a [`DriverError`] for unknown values.
    pub fn parse(s: &str) -> Result<Self, DriverError> {
        match s {
            "cpp" => Ok(EmitKind::Cpp),
            "rust" => Ok(EmitKind::Rust),
            "both" => Ok(EmitKind::Both),
            other => Err(DriverError::Usage(format!(
                "unknown --emit value `{other}` (expected cpp, rust, or both)"
            ))),
        }
    }
}

/// Driver configuration, filled from command-line arguments.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Input `.gmc` files (one compiled chain each).
    pub inputs: Vec<PathBuf>,
    /// Output directory for emitted sources.
    pub out_dir: PathBuf,
    /// Base name of emitted functions/files (defaults to each program's
    /// left-hand-side identifier; only honored for a single input).
    pub name: Option<String>,
    /// Back-end(s) to emit.
    pub emit: EmitKind,
    /// Algorithm-1 expansion steps beyond the Theorem-2 base set.
    pub expand: usize,
    /// Training-instance count for selection.
    pub train: usize,
    /// Worker threads for batch compilation (each owns a session).
    pub jobs: usize,
    /// Print a human-readable variant report to stdout.
    pub report: bool,
}

/// Errors from the driver.
#[derive(Debug)]
pub enum DriverError {
    /// Bad command line.
    Usage(String),
    /// I/O failure (payload: path and cause).
    Io(PathBuf, std::io::Error),
    /// Parse or compilation failure.
    Compile(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Usage(msg) => write!(f, "usage error: {msg}"),
            DriverError::Io(path, e) => write!(f, "io error on {}: {e}", path.display()),
            DriverError::Compile(msg) => write!(f, "compile error: {msg}"),
        }
    }
}

impl Error for DriverError {}

/// Parse the `gmcc` command line (without the leading program name).
///
/// # Errors
///
/// Returns [`DriverError::Usage`] on malformed arguments.
pub fn parse_args(args: &[String]) -> Result<DriverConfig, DriverError> {
    let mut config = DriverConfig {
        inputs: Vec::new(),
        out_dir: PathBuf::from("."),
        name: None,
        emit: EmitKind::Cpp,
        expand: 0,
        train: 1000,
        jobs: 1,
        report: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                config.out_dir = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--out needs a directory".into()))?
                    .into();
            }
            "--name" => {
                config.name = Some(
                    it.next()
                        .ok_or_else(|| DriverError::Usage("--name needs a value".into()))?
                        .clone(),
                );
            }
            "--emit" => {
                let v = it
                    .next()
                    .ok_or_else(|| DriverError::Usage("--emit needs a value".into()))?;
                config.emit = EmitKind::parse(v)?;
            }
            "--expand" => {
                config.expand = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--expand needs an integer".into()))?;
            }
            "--train" => {
                config.train = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| DriverError::Usage("--train needs an integer".into()))?;
            }
            "--jobs" => {
                config.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j: &usize| j >= 1)
                    .ok_or_else(|| DriverError::Usage("--jobs needs a positive integer".into()))?;
            }
            "--report" => config.report = true,
            other if other.starts_with("--") => {
                return Err(DriverError::Usage(format!("unknown flag `{other}`")));
            }
            path => config.inputs.push(PathBuf::from(path)),
        }
    }
    if config.inputs.is_empty() {
        return Err(DriverError::Usage("missing input .gmc file".into()));
    }
    Ok(config)
}

/// One compiled program's artifacts: emitted `(file name, contents)`
/// pairs and the human-readable variant report.
pub type CompiledArtifacts = (Vec<(String, String)>, String);

fn compile_options(config: &DriverConfig) -> CompileOptions {
    CompileOptions {
        training_instances: config.train,
        expand_by: config.expand,
        objective: Objective::AvgPenalty,
        ..CompileOptions::default()
    }
}

/// Compile one named shape through `session` and emit its artifacts,
/// building into `buf` (reused across calls by batch workers).
fn compile_one(
    session: &mut CompileSession,
    buf: &mut String,
    shape: &Shape,
    name: &str,
    config: &DriverConfig,
) -> Result<CompiledArtifacts, DriverError> {
    let chain = session
        .compile(shape)
        .map_err(|e| DriverError::Compile(format!("{name}: {e}")))?;

    let mut files = Vec::new();
    if matches!(config.emit, EmitKind::Cpp | EmitKind::Both) {
        buf.clear();
        emit_cpp_into(buf, &chain, name);
        files.push((format!("{name}.cpp"), buf.clone()));
        files.push(("gmc_runtime.hpp".to_string(), emit_runtime_header()));
    }
    if matches!(config.emit, EmitKind::Rust | EmitKind::Both) {
        buf.clear();
        emit_rust_into(buf, &chain, name);
        files.push((format!("{name}.rs"), buf.clone()));
    }

    let mut report = format!(
        "chain {} (n = {}), {} size-symbol class(es), {} variant(s) selected\n",
        chain.shape(),
        chain.shape().len(),
        chain.shape().size_classes().num_classes(),
        chain.variants().len(),
    );
    for (i, v) in chain.variants().iter().enumerate() {
        report.push_str(&format!(
            "  variant {i}: {}  cost = {}\n",
            v.paren(),
            v.cost_poly()
        ));
    }
    Ok((files, report))
}

/// Compile a batch of `.gmc` sources, in input order, through shared
/// session state — or, with `config.jobs > 1`, across that many worker
/// threads, each owning its own [`CompileSession`]. Output artifacts are
/// identical for every jobs value (compilation is per-program
/// deterministic); only wall-clock changes.
///
/// Function/file names default to each program's left-hand side
/// (lowercased); `config.name` overrides it for a single-source batch,
/// and repeated names get `_2`, `_3`, ... suffixes so artifacts never
/// collide. The C++ runtime header is attached to the first C++-emitting
/// program only.
///
/// # Errors
///
/// Returns the first parse or compilation failure, tagged with the
/// program's name.
pub fn compile_batch(
    sources: &[String],
    config: &DriverConfig,
) -> Result<Vec<CompiledArtifacts>, DriverError> {
    // Parse everything first: names must be fixed (and deduplicated)
    // before emission, and parse errors should win over compile errors
    // regardless of worker scheduling.
    let mut work: Vec<(Shape, String)> = Vec::with_capacity(sources.len());
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    for source in sources {
        let program = parse_program(source).map_err(|e| DriverError::Compile(e.to_string()))?;
        let base = match (&config.name, sources.len()) {
            (Some(name), 1) => name.clone(),
            _ => program.lhs().to_lowercase(),
        };
        // Probe suffixes until free, against *final* names: `x, x_2` must
        // not collide with a literal `x_2` from another program.
        let mut name = base.clone();
        let mut k = 1usize;
        while !used.insert(name.clone()) {
            k += 1;
            name = format!("{base}_{k}");
        }
        work.push((program.shape().clone(), name));
    }

    let jobs = config.jobs.min(work.len()).max(1);
    let options = compile_options(config);
    let mut results: Vec<Option<Result<CompiledArtifacts, DriverError>>> =
        (0..work.len()).map(|_| None).collect();
    if jobs > 1 {
        let chunk = work.len().div_ceil(jobs);
        let options = &options;
        let config_ref = config;
        std::thread::scope(|s| {
            for (wchunk, rchunk) in work.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move || {
                    let mut session = CompileSession::with_options(options.clone());
                    let mut buf = String::new();
                    for ((shape, name), slot) in wchunk.iter().zip(rchunk.iter_mut()) {
                        *slot = Some(compile_one(&mut session, &mut buf, shape, name, config_ref));
                    }
                });
            }
        });
    } else {
        let mut session = CompileSession::with_options(options);
        let mut buf = String::new();
        for ((shape, name), slot) in work.iter().zip(results.iter_mut()) {
            *slot = Some(compile_one(&mut session, &mut buf, shape, name, config));
        }
    }

    let mut items: Vec<CompiledArtifacts> = results
        .into_iter()
        .map(|r| r.expect("every program compiled"))
        .collect::<Result<_, _>>()?;
    // The runtime header is a constant: keep only the first copy.
    let mut header_seen = false;
    for (files, _) in &mut items {
        files.retain(|(fname, _)| {
            if fname == "gmc_runtime.hpp" {
                if header_seen {
                    return false;
                }
                header_seen = true;
            }
            true
        });
    }
    Ok(items)
}

/// Compile one `.gmc` source string and return the emitted artifacts as
/// `(file name, contents)` pairs plus the human-readable report.
///
/// # Errors
///
/// Returns [`DriverError::Compile`] on parse or selection failure.
pub fn compile_source(
    source: &str,
    config: &DriverConfig,
) -> Result<CompiledArtifacts, DriverError> {
    let mut items = compile_batch(std::slice::from_ref(&source.to_string()), config)?;
    Ok(items.remove(0))
}

/// Run the driver end to end: read the inputs, compile the batch, write
/// artifacts.
///
/// # Errors
///
/// Propagates I/O and compilation failures.
pub fn run(config: &DriverConfig) -> Result<Vec<PathBuf>, DriverError> {
    let sources: Vec<String> = config
        .inputs
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| DriverError::Io(p.clone(), e)))
        .collect::<Result<_, _>>()?;
    let items = compile_batch(&sources, config)?;
    std::fs::create_dir_all(&config.out_dir)
        .map_err(|e| DriverError::Io(config.out_dir.clone(), e))?;
    let mut written = Vec::new();
    for (files, report) in items {
        for (fname, contents) in files {
            let path: PathBuf = Path::new(&config.out_dir).join(fname);
            std::fs::write(&path, contents).map_err(|e| DriverError::Io(path.clone(), e))?;
            written.push(path);
        }
        if config.report {
            print!("{report}");
        }
    }
    Ok(written)
}

/// Usage text for `gmcc --help`.
#[must_use]
pub fn usage() -> &'static str {
    "gmcc — code generator for generalized matrix chains with symbolic sizes

USAGE:
    gmcc <input.gmc>... [--out DIR] [--name IDENT] [--emit cpp|rust|both]
         [--expand K] [--train N] [--jobs N] [--report]

Multiple inputs compile as one batch ( --jobs N splits it across N
worker threads; artifacts are identical for every N). Each input file
uses the grammar of Fig. 2 of the paper:

    Matrix A <General, Singular>;
    Matrix L <LowerTri, NonSingular>;
    X := A * L^-1;
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(extra: &[&str]) -> DriverConfig {
        let mut args: Vec<String> = vec!["in.gmc".into()];
        args.extend(extra.iter().map(|s| s.to_string()));
        parse_args(&args).unwrap()
    }

    const SRC: &str = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        Matrix B <General, Singular>;
        X := A * L^-1 * B;
    ";

    const SRC2: &str = "
        Matrix H <General, Singular>;
        Matrix P <Symmetric, SPD>;
        Y := H * P^-1;
    ";

    #[test]
    fn arg_parsing() {
        let c = cfg(&[
            "--emit", "both", "--expand", "2", "--name", "foo", "--report", "--jobs", "3",
        ]);
        assert_eq!(c.emit, EmitKind::Both);
        assert_eq!(c.expand, 2);
        assert_eq!(c.name.as_deref(), Some("foo"));
        assert_eq!(c.jobs, 3);
        assert!(c.report);
        assert_eq!(c.inputs, vec![PathBuf::from("in.gmc")]);
    }

    #[test]
    fn multiple_inputs_accepted() {
        let c = parse_args(&["a.gmc".into(), "b.gmc".into(), "c.gmc".into()]).unwrap();
        assert_eq!(c.inputs.len(), 3);
    }

    #[test]
    fn missing_input_is_usage_error() {
        assert!(matches!(
            parse_args(&["--report".to_string()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn bad_jobs_rejected() {
        assert!(matches!(
            parse_args(&["in.gmc".into(), "--jobs".into(), "0".into()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(matches!(
            parse_args(&["in.gmc".into(), "--frobnicate".into()]),
            Err(DriverError::Usage(_))
        ));
    }

    #[test]
    fn compiles_to_cpp_and_rust() {
        let c = cfg(&["--emit", "both", "--train", "100"]);
        let (files, report) = compile_source(SRC, &c).unwrap();
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x.cpp", "gmc_runtime.hpp", "x.rs"]);
        assert!(report.contains("variant 0"));
        assert!(files[0].1.contains("void x("));
        assert!(files[2].1.contains("pub fn x("));
    }

    #[test]
    fn parse_errors_are_reported() {
        let c = cfg(&[]);
        let err = compile_source("Matrix A <General, Singular>; X := B;", &c).unwrap_err();
        assert!(err.to_string().contains("undefined matrix"));
    }

    #[test]
    fn batch_compiles_multiple_programs() {
        let c = cfg(&["--emit", "cpp", "--train", "50"]);
        let sources = vec![SRC.to_string(), SRC2.to_string()];
        let items = compile_batch(&sources, &c).unwrap();
        assert_eq!(items.len(), 2);
        let names0: Vec<&str> = items[0].0.iter().map(|(n, _)| n.as_str()).collect();
        let names1: Vec<&str> = items[1].0.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names0, vec!["x.cpp", "gmc_runtime.hpp"]);
        assert_eq!(names1, vec!["y.cpp"], "runtime header emitted once");
    }

    #[test]
    fn batch_jobs_produce_identical_artifacts() {
        let serial = cfg(&["--emit", "both", "--train", "60"]);
        let mut parallel = serial.clone();
        parallel.jobs = 3;
        let sources = vec![
            SRC.to_string(),
            SRC2.to_string(),
            SRC.to_string(), // repeat: name must uniquify to x_2
        ];
        let a = compile_batch(&sources, &serial).unwrap();
        let b = compile_batch(&sources, &parallel).unwrap();
        assert_eq!(a.len(), b.len());
        for ((fa, ra), (fb, rb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(ra, rb);
        }
        let last: Vec<&str> = a[2].0.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(last, vec!["x_2.cpp", "x_2.rs"]);
    }

    #[test]
    fn name_uniquification_avoids_literal_suffix_collisions() {
        // Two programs named X plus one literally named X_2: the second X
        // must skip past the taken x_2 to x_3.
        let src_x2 = "
            Matrix H <General, Singular>;
            Matrix P <Symmetric, SPD>;
            X_2 := H * P^-1;
        ";
        let c = cfg(&["--emit", "rust", "--train", "40"]);
        let sources = vec![SRC.to_string(), src_x2.to_string(), SRC.to_string()];
        let items = compile_batch(&sources, &c).unwrap();
        let names: Vec<&str> = items
            .iter()
            .flat_map(|(files, _)| files.iter().map(|(n, _)| n.as_str()))
            .collect();
        assert_eq!(names, vec!["x.rs", "x_2.rs", "x_3.rs"]);
    }

    #[test]
    fn end_to_end_writes_files() {
        let dir = std::env::temp_dir().join("gmcc_test_out");
        let _ = std::fs::remove_dir_all(&dir);
        let input = dir.join("chain.gmc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&input, SRC).unwrap();
        let config = parse_args(&[
            input.to_string_lossy().into_owned(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--emit".into(),
            "cpp".into(),
            "--train".into(),
            "50".into(),
        ])
        .unwrap();
        let written = run(&config).unwrap();
        assert_eq!(written.len(), 2);
        assert!(written.iter().all(|p| p.exists()));
    }

    #[test]
    fn end_to_end_batch_with_jobs() {
        let dir = std::env::temp_dir().join("gmcc_test_out_batch");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let in1 = dir.join("one.gmc");
        let in2 = dir.join("two.gmc");
        std::fs::write(&in1, SRC).unwrap();
        std::fs::write(&in2, SRC2).unwrap();
        let config = parse_args(&[
            in1.to_string_lossy().into_owned(),
            in2.to_string_lossy().into_owned(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--emit".into(),
            "both".into(),
            "--train".into(),
            "50".into(),
            "--jobs".into(),
            "2".into(),
        ])
        .unwrap();
        let written = run(&config).unwrap();
        // x.cpp, gmc_runtime.hpp, x.rs, y.cpp, y.rs
        assert_eq!(written.len(), 5);
        assert!(written.iter().all(|p| p.exists()));
    }
}
