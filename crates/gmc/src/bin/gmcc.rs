//! `gmcc` — the command-line code generator (Fig. 1 of the paper).
//!
//! ```text
//! gmcc chain.gmc --emit both --out generated/ --expand 1 --report
//! gmcc a.gmc b.gmc c.gmc --jobs 4 --out generated/   # batch mode
//! ```

use gmc::driver::{parse_args, run, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gmcc: {e}");
            eprint!("{}", usage());
            std::process::exit(2);
        }
    };
    match run(&config) {
        Ok(written) => {
            for path in written {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => {
            eprintln!("gmcc: {e}");
            std::process::exit(1);
        }
    }
}
