//! `gmcc` — the command-line code generator (Fig. 1 of the paper).
//!
//! ```text
//! gmcc chain.gmc --emit both --out generated/ --expand 1 --report
//! gmcc a.gmc b.gmc c.gmc --jobs 4 --out generated/   # batch mode
//! gmcc --serve - --jobs 4 --persist cache.snap       # JSONL daemon
//! ```

use gmc::driver::{parse_args, run, run_connect, run_serve, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gmcc: {e}");
            eprint!("{}", usage());
            std::process::exit(2);
        }
    };
    if config.connect.is_some() {
        // Client mode: pipeline request lines to a listening daemon and
        // print its response lines; in-band failures don't change the
        // exit code (they're the daemon's answers, faithfully relayed).
        match run_connect(&config) {
            Ok(_) => {}
            Err(e) => {
                eprintln!("gmcc: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if config.serve.is_some() || config.listen.is_some() {
        // Request-level failures are reported in-band as `"ok":false`
        // lines; only transport/snapshot problems are fatal.
        match run_serve(&config) {
            Ok(_) => {}
            Err(e) => {
                eprintln!("gmcc: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match run(&config) {
        Ok(outcome) => {
            for path in &outcome.written {
                println!("wrote {}", path.display());
            }
            for (input, e) in &outcome.failures {
                eprintln!("gmcc: {}: {e}", input.display());
            }
            if !outcome.failures.is_empty() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("gmcc: {e}");
            std::process::exit(1);
        }
    }
}
