//! Property-based tests for the IR crate: algebraic laws of the exact
//! rational and polynomial types, sampler invariants, and grammar
//! round-trips.

use gmc_ir::emit::emit_program;
use gmc_ir::grammar::parse_program;
use gmc_ir::{EquivClasses, Instance, InstanceSampler, Operand, Poly, Ratio, Shape};
use proptest::prelude::*;

fn arb_ratio() -> impl Strategy<Value = Ratio> {
    (-1000i64..1000, 1i64..100).prop_map(|(n, d)| Ratio::new(n.into(), d.into()))
}

fn arb_poly() -> impl Strategy<Value = Poly> {
    proptest::collection::vec(
        (
            arb_ratio(),
            proptest::collection::vec((0usize..4, 1u32..3), 0..3),
        ),
        0..5,
    )
    .prop_map(|terms| {
        let mut p = Poly::zero();
        for (c, factors) in terms {
            p += &Poly::term(c, &factors);
        }
        p
    })
}

fn arb_point() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..60, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- Ratio: field laws ---

    #[test]
    fn ratio_addition_commutes(a in arb_ratio(), b in arb_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn ratio_multiplication_associates(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn ratio_distributes(a in arb_ratio(), b in arb_ratio(), c in arb_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_subtraction_inverts_addition(a in arb_ratio(), b in arb_ratio()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn ratio_division_inverts_multiplication(a in arb_ratio(), b in arb_ratio()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn ratio_ordering_agrees_with_f64(a in arb_ratio(), b in arb_ratio()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    // --- Poly: ring laws and evaluation homomorphism ---

    #[test]
    fn poly_addition_commutes(a in arb_poly(), b in arb_poly()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn poly_multiplication_commutes(a in arb_poly(), b in arb_poly()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn poly_eval_is_additive(a in arb_poly(), b in arb_poly(), q in arb_point()) {
        let lhs = (&a + &b).eval(&q);
        let rhs = a.eval(&q) + b.eval(&q);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn poly_eval_is_multiplicative(a in arb_poly(), b in arb_poly(), q in arb_point()) {
        let lhs = (&a * &b).eval(&q);
        let rhs = a.eval(&q) * b.eval(&q);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn poly_rename_preserves_eval_under_equal_values(a in arb_poly(), v in 1u64..60) {
        // Renaming all variables to variable 0 must agree with evaluating
        // on a constant vector.
        let renamed = a.rename_vars(&[0, 0, 0, 0]);
        let q = vec![v; 4];
        let lhs = renamed.eval(&q);
        let rhs = a.eval(&q);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs.abs()));
    }

    // --- Instances and classes ---

    #[test]
    fn sampler_respects_classes(op_codes in proptest::collection::vec(0usize..10, 2..7), seed in 0u64..1000) {
        let options = Operand::experiment_options();
        let ops: Vec<Operand> = op_codes.iter().map(|&i| options[i]).collect();
        let shape = Shape::new(ops).unwrap();
        let sampler = InstanceSampler::new(&shape, 2, 500);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let inst: Instance = sampler.sample(&mut rng);
        prop_assert!(inst.respects(&shape.size_classes()));
    }

    #[test]
    fn union_find_partitions(pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..10)) {
        let mut c = EquivClasses::new(8);
        for (a, b) in pairs {
            c.union(a, b);
        }
        // classes() is a partition: disjoint, covering, sorted.
        let classes = c.classes();
        let mut seen = [false; 8];
        for class in &classes {
            for &m in class {
                prop_assert!(!seen[m]);
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(classes.len(), c.num_classes());
    }

    // --- Grammar round-trip ---

    // --- Parser robustness: never panics, whatever the input ---

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse_program(&src);
    }

    #[test]
    fn parser_never_panics_on_grammar_like_input(
        parts in proptest::collection::vec(
            proptest::sample::select(vec![
                "Matrix", "A", "B", "<", ">", ",", ";", "*", ":=", "^T", "^-1", "^-T",
                "General", "Symmetric", "LowerTri", "UpperTri",
                "Singular", "NonSingular", "SPD", "Orthogonal", "X", " ", "\n",
            ]),
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_program(&src);
    }

    #[test]
    fn emit_parse_round_trip(op_codes in proptest::collection::vec(0usize..10, 1..8)) {
        let options = Operand::experiment_options();
        let ops: Vec<Operand> = op_codes.iter().map(|&i| options[i]).collect();
        let shape = Shape::new(ops).unwrap();
        let src = emit_program(&shape, "X");
        let program = parse_program(&src).unwrap();
        prop_assert_eq!(program.shape(), &shape);
    }
}
