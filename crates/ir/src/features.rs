//! Matrix features: structures and properties (Sec. III-A of the paper).
//!
//! The *structure* reflects how entries are arranged in memory; the
//! *property* determines invertibility and which kernels may solve linear
//! systems with the matrix as coefficient.

use std::fmt;

/// How the entries of a matrix are arranged.
///
/// All structures except [`Structure::General`] imply the matrix is square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Structure {
    /// A dense rectangular matrix.
    General,
    /// A symmetric matrix (stored dense).
    Symmetric,
    /// A lower-triangular matrix.
    LowerTri,
    /// An upper-triangular matrix.
    UpperTri,
}

impl Structure {
    /// The structure of the transpose.
    #[must_use]
    pub fn transposed(self) -> Structure {
        match self {
            Structure::LowerTri => Structure::UpperTri,
            Structure::UpperTri => Structure::LowerTri,
            other => other,
        }
    }

    /// `true` for lower- or upper-triangular.
    #[must_use]
    pub fn is_triangular(self) -> bool {
        matches!(self, Structure::LowerTri | Structure::UpperTri)
    }

    /// `true` if this structure forces the matrix to be square.
    #[must_use]
    pub fn forces_square(self) -> bool {
        self != Structure::General
    }

    /// All structures, for enumeration in tests and the experiment driver.
    pub const ALL: [Structure; 4] = [
        Structure::General,
        Structure::Symmetric,
        Structure::LowerTri,
        Structure::UpperTri,
    ];
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Structure::General => "General",
            Structure::Symmetric => "Symmetric",
            Structure::LowerTri => "LowerTri",
            Structure::UpperTri => "UpperTri",
        };
        write!(f, "{s}")
    }
}

/// Whether (and how) a matrix is invertible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Property {
    /// No invertibility assumption; the matrix may be rectangular.
    Singular,
    /// Invertible (and hence square).
    NonSingular,
    /// Symmetric positive-definite (implies the symmetric structure).
    Spd,
    /// Orthogonal: `M^{-1} = M^T`.
    Orthogonal,
}

impl Property {
    /// `true` if the property guarantees invertibility.
    #[must_use]
    pub fn is_invertible(self) -> bool {
        !matches!(self, Property::Singular)
    }

    /// `true` if this property forces the matrix to be square.
    #[must_use]
    pub fn forces_square(self) -> bool {
        self.is_invertible()
    }

    /// All properties, for enumeration in tests and the experiment driver.
    pub const ALL: [Property; 4] = [
        Property::Singular,
        Property::NonSingular,
        Property::Spd,
        Property::Orthogonal,
    ];
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::Singular => "Singular",
            Property::NonSingular => "NonSingular",
            Property::Spd => "SPD",
            Property::Orthogonal => "Orthogonal",
        };
        write!(f, "{s}")
    }
}

/// The feature pair (structure, property) carried by a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Features {
    /// Memory arrangement of the entries.
    pub structure: Structure,
    /// Invertibility class.
    pub property: Property,
}

impl Features {
    /// Create a feature pair.
    #[must_use]
    pub fn new(structure: Structure, property: Property) -> Self {
        Features {
            structure,
            property,
        }
    }

    /// Shorthand for a general matrix with no invertibility assumption.
    #[must_use]
    pub fn general() -> Self {
        Features::new(Structure::General, Property::Singular)
    }

    /// Validity per Sec. III-A: some combinations of structure and property
    /// are contradictory.
    ///
    /// * `SPD` requires the symmetric structure (the paper: "the general
    ///   structure cannot be combined with the symmetric positive-definite
    ///   property").
    /// * A triangular orthogonal matrix is a (signed) identity; the paper
    ///   rewrites it away, so as a *stored feature pair* it is flagged
    ///   invalid here and handled by [`crate::rewrite`].
    #[must_use]
    pub fn is_valid(self) -> bool {
        match self.property {
            Property::Spd => self.structure == Structure::Symmetric,
            Property::Orthogonal => self.structure == Structure::General,
            _ => true,
        }
    }

    /// `true` if a matrix with these features must be square.
    #[must_use]
    pub fn forces_square(self) -> bool {
        self.structure.forces_square() || self.property.forces_square()
    }

    /// Features of the transpose: structure flips triangularity; the
    /// property is preserved (orthogonality, SPD-ness, and invertibility are
    /// all closed under transposition).
    #[must_use]
    pub fn transposed(self) -> Features {
        Features::new(self.structure.transposed(), self.property)
    }

    /// Features of the inverse, when it exists: triangularity and symmetry
    /// are preserved by inversion, as are SPD-ness and orthogonality.
    ///
    /// Returns `None` if the matrix is not known to be invertible.
    #[must_use]
    pub fn inverted(self) -> Option<Features> {
        if self.property.is_invertible() {
            Some(self)
        } else {
            None
        }
    }
}

impl fmt::Display for Features {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.structure, self.property)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposition_flips_triangularity() {
        assert_eq!(Structure::LowerTri.transposed(), Structure::UpperTri);
        assert_eq!(Structure::UpperTri.transposed(), Structure::LowerTri);
        assert_eq!(Structure::General.transposed(), Structure::General);
        assert_eq!(Structure::Symmetric.transposed(), Structure::Symmetric);
    }

    #[test]
    fn squareness_rules() {
        assert!(!Features::general().forces_square());
        assert!(Features::new(Structure::Symmetric, Property::Singular).forces_square());
        assert!(Features::new(Structure::General, Property::NonSingular).forces_square());
        assert!(Features::new(Structure::General, Property::Orthogonal).forces_square());
    }

    #[test]
    fn validity_rules() {
        assert!(Features::new(Structure::Symmetric, Property::Spd).is_valid());
        assert!(!Features::new(Structure::General, Property::Spd).is_valid());
        assert!(!Features::new(Structure::LowerTri, Property::Spd).is_valid());
        assert!(!Features::new(Structure::LowerTri, Property::Orthogonal).is_valid());
        assert!(!Features::new(Structure::Symmetric, Property::Orthogonal).is_valid());
        assert!(Features::new(Structure::General, Property::Orthogonal).is_valid());
        for s in Structure::ALL {
            assert!(Features::new(s, Property::Singular).is_valid());
            assert!(Features::new(s, Property::NonSingular).is_valid());
        }
    }

    #[test]
    fn inversion_requires_invertibility() {
        assert!(Features::general().inverted().is_none());
        let l = Features::new(Structure::LowerTri, Property::NonSingular);
        assert_eq!(l.inverted(), Some(l));
    }

    #[test]
    fn transpose_preserves_property() {
        let f = Features::new(Structure::LowerTri, Property::NonSingular);
        let t = f.transposed();
        assert_eq!(t.structure, Structure::UpperTri);
        assert_eq!(t.property, Property::NonSingular);
    }

    #[test]
    fn display_is_grammar_like() {
        let f = Features::new(Structure::Symmetric, Property::Spd);
        assert_eq!(f.to_string(), "<Symmetric, SPD>");
    }
}
