//! Input simplification rewrites (Sec. III-A of the paper).
//!
//! Before a shape is formed, some feature/operator combinations are
//! normalized:
//!
//! 1. a transposition applied to a matrix with the symmetric structure is
//!    removed (`S^T = S`);
//! 2. an inversion applied to an orthogonal matrix is replaced by a
//!    transposition (`Q^{-1} = Q^T`);
//! 3. a matrix whose features imply it is an identity matrix (triangular
//!    structure combined with the orthogonal property) is removed from the
//!    chain entirely.

use crate::features::Property;
use crate::operand::Operand;
use std::fmt;

/// A record of one applied rewrite, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// `S^T -> S` at the original operand position.
    DropTransposeOfSymmetric(usize),
    /// `Q^{-1} -> Q^T` at the original operand position.
    InverseOfOrthogonalToTranspose(usize),
    /// A triangular-orthogonal (identity) matrix was removed.
    RemoveIdentity(usize),
}

impl fmt::Display for Rewrite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rewrite::DropTransposeOfSymmetric(i) => {
                write!(f, "operand {i}: removed transpose of symmetric matrix")
            }
            Rewrite::InverseOfOrthogonalToTranspose(i) => {
                write!(
                    f,
                    "operand {i}: rewrote inverse of orthogonal matrix to transpose"
                )
            }
            Rewrite::RemoveIdentity(i) => {
                write!(
                    f,
                    "operand {i}: removed identity (triangular orthogonal) matrix"
                )
            }
        }
    }
}

/// Apply all simplification rewrites to an operand list.
///
/// Returns the simplified operands together with the rewrites applied (with
/// indices referring to the *original* positions).
///
/// Note the resulting list can be empty if every operand simplified away
/// (a chain of identity matrices); callers should handle that case.
#[must_use]
pub fn simplify(operands: &[Operand]) -> (Vec<Operand>, Vec<Rewrite>) {
    let mut out = Vec::with_capacity(operands.len());
    let mut log = Vec::new();
    for (i, &op) in operands.iter().enumerate() {
        let mut op = op;
        // Rule 3: triangular structure + orthogonal property = identity.
        if op.features.property == Property::Orthogonal && op.features.structure.is_triangular() {
            log.push(Rewrite::RemoveIdentity(i));
            continue;
        }
        // Rule 2: inversion of an orthogonal matrix becomes transposition.
        if op.inverted && op.features.property == Property::Orthogonal {
            op.inverted = false;
            op.transposed = !op.transposed;
            log.push(Rewrite::InverseOfOrthogonalToTranspose(i));
        }
        // Rule 1: transposition of a symmetric matrix is a no-op.
        if op.transposed && op.features.structure == crate::features::Structure::Symmetric {
            op.transposed = false;
            log.push(Rewrite::DropTransposeOfSymmetric(i));
        }
        out.push(op);
    }
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{Features, Property, Structure};

    fn q() -> Operand {
        Operand::plain(Features::new(Structure::General, Property::Orthogonal))
    }

    fn s() -> Operand {
        Operand::plain(Features::new(Structure::Symmetric, Property::Spd))
    }

    #[test]
    fn transpose_of_symmetric_removed() {
        let (ops, log) = simplify(&[s().transposed()]);
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].transposed);
        assert_eq!(log, vec![Rewrite::DropTransposeOfSymmetric(0)]);
    }

    #[test]
    fn inverse_of_orthogonal_becomes_transpose() {
        let (ops, log) = simplify(&[q().inverted()]);
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].inverted);
        assert!(ops[0].transposed);
        assert_eq!(log, vec![Rewrite::InverseOfOrthogonalToTranspose(0)]);
    }

    #[test]
    fn inverse_transpose_of_orthogonal_becomes_plain() {
        let (ops, _) = simplify(&[q().inverted().transposed()]);
        assert!(!ops[0].inverted);
        assert!(!ops[0].transposed);
    }

    #[test]
    fn identity_matrices_removed() {
        // A lower-triangular orthogonal matrix is the identity (up to signs).
        let ident = Operand {
            features: Features {
                structure: Structure::LowerTri,
                property: Property::Orthogonal,
            },
            transposed: false,
            inverted: false,
        };
        let g = Operand::plain(Features::general());
        let (ops, log) = simplify(&[g, ident, g]);
        assert_eq!(ops.len(), 2);
        assert_eq!(log, vec![Rewrite::RemoveIdentity(1)]);
    }

    #[test]
    fn plain_operands_untouched() {
        let g = Operand::plain(Features::general());
        let (ops, log) = simplify(&[g, g.transposed()]);
        assert_eq!(ops.len(), 2);
        assert!(ops[1].transposed);
        assert!(log.is_empty());
    }

    #[test]
    fn all_identity_chain_empties() {
        let ident = Operand {
            features: Features {
                structure: Structure::UpperTri,
                property: Property::Orthogonal,
            },
            transposed: false,
            inverted: false,
        };
        let (ops, log) = simplify(&[ident, ident]);
        assert!(ops.is_empty());
        assert_eq!(log.len(), 2);
    }
}
