//! The code generator's input language (Fig. 2 of the paper).
//!
//! ```text
//! program     -> definitions expression
//! definitions -> definition+
//! definition  -> "Matrix" ident "<" structure "," property ">" ";"
//! structure   -> "General" | "Symmetric" | "LowerTri" | "UpperTri"
//! property    -> "Singular" | "NonSingular" | "SPD" | "Orthogonal"
//! expression  -> ident ":=" operand ("*" operand)+ ";"
//! operand     -> ident | ident "^T" | ident "^-1" | ident "^-T"
//! ident       -> [A-Za-z][A-Za-z0-9_]*
//! ```
//!
//! # Example
//!
//! ```
//! use gmc_ir::grammar::parse_program;
//! let program = parse_program("
//!     Matrix G1 <General, Singular>;
//!     Matrix L  <LowerTri, NonSingular>;
//!     Matrix G2 <General, Singular>;
//!     X := G1 * L^-1 * G2^T;
//! ")?;
//! assert_eq!(program.lhs(), "X");
//! assert_eq!(program.shape().len(), 3);
//! # Ok::<(), gmc_ir::grammar::ParseError>(())
//! ```

use crate::features::{Features, Property, Structure};
use crate::operand::Operand;
use crate::rewrite::{simplify, Rewrite};
use crate::shape::{Shape, ShapeError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parsed (and simplified) GMC program.
#[derive(Debug, Clone)]
pub struct Program {
    lhs: String,
    names: Vec<String>,
    shape: Shape,
    rewrites: Vec<Rewrite>,
}

impl Program {
    /// Name of the assigned result.
    #[must_use]
    pub fn lhs(&self) -> &str {
        &self.lhs
    }

    /// Names of the chain operands after simplification, in order.
    #[must_use]
    pub fn operand_names(&self) -> &[String] {
        &self.names
    }

    /// The chain's shape after simplification rewrites.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The simplification rewrites that were applied while parsing.
    #[must_use]
    pub fn rewrites(&self) -> &[Rewrite] {
        &self.rewrites
    }
}

/// Errors reported by [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character at byte offset.
    UnexpectedChar(char, usize),
    /// Unexpected token: `(found, expected)`.
    UnexpectedToken(String, String),
    /// Premature end of input; payload describes what was expected.
    UnexpectedEnd(String),
    /// An operand references an undefined matrix name.
    UndefinedMatrix(String),
    /// The same matrix name was defined twice.
    DuplicateDefinition(String),
    /// An unknown structure keyword.
    UnknownStructure(String),
    /// An unknown property keyword.
    UnknownProperty(String),
    /// The chain was invalid as a shape (e.g. inverting a singular matrix).
    Shape(ShapeError),
    /// Every operand simplified away (a chain of identity matrices).
    EmptyAfterSimplification,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar(c, pos) => {
                write!(f, "unexpected character {c:?} at byte {pos}")
            }
            ParseError::UnexpectedToken(found, expected) => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseError::UnexpectedEnd(expected) => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::UndefinedMatrix(name) => write!(f, "undefined matrix `{name}`"),
            ParseError::DuplicateDefinition(name) => {
                write!(f, "matrix `{name}` defined more than once")
            }
            ParseError::UnknownStructure(s) => write!(f, "unknown structure `{s}`"),
            ParseError::UnknownProperty(s) => write!(f, "unknown property `{s}`"),
            ParseError::Shape(e) => write!(f, "invalid chain: {e}"),
            ParseError::EmptyAfterSimplification => {
                write!(f, "chain simplified to the identity (no operands left)")
            }
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for ParseError {
    fn from(e: ShapeError) -> Self {
        ParseError::Shape(e)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Less,
    Greater,
    Comma,
    Semi,
    Star,
    Assign,  // :=
    SupT,    // ^T
    SupInv,  // ^-1
    SupInvT, // ^-T
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Less => write!(f, "`<`"),
            Token::Greater => write!(f, "`>`"),
            Token::Comma => write!(f, "`,`"),
            Token::Semi => write!(f, "`;`"),
            Token::Star => write!(f, "`*`"),
            Token::Assign => write!(f, "`:=`"),
            Token::SupT => write!(f, "`^T`"),
            Token::SupInv => write!(f, "`^-1`"),
            Token::SupInvT => write!(f, "`^-T`"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                // Comment until end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '<' => {
                tokens.push(Token::Less);
                i += 1;
            }
            '>' => {
                tokens.push(Token::Greater);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Assign);
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar(':', i));
                }
            }
            '^' => {
                let rest = &src[i + 1..];
                if rest.starts_with("-T") {
                    tokens.push(Token::SupInvT);
                    i += 3;
                } else if rest.starts_with("-1") {
                    tokens.push(Token::SupInv);
                    i += 3;
                } else if rest.starts_with('T') {
                    tokens.push(Token::SupT);
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar('^', i));
                }
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => return Err(ParseError::UnexpectedChar(other, i)),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &str) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError::UnexpectedEnd(expected.to_string()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Token, expected: &str) -> Result<(), ParseError> {
        let t = self.next(expected)?;
        if &t == want {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken(
                t.to_string(),
                expected.to_string(),
            ))
        }
    }

    fn ident(&mut self, expected: &str) -> Result<String, ParseError> {
        match self.next(expected)? {
            Token::Ident(s) => Ok(s),
            t => Err(ParseError::UnexpectedToken(
                t.to_string(),
                expected.to_string(),
            )),
        }
    }
}

fn parse_structure(s: &str) -> Result<Structure, ParseError> {
    match s {
        "General" => Ok(Structure::General),
        "Symmetric" => Ok(Structure::Symmetric),
        "LowerTri" => Ok(Structure::LowerTri),
        "UpperTri" => Ok(Structure::UpperTri),
        other => Err(ParseError::UnknownStructure(other.to_string())),
    }
}

fn parse_property(s: &str) -> Result<Property, ParseError> {
    match s {
        "Singular" => Ok(Property::Singular),
        "NonSingular" => Ok(Property::NonSingular),
        "SPD" => Ok(Property::Spd),
        "Orthogonal" => Ok(Property::Orthogonal),
        other => Err(ParseError::UnknownProperty(other.to_string())),
    }
}

/// Parse a GMC program written in the grammar of Fig. 2, applying the
/// simplification rewrites of Sec. III-A.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical, syntactic, or
/// semantic (undefined name, invalid features) problem encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };

    // definitions
    let mut defs: HashMap<String, Features> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    loop {
        match p.peek() {
            Some(Token::Ident(kw)) if kw == "Matrix" => {
                p.pos += 1;
                let name = p.ident("matrix name")?;
                p.expect(&Token::Less, "`<`")?;
                let st = parse_structure(&p.ident("structure")?)?;
                p.expect(&Token::Comma, "`,`")?;
                let pr = parse_property(&p.ident("property")?)?;
                p.expect(&Token::Greater, "`>`")?;
                p.expect(&Token::Semi, "`;`")?;
                if defs.insert(name.clone(), Features::new(st, pr)).is_some() {
                    return Err(ParseError::DuplicateDefinition(name));
                }
                order.push(name);
            }
            _ => break,
        }
    }

    // expression: lhs := operand (* operand)+ ;
    let lhs = p.ident("left-hand side identifier")?;
    p.expect(&Token::Assign, "`:=`")?;
    let mut names: Vec<String> = Vec::new();
    let mut operands: Vec<Operand> = Vec::new();
    loop {
        let name = p.ident("operand identifier")?;
        let features = *defs
            .get(&name)
            .ok_or_else(|| ParseError::UndefinedMatrix(name.clone()))?;
        let mut op = Operand::plain(features);
        match p.peek() {
            Some(Token::SupT) => {
                op.transposed = true;
                p.pos += 1;
            }
            Some(Token::SupInv) => {
                op.inverted = true;
                p.pos += 1;
            }
            Some(Token::SupInvT) => {
                op.transposed = true;
                op.inverted = true;
                p.pos += 1;
            }
            _ => {}
        }
        names.push(name);
        operands.push(op);
        match p.next("`*` or `;`")? {
            Token::Star => continue,
            Token::Semi => break,
            t => {
                return Err(ParseError::UnexpectedToken(
                    t.to_string(),
                    "`*` or `;`".into(),
                ))
            }
        }
    }

    // Validate raw operands (e.g. inversion of a singular matrix) before
    // simplification, so user errors are reported on the input as written.
    for (index, &operand) in operands.iter().enumerate() {
        let valid_pre = operand.features.is_valid()
            && (!operand.inverted || operand.features.property.is_invertible());
        if !valid_pre {
            // Triangular-orthogonal (identity) operands are legal input; they
            // simplify away below. Everything else is an error.
            let is_identity = operand.features.property == Property::Orthogonal
                && operand.features.structure.is_triangular();
            if !is_identity {
                return Err(ParseError::Shape(ShapeError::InvalidOperand {
                    index,
                    operand,
                }));
            }
        }
    }

    let (simplified, rewrites) = simplify(&operands);
    // Track which names survive.
    let removed: Vec<usize> = rewrites
        .iter()
        .filter_map(|r| match r {
            Rewrite::RemoveIdentity(i) => Some(*i),
            _ => None,
        })
        .collect();
    let surviving_names: Vec<String> = names
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed.contains(i))
        .map(|(_, n)| n.clone())
        .collect();

    if simplified.is_empty() {
        return Err(ParseError::EmptyAfterSimplification);
    }
    let shape = Shape::new(simplified)?;
    Ok(Program {
        lhs,
        names: surviving_names,
        shape,
        rewrites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const KALMAN: &str = "
        # the ensemble Kalman filter chain G1 G2 G3^T M^-1
        Matrix G1 <General, Singular>;
        Matrix G2 <General, Singular>;
        Matrix G3 <General, Singular>;
        Matrix M  <Symmetric, SPD>;
        R := G1 * G2 * G3^T * M^-1;
    ";

    #[test]
    fn parses_kalman_chain() {
        let program = parse_program(KALMAN).unwrap();
        assert_eq!(program.lhs(), "R");
        assert_eq!(program.shape().len(), 4);
        assert!(program.shape().operand(2).transposed);
        assert!(program.shape().operand(3).inverted);
        assert_eq!(program.operand_names(), &["G1", "G2", "G3", "M"]);
    }

    #[test]
    fn undefined_matrix_is_error() {
        let err = parse_program("Matrix A <General, Singular>; X := A * B;").unwrap_err();
        assert_eq!(err, ParseError::UndefinedMatrix("B".into()));
    }

    #[test]
    fn duplicate_definition_is_error() {
        let err = parse_program(
            "Matrix A <General, Singular>; Matrix A <General, Singular>; X := A * A;",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::DuplicateDefinition("A".into()));
    }

    #[test]
    fn inverse_of_singular_is_error() {
        let err = parse_program(
            "Matrix A <General, Singular>; Matrix B <General, Singular>; X := A^-1 * B;",
        )
        .unwrap_err();
        assert!(matches!(err, ParseError::Shape(_)));
    }

    #[test]
    fn orthogonal_inverse_rewritten() {
        let program = parse_program(
            "Matrix Q <General, Orthogonal>; Matrix G <General, Singular>; X := Q^-1 * G;",
        )
        .unwrap();
        let q = program.shape().operand(0);
        assert!(!q.inverted);
        assert!(q.transposed);
        assert_eq!(program.rewrites().len(), 1);
    }

    #[test]
    fn identity_operand_removed() {
        let program = parse_program(
            "Matrix I <LowerTri, Orthogonal>; Matrix G <General, Singular>; \
             Matrix H <General, Singular>; X := G * I * H;",
        )
        .unwrap();
        assert_eq!(program.shape().len(), 2);
        assert_eq!(program.operand_names(), &["G", "H"]);
    }

    #[test]
    fn all_identity_chain_is_error() {
        let err = parse_program("Matrix I <UpperTri, Orthogonal>; X := I * I;").unwrap_err();
        assert_eq!(err, ParseError::EmptyAfterSimplification);
    }

    #[test]
    fn unknown_structure_and_property() {
        assert!(matches!(
            parse_program("Matrix A <Diagonal, Singular>; X := A;"),
            Err(ParseError::UnknownStructure(_))
        ));
        assert!(matches!(
            parse_program("Matrix A <General, Hermitian>; X := A;"),
            Err(ParseError::UnknownProperty(_))
        ));
    }

    #[test]
    fn lex_errors_are_reported() {
        assert!(matches!(
            parse_program("Matrix A <General, Singular>; X := A $ A;"),
            Err(ParseError::UnexpectedChar('$', _))
        ));
        assert!(matches!(
            parse_program("Matrix A <General, Singular>; X : A;"),
            Err(ParseError::UnexpectedChar(':', _))
        ));
    }

    #[test]
    fn truncated_input() {
        assert!(matches!(
            parse_program("Matrix A <General, Singular>; X := A"),
            Err(ParseError::UnexpectedEnd(_))
        ));
    }

    #[test]
    fn inv_transpose_operator() {
        let program = parse_program(
            "Matrix L <LowerTri, NonSingular>; Matrix G <General, Singular>; X := L^-T * G;",
        )
        .unwrap();
        let l = program.shape().operand(0);
        assert!(l.inverted && l.transposed);
    }

    #[test]
    fn transpose_of_symmetric_simplified() {
        let program = parse_program(
            "Matrix S <Symmetric, Singular>; Matrix G <General, Singular>; X := S^T * G;",
        )
        .unwrap();
        assert!(!program.shape().operand(0).transposed);
    }
}
