//! The *shape* of a generalized matrix chain: its sequence of operands with
//! features and unary operators, everything except the concrete sizes.

use crate::classes::EquivClasses;
use crate::features::{Property, Structure};
use crate::operand::Operand;
use std::error::Error;
use std::fmt;

/// Errors detected when validating a shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A chain needs at least one matrix.
    Empty,
    /// Operand `index` combines features/operators illegally (e.g. inverting
    /// a singular matrix, or a general SPD matrix).
    InvalidOperand {
        /// Zero-based operand index.
        index: usize,
        /// The offending operand.
        operand: Operand,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Empty => write!(f, "a chain must contain at least one matrix"),
            ShapeError::InvalidOperand { index, operand } => {
                write!(
                    f,
                    "operand {index} has invalid features/operators: {operand}"
                )
            }
        }
    }
}

impl Error for ShapeError {}

/// The shape of a GMC with `n` matrices.
///
/// Matrix `i` (zero-based) has symbolic size `q_i × q_{i+1}`; a shape with
/// `n` operands involves `n + 1` size symbols `q_0, ..., q_n`.
///
/// # Example
///
/// ```
/// use gmc_ir::{Features, Operand, Property, Shape, Structure};
/// // G1 * L^{-1} * G2, the triangular-inversion building block from the paper.
/// let g = Operand::plain(Features::general());
/// let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
/// let shape = Shape::new(vec![g, l, g])?;
/// assert_eq!(shape.len(), 3);
/// assert_eq!(shape.num_sizes(), 4);
/// # Ok::<(), gmc_ir::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    operands: Vec<Operand>,
}

impl Shape {
    /// Create and validate a shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Empty`] for an empty chain and
    /// [`ShapeError::InvalidOperand`] if any operand is invalid.
    pub fn new(operands: Vec<Operand>) -> Result<Self, ShapeError> {
        if operands.is_empty() {
            return Err(ShapeError::Empty);
        }
        for (index, &operand) in operands.iter().enumerate() {
            if !operand.is_valid() {
                return Err(ShapeError::InvalidOperand { index, operand });
            }
        }
        Ok(Shape { operands })
    }

    /// Number of matrices `n` in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.operands.len()
    }

    /// `true` if the chain has no matrices (never true for constructed shapes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operands.is_empty()
    }

    /// Number of size symbols, `n + 1`.
    #[must_use]
    pub fn num_sizes(&self) -> usize {
        self.operands.len() + 1
    }

    /// The operand at position `i` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn operand(&self, i: usize) -> Operand {
        self.operands[i]
    }

    /// All operands in order.
    #[must_use]
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Size-symbol equivalence classes: `q_i ~ q_{i+1}` whenever matrix `i`
    /// is necessarily square (Sec. V of the paper).
    #[must_use]
    pub fn size_classes(&self) -> EquivClasses {
        let mut classes = EquivClasses::new(self.num_sizes());
        for (i, op) in self.operands.iter().enumerate() {
            if op.forces_square() {
                classes.union(i, i + 1);
            }
        }
        classes
    }

    /// `true` if at least one matrix may be rectangular.
    #[must_use]
    pub fn has_rectangular(&self) -> bool {
        self.operands.iter().any(|o| !o.forces_square())
    }

    /// Number of square matrices in the chain (used in the paper's
    /// `n_c = n - n_sq + 1` count of equivalence classes).
    #[must_use]
    pub fn num_square(&self) -> usize {
        self.operands.iter().filter(|o| o.forces_square()).count()
    }

    /// Compact, parseable single-line code for persistence:
    /// space-joined [`Operand::compact`] codes, e.g. `Gs Lni Gst`.
    /// Round-trips through [`Shape::from_compact`].
    #[must_use]
    pub fn compact(&self) -> String {
        self.operands
            .iter()
            .map(Operand::compact)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parse a shape code produced by [`Shape::compact`], re-validating
    /// the operand combination exactly as [`Shape::new`] does.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed or invalid code.
    pub fn from_compact(code: &str) -> Result<Shape, String> {
        let operands: Vec<Operand> = code
            .split_whitespace()
            .map(Operand::from_compact)
            .collect::<Result<_, _>>()?;
        Shape::new(operands).map_err(|e| e.to_string())
    }

    /// A compact single-line description, e.g. `G * L^-1 * G^T`.
    #[must_use]
    pub fn brief(&self) -> String {
        self.operands
            .iter()
            .map(|o| {
                let base = match (o.effective_structure(), o.property()) {
                    (Structure::General, Property::Orthogonal) => "Q",
                    (Structure::General, _) => "G",
                    (Structure::Symmetric, Property::Spd) => "P",
                    (Structure::Symmetric, _) => "S",
                    (Structure::LowerTri, _) => "L",
                    (Structure::UpperTri, _) => "U",
                };
                let sup = match (o.transposed, o.inverted) {
                    (false, false) => "",
                    (true, false) => "^T",
                    (false, true) => "^-1",
                    (true, true) => "^-T",
                };
                format!("{base}{sup}")
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.brief())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Features;

    fn g() -> Operand {
        Operand::plain(Features::general())
    }

    fn l_inv() -> Operand {
        Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted()
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Shape::new(vec![]), Err(ShapeError::Empty));
    }

    #[test]
    fn invalid_operand_reported_with_index() {
        let bad = Operand::plain(Features::general()).inverted();
        let err = Shape::new(vec![g(), bad]).unwrap_err();
        assert!(matches!(err, ShapeError::InvalidOperand { index: 1, .. }));
    }

    #[test]
    fn size_classes_merge_around_square_matrices() {
        // G L^{-1} G: L is square so q1 ~ q2.
        let shape = Shape::new(vec![g(), l_inv(), g()]).unwrap();
        let classes = shape.size_classes();
        assert_eq!(classes.num_classes(), 3);
        assert_eq!(classes.find(1), classes.find(2));
        assert_ne!(classes.find(0), classes.find(1));
    }

    #[test]
    fn num_square_counts() {
        let shape = Shape::new(vec![g(), l_inv(), g()]).unwrap();
        assert_eq!(shape.num_square(), 1);
        assert!(shape.has_rectangular());
        // n_c = n - n_sq + 1 = 3 - 1 + 1 = 3.
        assert_eq!(
            shape.size_classes().num_classes(),
            shape.len() - shape.num_square() + 1
        );
    }

    #[test]
    fn paper_example_s1_g2_s3_l4_g5() {
        // S1 G2 S3 L4 G5 has classes {q0,q1}, {q2,q3,q4}, {q5}.
        let s = Operand::plain(Features::new(Structure::Symmetric, Property::Singular));
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::Singular));
        let shape = Shape::new(vec![s, g(), s, l, g()]).unwrap();
        let classes = shape.size_classes();
        assert_eq!(classes.num_classes(), 3);
        assert_eq!(classes.find(0), classes.find(1));
        assert_eq!(classes.find(2), classes.find(3));
        assert_eq!(classes.find(3), classes.find(4));
        assert_ne!(classes.find(1), classes.find(2));
        assert_ne!(classes.find(4), classes.find(5));
    }

    #[test]
    fn compact_round_trips() {
        let shape = Shape::new(vec![g(), l_inv(), g().transposed()]).unwrap();
        let code = shape.compact();
        assert_eq!(code, "Gs Lni Gst");
        assert_eq!(Shape::from_compact(&code), Ok(shape));
        // Invalid operand combinations are rejected on parse, like `new`.
        assert!(Shape::from_compact("Gsi").is_err(), "inverted singular");
        assert!(Shape::from_compact("").is_err(), "empty chain");
    }

    #[test]
    fn brief_notation() {
        let shape = Shape::new(vec![g(), l_inv(), g()]).unwrap();
        assert_eq!(shape.brief(), "G L^-1 G");
    }
}
