//! Pretty-printer for shapes back into the Fig. 2 grammar.
//!
//! Useful for logging experiment shapes in a replayable form; round-trips
//! through [`crate::grammar::parse_program`] up to the simplification
//! rewrites (which are idempotent).

use crate::features::{Property, Structure};
use crate::shape::Shape;
use std::fmt::Write;

fn structure_kw(s: Structure) -> &'static str {
    match s {
        Structure::General => "General",
        Structure::Symmetric => "Symmetric",
        Structure::LowerTri => "LowerTri",
        Structure::UpperTri => "UpperTri",
    }
}

fn property_kw(p: Property) -> &'static str {
    match p {
        Property::Singular => "Singular",
        Property::NonSingular => "NonSingular",
        Property::Spd => "SPD",
        Property::Orthogonal => "Orthogonal",
    }
}

/// Emit a complete grammar program for `shape`, assigning operand names
/// `M1, M2, ...` and left-hand side `lhs`.
///
/// # Example
///
/// ```
/// use gmc_ir::{emit::emit_program, grammar::parse_program, Features, Operand, Shape};
/// let g = Operand::plain(Features::general());
/// let shape = Shape::new(vec![g, g.transposed()])?;
/// let src = emit_program(&shape, "X");
/// let reparsed = parse_program(&src).unwrap();
/// assert_eq!(reparsed.shape(), &shape);
/// # Ok::<(), gmc_ir::ShapeError>(())
/// ```
#[must_use]
pub fn emit_program(shape: &Shape, lhs: &str) -> String {
    let mut out = String::new();
    for (i, op) in shape.operands().iter().enumerate() {
        let _ = writeln!(
            out,
            "Matrix M{} <{}, {}>;",
            i + 1,
            structure_kw(op.features.structure),
            property_kw(op.features.property)
        );
    }
    let _ = write!(out, "{lhs} :=");
    for (i, op) in shape.operands().iter().enumerate() {
        let sup = match (op.transposed, op.inverted) {
            (false, false) => "",
            (true, false) => "^T",
            (false, true) => "^-1",
            (true, true) => "^-T",
        };
        let sep = if i == 0 { " " } else { " * " };
        let _ = write!(out, "{sep}M{}{sup}", i + 1);
    }
    let _ = writeln!(out, ";");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Features;
    use crate::grammar::parse_program;
    use crate::operand::Operand;

    #[test]
    fn round_trips_through_parser() {
        let g = Operand::plain(Features::general());
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        let p = Operand::plain(Features::new(Structure::Symmetric, Property::Spd));
        let shape = Shape::new(vec![g, l.inverted(), p.inverted(), g.transposed()]).unwrap();
        let src = emit_program(&shape, "R");
        let program = parse_program(&src).unwrap();
        assert_eq!(program.shape(), &shape);
        assert_eq!(program.lhs(), "R");
    }

    #[test]
    fn round_trips_all_experiment_options() {
        for op in Operand::experiment_options() {
            let g = Operand::plain(Features::general());
            let shape = Shape::new(vec![op, g]).unwrap();
            let src = emit_program(&shape, "X");
            let program = parse_program(&src).unwrap();
            assert_eq!(program.shape(), &shape, "source:\n{src}");
        }
    }

    #[test]
    fn emitted_source_is_readable() {
        let g = Operand::plain(Features::general());
        let shape = Shape::new(vec![g, g]).unwrap();
        let src = emit_program(&shape, "X");
        assert_eq!(
            src,
            "Matrix M1 <General, Singular>;\nMatrix M2 <General, Singular>;\nX := M1 * M2;\n"
        );
    }
}
