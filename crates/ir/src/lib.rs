//! Intermediate representation for Generalized Matrix Chains (GMCs).
//!
//! A GMC is a product `op(M_1) op(M_2) ... op(M_n)` where each matrix
//! carries *features* — a [`Structure`] (general, symmetric, triangular) and
//! a [`Property`] (singular, non-singular, SPD, orthogonal) — and each
//! `op` optionally transposes and/or inverts its operand. The *shape* of a
//! chain ([`Shape`]) is the sequence of feature/operator pairs; the matrix
//! sizes stay symbolic (`q_0, ..., q_n`) until run time, when an
//! [`Instance`] assigns concrete values.
//!
//! This crate provides:
//!
//! * the feature system and validity/simplification rewrites of Sec. III-A
//!   of the paper ([`features`], [`rewrite`]);
//! * the input grammar of Fig. 2 with a lexer and recursive-descent parser
//!   ([`grammar`]);
//! * symbolic size machinery: size-symbol equivalence classes
//!   ([`classes::EquivClasses`]) and exact multivariate cost polynomials
//!   over the size symbols ([`poly::Poly`], [`ratio::Ratio`]);
//! * instance generation for training/validation sets ([`instance`]).
//!
//! # Example
//!
//! ```
//! use gmc_ir::grammar::parse_program;
//!
//! let src = "
//!     Matrix A <General, Singular>;
//!     Matrix L <LowerTri, NonSingular>;
//!     Matrix B <General, Singular>;
//!     X := A * L^-1 * B;
//! ";
//! let program = parse_program(src)?;
//! let shape = program.shape();
//! assert_eq!(shape.len(), 3);
//! assert!(shape.operand(1).inverted);
//! # Ok::<(), gmc_ir::grammar::ParseError>(())
//! ```

#![warn(missing_docs)]
pub mod classes;
pub mod emit;
pub mod features;
pub mod grammar;
pub mod instance;
pub mod intern;
pub mod operand;
pub mod poly;
pub mod ratio;
pub mod rewrite;
pub mod shape;

pub use classes::EquivClasses;
pub use features::{Features, Property, Structure};
pub use instance::{Instance, InstanceSampler};
pub use intern::{ShapeId, ShapeInterner};
pub use operand::Operand;
pub use poly::Poly;
pub use ratio::Ratio;
pub use shape::{Shape, ShapeError};
