//! A single chain operand: a matrix with features and unary operators.

use crate::features::{Features, Property, Structure};
use std::fmt;

/// One operand `op(M_i)` of a generalized matrix chain.
///
/// The unary operator `op` is encoded by the `transposed` / `inverted`
/// flags (`op(M) = M, M^T, M^{-1}, M^{-T}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Operand {
    /// Feature pair of the stored matrix.
    pub features: Features,
    /// `true` if the operand is transposed.
    pub transposed: bool,
    /// `true` if the operand is inverted.
    pub inverted: bool,
}

impl Operand {
    /// A plain (untransformed) operand with the given features.
    #[must_use]
    pub fn plain(features: Features) -> Self {
        Operand {
            features,
            transposed: false,
            inverted: false,
        }
    }

    /// Builder-style: mark the operand transposed.
    #[must_use]
    pub fn transposed(mut self) -> Self {
        self.transposed = !self.transposed;
        self
    }

    /// Builder-style: mark the operand inverted.
    #[must_use]
    pub fn inverted(mut self) -> Self {
        self.inverted = !self.inverted;
        self
    }

    /// The *effective* structure, after applying the transposition flag.
    ///
    /// (Inversion preserves structure for the structures we track.)
    #[must_use]
    pub fn effective_structure(&self) -> Structure {
        if self.transposed {
            self.features.structure.transposed()
        } else {
            self.features.structure
        }
    }

    /// The operand's property (unchanged by transposition or inversion).
    #[must_use]
    pub fn property(&self) -> Property {
        self.features.property
    }

    /// `true` if the underlying matrix must be square.
    #[must_use]
    pub fn forces_square(&self) -> bool {
        self.features.forces_square() || self.inverted
    }

    /// Validity of the operand: the features must be valid and inversion
    /// requires an invertible property.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.features.is_valid() && (!self.inverted || self.features.property.is_invertible())
    }

    /// Compact textual code for persistence: one structure letter
    /// (`G`/`S`/`L`/`U`), one property letter (`s`ingular,
    /// `n`on-singular, s`p`d, `o`rthogonal), then optional `t`
    /// (transposed) and `i` (inverted) flags, in that order. Examples:
    /// `Gs`, `Lni`, `Gsti`. Round-trips through
    /// [`Operand::from_compact`].
    #[must_use]
    pub fn compact(&self) -> String {
        let s = match self.features.structure {
            Structure::General => 'G',
            Structure::Symmetric => 'S',
            Structure::LowerTri => 'L',
            Structure::UpperTri => 'U',
        };
        let p = match self.features.property {
            Property::Singular => 's',
            Property::NonSingular => 'n',
            Property::Spd => 'p',
            Property::Orthogonal => 'o',
        };
        let mut out = String::with_capacity(4);
        out.push(s);
        out.push(p);
        if self.transposed {
            out.push('t');
        }
        if self.inverted {
            out.push('i');
        }
        out
    }

    /// Parse an operand code produced by [`Operand::compact`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed code. Feature *validity*
    /// (e.g. inverting a singular matrix) is not checked here; validate
    /// through [`crate::Shape::new`].
    pub fn from_compact(code: &str) -> Result<Operand, String> {
        let mut chars = code.chars();
        let structure = match chars.next() {
            Some('G') => Structure::General,
            Some('S') => Structure::Symmetric,
            Some('L') => Structure::LowerTri,
            Some('U') => Structure::UpperTri,
            other => return Err(format!("bad structure letter {other:?} in `{code}`")),
        };
        let property = match chars.next() {
            Some('s') => Property::Singular,
            Some('n') => Property::NonSingular,
            Some('p') => Property::Spd,
            Some('o') => Property::Orthogonal,
            other => return Err(format!("bad property letter {other:?} in `{code}`")),
        };
        let mut op = Operand::plain(Features::new(structure, property));
        let rest: Vec<char> = chars.collect();
        match rest.as_slice() {
            [] => {}
            ['t'] => op.transposed = true,
            ['i'] => op.inverted = true,
            ['t', 'i'] => {
                op.transposed = true;
                op.inverted = true;
            }
            _ => {
                return Err(format!(
                    "bad operator flags in `{code}` (expect t, i, or ti)"
                ))
            }
        }
        Ok(op)
    }

    /// The ten feature/operator options used in the paper's experiments
    /// (Sec. VII-A): general singular; general inverted; SPD plain or
    /// inverted; lower/upper triangular singular, nonsingular, or inverted.
    #[must_use]
    pub fn experiment_options() -> Vec<Operand> {
        let g = |p| Features::new(Structure::General, p);
        let s = |p| Features::new(Structure::Symmetric, p);
        let l = |p| Features::new(Structure::LowerTri, p);
        let u = |p| Features::new(Structure::UpperTri, p);
        vec![
            Operand::plain(g(Property::Singular)),
            Operand::plain(g(Property::NonSingular)).inverted(),
            Operand::plain(s(Property::Spd)),
            Operand::plain(s(Property::Spd)).inverted(),
            Operand::plain(l(Property::Singular)),
            Operand::plain(l(Property::NonSingular)),
            Operand::plain(l(Property::NonSingular)).inverted(),
            Operand::plain(u(Property::Singular)),
            Operand::plain(u(Property::NonSingular)),
            Operand::plain(u(Property::NonSingular)).inverted(),
        ]
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.features)?;
        match (self.transposed, self.inverted) {
            (false, false) => Ok(()),
            (true, false) => write!(f, "^T"),
            (false, true) => write!(f, "^-1"),
            (true, true) => write!(f, "^-T"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_structure_respects_transpose() {
        let l = Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular));
        assert_eq!(l.effective_structure(), Structure::LowerTri);
        assert_eq!(l.transposed().effective_structure(), Structure::UpperTri);
    }

    #[test]
    fn inverted_singular_is_invalid() {
        let bad = Operand::plain(Features::general()).inverted();
        assert!(!bad.is_valid());
        let ok =
            Operand::plain(Features::new(Structure::General, Property::NonSingular)).inverted();
        assert!(ok.is_valid());
    }

    #[test]
    fn experiment_options_are_ten_valid_untransposed() {
        let opts = Operand::experiment_options();
        assert_eq!(opts.len(), 10);
        assert!(opts.iter().all(Operand::is_valid));
        assert!(opts.iter().all(|o| !o.transposed));
        // Exactly one option (plain general) is rectangular-capable.
        assert_eq!(opts.iter().filter(|o| !o.forces_square()).count(), 1);
    }

    #[test]
    fn builder_flags_toggle() {
        let o = Operand::plain(Features::general())
            .transposed()
            .transposed();
        assert!(!o.transposed);
    }

    #[test]
    fn compact_codes_round_trip() {
        // Every experiment option, plus transposed combinations.
        let mut ops = Operand::experiment_options();
        ops.extend(
            Operand::experiment_options()
                .into_iter()
                .map(Operand::transposed),
        );
        for op in ops {
            let code = op.compact();
            assert_eq!(Operand::from_compact(&code), Ok(op), "code `{code}`");
        }
        assert_eq!(Operand::plain(Features::general()).compact(), "Gs");
        assert!(Operand::from_compact("").is_err());
        assert!(Operand::from_compact("G").is_err());
        assert!(Operand::from_compact("Gsx").is_err());
        assert!(Operand::from_compact("Gsit").is_err(), "flags are ordered");
    }

    #[test]
    fn display_notation() {
        let f = Features::new(Structure::LowerTri, Property::NonSingular);
        assert_eq!(
            Operand::plain(f).inverted().to_string(),
            "<LowerTri, NonSingular>^-1"
        );
        assert_eq!(
            Operand::plain(f).transposed().inverted().to_string(),
            "<LowerTri, NonSingular>^-T"
        );
    }
}
