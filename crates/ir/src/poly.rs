//! Exact multivariate polynomials over the symbolic size vector
//! `q = (q_0, ..., q_n)`.
//!
//! Variant cost functions (Sec. III-C of the paper) are sums of kernel cost
//! terms such as `2 q_0 q_1 q_2` or `8/3 q_1^3`. We represent them as sparse
//! polynomials with exact rational coefficients so that symbolic costs can be
//! compared, printed, and evaluated on concrete instances.

use crate::ratio::Ratio;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// A monomial: sorted, deduplicated `(variable index, exponent)` pairs.
///
/// The variable index `i` refers to the size symbol `q_i`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(Vec<(usize, u32)>);

impl Monomial {
    /// The monomial `1` (empty product).
    #[must_use]
    pub fn one() -> Self {
        Monomial(Vec::new())
    }

    /// The monomial `q_i`.
    #[must_use]
    pub fn var(i: usize) -> Self {
        Monomial(vec![(i, 1)])
    }

    /// Build from unsorted factors, merging duplicate variables.
    #[must_use]
    pub fn from_factors(factors: &[(usize, u32)]) -> Self {
        let mut map: BTreeMap<usize, u32> = BTreeMap::new();
        for &(v, e) in factors {
            if e > 0 {
                *map.entry(v).or_insert(0) += e;
            }
        }
        Monomial(map.into_iter().collect())
    }

    /// Multiply two monomials.
    #[must_use]
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut factors = self.0.clone();
        factors.extend_from_slice(&other.0);
        Monomial::from_factors(&factors)
    }

    /// Total degree.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.0.iter().map(|&(_, e)| e).sum()
    }

    /// Evaluate on the instance vector `q` (values of `q_i`).
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of bounds for `q`.
    #[must_use]
    pub fn eval(&self, q: &[u64]) -> f64 {
        self.0
            .iter()
            .map(|&(v, e)| (q[v] as f64).powi(e as i32))
            .product()
    }

    /// The `(variable, exponent)` pairs.
    #[must_use]
    pub fn factors(&self) -> &[(usize, u32)] {
        &self.0
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        let mut first = true;
        for &(v, e) in &self.0 {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if e == 1 {
                write!(f, "q{v}")?;
            } else {
                write!(f, "q{v}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A sparse multivariate polynomial with [`Ratio`] coefficients.
///
/// # Example
///
/// ```
/// use gmc_ir::{Poly, Ratio};
/// // 2 * q0 * q1 * q2  (the GEMM cost for the triplet (0,1,2))
/// let cost = Poly::term(Ratio::from(2), &[(0, 1), (1, 1), (2, 1)]);
/// assert_eq!(cost.eval(&[10, 20, 30]), 12_000.0);
/// assert_eq!(cost.to_string(), "2*q0*q1*q2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, Ratio>,
}

impl Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Poly::default()
    }

    /// A single term `coeff * prod q_v^e`.
    #[must_use]
    pub fn term(coeff: Ratio, factors: &[(usize, u32)]) -> Self {
        let mut p = Poly::zero();
        p.add_term(coeff, Monomial::from_factors(factors));
        p
    }

    /// A constant polynomial.
    #[must_use]
    pub fn constant(c: Ratio) -> Self {
        Poly::term(c, &[])
    }

    /// The polynomial `q_i`.
    #[must_use]
    pub fn var(i: usize) -> Self {
        Poly::term(Ratio::ONE, &[(i, 1)])
    }

    /// Add `coeff * mono`, dropping the term if the result cancels to zero.
    pub fn add_term(&mut self, coeff: Ratio, mono: Monomial) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(mono.clone()).or_insert(Ratio::ZERO);
        *entry += coeff;
        if entry.is_zero() {
            self.terms.remove(&mono);
        }
    }

    /// `true` iff this is the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of (nonzero) terms.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterate `(monomial, coefficient)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Ratio)> {
        self.terms.iter()
    }

    /// Total degree (0 for the zero polynomial).
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Evaluate on the instance vector `q`.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial references a variable index out of bounds.
    #[must_use]
    pub fn eval(&self, q: &[u64]) -> f64 {
        self.terms.iter().map(|(m, c)| c.to_f64() * m.eval(q)).sum()
    }

    /// Rename variables: variable `i` becomes `map[i]`.
    ///
    /// Used when size symbols are merged by an equivalence class.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of bounds for `map`.
    #[must_use]
    pub fn rename_vars(&self, map: &[usize]) -> Poly {
        let mut out = Poly::zero();
        for (mono, &coeff) in &self.terms {
            let factors: Vec<(usize, u32)> =
                mono.factors().iter().map(|&(v, e)| (map[v], e)).collect();
            out.add_term(coeff, Monomial::from_factors(&factors));
        }
        out
    }
}

impl Add<&Poly> for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &rhs.terms {
            out.add_term(c, m.clone());
        }
        out
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        for (m, &c) in &rhs.terms {
            self.add_term(c, m.clone());
        }
    }
}

impl Mul<&Poly> for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &rhs.terms {
                out.add_term(ca * cb, ma.mul(mb));
            }
        }
        out
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if first {
                first = false;
            } else {
                write!(f, " + ")?;
            }
            if m.factors().is_empty() {
                write!(f, "{c}")?;
            } else if *c == Ratio::ONE {
                write!(f, "{m}")?;
            } else {
                write!(f, "{c}*{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_merging() {
        let m = Monomial::from_factors(&[(2, 1), (0, 2), (2, 1)]);
        assert_eq!(m.factors(), &[(0, 2), (2, 2)]);
        assert_eq!(m.degree(), 4);
        assert_eq!(m.eval(&[3, 1, 2]), 36.0);
    }

    #[test]
    fn addition_cancels() {
        let a = Poly::term(Ratio::from(2), &[(0, 1)]);
        let b = Poly::term(Ratio::from(-2), &[(0, 1)]);
        assert!((&a + &b).is_zero());
    }

    #[test]
    fn gemm_like_cost() {
        // 2 q0 q1 q2 + 2 q0 q2 q3 evaluated on (2, 3, 4, 5).
        let mut p = Poly::term(Ratio::from(2), &[(0, 1), (1, 1), (2, 1)]);
        p += &Poly::term(Ratio::from(2), &[(0, 1), (2, 1), (3, 1)]);
        assert_eq!(p.eval(&[2, 3, 4, 5]), 48.0 + 80.0);
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.degree(), 3);
    }

    #[test]
    fn multiplication() {
        // (q0 + 1) * (q0 - 1) = q0^2 - 1.
        let mut a = Poly::var(0);
        a += &Poly::constant(Ratio::ONE);
        let mut b = Poly::var(0);
        b += &Poly::constant(Ratio::from(-1));
        let c = &a * &b;
        assert_eq!(c.eval(&[7]), 48.0);
        assert_eq!(c.num_terms(), 2);
    }

    #[test]
    fn rename_merges_variables() {
        // q1 * q2 with q2 -> q1 becomes q1^2.
        let p = Poly::term(Ratio::ONE, &[(1, 1), (2, 1)]);
        let renamed = p.rename_vars(&[0, 1, 1]);
        assert_eq!(renamed, Poly::term(Ratio::ONE, &[(1, 2)]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Poly::zero().to_string(), "0");
        assert_eq!(Poly::constant(Ratio::new(1, 3)).to_string(), "1/3");
        let p = Poly::term(Ratio::new(8, 3), &[(1, 3)]);
        assert_eq!(p.to_string(), "8/3*q1^3");
        assert_eq!(Poly::var(4).to_string(), "q4");
    }

    #[test]
    fn rational_coefficients_are_exact() {
        // 1/3 + 1/3 + 1/3 == 1 exactly.
        let third = Poly::constant(Ratio::new(1, 3));
        let mut sum = Poly::zero();
        for _ in 0..3 {
            sum += &third;
        }
        assert_eq!(sum, Poly::constant(Ratio::ONE));
    }
}
